// On-disk framing of the durable result store (src/store/result_store.h).
//
// A segment file is an 8-byte magic followed by a sequence of
// self-checking records, each 8-byte aligned:
//
//   [fingerprint u64 | payload_len u32 | checksum u64 | payload | pad]
//
// All integers are little-endian. The checksum is an xxhash64-style
// mix seeded with the fingerprint, so a record binds its payload to its
// key: a flipped bit anywhere in the frame fails validation and the
// record is skipped (counted) instead of served. A frame that runs past
// the end of its file is a torn tail — the bytes a crash cut mid-append
// — and recovery truncates the file back to the last whole record.
// This framing is deliberately position-independent and append-only so
// a segment file can be shipped between nodes verbatim and replayed as
// a cache fill (ROADMAP: sharded fleet).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace bfdn {
namespace store {

/// Segment file magic, written once at offset 0. The trailing digits
/// are the format version; readers reject files whose magic differs.
inline constexpr char kSegmentMagic[8] = {'B', 'F', 'D', 'N',
                                          'S', 'G', '0', '1'};
inline constexpr std::size_t kSegmentHeaderBytes = sizeof(kSegmentMagic);

/// fingerprint u64 + payload_len u32 + checksum u64.
inline constexpr std::size_t kRecordHeaderBytes = 20;
inline constexpr std::size_t kRecordAlign = 8;
/// Upper bound a reader trusts in a length field; anything larger is
/// treated as a torn/corrupt frame rather than an allocation request.
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 30;

/// xxhash64-style checksum over `payload`, seeded with `fingerprint`.
std::uint64_t record_checksum(std::uint64_t fingerprint,
                              std::string_view payload);

/// Whole frame size (header + payload + alignment padding).
std::size_t record_frame_bytes(std::size_t payload_len);

/// Appends one encoded record frame (including padding) to `out`.
void encode_record(std::uint64_t fingerprint, std::string_view payload,
                   std::string* out);

enum class RecordStatus : std::uint8_t {
  kOk,       // frame complete, checksum verified
  kCorrupt,  // frame complete but checksum mismatch — skip it
  kTorn,     // frame runs past the end of the buffer — truncate here
};

struct DecodedRecord {
  std::uint64_t fingerprint = 0;
  const char* payload = nullptr;  // points into the scanned buffer
  std::uint32_t payload_len = 0;
  std::size_t frame_bytes = 0;  // advance by this much to the next record
};

/// Validates the record starting at `offset` in `data[0, size)`.
/// On kOk and kCorrupt, `out->frame_bytes` is the stride to the next
/// record; on kTorn the rest of the buffer is unusable.
RecordStatus decode_record(const char* data, std::size_t size,
                           std::size_t offset, DecodedRecord* out);

/// Segment file name for a 1-based sequence number: "seg-000042.bfdnseg".
std::string segment_file_name(std::uint64_t sequence);

/// Parses a segment file name back to its sequence number; returns 0
/// when `name` is not a segment file (0 is never a valid sequence).
std::uint64_t parse_segment_file_name(const std::string& name);

}  // namespace store
}  // namespace bfdn
