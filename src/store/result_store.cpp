#include "store/result_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <unordered_set>
#include <utility>

#include "store/segment.h"
#include "support/check.h"
#include "support/strings.h"

namespace bfdn {
namespace {

namespace fs = std::filesystem;

[[noreturn]] void fail_errno(const std::string& what,
                             const std::string& path) {
  const int err = errno;
  throw CheckError(str_format("%s %s: %s", what.c_str(), path.c_str(),
                              std::strerror(err)));
}

void pwrite_all(int fd, const char* data, std::size_t size,
                std::uint64_t offset, const std::string& path) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::pwrite(fd, data + written, size - written,
                               static_cast<off_t>(offset + written));
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("pwrite", path);
    }
    written += static_cast<std::size_t>(n);
  }
}

bool pread_all(int fd, char* data, std::size_t size, std::uint64_t offset) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::pread(fd, data + done, size - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // short file: treat as missing
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

ResultStore::ResultStore(StoreOptions options)
    : options_(std::move(options)) {
  BFDN_REQUIRE(!options_.dir.empty(), "store: dir must not be empty");
  BFDN_REQUIRE(options_.segment_bytes >= 4096,
               "store: segment_bytes must be >= 4096");
  BFDN_REQUIRE(options_.flush_interval_ms >= 1,
               "store: flush_interval_ms must be >= 1");
  {
    MutexLock lock(mutex_);
    recover_locked();
  }
  flusher_ = std::thread([this] { flusher_loop(); });
}

ResultStore::~ResultStore() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
    flush_requested_ = true;
    // Notify under the lock (same convention as the scheduler/pool
    // teardowns): an unlocked notify races the flusher's final
    // predicate check and exit.
    flusher_cv_.notify_all();
  }
  flusher_.join();
  // The flusher is gone and no API call can be live during destruction,
  // but the close loop still takes the lock: segments_ is guarded, and
  // the analysis does not exempt destructors.
  MutexLock lock(mutex_);
  for (Segment& segment : segments_) close_segment(&segment);
}

ResultStore::Segment ResultStore::open_segment(const std::string& path,
                                               bool create) {
  Segment segment;
  segment.path = path;
  const int flags = O_RDWR | O_CLOEXEC | (create ? O_CREAT : 0);
  segment.fd = ::open(path.c_str(), flags, 0644);
  if (segment.fd < 0) fail_errno("open", path);
  if (create) {
    pwrite_all(segment.fd, store::kSegmentMagic,
               store::kSegmentHeaderBytes, 0, path);
    segment.size = store::kSegmentHeaderBytes;
  } else {
    struct stat st {};
    if (::fstat(segment.fd, &st) != 0) fail_errno("fstat", path);
    segment.size = static_cast<std::size_t>(st.st_size);
  }
  return segment;
}

void ResultStore::close_segment(Segment* segment) {
  if (segment->map != nullptr) {
    ::munmap(const_cast<char*>(segment->map), segment->map_bytes);
    segment->map = nullptr;
    segment->map_bytes = 0;
  }
  if (segment->fd >= 0) {
    ::close(segment->fd);
    segment->fd = -1;
  }
}

void ResultStore::recover_locked() {
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  BFDN_REQUIRE(!ec, "store: cannot create directory " + options_.dir +
                        ": " + ec.message());

  std::vector<std::pair<std::uint64_t, std::string>> files;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(options_.dir)) {
    const std::string name = entry.path().filename().string();
    const std::uint64_t sequence = store::parse_segment_file_name(name);
    if (sequence > 0) files.emplace_back(sequence, entry.path().string());
  }
  std::sort(files.begin(), files.end());

  for (const auto& [sequence, path] : files) {
    Segment segment = open_segment(path, /*create=*/false);
    next_sequence_ = std::max(next_sequence_, sequence + 1);

    // A file too short for its magic (or with the wrong magic) is a
    // crash during creation or foreign data: reset it to an empty
    // segment rather than guessing at its framing.
    bool reset = segment.size < store::kSegmentHeaderBytes;
    if (!reset) {
      char magic[store::kSegmentHeaderBytes];
      if (!pread_all(segment.fd, magic, sizeof(magic), 0) ||
          std::memcmp(magic, store::kSegmentMagic, sizeof(magic)) != 0) {
        reset = true;
      }
    }
    if (reset) {
      if (segment.size > 0) ++stats_.torn_tail_truncations;
      if (::ftruncate(segment.fd, 0) != 0) fail_errno("ftruncate", path);
      pwrite_all(segment.fd, store::kSegmentMagic,
                 store::kSegmentHeaderBytes, 0, path);
      segment.size = store::kSegmentHeaderBytes;
      segments_.push_back(segment);
      continue;
    }

    // Map the file and walk its records. The mapping outlives recovery:
    // it is the zero-copy read path for everything this boot inherited.
    void* map = ::mmap(nullptr, segment.size, PROT_READ, MAP_SHARED,
                       segment.fd, 0);
    if (map == MAP_FAILED) fail_errno("mmap", path);
    segment.map = static_cast<const char*>(map);
    segment.map_bytes = segment.size;

    const auto segment_index =
        static_cast<std::uint32_t>(segments_.size());
    std::size_t offset = store::kSegmentHeaderBytes;
    while (offset < segment.size) {
      store::DecodedRecord record;
      const store::RecordStatus status =
          store::decode_record(segment.map, segment.size, offset, &record);
      if (status == store::RecordStatus::kTorn) {
        // The half-appended bytes of an interrupted group commit:
        // truncate them away so the next append starts on a clean tail.
        ++stats_.torn_tail_truncations;
        ::munmap(const_cast<char*>(segment.map), segment.map_bytes);
        if (::ftruncate(segment.fd, static_cast<off_t>(offset)) != 0) {
          fail_errno("ftruncate", path);
        }
        segment.size = offset;
        segment.map_bytes = offset;
        void* remap = ::mmap(nullptr, segment.size, PROT_READ, MAP_SHARED,
                             segment.fd, 0);
        if (remap == MAP_FAILED) fail_errno("mmap", path);
        segment.map = static_cast<const char*>(remap);
        break;
      }
      if (status == store::RecordStatus::kOk) {
        Location location;
        location.segment = segment_index;
        location.payload_len = record.payload_len;
        location.offset = offset;
        index_[record.fingerprint] = location;  // last write wins
        ++stats_.recovered_records;
      } else {
        ++stats_.corrupted_skipped;
      }
      offset += record.frame_bytes;
    }
    segments_.push_back(segment);
  }

  stats_.segments = static_cast<std::int64_t>(segments_.size());
  stats_.records = static_cast<std::int64_t>(index_.size());
  stats_.file_bytes = 0;
  for (const Segment& segment : segments_) {
    stats_.file_bytes += static_cast<std::int64_t>(segment.size);
  }
}

std::size_t ResultStore::active_segment_locked() {
  if (segments_.empty() ||
      segments_.back().size >= options_.segment_bytes) {
    const std::string path =
        (fs::path(options_.dir) /
         store::segment_file_name(next_sequence_++))
            .string();
    segments_.push_back(open_segment(path, /*create=*/true));
    stats_.segments = static_cast<std::int64_t>(segments_.size());
  }
  return segments_.size() - 1;
}

std::optional<std::string> ResultStore::read_record(
    const Location& location) {
  const Segment& segment = segments_[location.segment];
  const std::size_t frame = store::record_frame_bytes(location.payload_len);
  if (location.offset + frame <= segment.map_bytes) {
    // Boot-inherited record: serve straight from the mapping.
    store::DecodedRecord record;
    if (store::decode_record(segment.map, segment.map_bytes,
                             location.offset,
                             &record) != store::RecordStatus::kOk) {
      return std::nullopt;
    }
    return std::string(record.payload, record.payload_len);
  }
  // Appended this process: pread past the mapped prefix.
  std::string frame_bytes(frame, '\0');
  if (!pread_all(segment.fd, frame_bytes.data(), frame,
                 location.offset)) {
    return std::nullopt;
  }
  store::DecodedRecord record;
  if (store::decode_record(frame_bytes.data(), frame, 0, &record) !=
      store::RecordStatus::kOk) {
    return std::nullopt;
  }
  return std::string(record.payload, record.payload_len);
}

std::optional<std::string> ResultStore::lookup_locked(std::uint64_t key) {
  const auto pending_it = pending_.find(key);
  if (pending_it != pending_.end()) return pending_it->second;
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  auto payload = read_record(it->second);
  if (!payload.has_value()) {
    // Checksum failed at read time: never serve the bytes. Dropping the
    // index entry lets the caller's recompute overwrite the record.
    ++stats_.corrupted_skipped;
    index_.erase(it);
    stats_.records = static_cast<std::int64_t>(index_.size());
  }
  return payload;
}

std::optional<std::string> ResultStore::get(std::uint64_t key) {
  MutexLock lock(mutex_);
  ++stats_.lookups;
  auto payload = lookup_locked(key);
  if (payload.has_value()) ++stats_.hits;
  return payload;
}

void ResultStore::get_many(const std::vector<std::uint64_t>& keys,
                           std::vector<std::optional<std::string>>* out) {
  out->assign(keys.size(), std::nullopt);
  MutexLock lock(mutex_);
  ++stats_.bulk_lookups;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    (*out)[i] = lookup_locked(keys[i]);
    if ((*out)[i].has_value()) ++stats_.bulk_key_hits;
  }
}

void ResultStore::put(std::uint64_t key, std::string_view payload) {
  BFDN_REQUIRE(payload.size() <= store::kMaxPayloadBytes,
               "store: payload too large");
  MutexLock lock(mutex_);
  if (stopping_) return;
  if (index_.count(key) != 0 || pending_.count(key) != 0) return;
  pending_.emplace(key, std::string(payload));
  pending_order_.push_back(key);
  pending_bytes_ += store::record_frame_bytes(payload.size());
  stats_.pending_records =
      static_cast<std::int64_t>(pending_order_.size());
  if (pending_bytes_ >= options_.flush_bytes) flusher_cv_.notify_all();
}

void ResultStore::flush() {
  MutexLock lock(mutex_);
  flush_requested_ = true;
  flusher_cv_.notify_all();
  flushed_cv_.wait(lock.native(), [this] {
    mutex_.assert_held();
    return pending_order_.empty() && !flush_in_flight_;
  });
}

void ResultStore::flusher_loop() {
  MutexLock lock(mutex_);
  for (;;) {
    flusher_cv_.wait_for(
        lock.native(), std::chrono::milliseconds(options_.flush_interval_ms),
        [this] {
          mutex_.assert_held();
          return stopping_ || flush_requested_ ||
                 pending_bytes_ >= options_.flush_bytes;
        });
    if (pending_order_.empty()) {
      // Nothing buffered: acknowledge any flush() waiter and idle on.
      flush_requested_ = false;
      flushed_cv_.notify_all();
      if (stopping_) return;
      continue;
    }
    // Reaching here with a non-empty buffer means either a trigger
    // fired or the age deadline passed — both flush the whole batch.
    flush_batch(lock);
    flushed_cv_.notify_all();
  }
}

void ResultStore::flush_batch(MutexLock& lock) {
  // Snapshot the batch (keys stay visible in pending_ for readers) and
  // plan every record's final location, creating/rotating segments as
  // needed — those are rare, cheap operations; the bulk IO below runs
  // with the lock released so gets and puts never wait on fdatasync.
  const std::size_t batch_size = pending_order_.size();
  struct WriteOp {
    std::size_t segment;
    std::uint64_t offset;
    std::string buffer;
  };
  std::vector<WriteOp> ops;
  std::vector<std::pair<std::uint64_t, Location>> placements;
  placements.reserve(batch_size);
  for (std::size_t i = 0; i < batch_size; ++i) {
    const std::uint64_t key = pending_order_[i];
    const std::string& payload = pending_.at(key);
    const std::size_t frame = store::record_frame_bytes(payload.size());
    std::size_t seg = active_segment_locked();
    if (segments_[seg].size + frame > options_.segment_bytes &&
        segments_[seg].size > store::kSegmentHeaderBytes) {
      // This frame would overflow the active segment: rotate now so a
      // record never straddles a file boundary.
      const std::string path =
          (fs::path(options_.dir) /
           store::segment_file_name(next_sequence_++))
              .string();
      segments_.push_back(open_segment(path, /*create=*/true));
      stats_.segments = static_cast<std::int64_t>(segments_.size());
      seg = segments_.size() - 1;
    }
    if (ops.empty() || ops.back().segment != seg) {
      ops.push_back({seg, segments_[seg].size, std::string()});
    }
    Location location;
    location.segment = static_cast<std::uint32_t>(seg);
    location.payload_len = static_cast<std::uint32_t>(payload.size());
    location.offset = segments_[seg].size;
    placements.emplace_back(key, location);
    store::encode_record(key, payload, &ops.back().buffer);
    segments_[seg].size += frame;
  }

  flush_in_flight_ = true;
  const bool sync = options_.sync_on_flush;
  // Release the native handle around the bulk IO. The static analysis
  // cannot see through native(), so it still treats mutex_ as held —
  // which is fine: flush_in_flight_ fences the planned segments, and
  // every mutation below the re-lock really is under the mutex.
  lock.native().unlock();

  std::int64_t bytes = 0;
  std::int64_t syncs = 0;
  for (const WriteOp& op : ops) {
    const Segment& segment = segments_[op.segment];
    pwrite_all(segment.fd, op.buffer.data(), op.buffer.size(), op.offset,
               segment.path);
    bytes += static_cast<std::int64_t>(op.buffer.size());
  }
  if (sync) {
    // One fdatasync per touched segment, not per record: the group
    // commit amortizes durability over the whole batch.
    std::size_t last_synced = static_cast<std::size_t>(-1);
    for (const WriteOp& op : ops) {
      if (op.segment == last_synced) continue;
      ::fdatasync(segments_[op.segment].fd);
      last_synced = op.segment;
      ++syncs;
    }
  }

  lock.native().lock();
  for (const auto& [key, location] : placements) {
    index_[key] = location;
    pending_.erase(key);
  }
  pending_order_.erase(pending_order_.begin(),
                       pending_order_.begin() +
                           static_cast<std::ptrdiff_t>(batch_size));
  pending_bytes_ = 0;
  for (const std::uint64_t key : pending_order_) {
    pending_bytes_ += store::record_frame_bytes(pending_.at(key).size());
  }
  stats_.pending_records =
      static_cast<std::int64_t>(pending_order_.size());
  stats_.appended_records += static_cast<std::int64_t>(batch_size);
  stats_.appended_bytes += bytes;
  ++stats_.flushes;
  stats_.syncs += syncs;
  stats_.records = static_cast<std::int64_t>(index_.size());
  stats_.file_bytes = 0;
  for (const Segment& segment : segments_) {
    stats_.file_bytes += static_cast<std::int64_t>(segment.size);
  }
  flush_in_flight_ = false;
  flush_requested_ = false;
}

void ResultStore::sync_directory() {
  const int fd = ::open(options_.dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

ResultStore::CompactResult ResultStore::compact(
    const std::vector<std::uint64_t>& live_keys) {
  flush();
  MutexLock lock(mutex_);
  // flush() drained the buffer and nothing can start a new group commit
  // while we hold the mutex, so the index and the files agree.
  BFDN_CHECK(pending_order_.empty() && !flush_in_flight_,
             "compact: flush left pending records");

  CompactResult result;
  result.segments_before = static_cast<std::int64_t>(segments_.size());
  for (const Segment& segment : segments_) {
    result.bytes_before += static_cast<std::int64_t>(segment.size);
  }

  const std::unordered_set<std::uint64_t> live(live_keys.begin(),
                                               live_keys.end());

  // Walk the old segments in file order (deterministic output) and
  // collect the latest copy of every live record into new segment
  // buffers.
  std::vector<std::string> new_buffers;
  std::int64_t kept = 0;
  std::int64_t dropped = 0;
  for (std::size_t seg = 0; seg < segments_.size(); ++seg) {
    const Segment& segment = segments_[seg];
    std::string file_bytes(segment.size, '\0');
    if (segment.size > 0 &&
        !pread_all(segment.fd, file_bytes.data(), segment.size, 0)) {
      fail_errno("pread", segment.path);
    }
    std::size_t offset = store::kSegmentHeaderBytes;
    while (offset < file_bytes.size()) {
      store::DecodedRecord record;
      const store::RecordStatus status = store::decode_record(
          file_bytes.data(), file_bytes.size(), offset, &record);
      if (status == store::RecordStatus::kTorn) break;
      if (status == store::RecordStatus::kOk) {
        const auto it = index_.find(record.fingerprint);
        const bool latest = it != index_.end() &&
                            it->second.segment == seg &&
                            it->second.offset == offset;
        if (latest && live.count(record.fingerprint) != 0) {
          if (new_buffers.empty() ||
              store::kSegmentHeaderBytes + new_buffers.back().size() +
                      record.frame_bytes >
                  options_.segment_bytes) {
            new_buffers.emplace_back();
          }
          store::encode_record(
              record.fingerprint,
              std::string_view(record.payload, record.payload_len),
              &new_buffers.back());
          ++kept;
        } else if (latest) {
          ++dropped;
        }
      }
      offset += record.frame_bytes;
    }
  }

  // Write the new generation under higher sequence numbers, then delete
  // the old one. A crash in between leaves both generations on disk;
  // last-wins recovery reads the new records and the next compaction
  // reclaims the space — never a lost live record.
  std::vector<Segment> new_segments;
  std::unordered_map<std::uint64_t, Location> new_index;
  for (std::string& buffer : new_buffers) {
    const std::string path =
        (fs::path(options_.dir) /
         store::segment_file_name(next_sequence_++))
            .string();
    Segment segment = open_segment(path, /*create=*/true);
    pwrite_all(segment.fd, buffer.data(), buffer.size(),
               store::kSegmentHeaderBytes, path);
    segment.size = store::kSegmentHeaderBytes + buffer.size();
    if (options_.sync_on_flush) ::fdatasync(segment.fd);
    void* map = ::mmap(nullptr, segment.size, PROT_READ, MAP_SHARED,
                       segment.fd, 0);
    if (map == MAP_FAILED) fail_errno("mmap", path);
    segment.map = static_cast<const char*>(map);
    segment.map_bytes = segment.size;

    // Re-scan the freshly written buffer to rebuild index locations.
    const auto segment_index =
        static_cast<std::uint32_t>(new_segments.size());
    std::size_t offset = store::kSegmentHeaderBytes;
    while (offset < segment.size) {
      store::DecodedRecord record;
      BFDN_CHECK(store::decode_record(segment.map, segment.size, offset,
                                      &record) == store::RecordStatus::kOk,
                 "compact: rewritten record failed validation");
      Location location;
      location.segment = segment_index;
      location.payload_len = record.payload_len;
      location.offset = offset;
      new_index[record.fingerprint] = location;
      offset += record.frame_bytes;
    }
    new_segments.push_back(segment);
  }

  for (Segment& segment : segments_) {
    const std::string path = segment.path;
    close_segment(&segment);
    ::unlink(path.c_str());
  }
  segments_ = std::move(new_segments);
  index_ = std::move(new_index);
  if (options_.sync_on_flush) sync_directory();

  ++stats_.compactions;
  stats_.compaction_dropped += dropped;
  stats_.segments = static_cast<std::int64_t>(segments_.size());
  stats_.records = static_cast<std::int64_t>(index_.size());
  stats_.file_bytes = 0;
  for (const Segment& segment : segments_) {
    stats_.file_bytes += static_cast<std::int64_t>(segment.size);
  }

  result.segments_after = stats_.segments;
  result.bytes_after = stats_.file_bytes;
  result.kept = kept;
  result.dropped = dropped;
  return result;
}

std::string ResultStore::export_live(std::int64_t* records) {
  flush();
  MutexLock lock(mutex_);
  // Fingerprint order: the exported image is deterministic for a given
  // live set regardless of arrival order, so tests can pin its bytes.
  std::vector<std::uint64_t> keys;
  keys.reserve(index_.size());
  for (const auto& [key, location] : index_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());

  std::string image(store::kSegmentMagic, store::kSegmentHeaderBytes);
  std::int64_t exported = 0;
  for (const std::uint64_t key : keys) {
    const auto it = index_.find(key);
    const auto payload = read_record(it->second);
    if (!payload.has_value()) {
      // Checksum failed at read time — never ship bytes we would not
      // serve ourselves.
      ++stats_.corrupted_skipped;
      continue;
    }
    store::encode_record(key, *payload, &image);
    ++exported;
  }
  ++stats_.exports;
  stats_.exported_records += exported;
  if (records != nullptr) *records = exported;
  return image;
}

ResultStore::ImportResult ResultStore::install_segment(
    std::string_view image) {
  BFDN_REQUIRE(image.size() >= store::kSegmentHeaderBytes &&
                   std::memcmp(image.data(), store::kSegmentMagic,
                               store::kSegmentHeaderBytes) == 0,
               "store: shipped segment has wrong magic");

  MutexLock lock(mutex_);
  ImportResult result;

  // Write the image verbatim as the next segment file before indexing
  // anything, so every record we admit is already durable and the file
  // replays identically on the next boot's recovery scan.
  const std::string path =
      (fs::path(options_.dir) / store::segment_file_name(next_sequence_++))
          .string();
  Segment segment = open_segment(path, /*create=*/true);
  pwrite_all(segment.fd, image.data() + store::kSegmentHeaderBytes,
             image.size() - store::kSegmentHeaderBytes,
             store::kSegmentHeaderBytes, path);
  segment.size = image.size();
  if (options_.sync_on_flush) {
    ::fdatasync(segment.fd);
  }

  void* map = ::mmap(nullptr, segment.size, PROT_READ, MAP_SHARED,
                     segment.fd, 0);
  if (map == MAP_FAILED) fail_errno("mmap", path);
  segment.map = static_cast<const char*>(map);
  segment.map_bytes = segment.size;

  // The same scan recovery runs at boot: checksums re-verified from the
  // mapped file, corrupt frames skipped and counted, a torn tail
  // truncated away.
  const auto segment_index = static_cast<std::uint32_t>(segments_.size());
  std::size_t offset = store::kSegmentHeaderBytes;
  while (offset < segment.size) {
    store::DecodedRecord record;
    const store::RecordStatus status =
        store::decode_record(segment.map, segment.size, offset, &record);
    if (status == store::RecordStatus::kTorn) {
      result.torn_truncated = 1;
      ++stats_.import_torn;
      ::munmap(const_cast<char*>(segment.map), segment.map_bytes);
      if (::ftruncate(segment.fd, static_cast<off_t>(offset)) != 0) {
        fail_errno("ftruncate", path);
      }
      segment.size = offset;
      segment.map_bytes = offset;
      void* remap = ::mmap(nullptr, segment.size, PROT_READ, MAP_SHARED,
                           segment.fd, 0);
      if (remap == MAP_FAILED) fail_errno("mmap", path);
      segment.map = static_cast<const char*>(remap);
      break;
    }
    if (status == store::RecordStatus::kOk) {
      ++result.records;
      if (index_.count(record.fingerprint) != 0 ||
          pending_.count(record.fingerprint) != 0) {
        // Deterministic results: the resident copy is byte-identical,
        // keep it and leave this frame as dead weight for compaction.
        ++result.duplicates;
        ++stats_.import_duplicates;
      } else {
        Location location;
        location.segment = segment_index;
        location.payload_len = record.payload_len;
        location.offset = offset;
        index_[record.fingerprint] = location;
        ++result.imported;
        ++stats_.imported_records;
      }
    } else {
      ++result.corrupted_skipped;
      ++stats_.import_corrupted;
      ++stats_.corrupted_skipped;
    }
    offset += record.frame_bytes;
  }
  segments_.push_back(segment);
  if (options_.sync_on_flush) sync_directory();

  ++stats_.imports;
  stats_.segments = static_cast<std::int64_t>(segments_.size());
  stats_.records = static_cast<std::int64_t>(index_.size());
  stats_.file_bytes = 0;
  for (const Segment& s : segments_) {
    stats_.file_bytes += static_cast<std::int64_t>(s.size);
  }
  result.bytes = static_cast<std::int64_t>(segment.size);
  return result;
}

StoreStats ResultStore::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace bfdn
