// Durable, content-addressed result store: the persistence tier under
// the service's in-memory ResultCache (src/service/cache.h).
//
// The store is a directory of append-only segment files (framing in
// store/segment.h) plus an in-memory fingerprint → file-offset index.
// Writes are write-behind: put() enqueues into a group-commit buffer
// and returns immediately; a flusher thread appends the batch with one
// write() + one fdatasync() when the buffer crosses a size threshold
// or an age deadline — persistence never blocks the request path.
// Unflushed entries are still readable (get() consults the pending
// buffer first), so the store's visible contents never lag its API.
//
// On boot the store mmaps every segment, validates each record's
// checksum, truncates a torn tail (the half-appended bytes a kill -9
// leaves behind), skips checksum-corrupted records with a counted
// stat, and rebuilds the index — the first post-restart request for a
// previously served fingerprint returns the byte-identical payload the
// original miss produced. A record that fails validation is never
// served: the caller misses, recomputes, and put() overwrites it.
//
// compact() rewrites the caller's live fingerprints into fresh
// segments and deletes the old files, dropping cold records (the
// service passes its LRU residents). New segments take higher sequence
// numbers, so a crash mid-compaction at worst leaves duplicates that
// last-wins recovery resolves — never data loss beyond the dropped
// cold set.
//
// Segment files are position-independent and self-checking, which
// makes them the planned cross-node cache-fill format for the sharded
// fleet (ROADMAP): shipping a segment and replaying it through
// recovery is a bulk warm-start.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "support/thread_annotations.h"

namespace bfdn {

struct StoreOptions {
  /// Directory of segment files; created (one level) if absent.
  std::string dir;
  /// Rotate to a new segment once the active file reaches this size.
  std::size_t segment_bytes = 64ull << 20;
  /// Group-commit size trigger: flush once this many buffered bytes.
  std::size_t flush_bytes = 256u << 10;
  /// Group-commit age trigger, milliseconds.
  std::int32_t flush_interval_ms = 25;
  /// fdatasync() each flushed batch (off only in throwaway benches).
  bool sync_on_flush = true;
};

struct StoreStats {
  // Current contents.
  std::int64_t segments = 0;
  std::int64_t file_bytes = 0;
  std::int64_t records = 0;          // indexed (servable) records
  std::int64_t pending_records = 0;  // buffered, not yet flushed
  // Boot recovery.
  std::int64_t recovered_records = 0;
  std::int64_t torn_tail_truncations = 0;
  std::int64_t corrupted_skipped = 0;
  // Write-behind.
  std::int64_t appended_records = 0;
  std::int64_t appended_bytes = 0;
  std::int64_t flushes = 0;
  std::int64_t syncs = 0;
  // Reads.
  std::int64_t lookups = 0;
  std::int64_t hits = 0;
  std::int64_t bulk_lookups = 0;     // get_many() calls (one index pass)
  std::int64_t bulk_key_hits = 0;    // keys they filled
  // Compaction.
  std::int64_t compactions = 0;
  std::int64_t compaction_dropped = 0;
  // Cross-node segment shipping (export_live / install_segment).
  std::int64_t exports = 0;
  std::int64_t exported_records = 0;
  std::int64_t imports = 0;
  std::int64_t imported_records = 0;
  std::int64_t import_duplicates = 0;
  std::int64_t import_corrupted = 0;
  std::int64_t import_torn = 0;
};

class ResultStore {
 public:
  /// Opens (or creates) the store and runs recovery. Throws CheckError
  /// when the directory cannot be created or a segment cannot be read.
  explicit ResultStore(StoreOptions options);
  /// Flushes the pending buffer and stops the flusher thread.
  ~ResultStore();

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// Returns the stored payload, or std::nullopt. Every byte served
  /// from disk is checksum-verified again at read time.
  std::optional<std::string> get(std::uint64_t key) BFDN_EXCLUDES(mutex_);

  /// Batch lookup in one index pass: out[i] is filled for every key
  /// found. The campaign cache-fill path — a cold campaign loads all
  /// member fingerprints here instead of N single gets.
  void get_many(const std::vector<std::uint64_t>& keys,
                std::vector<std::optional<std::string>>* out)
      BFDN_EXCLUDES(mutex_);

  /// Write-behind append: enqueues and returns. A key already stored
  /// or already pending is dropped (results are deterministic, the
  /// bytes would be identical).
  void put(std::uint64_t key, std::string_view payload)
      BFDN_EXCLUDES(mutex_);

  /// Blocks until everything enqueued before the call is durable.
  void flush() BFDN_EXCLUDES(mutex_);

  struct CompactResult {
    std::int64_t segments_before = 0;
    std::int64_t segments_after = 0;
    std::int64_t bytes_before = 0;
    std::int64_t bytes_after = 0;
    std::int64_t kept = 0;
    std::int64_t dropped = 0;
  };
  /// Rewrites the records whose fingerprint is in `live_keys` into
  /// fresh segments and deletes the old files. Blocks reads and writes
  /// for the duration (admin operation).
  CompactResult compact(const std::vector<std::uint64_t>& live_keys)
      BFDN_EXCLUDES(mutex_);

  /// Serializes every indexed record into one self-contained segment
  /// image (magic header + checksummed frames, fingerprint order — the
  /// same framing a segment file carries on disk), flushing the pending
  /// buffer first. The cross-node bulk cache-fill payload: the receiver
  /// replays it through install_segment's recovery scan. `records`
  /// (optional) receives the number of frames in the image.
  std::string export_live(std::int64_t* records = nullptr)
      BFDN_EXCLUDES(mutex_);

  struct ImportResult {
    std::int64_t records = 0;    // valid frames scanned
    std::int64_t imported = 0;   // new fingerprints added to the index
    std::int64_t duplicates = 0; // fingerprints already present (kept)
    std::int64_t corrupted_skipped = 0;
    std::int64_t torn_truncated = 0;  // 1 when a torn tail was cut
    std::int64_t bytes = 0;      // installed file size
  };
  /// Installs a shipped segment image as a real segment file (next
  /// sequence number) and replays it through the same mmap scan boot
  /// recovery uses: every checksum re-verified, corrupt records skipped
  /// and counted, a torn tail truncated. Existing fingerprints keep
  /// their current record (results are deterministic — the bytes would
  /// be identical). Throws CheckError when the image's magic is wrong.
  ImportResult install_segment(std::string_view image)
      BFDN_EXCLUDES(mutex_);

  StoreStats stats() const BFDN_EXCLUDES(mutex_);
  const std::string& dir() const { return options_.dir; }

 private:
  struct Segment {
    std::string path;
    int fd = -1;
    /// Read-only mapping of the recovered (boot-time) prefix; bytes
    /// appended this process are read with pread instead.
    const char* map = nullptr;
    std::size_t map_bytes = 0;
    std::size_t size = 0;  // current file length
  };
  struct Location {
    std::uint32_t segment = 0;
    std::uint32_t payload_len = 0;
    std::uint64_t offset = 0;
  };

  void recover_locked() BFDN_REQUIRES(mutex_);
  Segment open_segment(const std::string& path, bool create);
  void close_segment(Segment* segment);
  std::size_t active_segment_locked() BFDN_REQUIRES(mutex_);
  std::optional<std::string> read_record(const Location& location)
      BFDN_REQUIRES(mutex_);
  std::optional<std::string> lookup_locked(std::uint64_t key)
      BFDN_REQUIRES(mutex_);
  void flusher_loop() BFDN_EXCLUDES(mutex_);
  /// One group-commit cycle; called with `lock` held, releases the
  /// native handle around the file IO (invisible to the static
  /// analysis, which is why the in-flight segments are fenced by
  /// flush_in_flight_ rather than the annotation). Returns re-held.
  void flush_batch(MutexLock& lock) BFDN_REQUIRES(mutex_);
  void sync_directory();

  StoreOptions options_;

  mutable Mutex mutex_;
  std::vector<Segment> segments_ BFDN_GUARDED_BY(mutex_);
  std::uint64_t next_sequence_ BFDN_GUARDED_BY(mutex_) = 1;
  std::unordered_map<std::uint64_t, Location> index_
      BFDN_GUARDED_BY(mutex_);
  std::deque<std::uint64_t> pending_order_ BFDN_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, std::string> pending_
      BFDN_GUARDED_BY(mutex_);
  std::size_t pending_bytes_ BFDN_GUARDED_BY(mutex_) = 0;
  bool flush_requested_ BFDN_GUARDED_BY(mutex_) = false;
  bool flush_in_flight_ BFDN_GUARDED_BY(mutex_) = false;
  bool stopping_ BFDN_GUARDED_BY(mutex_) = false;
  StoreStats stats_ BFDN_GUARDED_BY(mutex_);

  std::condition_variable flusher_cv_;  // wakes the flusher thread
  std::condition_variable flushed_cv_;  // wakes flush() waiters
  std::thread flusher_;
};

}  // namespace bfdn
