#include "store/segment.h"

#include <cstring>

#include "support/strings.h"

namespace bfdn {
namespace store {
namespace {

constexpr std::uint64_t kPrime1 = 11400714785074694791ULL;
constexpr std::uint64_t kPrime2 = 14029467366897019727ULL;
constexpr std::uint64_t kPrime3 = 1609587929392839161ULL;
constexpr std::uint64_t kPrime4 = 9650029242287828579ULL;
constexpr std::uint64_t kPrime5 = 2870177450012600261ULL;

std::uint64_t rotl64(std::uint64_t value, int bits) {
  return (value << bits) | (value >> (64 - bits));
}

std::uint64_t load_le64(const char* bytes) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(bytes[i]))
             << (8 * i);
  }
  return value;
}

std::uint32_t load_le32(const char* bytes) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(bytes[i]))
             << (8 * i);
  }
  return value;
}

void store_le64(std::uint64_t value, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void store_le32(std::uint32_t value, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

}  // namespace

std::uint64_t record_checksum(std::uint64_t fingerprint,
                              std::string_view payload) {
  // Seeding with the fingerprint binds payload bytes to their key: a
  // record transplanted under a different fingerprint fails validation.
  std::uint64_t h = fingerprint * kPrime5 + kPrime4 + payload.size();
  std::size_t i = 0;
  for (; i + 8 <= payload.size(); i += 8) {
    const std::uint64_t lane = load_le64(payload.data() + i);
    h ^= rotl64(lane * kPrime2, 31) * kPrime1;
    h = rotl64(h, 27) * kPrime1 + kPrime4;
  }
  for (; i < payload.size(); ++i) {
    h ^= static_cast<unsigned char>(payload[i]) * kPrime5;
    h = rotl64(h, 11) * kPrime1;
  }
  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

std::size_t record_frame_bytes(std::size_t payload_len) {
  const std::size_t raw = kRecordHeaderBytes + payload_len;
  return (raw + kRecordAlign - 1) / kRecordAlign * kRecordAlign;
}

void encode_record(std::uint64_t fingerprint, std::string_view payload,
                   std::string* out) {
  const std::size_t frame = record_frame_bytes(payload.size());
  out->reserve(out->size() + frame);
  store_le64(fingerprint, out);
  store_le32(static_cast<std::uint32_t>(payload.size()), out);
  store_le64(record_checksum(fingerprint, payload), out);
  out->append(payload);
  const std::size_t pad = frame - kRecordHeaderBytes - payload.size();
  out->append(pad, '\0');
}

RecordStatus decode_record(const char* data, std::size_t size,
                           std::size_t offset, DecodedRecord* out) {
  if (offset + kRecordHeaderBytes > size) return RecordStatus::kTorn;
  const std::uint64_t fingerprint = load_le64(data + offset);
  const std::uint32_t payload_len = load_le32(data + offset + 8);
  if (payload_len > kMaxPayloadBytes) return RecordStatus::kTorn;
  const std::size_t frame = record_frame_bytes(payload_len);
  if (offset + frame > size) return RecordStatus::kTorn;
  const std::uint64_t stored_checksum = load_le64(data + offset + 12);
  const char* payload = data + offset + kRecordHeaderBytes;
  out->fingerprint = fingerprint;
  out->payload = payload;
  out->payload_len = payload_len;
  out->frame_bytes = frame;
  if (record_checksum(fingerprint,
                      std::string_view(payload, payload_len)) !=
      stored_checksum) {
    return RecordStatus::kCorrupt;
  }
  return RecordStatus::kOk;
}

std::string segment_file_name(std::uint64_t sequence) {
  return str_format("seg-%06llu.bfdnseg",
                    static_cast<unsigned long long>(sequence));
}

std::uint64_t parse_segment_file_name(const std::string& name) {
  constexpr const char* kPrefix = "seg-";
  constexpr const char* kSuffix = ".bfdnseg";
  const std::size_t prefix_len = std::strlen(kPrefix);
  const std::size_t suffix_len = std::strlen(kSuffix);
  if (name.size() <= prefix_len + suffix_len) return 0;
  if (name.compare(0, prefix_len, kPrefix) != 0) return 0;
  if (name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
    return 0;
  }
  std::uint64_t sequence = 0;
  for (std::size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    sequence = sequence * 10 +
               static_cast<std::uint64_t>(name[i] - '0');
  }
  return sequence;
}

}  // namespace store
}  // namespace bfdn
