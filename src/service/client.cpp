#include "service/client.h"

#include <chrono>
#include <thread>

#include "support/check.h"

namespace bfdn {

ServiceClient::ServiceClient(std::uint16_t port,
                             std::int32_t recv_timeout_ms)
    : socket_(connect_local(port, recv_timeout_ms)) {}

JsonValue ServiceClient::call(const std::string& request_line) {
  BFDN_REQUIRE(socket_.send_all(request_line + "\n"),
               "service client: send failed");
  const auto line = socket_.recv_line();
  BFDN_REQUIRE(line.has_value(),
               "service client: connection closed before response");
  JsonValue response;
  std::string error;
  BFDN_REQUIRE(json_parse(*line, response, &error),
               "service client: bad response: " + error);
  return response;
}

JsonValue ServiceClient::run(const ServiceRequest& request,
                             std::int32_t max_attempts,
                             std::int64_t* retries_out) {
  const std::string line = serialize_request(request);
  for (std::int32_t attempt = 0; attempt < max_attempts; ++attempt) {
    JsonValue response = call(line);
    if (response.get_string("status", "") != "retry") return response;
    if (retries_out != nullptr) ++*retries_out;
    const std::int64_t back_off_ms =
        response.get_int("retry_after_ms", 20);
    std::this_thread::sleep_for(std::chrono::milliseconds(back_off_ms));
  }
  BFDN_REQUIRE(false, "service client: backpressure retries exhausted");
  return JsonValue{};
}

JsonValue ServiceClient::stats() {
  ServiceRequest request;
  request.type = RequestType::kStats;
  return call(serialize_request(request));
}

JsonValue ServiceClient::compact() {
  ServiceRequest request;
  request.type = RequestType::kCompact;
  return call(serialize_request(request));
}

}  // namespace bfdn
