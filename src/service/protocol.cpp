#include "service/protocol.h"

#include <algorithm>
#include <numeric>

#include "graph/generators.h"
#include "store/segment.h"
#include "support/check.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/strings.h"

namespace bfdn {
namespace {

constexpr const char* kFamilies[] = {
    "random", "path",  "star",     "binary",      "spider",
    "caterpillar", "comb", "broom", "cte-hard", "fixed-depth"};

bool known_family(const std::string& family) {
  for (const char* name : kFamilies) {
    if (family == name) return true;
  }
  return false;
}

const char* policy_name(ReanchorPolicy policy) {
  switch (policy) {
    case ReanchorPolicy::kLeastLoaded: return "least-loaded";
    case ReanchorPolicy::kRandom: return "random";
    case ReanchorPolicy::kFirstFit: return "first-fit";
    case ReanchorPolicy::kMostLoaded: return "most-loaded";
  }
  return "?";
}

bool parse_policy(const std::string& name, ReanchorPolicy& out) {
  if (name == "least-loaded") out = ReanchorPolicy::kLeastLoaded;
  else if (name == "random") out = ReanchorPolicy::kRandom;
  else if (name == "first-fit") out = ReanchorPolicy::kFirstFit;
  else if (name == "most-loaded") out = ReanchorPolicy::kMostLoaded;
  else return false;
  return true;
}

const char* schedule_name(ScheduleKind kind) {
  switch (kind) {
    case ScheduleKind::kNone: return "none";
    case ScheduleKind::kFull: return "full";
    case ScheduleKind::kRoundRobin: return "round-robin";
    case ScheduleKind::kRandom: return "random";
    case ScheduleKind::kBurst: return "burst";
    case ScheduleKind::kRollingOutage: return "rolling-outage";
  }
  return "?";
}

bool parse_schedule_kind(const std::string& name, ScheduleKind& out) {
  if (name == "none") out = ScheduleKind::kNone;
  else if (name == "full") out = ScheduleKind::kFull;
  else if (name == "round-robin") out = ScheduleKind::kRoundRobin;
  else if (name == "random") out = ScheduleKind::kRandom;
  else if (name == "burst") out = ScheduleKind::kBurst;
  else if (name == "rolling-outage") out = ScheduleKind::kRollingOutage;
  else return false;
  return true;
}

const char* async_name(AsyncKind kind) {
  switch (kind) {
    case AsyncKind::kNone: return "none";
    case AsyncKind::kRoundRobin: return "round-robin";
    case AsyncKind::kFixedRate: return "fixed-rate";
    case AsyncKind::kLaggard: return "laggard";
    case AsyncKind::kRandom: return "random";
  }
  return "?";
}

bool parse_async_kind(const std::string& name, AsyncKind& out) {
  if (name == "none") out = AsyncKind::kNone;
  else if (name == "round-robin") out = AsyncKind::kRoundRobin;
  else if (name == "fixed-rate") out = AsyncKind::kFixedRate;
  else if (name == "laggard") out = AsyncKind::kLaggard;
  else if (name == "random") out = AsyncKind::kRandom;
  else return false;
  return true;
}

}  // namespace

Tree TreeRecipe::build() const {
  return make_family_tree(family, nodes, depth, arms, seed);
}

std::string TreeRecipe::label() const {
  return str_format("%s(nodes=%lld,depth=%d,arms=%d,seed=%llu)",
                    family.c_str(), static_cast<long long>(nodes), depth,
                    arms, static_cast<unsigned long long>(seed));
}

std::string algo_wire_name(const AlgoSpec& algo) {
  switch (algo.kind) {
    case AlgoKind::kBfdn:
      return algo.options.shortcut_reanchor ? "bfdn-shortcut" : "bfdn";
    case AlgoKind::kBfdnEll: return "bfdn-ell";
    case AlgoKind::kBfsLevels: return "bfs-levels";
    case AlgoKind::kCte: return "cte";
    default: break;
  }
  BFDN_REQUIRE(false, "algo_wire_name: kind not servable");
  return "";
}

bool parse_request(const std::string& line, ServiceRequest& out,
                   std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };

  JsonValue doc;
  std::string json_error;
  if (!json_parse(line, doc, &json_error)) return fail(json_error);
  if (!doc.is_object()) return fail("request must be a JSON object");

  out = ServiceRequest{};
  out.id = doc.get_string("id", "");

  const std::string type = doc.get_string("type", "run");
  if (type == "stats") {
    out.type = RequestType::kStats;
    return true;
  }
  if (type == "compact") {
    out.type = RequestType::kCompact;
    return true;
  }
  if (type == "peer_stats") {
    out.type = RequestType::kPeerStats;
    return true;
  }
  if (type == "ship_segment") {
    out.type = RequestType::kShipSegment;
    try {
      out.ship_port =
          static_cast<std::int32_t>(doc.get_int("port", 0));
      out.ship_peer =
          static_cast<std::int32_t>(doc.get_int("peer", -1));
      // Router form: "from" names the shipping peer, "to" the receiver.
      out.ship_from =
          static_cast<std::int32_t>(doc.get_int("from", -1));
      if (doc.has("to")) {
        out.ship_peer = static_cast<std::int32_t>(doc.get_int("to", -1));
      }
    } catch (const CheckError& e) {
      return fail(e.what());
    }
    if (out.ship_port < 0 || out.ship_port > 65535) {
      return fail("ship_segment port out of range");
    }
    if (out.ship_port == 0 && out.ship_peer < 0) {
      return fail("ship_segment needs a target: port, peer, or to");
    }
    return true;
  }
  if (type == "segment_fill") {
    out.type = RequestType::kSegmentFill;
    try {
      out.fill_bytes = doc.get_int("bytes", 0);
    } catch (const CheckError& e) {
      return fail(e.what());
    }
    if (out.fill_bytes < static_cast<std::int64_t>(
                             store::kSegmentHeaderBytes) ||
        out.fill_bytes >
            static_cast<std::int64_t>(store::kMaxPayloadBytes)) {
      return fail("segment_fill bytes out of range");
    }
    return true;
  }
  if (type == "run") {
    out.type = RequestType::kRun;
  } else if (type == "campaign") {
    out.type = RequestType::kCampaign;
  } else if (type == "shard") {
    out.type = RequestType::kShard;
  } else {
    return fail("unknown request type: " + type);
  }

  try {
    out.recipe.family = doc.get_string("family", out.recipe.family);
    if (!known_family(out.recipe.family)) {
      return fail("unknown family: " + out.recipe.family);
    }
    out.recipe.nodes = doc.get_int("nodes", out.recipe.nodes);
    out.recipe.depth =
        static_cast<std::int32_t>(doc.get_int("depth", out.recipe.depth));
    out.recipe.arms =
        static_cast<std::int32_t>(doc.get_int("arms", out.recipe.arms));
    out.recipe.seed = doc.get_uint("seed", out.recipe.seed);
    if (out.recipe.nodes < 1) return fail("nodes must be >= 1");
    if (out.recipe.depth < 0) return fail("depth must be >= 0");
    if (out.recipe.arms < 1) return fail("arms must be >= 1");

    const std::string algo = doc.get_string("algo", "bfdn");
    if (algo == "bfdn" || algo == "bfdn-shortcut") {
      out.algo.kind = AlgoKind::kBfdn;
      out.algo.options.shortcut_reanchor = algo == "bfdn-shortcut";
      if (!parse_policy(doc.get_string("policy", "least-loaded"),
                        out.algo.options.policy)) {
        return fail("unknown policy: " + doc.get_string("policy", ""));
      }
      out.algo.options.seed =
          doc.get_uint("algo_seed", out.algo.options.seed);
      out.algo.options.depth_cap = static_cast<std::int32_t>(
          doc.get_int("depth_cap", out.algo.options.depth_cap));
    } else if (algo == "bfdn-ell" || algo == "ell2" || algo == "ell3") {
      out.algo.kind = AlgoKind::kBfdnEll;
      out.algo.ell = algo == "ell2"   ? 2
                     : algo == "ell3" ? 3
                                      : static_cast<std::int32_t>(
                                            doc.get_int("ell", 2));
      if (out.algo.ell < 1 || out.algo.ell > 8) {
        return fail("ell must be in [1, 8]");
      }
    } else if (algo == "cte") {
      out.algo.kind = AlgoKind::kCte;
    } else if (algo == "bfs-levels") {
      out.algo.kind = AlgoKind::kBfsLevels;
    } else {
      return fail("unknown or non-servable algo: " + algo);
    }
    out.algo.k = static_cast<std::int32_t>(doc.get_int("k", 1));
    if (out.algo.k < 1 || out.algo.k > 65536) {
      return fail("k must be in [1, 65536]");
    }

    if (!parse_schedule_kind(doc.get_string("schedule", "none"),
                             out.schedule.kind)) {
      return fail("unknown schedule: " + doc.get_string("schedule", ""));
    }
    if (out.schedule.kind != ScheduleKind::kNone) {
      out.schedule.horizon = doc.get_int("horizon", 0);
      if (out.schedule.horizon < 1) {
        return fail("schedule needs horizon >= 1");
      }
      out.schedule.p = doc.get_double("p", out.schedule.p);
      out.schedule.seed =
          doc.get_uint("schedule_seed", out.schedule.seed);
      out.schedule.period = doc.get_int("period", out.schedule.period);
      if (out.schedule.period < 1) return fail("period must be >= 1");
    }

    if (!parse_async_kind(doc.get_string("async", "none"),
                          out.async.kind)) {
      return fail("unknown async scheduler: " + doc.get_string("async", ""));
    }
    if (out.async.kind != AsyncKind::kNone) {
      if (out.schedule.kind != ScheduleKind::kNone) {
        return fail("async is mutually exclusive with schedule");
      }
      out.async.seed = doc.get_uint("async_seed", out.async.seed);
      out.async.max_delay = doc.get_int("async_delay", out.async.max_delay);
      if (out.async.max_delay < 0) return fail("async_delay must be >= 0");
      out.async.period = doc.get_int("async_period", out.async.period);
      if (out.async.period < 1) return fail("async_period must be >= 1");
      out.async.num_slow = static_cast<std::int32_t>(
          doc.get_int("async_slow", out.async.num_slow));
      if (out.async.num_slow < 1) return fail("async_slow must be >= 1");
    }

    out.max_rounds = doc.get_int("max_rounds", 0);
    out.fast_forward = doc.get_bool("fast_forward", true);
    out.check_invariants = doc.get_bool("check_invariants", false);

    if (out.type == RequestType::kCampaign) {
      if (doc.has("ks")) {
        const JsonValue& ks = doc.at("ks");
        if (!ks.is_array()) return fail("ks must be an array");
        for (std::size_t i = 0; i < ks.size(); ++i) {
          const std::int64_t k = ks.at(i).as_int();
          if (k < 1 || k > 65536) return fail("k must be in [1, 65536]");
          out.campaign_ks.push_back(static_cast<std::int32_t>(k));
        }
      }
      if (doc.has("algo_seeds")) {
        const JsonValue& seeds = doc.at("algo_seeds");
        if (!seeds.is_array()) return fail("algo_seeds must be an array");
        for (std::size_t i = 0; i < seeds.size(); ++i) {
          out.campaign_seeds.push_back(seeds.at(i).as_uint());
        }
      }
      const std::size_t members =
          std::max<std::size_t>(1, out.campaign_ks.size()) *
          std::max<std::size_t>(1, out.campaign_seeds.size());
      if (members > kMaxCampaignMembers) {
        return fail(str_format("campaign expands to %zu members (max %zu)",
                               members, kMaxCampaignMembers));
      }
    }
  } catch (const CheckError& e) {
    return fail(e.what());  // wrong-typed field accessors throw
  }
  return true;
}

std::string serialize_request(const ServiceRequest& request) {
  JsonWriter w;
  w.begin_object();
  if (!request.id.empty()) w.kv("id", request.id);
  if (request.type == RequestType::kStats ||
      request.type == RequestType::kCompact ||
      request.type == RequestType::kPeerStats) {
    w.kv("type", request.type == RequestType::kStats     ? "stats"
                 : request.type == RequestType::kCompact ? "compact"
                                                         : "peer_stats");
    w.end_object();
    return w.str();
  }
  if (request.type == RequestType::kShipSegment) {
    w.kv("type", "ship_segment");
    if (request.ship_port != 0) w.kv("port", request.ship_port);
    if (request.ship_from >= 0) {
      w.kv("from", request.ship_from);
      if (request.ship_peer >= 0) w.kv("to", request.ship_peer);
    } else if (request.ship_peer >= 0) {
      w.kv("peer", request.ship_peer);
    }
    w.end_object();
    return w.str();
  }
  if (request.type == RequestType::kSegmentFill) {
    w.kv("type", "segment_fill");
    w.kv("bytes", request.fill_bytes);
    w.end_object();
    return w.str();
  }
  w.kv("type", request.type == RequestType::kCampaign ? "campaign"
               : request.type == RequestType::kShard  ? "shard"
                                                      : "run");
  w.kv("family", request.recipe.family);
  w.kv("nodes", request.recipe.nodes);
  w.kv("depth", request.recipe.depth);
  w.kv("arms", request.recipe.arms);
  w.kv("seed", request.recipe.seed);
  w.kv("algo", algo_wire_name(request.algo));
  w.kv("k", request.algo.k);
  if (request.algo.kind == AlgoKind::kBfdn) {
    w.kv("policy", policy_name(request.algo.options.policy));
    w.kv("algo_seed", request.algo.options.seed);
    w.kv("depth_cap", request.algo.options.depth_cap);
  } else if (request.algo.kind == AlgoKind::kBfdnEll) {
    w.kv("ell", request.algo.ell);
  }
  w.kv("schedule", schedule_name(request.schedule.kind));
  if (request.schedule.kind != ScheduleKind::kNone) {
    w.kv("horizon", request.schedule.horizon);
    w.kv("p", request.schedule.p);
    w.kv("schedule_seed", request.schedule.seed);
    w.kv("period", request.schedule.period);
  }
  if (request.async.kind != AsyncKind::kNone) {
    w.kv("async", async_name(request.async.kind));
    w.kv("async_seed", request.async.seed);
    w.kv("async_delay", request.async.max_delay);
    w.kv("async_period", request.async.period);
    w.kv("async_slow", request.async.num_slow);
  }
  if (request.max_rounds != 0) w.kv("max_rounds", request.max_rounds);
  if (!request.fast_forward) w.kv("fast_forward", false);
  if (request.check_invariants) w.kv("check_invariants", true);
  if (request.type == RequestType::kCampaign) {
    if (!request.campaign_ks.empty()) {
      w.key("ks").begin_array();
      for (const std::int32_t k : request.campaign_ks) w.value(k);
      w.end_array();
    }
    if (!request.campaign_seeds.empty()) {
      w.key("algo_seeds").begin_array();
      for (const std::uint64_t seed : request.campaign_seeds) {
        w.value(seed);
      }
      w.end_array();
    }
  }
  w.end_object();
  return w.str();
}

std::vector<ServiceRequest> expand_campaign(const ServiceRequest& request) {
  BFDN_REQUIRE(request.type == RequestType::kCampaign,
               "expand_campaign: campaign requests only");
  const std::vector<std::int32_t> ks =
      request.campaign_ks.empty() ? std::vector<std::int32_t>{request.algo.k}
                                  : request.campaign_ks;
  const std::vector<std::uint64_t> seeds =
      request.campaign_seeds.empty()
          ? std::vector<std::uint64_t>{request.algo.options.seed}
          : request.campaign_seeds;
  BFDN_REQUIRE(ks.size() * seeds.size() <= kMaxCampaignMembers,
               "campaign expands past kMaxCampaignMembers");
  std::vector<ServiceRequest> members;
  members.reserve(ks.size() * seeds.size());
  for (const std::int32_t k : ks) {
    for (const std::uint64_t seed : seeds) {
      ServiceRequest member = request;
      member.type = RequestType::kRun;
      member.campaign_ks.clear();
      member.campaign_seeds.clear();
      member.algo.k = k;
      member.algo.options.seed = seed;
      members.push_back(std::move(member));
    }
  }
  return members;
}

bool batchable_request(const ServiceRequest& request) {
  return request.type == RequestType::kRun &&
         request.schedule.kind == ScheduleKind::kNone &&
         request.async.kind == AsyncKind::kNone;
}

std::string batch_coalesce_key(const ServiceRequest& request) {
  // The algorithm seed is only ever consumed by BfdnAlgorithm under the
  // random reanchor policy (spec.cpp passes it to no other kind); every
  // other servable run is seed-blind, so a seed sweep over one of them
  // describes a single run. The key's promise is differential-tested by
  // OracleCheck::kBatchEquivalence.
  if (request.algo.kind == AlgoKind::kBfdn &&
      request.algo.options.policy == ReanchorPolicy::kRandom) {
    return "";
  }
  ServiceRequest blind = request;
  blind.algo.options.seed = 0;
  return "batch:" + canonical_request(blind);
}

std::string canonical_request(const ServiceRequest& request) {
  // kShard carries the same fields as kRun and asks "where would this
  // run live?", so it canonicalizes — and therefore fingerprints —
  // exactly like the run it describes.
  BFDN_REQUIRE(request.type == RequestType::kRun ||
                   request.type == RequestType::kShard,
               "canonical_request: run/shard requests only");
  // The request id is transport-level and deliberately excluded; two
  // clients asking for the same run share one cache entry. AlgoSpec /
  // ScheduleSpec render through the same label()s the verification
  // harness writes into trace files.
  return str_format(
      "recipe=%s algo=%s policy=%s algo_seed=%llu depth_cap=%d "
      "sched=%s async=%s max_rounds=%lld ff=%d check=%d",
      request.recipe.label().c_str(), request.algo.label().c_str(),
      policy_name(request.algo.options.policy),
      static_cast<unsigned long long>(request.algo.options.seed),
      request.algo.options.depth_cap, request.schedule.label().c_str(),
      request.async.label().c_str(),
      static_cast<long long>(request.max_rounds),
      request.fast_forward ? 1 : 0, request.check_invariants ? 1 : 0);
}

std::uint64_t request_fingerprint(const ServiceRequest& request) {
  const std::string canonical = canonical_request(request);
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis
  for (const char c : canonical) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  // splitmix64 finalizer: FNV alone mixes low bits poorly.
  return splitmix64(h);
}

std::string execute_run(const ServiceRequest& request, const Tree& tree) {
  const std::unique_ptr<Algorithm> algorithm =
      make_algorithm(request.algo, tree);
  RunConfig config;
  config.num_robots = request.algo.k;
  config.max_rounds = request.max_rounds;
  config.check_invariants = request.check_invariants;
  config.fast_forward = request.fast_forward;
  const std::unique_ptr<FiniteSchedule> schedule =
      request.schedule.make(request.algo.k);
  config.schedule = schedule.get();
  const std::unique_ptr<AsyncScheduler> async =
      request.async.make(request.algo.k);
  config.async = async.get();
  // Slow async schedulers stretch the makespan by their worst-case
  // activation gap; scale the default round budget accordingly (same
  // rule as verify/trace.cpp) so unconfigured requests still finish.
  if (config.max_rounds == 0 && request.async.slowdown() > 1) {
    config.max_rounds = default_round_limit(tree) * request.async.slowdown();
  }
  const RunResult result = run_exploration(tree, *algorithm, config);
  return serialize_run_result(request, tree, result);
}

std::string serialize_run_result(const ServiceRequest& request,
                                 const Tree& tree, const RunResult& result) {
  const std::int64_t total_moves =
      std::accumulate(result.robot_moves.begin(), result.robot_moves.end(),
                      std::int64_t{0});
  JsonWriter w;
  w.begin_object();
  w.kv("algo", request.algo.label());
  w.kv("n", tree.num_nodes());
  w.kv("tree_depth", tree.depth());
  w.kv("max_degree", tree.max_degree());
  w.kv("rounds", result.rounds);
  w.kv("complete", result.complete);
  w.kv("all_at_root", result.all_at_root);
  w.kv("hit_round_limit", result.hit_round_limit);
  w.kv("edge_events", result.edge_events);
  w.kv("rounds_with_idle", result.rounds_with_idle);
  w.kv("idle_robot_rounds", result.idle_robot_rounds);
  w.kv("total_moves", total_moves);
  w.kv("total_activations", result.total_activations);
  w.kv("total_reanchors", result.total_reanchors);
  w.kv("total_reanchor_switches", result.total_reanchor_switches);
  w.kv("final_state_hash",
       str_format("%016llx",
                  static_cast<unsigned long long>(result.final_state_hash)));
  w.end_object();
  return w.str();
}

std::string ok_response(const std::string& id, bool cached,
                        std::uint64_t key, const std::string& result_json) {
  JsonWriter w;
  w.begin_object();
  w.kv("id", id);
  w.kv("status", "ok");
  w.kv("cached", cached);
  w.kv("key", str_format("%016llx", static_cast<unsigned long long>(key)));
  w.key("result").raw(result_json);
  w.end_object();
  return w.str();
}

std::string retry_response(const std::string& id,
                           std::int32_t retry_after_ms,
                           std::int64_t queue_depth) {
  JsonWriter w;
  w.begin_object();
  w.kv("id", id);
  w.kv("status", "retry");
  w.kv("retry_after_ms", retry_after_ms);
  w.kv("queue_depth", queue_depth);
  w.end_object();
  return w.str();
}

std::string error_response(const std::string& id,
                           const std::string& message) {
  JsonWriter w;
  w.begin_object();
  w.kv("id", id);
  w.kv("status", "error");
  w.kv("error", message);
  w.end_object();
  return w.str();
}

std::string campaign_response(
    const std::string& id,
    const std::vector<CampaignMemberResponse>& members) {
  JsonWriter w;
  w.begin_object();
  w.kv("id", id);
  w.kv("status", "ok");
  w.kv("members_total", static_cast<std::int64_t>(members.size()));
  w.key("members").begin_array();
  for (const CampaignMemberResponse& member : members) {
    w.begin_object();
    w.kv("cached", member.cached);
    w.kv("key", str_format("%016llx",
                           static_cast<unsigned long long>(member.key)));
    w.key("result").raw(member.result_json);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string stats_response(const std::string& id,
                           const std::string& stats_json) {
  JsonWriter w;
  w.begin_object();
  w.kv("id", id);
  w.kv("status", "ok");
  w.key("stats").raw(stats_json);
  w.end_object();
  return w.str();
}

std::string compact_response(const std::string& id,
                             const CompactSummary& summary) {
  JsonWriter w;
  w.begin_object();
  w.kv("id", id);
  w.kv("status", "ok");
  w.key("compact").begin_object();
  w.kv("segments_before", summary.segments_before);
  w.kv("segments_after", summary.segments_after);
  w.kv("bytes_before", summary.bytes_before);
  w.kv("bytes_after", summary.bytes_after);
  w.kv("kept", summary.kept);
  w.kv("dropped", summary.dropped);
  w.end_object();
  w.end_object();
  return w.str();
}

std::string shard_response(const std::string& id, std::uint64_t key,
                           const std::vector<std::int32_t>& owners) {
  JsonWriter w;
  w.begin_object();
  w.kv("id", id);
  w.kv("status", "ok");
  w.kv("key", str_format("%016llx", static_cast<unsigned long long>(key)));
  w.key("owners").begin_array();
  for (const std::int32_t owner : owners) w.value(owner);
  w.end_array();
  w.end_object();
  return w.str();
}

namespace {

void write_fill_block(JsonWriter& w, const FillSummary& fill) {
  w.begin_object();
  w.kv("records", fill.records);
  w.kv("imported", fill.imported);
  w.kv("duplicates", fill.duplicates);
  w.kv("corrupted_skipped", fill.corrupted_skipped);
  w.kv("torn_truncated", fill.torn_truncated);
  w.kv("bytes", fill.bytes);
  w.end_object();
}

}  // namespace

std::string fill_response(const std::string& id, const FillSummary& fill) {
  JsonWriter w;
  w.begin_object();
  w.kv("id", id);
  w.kv("status", "ok");
  w.key("fill");
  write_fill_block(w, fill);
  w.end_object();
  return w.str();
}

bool parse_fill_response(const std::string& line, FillSummary* out,
                         std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  JsonValue doc;
  std::string json_error;
  if (!json_parse(line, doc, &json_error)) return fail(json_error);
  if (!doc.is_object()) return fail("fill response must be an object");
  try {
    const std::string status = doc.get_string("status", "");
    if (status != "ok") {
      return fail("peer fill failed: " +
                  doc.get_string("error", "status " + status));
    }
    if (!doc.has("fill")) return fail("fill response missing fill block");
    const JsonValue& fill = doc.at("fill");
    out->records = fill.get_int("records", 0);
    out->imported = fill.get_int("imported", 0);
    out->duplicates = fill.get_int("duplicates", 0);
    out->corrupted_skipped = fill.get_int("corrupted_skipped", 0);
    out->torn_truncated = fill.get_int("torn_truncated", 0);
    out->bytes = fill.get_int("bytes", 0);
  } catch (const CheckError& e) {
    return fail(e.what());
  }
  return true;
}

std::string ship_response(const std::string& id, const ShipSummary& ship) {
  JsonWriter w;
  w.begin_object();
  w.kv("id", id);
  w.kv("status", "ok");
  w.key("ship").begin_object();
  w.kv("records", ship.records);
  w.kv("bytes", ship.bytes);
  w.key("fill");
  write_fill_block(w, ship.peer);
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace bfdn
