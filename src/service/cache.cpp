#include "service/cache.h"

namespace bfdn {

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {}

std::optional<std::string> ResultCache::get(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void ResultCache::put(std::uint64_t key, std::string result_json) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Deterministic runs: the stored value equals the new one. Two
    // concurrent misses on the same key both land here; keep the first.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(result_json));
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.entries = lru_.size();
  stats.capacity = capacity_;
  return stats;
}

}  // namespace bfdn
