#include "service/cache.h"

#include <algorithm>

#include "store/result_store.h"

namespace bfdn {

ResultCache::ResultCache(std::size_t capacity, ResultStore* store)
    : capacity_(capacity), store_(store) {}

std::optional<std::string> ResultCache::get(std::uint64_t key) {
  {
    MutexLock lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->second;
    }
  }
  // Memory miss: read through to the store with the cache unlocked so a
  // disk read never stalls concurrent memory hits.
  if (store_ != nullptr) {
    std::optional<std::string> payload = store_->get(key);
    if (payload.has_value()) {
      MutexLock lock(mutex_);
      ++hits_;
      ++store_hits_;
      insert_locked(key, *payload);
      return payload;
    }
  }
  MutexLock lock(mutex_);
  ++misses_;
  return std::nullopt;
}

void ResultCache::get_many(const std::vector<std::uint64_t>& keys,
                           std::vector<std::optional<std::string>>* out) {
  out->assign(keys.size(), std::nullopt);
  std::vector<std::size_t> missing_pos;
  std::vector<std::uint64_t> missing_keys;
  {
    MutexLock lock(mutex_);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const auto it = index_.find(keys[i]);
      if (it != index_.end()) {
        ++hits_;
        lru_.splice(lru_.begin(), lru_, it->second);
        (*out)[i] = it->second->second;
      } else {
        missing_pos.push_back(i);
        missing_keys.push_back(keys[i]);
      }
    }
  }
  if (missing_keys.empty()) return;
  if (store_ == nullptr) {
    MutexLock lock(mutex_);
    misses_ += static_cast<std::int64_t>(missing_keys.size());
    return;
  }
  std::vector<std::optional<std::string>> from_store;
  store_->get_many(missing_keys, &from_store);
  MutexLock lock(mutex_);
  for (std::size_t j = 0; j < missing_keys.size(); ++j) {
    if (from_store[j].has_value()) {
      ++hits_;
      ++store_hits_;
      insert_locked(missing_keys[j], *from_store[j]);
      (*out)[missing_pos[j]] = std::move(from_store[j]);
    } else {
      ++misses_;
    }
  }
}

void ResultCache::put(std::uint64_t key, std::string result_json) {
  if (store_ != nullptr) store_->put(key, result_json);
  if (capacity_ == 0) return;
  MutexLock lock(mutex_);
  insert_locked(key, std::move(result_json));
}

void ResultCache::insert_locked(std::uint64_t key,
                                std::string result_json) {
  if (capacity_ == 0) return;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Deterministic runs: the stored value equals the new one. Two
    // concurrent misses on the same key both land here; keep the first.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(result_json));
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

std::vector<std::uint64_t> ResultCache::lru_keys() const {
  MutexLock lock(mutex_);
  std::vector<std::uint64_t> keys;
  keys.reserve(lru_.size());
  for (const auto& [key, value] : lru_) keys.push_back(key);
  return keys;
}

std::vector<std::pair<std::uint64_t, std::string>>
ResultCache::export_entries() const {
  MutexLock lock(mutex_);
  std::vector<std::pair<std::uint64_t, std::string>> entries;
  entries.reserve(lru_.size());
  for (const auto& [key, value] : lru_) entries.emplace_back(key, value);
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return entries;
}

ResultCache::Stats ResultCache::stats() const {
  MutexLock lock(mutex_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.store_hits = store_hits_;
  stats.evictions = evictions_;
  stats.entries = lru_.size();
  stats.capacity = capacity_;
  return stats;
}

}  // namespace bfdn
