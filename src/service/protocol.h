// Wire protocol of the exploration service: one JSON document per
// '\n'-terminated line, both directions (see docs/SERVICE.md for the
// grammar).
//
// A run request names everything needed to reproduce the run outside
// the service: a tree recipe in the CLI family vocabulary
// (graph/make_family_tree) and an algorithm/schedule spec reusing the
// verification harness's serializable AlgoSpec / ScheduleSpec
// (verify/spec.h). The canonicalized request — a normalized key=value
// rendering of every semantically relevant field — is hashed
// (FNV-1a + splitmix64 finalizer) into the content address under which
// the result cache stores the serialized result object, so two
// requests that mean the same run share one cache entry regardless of
// field order or formatting on the wire.
//
// A campaign request (type "campaign") bundles a cross product of run
// requests over one tree recipe — wire arrays "ks" (team sizes) and
// "algo_seeds" (algorithm seeds), k-major then seed — and is answered
// with one response carrying every member's result object. Members are
// first-class runs: each is cached under its own solo fingerprint, so
// a campaign miss warms the cache for later solo requests and vice
// versa, and the member bytes are identical either way.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/tree.h"
#include "sim/engine.h"
#include "verify/spec.h"

namespace bfdn {

/// Tree construction parameters, mirroring `bfdn generate` flag for
/// flag; build() goes through the same make_family_tree, so a served
/// run sees the bit-identical tree the CLI builds.
struct TreeRecipe {
  std::string family = "random";
  std::int64_t nodes = 500;
  std::int32_t depth = 12;
  std::int32_t arms = 8;
  std::uint64_t seed = 1;

  Tree build() const;
  /// Canonical "family(nodes=..,depth=..,arms=..,seed=..)" rendering.
  std::string label() const;
};

enum class RequestType : std::uint8_t {
  kRun,
  kStats,
  kCampaign,
  kCompact,
  /// Routing introspection (answered by bfdn_route): which peers own
  /// this run request's fingerprint. Carries the same fields as kRun.
  kShard,
  /// Fan-out stats (answered by bfdn_route): every peer's stats object.
  kPeerStats,
  /// Admin: ship this node's live result set to a peer as one segment
  /// image. Fields: "port" (direct target) or "peer" (index into the
  /// node's --peers list); via the router, "from"/"to" peer indices.
  kShipSegment,
  /// Transfer leg of kShipSegment: the JSON header names "bytes", and
  /// exactly that many raw segment-image bytes follow the newline on
  /// the same connection.
  kSegmentFill,
};

/// Hard bound on expanded campaign members per request.
constexpr std::size_t kMaxCampaignMembers = 64;

struct ServiceRequest {
  RequestType type = RequestType::kRun;
  /// Client-chosen correlation id, echoed verbatim in the response.
  std::string id;
  TreeRecipe recipe;
  /// Algorithm + k (+ options / ell). Engine-based kinds only.
  AlgoSpec algo;
  /// Break-down schedule; kind kNone = complete communication.
  ScheduleSpec schedule;
  /// Per-robot-clock scheduler; kind kNone = synchronous rounds.
  /// Mutually exclusive with a break-down schedule (the engine rejects
  /// the combination, so parse_request does too). Wire fields: "async"
  /// (kind name), "async_seed", "async_delay", "async_period",
  /// "async_slow".
  AsyncSpec async;
  std::int64_t max_rounds = 0;
  bool fast_forward = true;
  bool check_invariants = false;
  /// Campaign sweeps (kCampaign only): the request expands into the
  /// cross product of these team sizes and algorithm seeds, k-major
  /// then seed; an empty vector falls back to the singleton {algo.k}
  /// resp. {algo.options.seed}. Wire fields "ks" and "algo_seeds".
  std::vector<std::int32_t> campaign_ks;
  std::vector<std::uint64_t> campaign_seeds;
  /// kShipSegment: direct target port (wire "port", 0 = unset), target
  /// peer index (wire "peer", -1 = unset), and — router form — source
  /// peer index (wire "from"; the target then comes from "to" → peer).
  std::int32_t ship_port = 0;
  std::int32_t ship_peer = -1;
  std::int32_t ship_from = -1;
  /// kSegmentFill: size of the raw segment image that follows the
  /// header line (wire "bytes").
  std::int64_t fill_bytes = 0;
};

/// Parses one request line. Returns false and fills *error on
/// malformed JSON, unknown names, or out-of-range parameters.
bool parse_request(const std::string& line, ServiceRequest& out,
                   std::string* error);

/// Serializes a request to its wire line (no trailing newline).
/// parse_request(serialize_request(r)) reproduces r exactly.
std::string serialize_request(const ServiceRequest& request);

/// Normalized key=value rendering of every field that affects the
/// result; the cache key's preimage.
std::string canonical_request(const ServiceRequest& request);

/// Content address: FNV-1a over canonical_request, splitmix64-mixed.
std::uint64_t request_fingerprint(const ServiceRequest& request);

/// Runs the request's simulation on `tree` and serializes the RunResult
/// into the cacheable result object (compact JSON, deterministic field
/// order — cache hits return these bytes verbatim). Throws CheckError
/// on invalid parameter combinations.
std::string execute_run(const ServiceRequest& request, const Tree& tree);

/// Serializes an already-computed RunResult into the exact bytes
/// execute_run would emit for `request` — the bridge that lets the
/// batched campaign path produce byte-identical cache entries.
std::string serialize_run_result(const ServiceRequest& request,
                                 const Tree& tree, const RunResult& result);

/// Expands a campaign request into its member run requests (k-major,
/// then seed). Each member is a plain kRun whose fingerprint is the
/// same fingerprint a direct solo request for that run would get.
std::vector<ServiceRequest> expand_campaign(const ServiceRequest& request);

/// True when the run can join a sim/BatchExecutor pass: a synchronous
/// complete-communication run (no break-down schedule, no async
/// scheduler).
bool batchable_request(const ServiceRequest& request);

/// BatchExecutor coalesce key for the run: requests that provably
/// ignore their algorithm seed (every servable kind except BFDN under
/// the random reanchor policy) share a key with their seed zeroed, so
/// a seed sweep over them executes once. "" = never coalesce.
std::string batch_coalesce_key(const ServiceRequest& request);

// Response envelopes (no trailing newline).
std::string ok_response(const std::string& id, bool cached,
                        std::uint64_t key, const std::string& result_json);
std::string retry_response(const std::string& id,
                           std::int32_t retry_after_ms,
                           std::int64_t queue_depth);
std::string error_response(const std::string& id,
                           const std::string& message);
std::string stats_response(const std::string& id,
                           const std::string& stats_json);

/// Response to the `compact` admin request: the store rewrite summary
/// (fields mirror ResultStore::CompactResult).
struct CompactSummary {
  std::int64_t segments_before = 0;
  std::int64_t segments_after = 0;
  std::int64_t bytes_before = 0;
  std::int64_t bytes_after = 0;
  std::int64_t kept = 0;
  std::int64_t dropped = 0;
};
std::string compact_response(const std::string& id,
                             const CompactSummary& summary);

/// Response to the `shard` routing-introspection request: the request's
/// fingerprint and the peers that own it on the ring, primary first
/// (more than one entry when the key is replicated).
std::string shard_response(const std::string& id, std::uint64_t key,
                           const std::vector<std::int32_t>& owners);

/// The receiver's summary of one segment_fill transfer (fields mirror
/// ResultStore::ImportResult; a memory-only receiver fills the same
/// shape from its cache-side scan).
struct FillSummary {
  std::int64_t records = 0;
  std::int64_t imported = 0;
  std::int64_t duplicates = 0;
  std::int64_t corrupted_skipped = 0;
  std::int64_t torn_truncated = 0;
  std::int64_t bytes = 0;
};
std::string fill_response(const std::string& id, const FillSummary& fill);
/// Parses the "fill" block out of a fill_response line (the shipping
/// side reads its peer's ack with this). Returns false on a non-ok or
/// malformed line, filling *error.
bool parse_fill_response(const std::string& line, FillSummary* out,
                         std::string* error);

/// The shipping side's summary of a completed ship_segment: what it
/// exported plus the receiver's fill ack.
struct ShipSummary {
  std::int64_t records = 0;  // records in the exported image
  std::int64_t bytes = 0;    // image size shipped
  FillSummary peer;          // receiver's ack
};
std::string ship_response(const std::string& id, const ShipSummary& ship);

/// One member slot of a campaign response.
struct CampaignMemberResponse {
  bool cached = false;
  std::uint64_t key = 0;
  /// The member's solo result object, spliced verbatim.
  std::string result_json;
};
std::string campaign_response(
    const std::string& id,
    const std::vector<CampaignMemberResponse>& members);

/// Wire name of an engine-based AlgoSpec ("bfdn", "bfdn-shortcut",
/// "cte", "bfs-levels", "bfdn-ell").
std::string algo_wire_name(const AlgoSpec& algo);

}  // namespace bfdn
