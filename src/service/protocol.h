// Wire protocol of the exploration service: one JSON document per
// '\n'-terminated line, both directions (see docs/SERVICE.md for the
// grammar).
//
// A run request names everything needed to reproduce the run outside
// the service: a tree recipe in the CLI family vocabulary
// (graph/make_family_tree) and an algorithm/schedule spec reusing the
// verification harness's serializable AlgoSpec / ScheduleSpec
// (verify/spec.h). The canonicalized request — a normalized key=value
// rendering of every semantically relevant field — is hashed
// (FNV-1a + splitmix64 finalizer) into the content address under which
// the result cache stores the serialized result object, so two
// requests that mean the same run share one cache entry regardless of
// field order or formatting on the wire.
#pragma once

#include <cstdint>
#include <string>

#include "graph/tree.h"
#include "sim/engine.h"
#include "verify/spec.h"

namespace bfdn {

/// Tree construction parameters, mirroring `bfdn generate` flag for
/// flag; build() goes through the same make_family_tree, so a served
/// run sees the bit-identical tree the CLI builds.
struct TreeRecipe {
  std::string family = "random";
  std::int64_t nodes = 500;
  std::int32_t depth = 12;
  std::int32_t arms = 8;
  std::uint64_t seed = 1;

  Tree build() const;
  /// Canonical "family(nodes=..,depth=..,arms=..,seed=..)" rendering.
  std::string label() const;
};

enum class RequestType : std::uint8_t { kRun, kStats };

struct ServiceRequest {
  RequestType type = RequestType::kRun;
  /// Client-chosen correlation id, echoed verbatim in the response.
  std::string id;
  TreeRecipe recipe;
  /// Algorithm + k (+ options / ell). Engine-based kinds only.
  AlgoSpec algo;
  /// Break-down schedule; kind kNone = complete communication.
  ScheduleSpec schedule;
  /// Per-robot-clock scheduler; kind kNone = synchronous rounds.
  /// Mutually exclusive with a break-down schedule (the engine rejects
  /// the combination, so parse_request does too). Wire fields: "async"
  /// (kind name), "async_seed", "async_delay", "async_period",
  /// "async_slow".
  AsyncSpec async;
  std::int64_t max_rounds = 0;
  bool fast_forward = true;
  bool check_invariants = false;
};

/// Parses one request line. Returns false and fills *error on
/// malformed JSON, unknown names, or out-of-range parameters.
bool parse_request(const std::string& line, ServiceRequest& out,
                   std::string* error);

/// Serializes a request to its wire line (no trailing newline).
/// parse_request(serialize_request(r)) reproduces r exactly.
std::string serialize_request(const ServiceRequest& request);

/// Normalized key=value rendering of every field that affects the
/// result; the cache key's preimage.
std::string canonical_request(const ServiceRequest& request);

/// Content address: FNV-1a over canonical_request, splitmix64-mixed.
std::uint64_t request_fingerprint(const ServiceRequest& request);

/// Runs the request's simulation on `tree` and serializes the RunResult
/// into the cacheable result object (compact JSON, deterministic field
/// order — cache hits return these bytes verbatim). Throws CheckError
/// on invalid parameter combinations.
std::string execute_run(const ServiceRequest& request, const Tree& tree);

// Response envelopes (no trailing newline).
std::string ok_response(const std::string& id, bool cached,
                        std::uint64_t key, const std::string& result_json);
std::string retry_response(const std::string& id,
                           std::int32_t retry_after_ms,
                           std::int64_t queue_depth);
std::string error_response(const std::string& id,
                           const std::string& message);
std::string stats_response(const std::string& id,
                           const std::string& stats_json);

/// Wire name of an engine-based AlgoSpec ("bfdn", "bfdn-shortcut",
/// "cte", "bfs-levels", "bfdn-ell").
std::string algo_wire_name(const AlgoSpec& algo);

}  // namespace bfdn
