// TCP front end of the exploration service: accepts loopback
// connections, speaks the line-delimited JSON protocol (protocol.h),
// consults the content-addressed result cache before scheduling, and
// drains gracefully — stop accepting, finish every admitted job, answer
// the in-flight responses, then release the connections.
//
// Embeddable: tests run servers in-process (start / drain / stats);
// tools/bfdn_serve wraps one instance and wires SIGTERM to drain().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/cache.h"
#include "service/scheduler.h"
#include "store/result_store.h"
#include "support/socket.h"
#include "support/thread_annotations.h"

namespace bfdn {

struct ServerOptions {
  /// 0 = ephemeral; ServiceServer::port() reports the bound port.
  std::uint16_t port = 0;
  std::int32_t threads = 0;  // scheduler workers; 0 = hardware
  std::int32_t queue_capacity = 64;
  std::size_t cache_capacity = 1024;
  /// Suggested client back-off in backpressure rejections.
  std::int32_t retry_after_ms = 20;
  /// Admission guard on request tree sizes.
  std::int64_t max_nodes = 1000000;
  /// Durable result store directory; empty = in-memory cache only.
  /// Non-empty runs boot recovery here and makes the cache a
  /// read-through/write-behind tier over the segment files.
  std::string store_dir;
  std::size_t store_segment_bytes = 64ull << 20;
  std::int32_t store_flush_ms = 25;
  /// fdatasync each group commit (tests/benches may turn it off).
  bool store_sync = true;
  /// Fleet identity: this node's index into `peers` (-1 = standalone)
  /// and the full fleet's loopback ports. Only consulted by the
  /// ship_segment admin path ("peer" targets) and the stats cluster
  /// block — shards hold no ring; routing lives in src/cluster.
  std::int32_t peer_id = -1;
  std::vector<std::uint16_t> peers;
};

class ServiceServer {
 public:
  explicit ServiceServer(ServerOptions options);
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Binds, listens and starts accepting. Throws CheckError when the
  /// port is taken.
  void start();
  std::uint16_t port() const { return listener_.port(); }

  /// Graceful drain: stop accepting, reject new submissions, finish
  /// every admitted job (their responses are written), close
  /// connections. Idempotent; also run by the destructor.
  void drain() BFDN_EXCLUDES(drain_mutex_, connections_mutex_);

  /// The protocol's stats object (also the final flush bfdn_serve
  /// prints on drain).
  std::string stats_json() const;

  ResultCache::Stats cache_stats() const { return cache_.stats(); }
  Scheduler::Stats scheduler_stats() const { return scheduler_.stats(); }
  std::int64_t protocol_errors() const { return protocol_errors_; }
  /// Null when the server runs without a durable store.
  ResultStore* store() { return store_.get(); }

 private:
  struct Connection {
    Socket socket;
    std::thread thread;
    std::atomic<bool> finished{false};
  };

  void accept_loop() BFDN_EXCLUDES(connections_mutex_);
  void serve_connection(Connection* connection);
  /// `socket` lets kSegmentFill consume the raw image bytes that follow
  /// the header line on the same connection.
  std::string handle_line(const std::string& line, Socket& socket);
  std::string handle_run(const ServiceRequest& request);
  std::string handle_campaign(const ServiceRequest& request);
  std::string handle_compact(const ServiceRequest& request);
  std::string handle_ship(const ServiceRequest& request);
  std::string handle_fill(const ServiceRequest& request, Socket& socket);
  /// The live result set as one segment image: from the store when one
  /// is attached (covers memory-evicted keys), else from the cache.
  std::string export_image(std::int64_t* records);
  void reap_finished_locked() BFDN_REQUIRES(connections_mutex_);

  ServerOptions options_;
  // Declared before cache_: the cache holds a raw pointer into the
  // store, so the store must outlive it.
  std::unique_ptr<ResultStore> store_;
  ResultCache cache_;
  Scheduler scheduler_;
  ListenSocket listener_;

  std::thread accept_thread_;
  Mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_
      BFDN_GUARDED_BY(connections_mutex_);

  std::atomic<bool> draining_{false};
  // drain() is serialized by drain_mutex_; the flag never needs to be
  // read outside it, so it is a plain guarded bool rather than an
  // atomic. Acquisition order is drain_mutex_ -> connections_mutex_
  // (the lock-order analyzer tracks this edge).
  Mutex drain_mutex_;
  bool drained_ BFDN_GUARDED_BY(drain_mutex_) = false;

  std::chrono::steady_clock::time_point started_at_;
  std::atomic<std::int64_t> requests_total_{0};
  std::atomic<std::int64_t> responses_ok_{0};
  std::atomic<std::int64_t> responses_retry_{0};
  std::atomic<std::int64_t> responses_error_{0};
  std::atomic<std::int64_t> protocol_errors_{0};
  std::atomic<std::int64_t> ships_sent_{0};
  std::atomic<std::int64_t> ship_records_sent_{0};
  std::atomic<std::int64_t> fills_received_{0};
  std::atomic<std::int64_t> fill_records_imported_{0};
};

}  // namespace bfdn
