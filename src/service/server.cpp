#include "service/server.h"

#include <cstring>
#include <unordered_set>

#include "store/segment.h"
#include "support/check.h"
#include "support/json.h"
#include "support/strings.h"

namespace bfdn {

namespace {

std::unique_ptr<ResultStore> make_store(const ServerOptions& options) {
  if (options.store_dir.empty()) return nullptr;
  StoreOptions store_options;
  store_options.dir = options.store_dir;
  store_options.segment_bytes = options.store_segment_bytes;
  store_options.flush_interval_ms = options.store_flush_ms;
  store_options.sync_on_flush = options.store_sync;
  return std::make_unique<ResultStore>(store_options);
}

}  // namespace

ServiceServer::ServiceServer(ServerOptions options)
    : options_(options),
      store_(make_store(options)),
      cache_(options.cache_capacity, store_.get()),
      scheduler_({options.threads, options.queue_capacity}) {}

ServiceServer::~ServiceServer() { drain(); }

void ServiceServer::start() {
  BFDN_REQUIRE(!accept_thread_.joinable(), "server already started");
  listener_.listen(options_.port);
  started_at_ = std::chrono::steady_clock::now();
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ServiceServer::accept_loop() {
  while (!draining_) {
    auto socket = listener_.accept(/*timeout_ms=*/50);
    if (!socket.has_value()) continue;
    MutexLock lock(connections_mutex_);
    reap_finished_locked();
    auto connection = std::make_unique<Connection>();
    connection->socket = std::move(*socket);
    Connection* raw = connection.get();
    connection->thread =
        std::thread([this, raw] { serve_connection(raw); });
    connections_.push_back(std::move(connection));
  }
}

void ServiceServer::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->finished) {
      (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void ServiceServer::serve_connection(Connection* connection) {
  for (;;) {
    const auto line = connection->socket.recv_line();
    if (!line.has_value()) break;
    if (line->empty()) continue;
    ++requests_total_;
    const std::string response = handle_line(*line, connection->socket);
    if (!connection->socket.send_all(response + "\n")) break;
  }
  connection->finished = true;
}

std::string ServiceServer::handle_line(const std::string& line,
                                       Socket& socket) {
  ServiceRequest request;
  std::string error;
  if (!parse_request(line, request, &error)) {
    ++protocol_errors_;
    ++responses_error_;
    return error_response("", error);
  }
  if (request.type == RequestType::kStats) {
    return stats_response(request.id, stats_json());
  }
  if (request.type == RequestType::kCompact) {
    return handle_compact(request);
  }
  if (request.type == RequestType::kCampaign) {
    return handle_campaign(request);
  }
  if (request.type == RequestType::kShipSegment) {
    return handle_ship(request);
  }
  if (request.type == RequestType::kSegmentFill) {
    return handle_fill(request, socket);
  }
  if (request.type == RequestType::kShard ||
      request.type == RequestType::kPeerStats) {
    // The ring lives above the service layer (src/cluster); a shard
    // cannot answer routing questions without inverting that DAG.
    ++responses_error_;
    return error_response(request.id,
                          "shard/peer_stats are router requests "
                          "(ask bfdn_route)");
  }
  return handle_run(request);
}

std::string ServiceServer::handle_run(const ServiceRequest& request) {
  if (request.recipe.nodes > options_.max_nodes) {
    ++responses_error_;
    return error_response(
        request.id,
        str_format("nodes exceeds server limit %lld",
                   static_cast<long long>(options_.max_nodes)));
  }

  const std::uint64_t key = request_fingerprint(request);
  if (auto cached = cache_.get(key); cached.has_value()) {
    ++responses_ok_;
    return ok_response(request.id, /*cached=*/true, key, *cached);
  }

  std::shared_ptr<Scheduler::Job> job;
  switch (scheduler_.submit(request, &job)) {
    case Scheduler::Admit::kQueueFull:
      ++responses_retry_;
      return retry_response(request.id, options_.retry_after_ms,
                            scheduler_.queue_depth());
    case Scheduler::Admit::kDraining:
      ++responses_error_;
      return error_response(request.id, "server is draining");
    case Scheduler::Admit::kAdmitted:
      break;
  }

  const JobOutcome& outcome = job->wait();
  if (!outcome.ok) {
    ++responses_error_;
    return error_response(request.id, outcome.payload);
  }
  cache_.put(key, outcome.payload);
  ++responses_ok_;
  return ok_response(request.id, /*cached=*/false, key, outcome.payload);
}

std::string ServiceServer::handle_campaign(const ServiceRequest& request) {
  if (request.recipe.nodes > options_.max_nodes) {
    ++responses_error_;
    return error_response(
        request.id,
        str_format("nodes exceeds server limit %lld",
                   static_cast<long long>(options_.max_nodes)));
  }

  // Each member is cached under its own solo fingerprint: hits splice
  // the original solo bytes back verbatim, misses are admitted as one
  // atomic group (the scheduler then routes same-recipe members into a
  // BatchExecutor pass) and their results warm the per-member cache.
  // The lookup is one get_many call, so a cold campaign against a warm
  // store bulk-loads every member fingerprint in a single index pass
  // instead of N separate misses.
  const std::vector<ServiceRequest> members = expand_campaign(request);
  std::vector<CampaignMemberResponse> responses(members.size());
  std::vector<std::uint64_t> keys(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    keys[i] = request_fingerprint(members[i]);
    responses[i].key = keys[i];
  }
  std::vector<std::optional<std::string>> found;
  cache_.get_many(keys, &found);
  std::vector<std::size_t> miss_slots;
  std::vector<ServiceRequest> misses;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (found[i].has_value()) {
      responses[i].cached = true;
      responses[i].result_json = std::move(*found[i]);
    } else {
      miss_slots.push_back(i);
      misses.push_back(members[i]);
    }
  }

  if (!misses.empty()) {
    std::vector<std::shared_ptr<Scheduler::Job>> jobs;
    switch (scheduler_.submit_all(misses, &jobs)) {
      case Scheduler::Admit::kQueueFull:
        ++responses_retry_;
        return retry_response(request.id, options_.retry_after_ms,
                              scheduler_.queue_depth());
      case Scheduler::Admit::kDraining:
        ++responses_error_;
        return error_response(request.id, "server is draining");
      case Scheduler::Admit::kAdmitted:
        break;
    }
    // Wait for every member before reporting, so an early failure
    // cannot leave admitted siblings racing the response.
    std::string first_error;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const JobOutcome& outcome = jobs[j]->wait();
      if (!outcome.ok) {
        if (first_error.empty()) first_error = outcome.payload;
        continue;
      }
      const std::size_t slot = miss_slots[j];
      cache_.put(responses[slot].key, outcome.payload);
      responses[slot].result_json = outcome.payload;
    }
    if (!first_error.empty()) {
      ++responses_error_;
      return error_response(request.id, first_error);
    }
  }

  ++responses_ok_;
  return campaign_response(request.id, responses);
}

std::string ServiceServer::handle_compact(const ServiceRequest& request) {
  if (store_ == nullptr) {
    ++responses_error_;
    return error_response(request.id, "server has no durable store");
  }
  // The cache's LRU residents are the live set; everything evicted from
  // memory is cold and gets dropped from the rewritten segments.
  const ResultStore::CompactResult result =
      store_->compact(cache_.lru_keys());
  CompactSummary summary;
  summary.segments_before = result.segments_before;
  summary.segments_after = result.segments_after;
  summary.bytes_before = result.bytes_before;
  summary.bytes_after = result.bytes_after;
  summary.kept = result.kept;
  summary.dropped = result.dropped;
  ++responses_ok_;
  return compact_response(request.id, summary);
}

std::string ServiceServer::export_image(std::int64_t* records) {
  if (store_ != nullptr) return store_->export_live(records);
  // Memory-only server: encode the cache residents with the same
  // segment framing the store writes, so the receiving side replays one
  // uniform format.
  std::string image(store::kSegmentMagic, store::kSegmentHeaderBytes);
  std::int64_t count = 0;
  for (const auto& [key, payload] : cache_.export_entries()) {
    store::encode_record(key, payload, &image);
    ++count;
  }
  if (records != nullptr) *records = count;
  return image;
}

std::string ServiceServer::handle_ship(const ServiceRequest& request) {
  std::uint16_t port = 0;
  if (request.ship_port != 0) {
    port = static_cast<std::uint16_t>(request.ship_port);
  } else {
    const std::int32_t peer = request.ship_peer;
    if (peer < 0 ||
        peer >= static_cast<std::int32_t>(options_.peers.size())) {
      ++responses_error_;
      return error_response(
          request.id,
          str_format("ship_segment peer %d out of range (fleet of %zu)",
                     peer, options_.peers.size()));
    }
    if (peer == options_.peer_id) {
      ++responses_error_;
      return error_response(request.id,
                            "ship_segment target is this node");
    }
    port = options_.peers[static_cast<std::size_t>(peer)];
  }

  std::int64_t records = 0;
  std::string image;
  try {
    image = export_image(&records);
  } catch (const CheckError& e) {
    ++responses_error_;
    return error_response(request.id,
                          std::string("export failed: ") + e.what());
  }

  ShipSummary summary;
  summary.records = records;
  summary.bytes = static_cast<std::int64_t>(image.size());
  try {
    Socket peer = connect_local(port, /*recv_timeout_ms=*/30000);
    ServiceRequest header;
    header.type = RequestType::kSegmentFill;
    header.id = request.id;
    header.fill_bytes = static_cast<std::int64_t>(image.size());
    if (!peer.send_all(serialize_request(header) + "\n") ||
        !peer.send_all(image)) {
      ++responses_error_;
      return error_response(request.id, "peer connection lost mid-ship");
    }
    const auto ack = peer.recv_line();
    if (!ack.has_value()) {
      ++responses_error_;
      return error_response(request.id, "peer closed before fill ack");
    }
    std::string error;
    if (!parse_fill_response(*ack, &summary.peer, &error)) {
      ++responses_error_;
      return error_response(request.id, error);
    }
  } catch (const CheckError& e) {
    ++responses_error_;
    return error_response(request.id, e.what());
  }
  ++ships_sent_;
  ship_records_sent_ += records;
  ++responses_ok_;
  return ship_response(request.id, summary);
}

std::string ServiceServer::handle_fill(const ServiceRequest& request,
                                       Socket& socket) {
  const auto image =
      socket.recv_exact(static_cast<std::size_t>(request.fill_bytes));
  if (!image.has_value()) {
    ++responses_error_;
    return error_response(request.id, "connection lost mid-fill");
  }
  if (std::memcmp(image->data(), store::kSegmentMagic,
                  store::kSegmentHeaderBytes) != 0) {
    ++responses_error_;
    return error_response(request.id, "bad segment magic");
  }

  FillSummary fill;
  fill.bytes = static_cast<std::int64_t>(image->size());
  if (store_ != nullptr) {
    try {
      const ResultStore::ImportResult result =
          store_->install_segment(*image);
      fill.records = result.records;
      fill.imported = result.imported;
      fill.duplicates = result.duplicates;
      fill.corrupted_skipped = result.corrupted_skipped;
      fill.torn_truncated = result.torn_truncated;
    } catch (const CheckError& e) {
      ++responses_error_;
      return error_response(request.id,
                            std::string("install failed: ") + e.what());
    }
  } else {
    // Memory-only receiver: replay the image straight into the cache
    // with the same validation discipline as the store's recovery scan
    // (checksums re-verified, corrupt skipped and counted, torn tail
    // truncated).
    std::unordered_set<std::uint64_t> resident;
    for (const std::uint64_t key : cache_.lru_keys()) resident.insert(key);
    std::size_t offset = store::kSegmentHeaderBytes;
    while (offset < image->size()) {
      store::DecodedRecord record;
      const store::RecordStatus status =
          store::decode_record(image->data(), image->size(), offset,
                               &record);
      if (status == store::RecordStatus::kTorn) {
        ++fill.torn_truncated;
        break;
      }
      offset += record.frame_bytes;
      if (status == store::RecordStatus::kCorrupt) {
        ++fill.corrupted_skipped;
        continue;
      }
      ++fill.records;
      if (resident.count(record.fingerprint) > 0) {
        ++fill.duplicates;
        continue;
      }
      resident.insert(record.fingerprint);
      cache_.put(record.fingerprint,
                 std::string(record.payload, record.payload_len));
      ++fill.imported;
    }
  }
  ++fills_received_;
  fill_records_imported_ += fill.imported;
  ++responses_ok_;
  return fill_response(request.id, fill);
}

void ServiceServer::drain() {
  MutexLock drain_lock(drain_mutex_);
  if (drained_) return;
  draining_ = true;
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();

  // Every admitted job finishes; connection threads blocked in
  // Job::wait() get their outcome and write the response.
  scheduler_.drain();

  // Make everything the drained jobs produced durable before the final
  // stats flush, so a restart over the same store dir starts warm.
  if (store_ != nullptr) store_->flush();

  // Wake connection threads idling in recv_line and let them exit.
  {
    MutexLock lock(connections_mutex_);
    for (const auto& connection : connections_) {
      connection->socket.shutdown_read();
    }
    for (const auto& connection : connections_) {
      connection->thread.join();
    }
    connections_.clear();
  }
  drained_ = true;
}

std::string ServiceServer::stats_json() const {
  const auto cache = cache_.stats();
  const auto jobs = scheduler_.stats();
  const double uptime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_at_)
          .count();

  JsonWriter w;
  w.begin_object();
  w.kv("uptime_s", uptime_s, 3);
  w.key("queue").begin_object();
  w.kv("depth", scheduler_.queue_depth());
  w.kv("capacity", scheduler_.queue_capacity());
  w.kv("threads", scheduler_.num_threads());
  w.end_object();
  w.key("requests").begin_object();
  w.kv("total", requests_total_.load());
  w.kv("ok", responses_ok_.load());
  w.kv("retry", responses_retry_.load());
  w.kv("error", responses_error_.load());
  w.kv("protocol_errors", protocol_errors_.load());
  w.end_object();
  w.key("cache").begin_object();
  w.kv("hits", cache.hits);
  w.kv("misses", cache.misses);
  w.kv("store_hits", cache.store_hits);
  w.kv("evictions", cache.evictions);
  w.kv("entries", static_cast<std::int64_t>(cache.entries));
  w.kv("capacity", static_cast<std::int64_t>(cache.capacity));
  w.kv("hit_rate", cache.hit_rate(), 4);
  w.end_object();
  if (store_ != nullptr) {
    const StoreStats store = store_->stats();
    w.key("store").begin_object();
    w.kv("segments", store.segments);
    w.kv("file_bytes", store.file_bytes);
    w.kv("records", store.records);
    w.kv("pending_records", store.pending_records);
    w.kv("recovered_records", store.recovered_records);
    w.kv("torn_tail_truncations", store.torn_tail_truncations);
    w.kv("corrupted_skipped", store.corrupted_skipped);
    w.kv("appended_records", store.appended_records);
    w.kv("appended_bytes", store.appended_bytes);
    w.kv("flushes", store.flushes);
    w.kv("syncs", store.syncs);
    w.kv("bulk_lookups", store.bulk_lookups);
    w.kv("bulk_key_hits", store.bulk_key_hits);
    w.kv("compactions", store.compactions);
    w.kv("compaction_dropped", store.compaction_dropped);
    w.kv("exports", store.exports);
    w.kv("exported_records", store.exported_records);
    w.kv("imports", store.imports);
    w.kv("imported_records", store.imported_records);
    w.kv("import_duplicates", store.import_duplicates);
    w.kv("import_corrupted", store.import_corrupted);
    w.kv("import_torn", store.import_torn);
    w.end_object();
  }
  w.key("cluster").begin_object();
  w.kv("peer_id", options_.peer_id);
  w.key("peers").begin_array();
  for (const std::uint16_t peer : options_.peers) {
    w.value(static_cast<std::int64_t>(peer));
  }
  w.end_array();
  w.kv("ships_sent", ships_sent_.load());
  w.kv("ship_records_sent", ship_records_sent_.load());
  w.kv("fills_received", fills_received_.load());
  w.kv("fill_records_imported", fill_records_imported_.load());
  w.end_object();
  w.key("jobs").begin_object();
  w.kv("admitted", jobs.admitted);
  w.kv("completed", jobs.completed);
  w.kv("rejected_full", jobs.rejected_full);
  w.kv("rejected_draining", jobs.rejected_draining);
  w.kv("batched", jobs.batched_jobs);
  w.kv("trees_built", jobs.trees_built);
  w.kv("batch_groups", jobs.batch_groups);
  w.kv("batch_members", jobs.batch_members);
  w.kv("batch_coalesced", jobs.batch_coalesced);
  w.kv("per_sec", uptime_s > 0
                      ? static_cast<double>(jobs.completed) / uptime_s
                      : 0.0,
       2);
  w.end_object();
  w.key("latency_us").begin_object();
  w.kv("count", static_cast<std::int64_t>(jobs.latency_us.count()));
  if (jobs.latency_us.count() > 0) {
    w.kv("mean", jobs.latency_us.mean(), 1);
    w.kv("min", jobs.latency_us.min(), 1);
    w.kv("max", jobs.latency_us.max(), 1);
  }
  w.key("log2_hist").begin_object();
  for (const auto& [bucket, count] : jobs.latency_log2_us.buckets()) {
    w.kv(str_format("%lld", static_cast<long long>(bucket)), count);
  }
  w.end_object();
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace bfdn
