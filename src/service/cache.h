// Content-addressed result cache for the exploration service.
//
// Keys are request fingerprints (protocol.h: FNV/splitmix over the
// canonicalized request); values are the serialized result objects a
// miss produced. Because every run is deterministic, a hit can return
// the stored bytes verbatim — byte-identical to the response the
// original miss computed (pinned by tests/service_test.cpp). Eviction
// is strict LRU over both get-hits and puts.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace bfdn {

class ResultCache {
 public:
  /// capacity 0 disables caching (every get misses, puts are dropped).
  explicit ResultCache(std::size_t capacity);

  /// Returns the cached result and refreshes its recency, or
  /// std::nullopt. Counts a hit or a miss.
  std::optional<std::string> get(std::uint64_t key);

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// entries while over capacity. Re-putting an existing key keeps the
  /// first value: results are deterministic, so both are identical.
  void put(std::uint64_t key, std::string result_json);

  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t capacity = 0;
    double hit_rate() const {
      const std::int64_t lookups = hits + misses;
      return lookups > 0 ? static_cast<double>(hits) /
                               static_cast<double>(lookups)
                         : 0.0;
    }
  };
  Stats stats() const;

 private:
  using LruList = std::list<std::pair<std::uint64_t, std::string>>;

  mutable std::mutex mutex_;
  std::size_t capacity_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, LruList::iterator> index_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t evictions_ = 0;
};

}  // namespace bfdn
