// Content-addressed result cache for the exploration service.
//
// Keys are request fingerprints (protocol.h: FNV/splitmix over the
// canonicalized request); values are the serialized result objects a
// miss produced. Because every run is deterministic, a hit can return
// the stored bytes verbatim — byte-identical to the response the
// original miss computed (pinned by tests/service_test.cpp). Eviction
// is strict LRU over both get-hits and puts.
//
// With a ResultStore attached (src/store/result_store.h) the cache is
// the in-memory tier of a two-level hierarchy: get() reads through to
// the store on a memory miss (promoting the payload back into the LRU),
// and put() writes behind to the store's group-commit buffer. Eviction
// only forgets the memory copy — an evicted key served later comes back
// from disk as a store hit, and a server restart rebuilds the whole
// warm set from the segment files.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/thread_annotations.h"

namespace bfdn {

class ResultStore;

class ResultCache {
 public:
  /// capacity 0 disables the in-memory tier (gets fall through to the
  /// store when one is attached; puts still write behind to it).
  /// `store` may be null; the cache does not own it.
  explicit ResultCache(std::size_t capacity, ResultStore* store = nullptr);

  /// Returns the cached result and refreshes its recency, or
  /// std::nullopt. A memory miss reads through to the store; a store
  /// hit is promoted into the LRU (without re-writing the store) and
  /// counts as both a hit and a store_hit.
  std::optional<std::string> get(std::uint64_t key) BFDN_EXCLUDES(mutex_);

  /// Batch lookup: out[i] is filled for every key found in memory or
  /// the store. Store misses are resolved in ONE index pass
  /// (ResultStore::get_many) — the campaign cache-fill path.
  void get_many(const std::vector<std::uint64_t>& keys,
                std::vector<std::optional<std::string>>* out)
      BFDN_EXCLUDES(mutex_);

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// entries while over capacity. Re-putting an existing key keeps the
  /// first value: results are deterministic, so both are identical.
  /// Writes behind to the store (which dedups already-durable keys).
  void put(std::uint64_t key, std::string result_json)
      BFDN_EXCLUDES(mutex_);

  /// Snapshot of resident keys, most recently used first. The compact
  /// admin request passes this as the live set: records evicted from
  /// memory are the cold entries compaction drops.
  std::vector<std::uint64_t> lru_keys() const BFDN_EXCLUDES(mutex_);

  /// Snapshot of resident (key, payload) entries in fingerprint order,
  /// without touching recency or hit counters. The segment-shipping
  /// export path for a memory-only server (a store-backed server
  /// exports from the store instead, which also covers evicted keys).
  std::vector<std::pair<std::uint64_t, std::string>> export_entries() const
      BFDN_EXCLUDES(mutex_);

  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t store_hits = 0;  // subset of hits served from the store
    std::int64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t capacity = 0;
    double hit_rate() const {
      const std::int64_t lookups = hits + misses;
      return lookups > 0 ? static_cast<double>(hits) /
                               static_cast<double>(lookups)
                         : 0.0;
    }
  };
  Stats stats() const BFDN_EXCLUDES(mutex_);

 private:
  using LruList = std::list<std::pair<std::uint64_t, std::string>>;

  /// Inserts without store write-behind; caller holds mutex_.
  void insert_locked(std::uint64_t key, std::string result_json)
      BFDN_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::size_t capacity_;
  ResultStore* store_;  // not owned; null = memory-only cache
  /// front = most recently used
  LruList lru_ BFDN_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, LruList::iterator> index_
      BFDN_GUARDED_BY(mutex_);
  std::int64_t hits_ BFDN_GUARDED_BY(mutex_) = 0;
  std::int64_t misses_ BFDN_GUARDED_BY(mutex_) = 0;
  std::int64_t store_hits_ BFDN_GUARDED_BY(mutex_) = 0;
  std::int64_t evictions_ BFDN_GUARDED_BY(mutex_) = 0;
};

}  // namespace bfdn
