// Admission-controlled job scheduler for the exploration service.
//
// Jobs (parsed run requests) pass through a bounded admission window:
// submit() rejects once `queue_capacity` jobs are admitted but not yet
// completed, which is the backpressure signal the server turns into a
// retry-after response — admitted jobs are never dropped. A dispatcher
// thread pulls admitted jobs in arrival order, groups consecutive jobs
// with the same tree recipe (identical-shape batching: the tree is
// built once per group and shared read-only), and shards execution over
// a support/thread_pool. Within a group, the jobs that describe
// synchronous complete-communication runs (no break-down schedule, no
// async scheduler) execute through one sim/BatchExecutor pass —
// interleaved over the shared tree, seed-blind twins coalesced — while
// schedule/async jobs fan out to the pool solo. Determinism: each job
// builds its own algorithm and RNG state from its own spec, so
// grouping, pool scheduling and batch interleaving cannot change any
// job's result — a served run is bit-identical to the same run through
// bfdn_cli (tests/service_test.cpp pins this, and the batch pass is
// additionally pinned by OracleCheck::kBatchEquivalence).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.h"
#include "support/stats.h"
#include "support/thread_annotations.h"
#include "support/thread_pool.h"

namespace bfdn {

struct JobOutcome {
  bool ok = false;
  /// Result object JSON when ok; error message otherwise.
  std::string payload;
};

struct SchedulerOptions {
  /// Worker threads (0 = hardware concurrency).
  std::int32_t threads = 0;
  /// Bound on admitted-but-not-completed jobs.
  std::int32_t queue_capacity = 64;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions options);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// One admitted job; wait() blocks until a worker completed it.
  class Job {
   public:
    const JobOutcome& wait() BFDN_EXCLUDES(mutex_);

   private:
    friend class Scheduler;
    void complete(JobOutcome outcome) BFDN_EXCLUDES(mutex_);

    Mutex mutex_;
    std::condition_variable done_cv_;
    bool done_ BFDN_GUARDED_BY(mutex_) = false;
    /// Written once under mutex_ by complete(); wait() returns a
    /// reference to it after done_ flips, when it is immutable — not
    /// annotated because the returned reference outlives the lock.
    JobOutcome outcome_;
    ServiceRequest request_;
    std::chrono::steady_clock::time_point admitted_at_;
  };

  enum class Admit : std::uint8_t { kAdmitted, kQueueFull, kDraining };

  /// Admits `request` unless the window is full or a drain started.
  /// On kAdmitted, *out receives the job handle.
  Admit submit(const ServiceRequest& request, std::shared_ptr<Job>* out)
      BFDN_EXCLUDES(mutex_);

  /// Atomic multi-admit for campaign members: either every request is
  /// admitted under one window check (kAdmitted, *out holds the handles
  /// in request order) or none is — a half-admitted campaign would
  /// deadlock its client against its own backpressure.
  Admit submit_all(const std::vector<ServiceRequest>& requests,
                   std::vector<std::shared_ptr<Job>>* out)
      BFDN_EXCLUDES(mutex_);

  /// Stops admitting and blocks until every admitted job completed.
  /// Idempotent; the destructor drains too.
  void drain() BFDN_EXCLUDES(mutex_);

  /// Admitted-but-not-completed jobs right now.
  std::int64_t queue_depth() const BFDN_EXCLUDES(mutex_);
  std::int32_t queue_capacity() const { return options_.queue_capacity; }
  std::int32_t num_threads() const { return pool_.num_threads(); }

  struct Stats {
    std::int64_t admitted = 0;
    std::int64_t completed = 0;
    std::int64_t rejected_full = 0;
    std::int64_t rejected_draining = 0;
    /// Jobs that rode a shared tree build (group size > 1).
    std::int64_t batched_jobs = 0;
    std::int64_t trees_built = 0;
    /// Same-tree groups executed through one BatchExecutor pass.
    std::int64_t batch_groups = 0;
    /// Jobs inside those passes...
    std::int64_t batch_members = 0;
    /// ...of which this many were coalesced onto a seed-blind twin's
    /// run instead of executing.
    std::int64_t batch_coalesced = 0;
    /// Admission-to-completion latency, microseconds.
    RunningStat latency_us;
    /// log2(latency_us) buckets for a coarse percentile picture.
    Histogram latency_log2_us;
  };
  Stats stats() const BFDN_EXCLUDES(mutex_);

 private:
  void dispatcher_loop() BFDN_EXCLUDES(mutex_);
  void run_job(const std::shared_ptr<Job>& job,
               const std::shared_ptr<const Tree>& tree);
  void run_batch(const std::vector<std::shared_ptr<Job>>& jobs,
                 const std::shared_ptr<const Tree>& tree)
      BFDN_EXCLUDES(mutex_);
  void finish(const std::shared_ptr<Job>& job, JobOutcome outcome)
      BFDN_EXCLUDES(mutex_);

  SchedulerOptions options_;
  ThreadPool pool_;

  mutable Mutex mutex_;
  std::condition_variable pending_cv_;  // dispatcher wake-up
  std::condition_variable drained_cv_;  // drain() wake-up
  std::vector<std::shared_ptr<Job>> pending_ BFDN_GUARDED_BY(mutex_);
  std::int64_t depth_ BFDN_GUARDED_BY(mutex_) = 0;  // admitted - completed
  bool draining_ BFDN_GUARDED_BY(mutex_) = false;
  bool stopping_ BFDN_GUARDED_BY(mutex_) = false;
  Stats stats_ BFDN_GUARDED_BY(mutex_);

  std::thread dispatcher_;
};

}  // namespace bfdn
