#include "service/scheduler.h"

#include <algorithm>
#include <cmath>

#include "sim/batch_executor.h"
#include "support/check.h"

namespace bfdn {

const JobOutcome& Scheduler::Job::wait() {
  MutexLock lock(mutex_);
  done_cv_.wait(lock.native(), [this] {
    mutex_.assert_held();
    return done_;
  });
  return outcome_;
}

void Scheduler::Job::complete(JobOutcome outcome) {
  MutexLock lock(mutex_);
  BFDN_CHECK(!done_, "job completed twice");
  outcome_ = std::move(outcome);
  done_ = true;
  // Notify under the lock (the convention everywhere since the PR-5
  // finish() race): the waiter owns this Job only through shared_ptr,
  // but sibling waiters may drop theirs the moment wait() returns.
  done_cv_.notify_all();
}

Scheduler::Scheduler(SchedulerOptions options)
    : options_(options), pool_(options.threads) {
  BFDN_REQUIRE(options_.queue_capacity >= 1,
               "queue_capacity must be >= 1");
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

Scheduler::~Scheduler() {
  drain();
  {
    MutexLock lock(mutex_);
    stopping_ = true;
    pending_cv_.notify_all();
  }
  dispatcher_.join();
}

Scheduler::Admit Scheduler::submit(const ServiceRequest& request,
                                   std::shared_ptr<Job>* out) {
  BFDN_REQUIRE(request.type == RequestType::kRun,
               "submit: run requests only");
  auto job = std::make_shared<Job>();
  job->request_ = request;
  job->admitted_at_ = std::chrono::steady_clock::now();
  {
    MutexLock lock(mutex_);
    if (draining_) {
      ++stats_.rejected_draining;
      return Admit::kDraining;
    }
    if (depth_ >= options_.queue_capacity) {
      ++stats_.rejected_full;
      return Admit::kQueueFull;
    }
    ++depth_;
    ++stats_.admitted;
    pending_.push_back(job);
    pending_cv_.notify_one();
  }
  if (out != nullptr) *out = std::move(job);
  return Admit::kAdmitted;
}

Scheduler::Admit Scheduler::submit_all(
    const std::vector<ServiceRequest>& requests,
    std::vector<std::shared_ptr<Job>>* out) {
  BFDN_REQUIRE(!requests.empty(), "submit_all: empty request list");
  std::vector<std::shared_ptr<Job>> jobs;
  jobs.reserve(requests.size());
  const auto now = std::chrono::steady_clock::now();
  for (const ServiceRequest& request : requests) {
    BFDN_REQUIRE(request.type == RequestType::kRun,
                 "submit_all: run requests only");
    auto job = std::make_shared<Job>();
    job->request_ = request;
    job->admitted_at_ = now;
    jobs.push_back(std::move(job));
  }
  {
    MutexLock lock(mutex_);
    if (draining_) {
      stats_.rejected_draining += static_cast<std::int64_t>(jobs.size());
      return Admit::kDraining;
    }
    if (depth_ + static_cast<std::int64_t>(jobs.size()) >
        options_.queue_capacity) {
      stats_.rejected_full += static_cast<std::int64_t>(jobs.size());
      return Admit::kQueueFull;
    }
    depth_ += static_cast<std::int64_t>(jobs.size());
    stats_.admitted += static_cast<std::int64_t>(jobs.size());
    for (const auto& job : jobs) pending_.push_back(job);
    pending_cv_.notify_one();
  }
  if (out != nullptr) *out = std::move(jobs);
  return Admit::kAdmitted;
}

void Scheduler::drain() {
  MutexLock lock(mutex_);
  draining_ = true;
  pending_cv_.notify_all();
  drained_cv_.wait(lock.native(), [this] {
    mutex_.assert_held();
    return depth_ == 0;
  });
}

std::int64_t Scheduler::queue_depth() const {
  MutexLock lock(mutex_);
  return depth_;
}

Scheduler::Stats Scheduler::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void Scheduler::dispatcher_loop() {
  for (;;) {
    std::vector<std::shared_ptr<Job>> batch;
    {
      MutexLock lock(mutex_);
      pending_cv_.wait(lock.native(), [this] {
        mutex_.assert_held();
        return !pending_.empty() || stopping_;
      });
      if (pending_.empty() && stopping_) return;
      batch.swap(pending_);
    }

    // Identical-shape batching: consecutive-arrival jobs that name the
    // same tree recipe share one tree build. The first job of a group
    // runs in the group task itself; the rest fan back out to the pool
    // so same-shape jobs with different algorithms still run in
    // parallel.
    std::stable_sort(
        batch.begin(), batch.end(),
        [](const std::shared_ptr<Job>& a, const std::shared_ptr<Job>& b) {
          return a->request_.recipe.label() < b->request_.recipe.label();
        });
    std::size_t group_start = 0;
    while (group_start < batch.size()) {
      std::size_t group_end = group_start + 1;
      while (group_end < batch.size() &&
             batch[group_end]->request_.recipe.label() ==
                 batch[group_start]->request_.recipe.label()) {
        ++group_end;
      }
      std::vector<std::shared_ptr<Job>> group(
          batch.begin() + static_cast<std::ptrdiff_t>(group_start),
          batch.begin() + static_cast<std::ptrdiff_t>(group_end));
      {
        MutexLock lock(mutex_);
        ++stats_.trees_built;
        if (group.size() > 1) {
          stats_.batched_jobs += static_cast<std::int64_t>(group.size());
        }
      }
      pool_.submit([this, group = std::move(group)] {
        std::shared_ptr<const Tree> tree;
        try {
          tree = std::make_shared<const Tree>(
              group.front()->request_.recipe.build());
        } catch (const std::exception& e) {
          for (const auto& job : group) {
            finish(job, {false, std::string("tree build failed: ") +
                                    e.what()});
          }
          return;
        }
        // Route the group's synchronous complete-communication jobs
        // into one BatchExecutor pass; schedule/async jobs run solo.
        // A single batchable job gains nothing from the batch path, so
        // it stays on the solo one (identical results either way).
        std::vector<std::shared_ptr<Job>> batched;
        std::vector<std::shared_ptr<Job>> solo;
        for (const auto& job : group) {
          if (batchable_request(job->request_)) {
            batched.push_back(job);
          } else {
            solo.push_back(job);
          }
        }
        if (batched.size() < 2) {
          solo = group;
          batched.clear();
        }
        const std::size_t first_pooled = batched.empty() ? 1 : 0;
        for (std::size_t i = first_pooled; i < solo.size(); ++i) {
          pool_.submit([this, job = solo[i], tree] { run_job(job, tree); });
        }
        if (!batched.empty()) {
          run_batch(batched, tree);
        } else if (!solo.empty()) {
          run_job(solo.front(), tree);
        }
      });
      group_start = group_end;
    }
  }
}

void Scheduler::run_job(const std::shared_ptr<Job>& job,
                        const std::shared_ptr<const Tree>& tree) {
  JobOutcome outcome;
  try {
    outcome.payload = execute_run(job->request_, *tree);
    outcome.ok = true;
  } catch (const std::exception& e) {
    outcome.ok = false;
    outcome.payload = e.what();
  }
  finish(job, std::move(outcome));
}

void Scheduler::run_batch(const std::vector<std::shared_ptr<Job>>& jobs,
                          const std::shared_ptr<const Tree>& tree) {
  // Every payload is produced before any job is finished: if anything
  // in the batched pass throws (a member rejected by the executor, an
  // engine invariant), no job has been completed yet and the whole
  // group falls back to solo execution, which reports per-job errors.
  std::vector<std::string> payloads;
  std::int64_t coalesced = 0;
  try {
    BatchExecutor batch(*tree);
    for (const auto& job : jobs) {
      const ServiceRequest& request = job->request_;
      RunConfig config;
      config.num_robots = request.algo.k;
      config.max_rounds = request.max_rounds;
      config.check_invariants = request.check_invariants;
      config.fast_forward = request.fast_forward;
      batch.add_member(make_algorithm(request.algo, *tree), config,
                       batch_coalesce_key(request));
    }
    const std::vector<RunResult> results = batch.run();
    coalesced = batch.stats().coalesced;
    payloads.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      payloads.push_back(
          serialize_run_result(jobs[i]->request_, *tree, results[i]));
    }
  } catch (const std::exception&) {
    for (const auto& job : jobs) run_job(job, tree);
    return;
  }
  {
    MutexLock lock(mutex_);
    ++stats_.batch_groups;
    stats_.batch_members += static_cast<std::int64_t>(jobs.size());
    stats_.batch_coalesced += coalesced;
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    finish(jobs[i], {true, std::move(payloads[i])});
  }
}

void Scheduler::finish(const std::shared_ptr<Job>& job,
                       JobOutcome outcome) {
  const double latency_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - job->admitted_at_)
          .count();
  // Account before waking the job's waiter, so "wait() returned"
  // implies the job is visible in stats() and queue_depth().
  {
    MutexLock lock(mutex_);
    ++stats_.completed;
    stats_.latency_us.add(latency_us);
    stats_.latency_log2_us.add(static_cast<std::int64_t>(
        std::ceil(std::log2(std::max(1.0, latency_us)))));
    --depth_;
    // Notify while holding the mutex: drain() may wake for any reason,
    // see depth_ == 0 and let ~Scheduler destroy drained_cv_ — an
    // unlocked notify here could then touch a dead condition variable.
    // (The worker itself stays joinable past that point: pool_ is
    // declared first, so its destructor — which joins — runs last.)
    if (depth_ == 0) drained_cv_.notify_all();
  }
  job->complete(std::move(outcome));
}

}  // namespace bfdn
