// Client side of the exploration service protocol, shared by the
// bfdn_load generator and the in-process tests: one connection, one
// request line out, one response line back, parsed JSON in.
#pragma once

#include <cstdint>
#include <string>

#include "service/protocol.h"
#include "support/json.h"
#include "support/socket.h"

namespace bfdn {

class ServiceClient {
 public:
  /// Connects to 127.0.0.1:port; throws CheckError when nothing
  /// listens. The receive timeout guards against a hung server.
  explicit ServiceClient(std::uint16_t port,
                         std::int32_t recv_timeout_ms = 30000);

  /// Sends one raw line and parses the response line. Throws
  /// CheckError on transport failure or malformed response.
  JsonValue call(const std::string& request_line);

  /// Sends a run request, honoring backpressure: a "retry" response
  /// sleeps the suggested retry_after_ms and resends, up to
  /// max_attempts. retries_out (optional) accumulates how many retries
  /// happened. Returns the final non-retry response.
  JsonValue run(const ServiceRequest& request,
                std::int32_t max_attempts = 200,
                std::int64_t* retries_out = nullptr);

  /// Fetches the server's stats object.
  JsonValue stats();

  /// Issues the `compact` admin request (store segment rewrite).
  JsonValue compact();

 private:
  Socket socket_;
};

}  // namespace bfdn
