// BFDN on non-tree graphs (Section 4.3, Proposition 9).
//
// Setting: a connected graph with n edges, radius D (max distance from
// the origin) and maximum degree Delta; robots know at all times their
// distance to the origin (the paper's added assumption, satisfied e.g.
// by grid graphs where coordinates are visible).
//
// Variant rule: a robot traversing a dangling edge e backtracks and
// *closes* e (never to be used again) when either (1) e led to an
// already-explored node, or (2) e led to a node not strictly farther
// from the origin than e's first endpoint; in case (2) the reached node
// does not count as explored. The edges never closed form a BFS tree of
// the graph, which BFDN explores as usual; closed edges cost at most two
// traversals each.
//
// Same-round conflicts are resolved as in the paper: at most one robot
// reserves a given edge per round (two robots meeting head-on on one
// edge would simply swap identities, so nothing is lost), and when two
// robots reach an unexplored node through different edges in the same
// round, the first one (robot order) claims it and the other backtracks.
//
// Proposition 9: exploration completes within
// 2n/k + D^2 (min(log Delta, log k) + 3) rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "support/stats.h"

namespace bfdn {

struct GraphExplorationResult {
  std::int64_t rounds = 0;
  bool complete = false;       // every edge traversed at least once
  bool all_at_origin = false;  // robots back home
  bool hit_round_limit = false;
  std::int64_t tree_edges = 0;    // never-closed edges (BFS tree)
  std::int64_t closed_edges = 0;  // edges closed by the variant rule
  std::int64_t backtrack_moves = 0;
  Histogram reanchors_by_depth;
  std::int64_t total_reanchors = 0;
};

/// Proposition 9 right-hand side, with m the number of edges.
double proposition9_bound(std::int64_t num_edges, std::int32_t radius,
                          std::int32_t max_degree, std::int32_t k);

/// Runs the graph variant of BFDN with k robots on `graph`. If `trace`
/// is non-null it receives the robot positions after every round (one
/// inner vector per round, k entries each) — the record/replay hook
/// used by the verification harness (src/verify).
GraphExplorationResult run_graph_bfdn(
    const Graph& graph, std::int32_t k, std::int64_t max_rounds = 0,
    std::vector<std::vector<NodeId>>* trace = nullptr);

}  // namespace bfdn
