#include "graphexp/graph_bfdn.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace bfdn {
namespace {

class GraphBfdnSimulation {
 public:
  GraphBfdnSimulation(const Graph& graph, std::int32_t k,
                      std::int64_t max_rounds,
                      std::vector<std::vector<NodeId>>* trace)
      : graph_(graph), k_(k), max_rounds_(max_rounds), trace_(trace) {
    BFDN_REQUIRE(k >= 1, "need at least one robot");
    const auto n = static_cast<std::size_t>(graph.num_nodes());
    explored_.assign(n, 0);
    tree_parent_.assign(n, kInvalidNode);
    pending_.assign(n, {});
    edge_traversals_.assign(static_cast<std::size_t>(graph.num_edges()), 0);
    edge_closed_.assign(static_cast<std::size_t>(graph.num_edges()), 0);
    edge_is_tree_.assign(static_cast<std::size_t>(graph.num_edges()), 0);
    edge_reserved_.assign(static_cast<std::size_t>(graph.num_edges()), 0);

    // Open nodes in flat depth buckets (same layout as
    // ExplorationState): distance-indexed vectors with a per-node
    // position index and a cached min-open-depth cursor.
    open_buckets_.resize(static_cast<std::size_t>(graph.radius()) + 1);
    open_pos_.assign(n, -1);
    min_open_depth_ = static_cast<std::int32_t>(open_buckets_.size());

    explore_node(graph.origin(), kInvalidEdge);
    robots_.assign(static_cast<std::size_t>(k), Robot{});
    // Robot{} default-anchors at node 0; keep the load counters in sync
    // with that so reanchor stays O(candidates).
    anchor_load_.assign(n, 0);
    anchor_load_[0] = k;
  }

  GraphExplorationResult run() {
    GraphExplorationResult result;
    const std::int64_t limit =
        max_rounds_ > 0
            ? max_rounds_
            : 6 * static_cast<std::int64_t>(std::max(graph_.radius(), 1)) *
                      std::max<std::int64_t>(graph_.num_edges(), 1) +
                  8 * graph_.num_edges() + 8 * graph_.radius() + 64;

    for (;;) {
      if (result.rounds >= limit) {
        result.hit_round_limit = true;
        break;
      }
      if (!round_step(result)) break;
      ++result.rounds;
      if (trace_ != nullptr) {
        std::vector<NodeId> positions;
        positions.reserve(robots_.size());
        for (const Robot& robot : robots_) positions.push_back(robot.pos);
        trace_->push_back(std::move(positions));
      }
    }

    result.complete = true;
    for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
      if (edge_traversals_[static_cast<std::size_t>(e)] == 0) {
        result.complete = false;
        break;
      }
    }
    result.all_at_origin = true;
    for (const Robot& robot : robots_) {
      if (robot.pos != graph_.origin()) result.all_at_origin = false;
    }
    for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
      if (edge_closed_[static_cast<std::size_t>(e)]) {
        ++result.closed_edges;
      } else if (edge_is_tree_[static_cast<std::size_t>(e)]) {
        ++result.tree_edges;
      }
    }
    return result;
  }

 private:
  struct Robot {
    enum class Phase { kDepthNext, kToAnchor, kBacktrack };
    Phase phase = Phase::kDepthNext;
    NodeId pos = 0;
    NodeId anchor = 0;
    std::vector<NodeId> stack;  // BF descent through tree nodes
    EdgeId backtrack_edge = kInvalidEdge;
    NodeId backtrack_to = kInvalidNode;
  };

  struct Move {
    std::int32_t robot;
    NodeId to;
    EdgeId edge;       // the traversed edge for pending/backtrack moves
    bool via_pending;  // first traversal of a dangling edge
    bool backtrack;    // second leg of a close
  };

  void explore_node(NodeId v, EdgeId via_edge) {
    BFDN_CHECK(!explored_[static_cast<std::size_t>(v)], "double explore");
    explored_[static_cast<std::size_t>(v)] = 1;
    if (via_edge != kInvalidEdge) {
      tree_parent_[static_cast<std::size_t>(v)] =
          graph_.other_endpoint(via_edge, v);
      edge_is_tree_[static_cast<std::size_t>(via_edge)] = 1;
    }
    auto& pool = pending_[static_cast<std::size_t>(v)];
    for (std::int32_t p = 0; p < graph_.degree(v); ++p) {
      const EdgeId e = graph_.edge_at(v, p);
      if (e == via_edge) continue;
      if (edge_traversals_[static_cast<std::size_t>(e)] > 0) continue;
      pool.push_back(e);
    }
    refresh_openness(v);
  }

  void refresh_openness(NodeId v) {
    if (!explored_[static_cast<std::size_t>(v)]) return;
    const std::int32_t d = graph_.distance(v);
    if (static_cast<std::size_t>(d) >= open_buckets_.size()) {
      open_buckets_.resize(static_cast<std::size_t>(d) + 1);
      if (num_open_ == 0) {
        min_open_depth_ = static_cast<std::int32_t>(open_buckets_.size());
      }
    }
    auto& bucket = open_buckets_[static_cast<std::size_t>(d)];
    const std::int32_t pos = open_pos_[static_cast<std::size_t>(v)];
    if (pending_[static_cast<std::size_t>(v)].empty()) {
      if (pos < 0) return;  // already closed
      const NodeId moved = bucket.back();
      bucket[static_cast<std::size_t>(pos)] = moved;
      open_pos_[static_cast<std::size_t>(moved)] = pos;
      bucket.pop_back();
      open_pos_[static_cast<std::size_t>(v)] = -1;
      --num_open_;
      if (num_open_ == 0) {
        min_open_depth_ = static_cast<std::int32_t>(open_buckets_.size());
      } else if (bucket.empty() && d == min_open_depth_) {
        while (open_buckets_[static_cast<std::size_t>(min_open_depth_)]
                   .empty()) {
          ++min_open_depth_;
        }
      }
    } else {
      if (pos >= 0) return;  // already open
      open_pos_[static_cast<std::size_t>(v)] =
          static_cast<std::int32_t>(bucket.size());
      bucket.push_back(v);
      ++num_open_;
      min_open_depth_ = std::min(min_open_depth_, d);
    }
  }

  void drop_pending(NodeId v, EdgeId e) {
    auto& pool = pending_[static_cast<std::size_t>(v)];
    const auto it = std::find(pool.begin(), pool.end(), e);
    if (it == pool.end()) return;
    pool.erase(it);
    refresh_openness(v);
  }

  /// Procedure Reanchor: least-loaded among the shallowest open nodes,
  /// ties to the smallest node id (the bucket is unsorted). Loads are
  /// maintained incrementally in anchor_load_.
  NodeId reanchor(GraphExplorationResult& result) {
    if (num_open_ == 0) return kInvalidNode;
    const std::int32_t depth = min_open_depth_;
    const auto& level = open_buckets_[static_cast<std::size_t>(depth)];
    NodeId best = kInvalidNode;
    std::int32_t best_load = 0;
    for (NodeId v : level) {
      const std::int32_t load = anchor_load_[static_cast<std::size_t>(v)];
      if (best == kInvalidNode || load < best_load ||
          (load == best_load && v < best)) {
        best = v;
        best_load = load;
      }
    }
    result.reanchors_by_depth.add(depth);
    ++result.total_reanchors;
    return best;
  }

  std::vector<NodeId> tree_path_from_origin(NodeId v) const {
    std::vector<NodeId> path;
    for (NodeId cur = v; cur != kInvalidNode;
         cur = tree_parent_[static_cast<std::size_t>(cur)]) {
      path.push_back(cur);
      if (cur == graph_.origin()) break;
    }
    std::reverse(path.begin(), path.end());
    BFDN_CHECK(path.front() == graph_.origin(), "anchor off the tree");
    return path;
  }

  bool round_step(GraphExplorationResult& result) {
    // Per-round buffers are members: `moves_` keeps its capacity,
    // `edge_reserved_` is a flat mark vector un-marked via
    // `reserved_this_round_` (one robot per edge per round).
    auto& moves = moves_;
    moves.clear();
    for (EdgeId e : reserved_this_round_) {
      edge_reserved_[static_cast<std::size_t>(e)] = 0;
    }
    reserved_this_round_.clear();

    // DN step at the robot's position: reserve an unreserved pending
    // (untraversed) edge if any; returns whether a move was queued.
    auto try_depth_next = [&](std::int32_t i, const Robot& robot) {
      for (EdgeId e : pending_[static_cast<std::size_t>(robot.pos)]) {
        if (edge_reserved_[static_cast<std::size_t>(e)] != 0) continue;
        edge_reserved_[static_cast<std::size_t>(e)] = 1;
        reserved_this_round_.push_back(e);
        moves.push_back(
            {i, graph_.other_endpoint(e, robot.pos), e, true, false});
        return true;
      }
      return false;
    };

    for (std::int32_t i = 0; i < k_; ++i) {
      Robot& robot = robots_[static_cast<std::size_t>(i)];
      switch (robot.phase) {
        case Robot::Phase::kBacktrack:
          moves.push_back(
              {i, robot.backtrack_to, robot.backtrack_edge, false, true});
          break;
        case Robot::Phase::kToAnchor: {
          BFDN_CHECK(!robot.stack.empty(), "BF stack empty");
          const NodeId next = robot.stack.back();
          robot.stack.pop_back();
          moves.push_back({i, next, kInvalidEdge, false, false});
          if (robot.stack.empty()) robot.phase = Robot::Phase::kDepthNext;
          break;
        }
        case Robot::Phase::kDepthNext: {
          if (robot.pos != graph_.origin()) {
            if (!try_depth_next(i, robot)) {
              const NodeId parent =
                  tree_parent_[static_cast<std::size_t>(robot.pos)];
              BFDN_CHECK(parent != kInvalidNode, "no tree parent");
              moves.push_back({i, parent, kInvalidEdge, false, false});
            }
            break;
          }
          // At the origin: re-anchor as in Algorithm 1.
          const NodeId anchor = reanchor(result);
          if (anchor == kInvalidNode) break;  // explored; idle at origin
          --anchor_load_[static_cast<std::size_t>(robot.anchor)];
          ++anchor_load_[static_cast<std::size_t>(anchor)];
          robot.anchor = anchor;
          if (anchor == graph_.origin()) {
            (void)try_depth_next(i, robot);  // idle if all reserved
            break;
          }
          const auto path = tree_path_from_origin(anchor);
          robot.stack.assign(path.rbegin(), path.rend() - 1);
          robot.phase = Robot::Phase::kToAnchor;
          const NodeId next = robot.stack.back();
          robot.stack.pop_back();
          moves.push_back({i, next, kInvalidEdge, false, false});
          if (robot.stack.empty()) robot.phase = Robot::Phase::kDepthNext;
          break;
        }
      }
    }

    // Synchronous commit.
    bool any_move = false;
    for (const Move& move : moves) {
      Robot& robot = robots_[static_cast<std::size_t>(move.robot)];
      any_move = true;
      if (move.backtrack) {
        ++edge_traversals_[static_cast<std::size_t>(move.edge)];
        edge_closed_[static_cast<std::size_t>(move.edge)] = 1;
        robot.pos = move.to;
        robot.phase = Robot::Phase::kDepthNext;
        robot.backtrack_edge = kInvalidEdge;
        robot.backtrack_to = kInvalidNode;
        ++result.backtrack_moves;
        continue;
      }
      if (!move.via_pending) {
        robot.pos = move.to;
        continue;
      }
      // First traversal of a dangling edge.
      const EdgeId e = move.edge;
      const NodeId from = robot.pos;
      const NodeId to = move.to;
      ++edge_traversals_[static_cast<std::size_t>(e)];
      drop_pending(from, e);
      drop_pending(to, e);
      robot.pos = to;
      const bool already_explored =
          explored_[static_cast<std::size_t>(to)] != 0;
      const bool strictly_farther =
          graph_.distance(to) > graph_.distance(from);
      if (!already_explored && strictly_farther) {
        explore_node(to, e);
      } else {
        // Close the edge: cross back next round. In case (2) the node
        // `to` does not become explored.
        robot.phase = Robot::Phase::kBacktrack;
        robot.backtrack_edge = e;
        robot.backtrack_to = from;
      }
    }
    return any_move;
  }

  const Graph& graph_;
  std::int32_t k_;
  std::int64_t max_rounds_;
  std::vector<std::vector<NodeId>>* trace_;
  std::vector<char> explored_;
  std::vector<NodeId> tree_parent_;
  std::vector<std::vector<EdgeId>> pending_;
  std::vector<std::int32_t> edge_traversals_;
  std::vector<char> edge_closed_;
  std::vector<char> edge_is_tree_;
  // Flat open-node index (mirrors ExplorationState's layout).
  std::vector<std::vector<NodeId>> open_buckets_;
  std::vector<std::int32_t> open_pos_;
  std::int64_t num_open_ = 0;
  std::int32_t min_open_depth_ = 0;
  std::vector<std::int32_t> anchor_load_;
  std::vector<Robot> robots_;
  // Round-loop scratch, reused across rounds.
  std::vector<Move> moves_;
  std::vector<char> edge_reserved_;
  std::vector<EdgeId> reserved_this_round_;
};

}  // namespace

double proposition9_bound(std::int64_t num_edges, std::int32_t radius,
                          std::int32_t max_degree, std::int32_t k) {
  const double log_term = std::min(std::log(static_cast<double>(
                                       std::max(max_degree, 1))),
                                   std::log(static_cast<double>(k)));
  return 2.0 * static_cast<double>(num_edges) / static_cast<double>(k) +
         static_cast<double>(radius) * static_cast<double>(radius) *
             (std::max(log_term, 0.0) + 3.0);
}

GraphExplorationResult run_graph_bfdn(
    const Graph& graph, std::int32_t k, std::int64_t max_rounds,
    std::vector<std::vector<NodeId>>* trace) {
  GraphBfdnSimulation simulation(graph, k, max_rounds, trace);
  return simulation.run();
}

}  // namespace bfdn
