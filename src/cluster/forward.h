// Pooled request forwarding to the shard fleet.
//
// One PeerPool serves every router connection: per peer it keeps a
// free-list of connected loopback sockets, checked out for the duration
// of one request/response exchange and checked back in afterwards, so
// concurrent forwards to the same shard ride separate connections and
// a warm fleet never pays per-request connect latency. A send or
// receive failure retires the socket and retries once on a fresh
// connection (the shard may have restarted); a second failure reports
// the peer dead for this exchange and the router falls back to its
// retry/reroute policy.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "support/socket.h"
#include "support/thread_annotations.h"

namespace bfdn {

class PeerPool {
 public:
  /// `ports`: the fleet's loopback ports, indexed by peer id.
  /// `recv_timeout_ms` arms SO_RCVTIMEO on every pooled connection so a
  /// hung shard cannot wedge a router thread forever.
  explicit PeerPool(std::vector<std::uint16_t> ports,
                    std::int32_t recv_timeout_ms = 30000);

  std::size_t num_peers() const { return peers_.size(); }
  std::uint16_t port(std::int32_t peer) const;

  /// Sends `line` ('\n' appended here) to `peer` and returns its
  /// response line, or std::nullopt when the peer is unreachable after
  /// one reconnect attempt.
  std::optional<std::string> forward(std::int32_t peer,
                                     const std::string& line);

  /// Drops every pooled connection (the peers see EOF and release their
  /// connection threads).
  void close_all();

  struct Counters {
    std::int64_t forwarded = 0;   // successful exchanges
    std::int64_t errors = 0;      // exchanges abandoned (peer dead)
    std::int64_t reconnects = 0;  // fresh connections dialed
  };
  Counters counters(std::int32_t peer) const;

 private:
  struct Peer {
    std::uint16_t port = 0;
    Mutex mutex;
    std::vector<Socket> idle BFDN_GUARDED_BY(mutex);
    std::atomic<std::int64_t> forwarded{0};
    std::atomic<std::int64_t> errors{0};
    std::atomic<std::int64_t> reconnects{0};
  };

  std::optional<std::string> exchange(Peer& peer, const std::string& line);

  std::int32_t recv_timeout_ms_;
  std::vector<std::unique_ptr<Peer>> peers_;
};

}  // namespace bfdn
