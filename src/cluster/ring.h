// Consistent-hash ring over a static peer list (the routing core of
// the sharded service fleet, see docs/SERVICE.md "Sharded fleet").
//
// Each peer contributes `vnodes` points on a 64-bit ring, positioned by
// hashing "<label>:<vnode>" (FNV-1a + splitmix64 finalizer — the same
// mixing discipline as the protocol's request fingerprint). A key is
// owned by the peer whose point follows it clockwise. Virtual nodes
// keep the per-peer share of keyspace within a small factor of the
// ideal K/N (pinned by tests/cluster_test.cpp), and hashing by stable
// peer label means adding or removing one peer only remaps the keys
// that land in the moved arcs — every other key keeps its owner.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace bfdn {

class ConsistentRing {
 public:
  /// `labels` are stable peer identities (the fleet uses the loopback
  /// port rendered as a string); index into this vector is the peer id
  /// every lookup returns. `vnodes` points per peer.
  explicit ConsistentRing(const std::vector<std::string>& labels,
                          std::int32_t vnodes = 64);

  std::size_t num_peers() const { return num_peers_; }
  std::int32_t vnodes_per_peer() const { return vnodes_; }

  /// The peer owning `key`: the first ring point at or after it,
  /// wrapping at the top.
  std::int32_t owner(std::uint64_t key) const;

  /// The `replicas` distinct peers that own `key`, primary first —
  /// successive distinct peers walking clockwise from the key. Returns
  /// all peers (in walk order) when replicas >= num_peers().
  std::vector<std::int32_t> owners(std::uint64_t key,
                                   std::int32_t replicas) const;

  /// Ring position of "<label>:<vnode>" — exposed so tests can pin the
  /// placement function independently of the ring walk.
  static std::uint64_t point(const std::string& label, std::int32_t vnode);

 private:
  std::size_t num_peers_ = 0;
  std::int32_t vnodes_ = 0;
  /// (position, peer id), sorted by position.
  std::vector<std::pair<std::uint64_t, std::int32_t>> points_;
};

}  // namespace bfdn
