// Consistent-hash routing front end of the sharded service fleet.
//
// A RouterServer speaks the same line-delimited JSON protocol as a
// shard (src/service/server.h) on the client side, but owns no cache,
// store, or scheduler: it fingerprints each run request with the
// protocol's canonical fingerprint, looks the key up on the consistent
// ring (ring.h), and forwards the request line to the owning shard over
// a pooled connection (forward.h), splicing the shard's response bytes
// back verbatim — routed responses are byte-identical to the same
// request served solo (pinned by tests/cluster_test.cpp).
//
// Campaigns are expanded router-side and each member is forwarded to
// its own fingerprint's owner concurrently; the members' result bytes
// are reassembled into one campaign response in expansion order, so a
// routed campaign equals the solo campaign byte for byte.
//
// The Zipf head is replicated: a small LRU frequency tracker promotes
// keys past `hot_threshold` to hot, and hot keys round-robin across the
// first `replicas` distinct ring owners (any replica computes identical
// bytes on its first miss — determinism makes replication free of
// coherence). A dead shard answers with the protocol's retry response;
// hot keys fail over to the surviving replica instead.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/forward.h"
#include "cluster/ring.h"
#include "service/protocol.h"
#include "support/socket.h"
#include "support/thread_annotations.h"
#include "support/thread_pool.h"

namespace bfdn {

struct RouterOptions {
  /// 0 = ephemeral; RouterServer::port() reports the bound port.
  std::uint16_t port = 0;
  /// Shard loopback ports, indexed by peer id. Ring labels are these
  /// ports rendered as strings, so a peer keeps its keys across fleet
  /// restarts and resizes.
  std::vector<std::uint16_t> peers;
  std::int32_t vnodes = 64;
  /// Distinct owners a hot key is spread over (1 = no replication).
  std::int32_t replicas = 2;
  /// Request count at which a key counts as hot.
  std::int64_t hot_threshold = 8;
  /// Keys the frequency tracker remembers (LRU beyond that).
  std::size_t hot_capacity = 4096;
  /// Suggested client back-off when a shard is unreachable.
  std::int32_t retry_after_ms = 20;
  /// SO_RCVTIMEO on forwarding connections.
  std::int32_t forward_timeout_ms = 30000;
  /// Workers for concurrent campaign member fan-out; 0 = hardware.
  std::int32_t fanout_threads = 0;
};

class RouterServer {
 public:
  explicit RouterServer(RouterOptions options);
  ~RouterServer();

  RouterServer(const RouterServer&) = delete;
  RouterServer& operator=(const RouterServer&) = delete;

  void start();
  std::uint16_t port() const { return listener_.port(); }

  /// Graceful drain: stop accepting, finish in-flight forwards, release
  /// client connections and pooled shard connections. Idempotent.
  void drain() BFDN_EXCLUDES(drain_mutex_, connections_mutex_);

  /// The router's stats object: request counters, routing counters, and
  /// the cluster block (per-peer forward/replica/ship counters).
  std::string stats_json() const BFDN_EXCLUDES(hot_mutex_);

 private:
  struct Connection {
    Socket socket;
    std::thread thread;
    std::atomic<bool> finished{false};
  };

  void accept_loop() BFDN_EXCLUDES(connections_mutex_);
  void serve_connection(Connection* connection);
  std::string handle_line(const std::string& line);
  std::string handle_run(const ServiceRequest& request,
                         const std::string& line);
  std::string handle_campaign(const ServiceRequest& request);
  std::string handle_shard(const ServiceRequest& request)
      BFDN_EXCLUDES(hot_mutex_);
  std::string handle_peer_stats(const ServiceRequest& request);
  std::string handle_ship(const ServiceRequest& request);
  void reap_finished_locked() BFDN_REQUIRES(connections_mutex_);

  /// Bumps the key's frequency and returns whether it is hot now.
  bool record_hit(std::uint64_t key) BFDN_EXCLUDES(hot_mutex_);
  /// Hot-aware owner list: one owner for cold keys, `replicas` distinct
  /// owners for hot ones. Does not bump the frequency.
  std::vector<std::int32_t> route(std::uint64_t key, bool hot) const;
  void count_status(const std::string& response);

  RouterOptions options_;
  ConsistentRing ring_;
  PeerPool pool_;
  ThreadPool fanout_;
  ListenSocket listener_;

  std::thread accept_thread_;
  Mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_
      BFDN_GUARDED_BY(connections_mutex_);

  std::atomic<bool> draining_{false};
  // Serialized by drain_mutex_ (same shape as ServiceServer: the
  // acquisition order drain_mutex_ -> connections_mutex_ is an edge in
  // the lock-order graph).
  Mutex drain_mutex_;
  bool drained_ BFDN_GUARDED_BY(drain_mutex_) = false;

  // Hot-key frequency tracker (LRU over tracked keys).
  mutable Mutex hot_mutex_;
  std::list<std::pair<std::uint64_t, std::int64_t>> hot_lru_
      BFDN_GUARDED_BY(hot_mutex_);
  std::unordered_map<std::uint64_t, decltype(hot_lru_)::iterator>
      hot_index_ BFDN_GUARDED_BY(hot_mutex_);
  std::atomic<std::uint64_t> replica_rr_{0};

  std::chrono::steady_clock::time_point started_at_;
  std::atomic<std::int64_t> requests_total_{0};
  std::atomic<std::int64_t> responses_ok_{0};
  std::atomic<std::int64_t> responses_retry_{0};
  std::atomic<std::int64_t> responses_error_{0};
  std::atomic<std::int64_t> protocol_errors_{0};
  std::atomic<std::int64_t> runs_forwarded_{0};
  std::atomic<std::int64_t> campaigns_{0};
  std::atomic<std::int64_t> campaign_members_{0};
  std::atomic<std::int64_t> shard_queries_{0};
  std::atomic<std::int64_t> replica_routed_{0};
  std::atomic<std::int64_t> reroutes_{0};
  std::atomic<std::int64_t> peer_unreachable_{0};
  std::atomic<std::int64_t> ships_routed_{0};
};

}  // namespace bfdn
