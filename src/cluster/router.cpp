#include "cluster/router.h"

#include <condition_variable>
#include <optional>

#include "support/check.h"
#include "support/json.h"
#include "support/strings.h"

namespace bfdn {

namespace {

std::vector<std::string> ring_labels(
    const std::vector<std::uint16_t>& ports) {
  std::vector<std::string> labels;
  labels.reserve(ports.size());
  for (const std::uint16_t port : ports) {
    labels.push_back(str_format("%u", static_cast<unsigned>(port)));
  }
  return labels;
}

/// Reads the envelope status without parsing the whole response (the
/// result object may be large; the envelope prefix is tiny).
std::string extract_status(const std::string& line) {
  static constexpr char kNeedle[] = "\"status\":\"";
  const std::size_t pos = line.find(kNeedle);
  if (pos == std::string::npos) return "";
  const std::size_t start = pos + sizeof(kNeedle) - 1;
  const std::size_t end = line.find('"', start);
  if (end == std::string::npos) return "";
  return line.substr(start, end - start);
}

/// Splices the result object out of an ok response. "result" is always
/// the envelope's final member (protocol.cpp: ok_response), so the raw
/// bytes run from after the colon to the envelope's closing brace —
/// no re-serialization, hence no chance of byte drift.
bool extract_result_raw(const std::string& line, std::string* out) {
  static constexpr char kNeedle[] = "\"result\":";
  const std::size_t pos = line.find(kNeedle);
  if (pos == std::string::npos || line.empty() || line.back() != '}') {
    return false;
  }
  const std::size_t start = pos + sizeof(kNeedle) - 1;
  *out = line.substr(start, line.size() - start - 1);
  return true;
}

std::string extract_error(const std::string& line) {
  JsonValue doc;
  std::string json_error;
  if (!json_parse(line, doc, &json_error) || !doc.is_object()) {
    return "malformed shard response";
  }
  return doc.get_string("error", "shard error");
}

}  // namespace

RouterServer::RouterServer(RouterOptions options)
    : options_(options),
      ring_(ring_labels(options.peers), options.vnodes),
      pool_(options.peers, options.forward_timeout_ms),
      fanout_(options.fanout_threads) {
  BFDN_REQUIRE(!options_.peers.empty(), "router needs at least one peer");
  BFDN_REQUIRE(options_.replicas >= 1, "replicas must be >= 1");
  BFDN_REQUIRE(options_.hot_threshold >= 1, "hot_threshold must be >= 1");
  BFDN_REQUIRE(options_.hot_capacity >= 1, "hot_capacity must be >= 1");
}

RouterServer::~RouterServer() { drain(); }

void RouterServer::start() {
  BFDN_REQUIRE(!accept_thread_.joinable(), "router already started");
  listener_.listen(options_.port);
  started_at_ = std::chrono::steady_clock::now();
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void RouterServer::accept_loop() {
  while (!draining_) {
    auto socket = listener_.accept(/*timeout_ms=*/50);
    if (!socket.has_value()) continue;
    MutexLock lock(connections_mutex_);
    reap_finished_locked();
    auto connection = std::make_unique<Connection>();
    connection->socket = std::move(*socket);
    Connection* raw = connection.get();
    connection->thread =
        std::thread([this, raw] { serve_connection(raw); });
    connections_.push_back(std::move(connection));
  }
}

void RouterServer::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->finished) {
      (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void RouterServer::serve_connection(Connection* connection) {
  for (;;) {
    const auto line = connection->socket.recv_line();
    if (!line.has_value()) break;
    if (line->empty()) continue;
    ++requests_total_;
    const std::string response = handle_line(*line);
    if (!connection->socket.send_all(response + "\n")) break;
  }
  connection->finished = true;
}

bool RouterServer::record_hit(std::uint64_t key) {
  MutexLock lock(hot_mutex_);
  const auto it = hot_index_.find(key);
  if (it != hot_index_.end()) {
    ++it->second->second;
    hot_lru_.splice(hot_lru_.begin(), hot_lru_, it->second);
    return it->second->second >= options_.hot_threshold;
  }
  hot_lru_.emplace_front(key, 1);
  hot_index_[key] = hot_lru_.begin();
  if (hot_lru_.size() > options_.hot_capacity) {
    hot_index_.erase(hot_lru_.back().first);
    hot_lru_.pop_back();
  }
  return std::int64_t{1} >= options_.hot_threshold;
}

std::vector<std::int32_t> RouterServer::route(std::uint64_t key,
                                              bool hot) const {
  if (hot && options_.replicas > 1) {
    return ring_.owners(key, options_.replicas);
  }
  return {ring_.owner(key)};
}

void RouterServer::count_status(const std::string& response) {
  const std::string status = extract_status(response);
  if (status == "ok") {
    ++responses_ok_;
  } else if (status == "retry") {
    ++responses_retry_;
  } else {
    ++responses_error_;
  }
}

std::string RouterServer::handle_line(const std::string& line) {
  ServiceRequest request;
  std::string error;
  if (!parse_request(line, request, &error)) {
    ++protocol_errors_;
    ++responses_error_;
    return error_response("", error);
  }
  switch (request.type) {
    case RequestType::kStats:
      ++responses_ok_;
      return stats_response(request.id, stats_json());
    case RequestType::kPeerStats:
      return handle_peer_stats(request);
    case RequestType::kShard:
      return handle_shard(request);
    case RequestType::kCampaign:
      return handle_campaign(request);
    case RequestType::kShipSegment:
      return handle_ship(request);
    case RequestType::kSegmentFill:
      ++responses_error_;
      return error_response(request.id,
                            "segment_fill goes directly to a shard");
    case RequestType::kCompact:
      ++responses_error_;
      return error_response(request.id,
                            "compact is a per-shard admin request");
    case RequestType::kRun:
      return handle_run(request, line);
  }
  ++responses_error_;
  return error_response(request.id, "unhandled request type");
}

std::string RouterServer::handle_run(const ServiceRequest& request,
                                     const std::string& line) {
  const std::uint64_t key = request_fingerprint(request);
  const bool hot = record_hit(key);
  ++runs_forwarded_;

  const std::vector<std::int32_t> owners = route(key, hot);
  std::size_t start = 0;
  if (owners.size() > 1) {
    ++replica_routed_;
    start = static_cast<std::size_t>(replica_rr_++ % owners.size());
  }
  // The original request line is forwarded verbatim and the shard's
  // response bytes are spliced back verbatim: the router never
  // re-serializes what it routes, so routed == solo byte for byte.
  for (std::size_t attempt = 0; attempt < owners.size(); ++attempt) {
    const std::int32_t peer =
        owners[(start + attempt) % owners.size()];
    auto response = pool_.forward(peer, line);
    if (response.has_value()) {
      if (attempt > 0) ++reroutes_;
      count_status(*response);
      return *response;
    }
    ++peer_unreachable_;
  }
  ++responses_retry_;
  return retry_response(request.id, options_.retry_after_ms,
                        /*queue_depth=*/0);
}

std::string RouterServer::handle_campaign(const ServiceRequest& request) {
  ++campaigns_;
  const std::vector<ServiceRequest> members = expand_campaign(request);
  campaign_members_ += static_cast<std::int64_t>(members.size());

  // Fan every member out to its own fingerprint's owner concurrently;
  // a shard receiving several same-recipe members at once still batches
  // them through its scheduler exactly as a directly-submitted group.
  std::vector<std::uint64_t> keys(members.size());
  std::vector<std::string> lines(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    keys[i] = request_fingerprint(members[i]);
    lines[i] = serialize_request(members[i]);
  }
  std::vector<std::optional<std::string>> replies(members.size());
  Mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t remaining = members.size();
  for (std::size_t i = 0; i < members.size(); ++i) {
    fanout_.submit([this, i, &keys, &lines, &replies, &done_mutex,
                    &done_cv, &remaining] {
      const bool hot = record_hit(keys[i]);
      const std::vector<std::int32_t> owners = route(keys[i], hot);
      std::size_t start = 0;
      if (owners.size() > 1) {
        ++replica_routed_;
        start = static_cast<std::size_t>(replica_rr_++ % owners.size());
      }
      for (std::size_t attempt = 0; attempt < owners.size(); ++attempt) {
        const std::int32_t peer =
            owners[(start + attempt) % owners.size()];
        replies[i] = pool_.forward(peer, lines[i]);
        if (replies[i].has_value()) {
          if (attempt > 0) ++reroutes_;
          break;
        }
        ++peer_unreachable_;
      }
      MutexLock lock(done_mutex);
      if (--remaining == 0) done_cv.notify_all();
    });
  }
  {
    MutexLock lock(done_mutex);
    done_cv.wait(lock.native(), [&remaining] { return remaining == 0; });
  }

  // Reassemble in expansion order — the same order the solo campaign
  // path emits — splicing each member's result bytes verbatim.
  std::vector<CampaignMemberResponse> out(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (!replies[i].has_value()) {
      ++responses_retry_;
      return retry_response(request.id, options_.retry_after_ms,
                            /*queue_depth=*/0);
    }
    const std::string& reply = *replies[i];
    const std::string status = extract_status(reply);
    if (status == "retry") {
      ++responses_retry_;
      return retry_response(request.id, options_.retry_after_ms,
                            /*queue_depth=*/0);
    }
    if (status != "ok" ||
        !extract_result_raw(reply, &out[i].result_json)) {
      ++responses_error_;
      return error_response(request.id, extract_error(reply));
    }
    const std::size_t result_pos = reply.find("\"result\":");
    out[i].cached =
        reply.find("\"cached\":true") < result_pos;
    out[i].key = keys[i];
  }
  ++responses_ok_;
  return campaign_response(request.id, out);
}

std::string RouterServer::handle_shard(const ServiceRequest& request) {
  ++shard_queries_;
  const std::uint64_t key = request_fingerprint(request);
  bool hot = false;
  {
    // Introspection must not heat the key: read the count, don't bump.
    MutexLock lock(hot_mutex_);
    const auto it = hot_index_.find(key);
    hot = it != hot_index_.end() &&
          it->second->second >= options_.hot_threshold;
  }
  ++responses_ok_;
  return shard_response(request.id, key, route(key, hot));
}

std::string RouterServer::handle_peer_stats(const ServiceRequest& request) {
  ServiceRequest probe;
  probe.type = RequestType::kStats;
  const std::string probe_line = serialize_request(probe);
  JsonWriter w;
  w.begin_object();
  w.kv("id", request.id);
  w.kv("status", "ok");
  w.key("peers").begin_array();
  for (std::size_t peer = 0; peer < options_.peers.size(); ++peer) {
    w.begin_object();
    w.kv("peer", static_cast<std::int64_t>(peer));
    w.kv("port", static_cast<std::int64_t>(options_.peers[peer]));
    auto reply =
        pool_.forward(static_cast<std::int32_t>(peer), probe_line);
    std::string stats_raw;
    bool have = false;
    if (reply.has_value() && extract_status(*reply) == "ok") {
      // stats_response puts "stats" last; splice it like a result.
      static constexpr char kNeedle[] = "\"stats\":";
      const std::size_t pos = reply->find(kNeedle);
      if (pos != std::string::npos && reply->back() == '}') {
        const std::size_t start = pos + sizeof(kNeedle) - 1;
        stats_raw = reply->substr(start, reply->size() - start - 1);
        have = true;
      }
    }
    w.key("stats");
    if (have) {
      w.raw(stats_raw);
    } else {
      w.value_null();
      ++peer_unreachable_;
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  ++responses_ok_;
  return w.str();
}

std::string RouterServer::handle_ship(const ServiceRequest& request) {
  const std::int32_t from = request.ship_from;
  if (from < 0 ||
      from >= static_cast<std::int32_t>(options_.peers.size())) {
    ++responses_error_;
    return error_response(
        request.id,
        str_format("ship_segment from %d out of range (fleet of %zu)",
                   from, options_.peers.size()));
  }
  std::uint16_t target_port = 0;
  if (request.ship_port != 0) {
    target_port = static_cast<std::uint16_t>(request.ship_port);
  } else {
    const std::int32_t to = request.ship_peer;
    if (to < 0 ||
        to >= static_cast<std::int32_t>(options_.peers.size())) {
      ++responses_error_;
      return error_response(
          request.id,
          str_format("ship_segment to %d out of range (fleet of %zu)",
                     to, options_.peers.size()));
    }
    if (to == from) {
      ++responses_error_;
      return error_response(request.id,
                            "ship_segment source equals target");
    }
    target_port = options_.peers[static_cast<std::size_t>(to)];
  }
  // Hand the source shard a direct-port ship order so the transfer
  // streams shard-to-shard without the image passing through here.
  ServiceRequest order;
  order.type = RequestType::kShipSegment;
  order.id = request.id;
  order.ship_port = static_cast<std::int32_t>(target_port);
  auto reply = pool_.forward(from, serialize_request(order));
  if (!reply.has_value()) {
    ++peer_unreachable_;
    ++responses_retry_;
    return retry_response(request.id, options_.retry_after_ms,
                          /*queue_depth=*/0);
  }
  ++ships_routed_;
  count_status(*reply);
  return *reply;
}

void RouterServer::drain() {
  MutexLock drain_lock(drain_mutex_);
  if (drained_) return;
  draining_ = true;
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  {
    MutexLock lock(connections_mutex_);
    for (const auto& connection : connections_) {
      connection->socket.shutdown_read();
    }
    for (const auto& connection : connections_) {
      connection->thread.join();
    }
    connections_.clear();
  }
  pool_.close_all();
  drained_ = true;
}

std::string RouterServer::stats_json() const {
  const double uptime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_at_)
          .count();
  std::int64_t hot_tracked = 0;
  std::int64_t hot_keys = 0;
  {
    MutexLock lock(hot_mutex_);
    hot_tracked = static_cast<std::int64_t>(hot_lru_.size());
    for (const auto& [key, count] : hot_lru_) {
      if (count >= options_.hot_threshold) ++hot_keys;
    }
  }

  JsonWriter w;
  w.begin_object();
  w.kv("uptime_s", uptime_s, 3);
  w.key("requests").begin_object();
  w.kv("total", requests_total_.load());
  w.kv("ok", responses_ok_.load());
  w.kv("retry", responses_retry_.load());
  w.kv("error", responses_error_.load());
  w.kv("protocol_errors", protocol_errors_.load());
  w.end_object();
  w.key("routing").begin_object();
  w.kv("runs_forwarded", runs_forwarded_.load());
  w.kv("campaigns", campaigns_.load());
  w.kv("campaign_members", campaign_members_.load());
  w.kv("shard_queries", shard_queries_.load());
  w.kv("replica_routed", replica_routed_.load());
  w.kv("reroutes", reroutes_.load());
  w.kv("peer_unreachable", peer_unreachable_.load());
  w.kv("hot_tracked", hot_tracked);
  w.kv("hot_keys", hot_keys);
  w.kv("hot_threshold", options_.hot_threshold);
  w.end_object();
  w.key("cluster").begin_object();
  w.kv("replicas", options_.replicas);
  w.kv("vnodes", options_.vnodes);
  w.kv("ships_routed", ships_routed_.load());
  w.key("peers").begin_array();
  for (std::size_t peer = 0; peer < options_.peers.size(); ++peer) {
    const PeerPool::Counters counters =
        pool_.counters(static_cast<std::int32_t>(peer));
    w.begin_object();
    w.kv("peer", static_cast<std::int64_t>(peer));
    w.kv("port", static_cast<std::int64_t>(options_.peers[peer]));
    w.kv("forwarded", counters.forwarded);
    w.kv("errors", counters.errors);
    w.kv("reconnects", counters.reconnects);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace bfdn
