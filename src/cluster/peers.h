// Fleet peer-list parsing shared by the cluster tools.
//
// A fleet is described by one comma-separated port list ("7431,7432"),
// identical on the router and on every shard; a shard additionally
// knows its own index (--peer-id). Position in the list is the peer id
// everywhere — ring labels, ship_segment peer targets, stats blocks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bfdn {

/// Parses "port,port,..." into the fleet port list. Throws CheckError
/// on an empty spec, a malformed entry, an out-of-range port, or a
/// duplicate port (peer identity is the port, so duplicates would
/// alias two peers).
std::vector<std::uint16_t> parse_peer_ports(const std::string& spec);

}  // namespace bfdn
