#include "cluster/forward.h"

#include "support/check.h"

namespace bfdn {

PeerPool::PeerPool(std::vector<std::uint16_t> ports,
                   std::int32_t recv_timeout_ms)
    : recv_timeout_ms_(recv_timeout_ms) {
  peers_.reserve(ports.size());
  for (const std::uint16_t port : ports) {
    auto peer = std::make_unique<Peer>();
    peer->port = port;
    peers_.push_back(std::move(peer));
  }
}

std::uint16_t PeerPool::port(std::int32_t peer) const {
  BFDN_REQUIRE(peer >= 0 &&
                   peer < static_cast<std::int32_t>(peers_.size()),
               "peer id out of range");
  return peers_[static_cast<std::size_t>(peer)]->port;
}

std::optional<std::string> PeerPool::exchange(Peer& peer,
                                              const std::string& line) {
  Socket socket;
  {
    MutexLock lock(peer.mutex);
    if (!peer.idle.empty()) {
      socket = std::move(peer.idle.back());
      peer.idle.pop_back();
    }
  }
  // Two attempts: a pooled socket may have gone stale (shard restarted,
  // idle timeout); the second always runs on a fresh connection.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!socket.valid()) {
      try {
        socket = connect_local(peer.port, recv_timeout_ms_);
        ++peer.reconnects;
      } catch (const CheckError&) {
        return std::nullopt;  // nothing listening
      }
    }
    if (socket.send_all(line + "\n")) {
      auto response = socket.recv_line();
      if (response.has_value()) {
        MutexLock lock(peer.mutex);
        peer.idle.push_back(std::move(socket));
        return response;
      }
    }
    socket.close();  // retire and retry fresh
  }
  return std::nullopt;
}

std::optional<std::string> PeerPool::forward(std::int32_t peer,
                                             const std::string& line) {
  BFDN_REQUIRE(peer >= 0 &&
                   peer < static_cast<std::int32_t>(peers_.size()),
               "peer id out of range");
  Peer& p = *peers_[static_cast<std::size_t>(peer)];
  auto response = exchange(p, line);
  if (response.has_value()) {
    ++p.forwarded;
  } else {
    ++p.errors;
  }
  return response;
}

void PeerPool::close_all() {
  for (const auto& peer : peers_) {
    MutexLock lock(peer->mutex);
    peer->idle.clear();
  }
}

PeerPool::Counters PeerPool::counters(std::int32_t peer) const {
  BFDN_REQUIRE(peer >= 0 &&
                   peer < static_cast<std::int32_t>(peers_.size()),
               "peer id out of range");
  const Peer& p = *peers_[static_cast<std::size_t>(peer)];
  Counters counters;
  counters.forwarded = p.forwarded.load();
  counters.errors = p.errors.load();
  counters.reconnects = p.reconnects.load();
  return counters;
}

}  // namespace bfdn
