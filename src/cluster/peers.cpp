#include "cluster/peers.h"

#include <algorithm>

#include "support/check.h"

namespace bfdn {

std::vector<std::uint16_t> parse_peer_ports(const std::string& spec) {
  std::vector<std::uint16_t> ports;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    BFDN_REQUIRE(!entry.empty(), "peers: empty entry in '" + spec + "'");
    long value = 0;
    for (const char c : entry) {
      BFDN_REQUIRE(c >= '0' && c <= '9',
                   "peers: malformed port '" + entry + "'");
      value = value * 10 + (c - '0');
      BFDN_REQUIRE(value <= 65535,
                   "peers: port out of range '" + entry + "'");
    }
    BFDN_REQUIRE(value >= 1, "peers: port out of range '" + entry + "'");
    const auto port = static_cast<std::uint16_t>(value);
    BFDN_REQUIRE(std::find(ports.begin(), ports.end(), port) ==
                     ports.end(),
                 "peers: duplicate port '" + entry + "'");
    ports.push_back(port);
    start = end + 1;
  }
  return ports;
}

}  // namespace bfdn
