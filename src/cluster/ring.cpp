#include "cluster/ring.h"

#include <algorithm>

#include "support/check.h"
#include "support/rng.h"
#include "support/strings.h"

namespace bfdn {

std::uint64_t ConsistentRing::point(const std::string& label,
                                    std::int32_t vnode) {
  const std::string name = str_format("%s:%d", label.c_str(), vnode);
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  // splitmix64 finalizer: FNV alone mixes low bits poorly, and ring
  // balance depends on the points being uniform over the full 64 bits.
  return splitmix64(h);
}

ConsistentRing::ConsistentRing(const std::vector<std::string>& labels,
                               std::int32_t vnodes)
    : num_peers_(labels.size()), vnodes_(vnodes) {
  BFDN_REQUIRE(!labels.empty(), "ring needs at least one peer");
  BFDN_REQUIRE(vnodes >= 1, "ring needs vnodes >= 1");
  points_.reserve(labels.size() * static_cast<std::size_t>(vnodes));
  for (std::size_t peer = 0; peer < labels.size(); ++peer) {
    for (std::int32_t v = 0; v < vnodes; ++v) {
      points_.emplace_back(point(labels[peer], v),
                           static_cast<std::int32_t>(peer));
    }
  }
  std::sort(points_.begin(), points_.end());
}

std::int32_t ConsistentRing::owner(std::uint64_t key) const {
  auto it = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const std::pair<std::uint64_t, std::int32_t>& p,
         std::uint64_t k) { return p.first < k; });
  if (it == points_.end()) it = points_.begin();  // wrap
  return it->second;
}

std::vector<std::int32_t> ConsistentRing::owners(
    std::uint64_t key, std::int32_t replicas) const {
  const std::size_t want = std::min<std::size_t>(
      num_peers_, static_cast<std::size_t>(std::max(replicas, 1)));
  std::vector<std::int32_t> result;
  result.reserve(want);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const std::pair<std::uint64_t, std::int32_t>& p,
         std::uint64_t k) { return p.first < k; });
  for (std::size_t seen = 0;
       result.size() < want && seen < points_.size(); ++seen) {
    if (it == points_.end()) it = points_.begin();
    const std::int32_t peer = it->second;
    if (std::find(result.begin(), result.end(), peer) == result.end()) {
      result.push_back(peer);
    }
    ++it;
  }
  return result;
}

}  // namespace bfdn
