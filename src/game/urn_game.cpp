#include "game/urn_game.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/check.h"

namespace bfdn {

UrnBoard::UrnBoard(std::int32_t k, std::int32_t delta)
    : k_(k), delta_(delta) {
  BFDN_REQUIRE(k >= 1, "k >= 1");
  BFDN_REQUIRE(delta >= 1, "Delta >= 1");
  loads_.assign(static_cast<std::size_t>(k), 1);
  chosen_.assign(static_cast<std::size_t>(k), 0);
}

UrnBoard UrnBoard::lemma2_start(std::int32_t k, std::int32_t delta,
                                std::int32_t u) {
  BFDN_REQUIRE(k >= 1 && delta >= 1, "bad parameters");
  BFDN_REQUIRE(u >= 0 && u <= k - 1, "need 0 <= u <= k-1");
  UrnBoard board;
  board.k_ = k;
  board.delta_ = delta;
  board.loads_.assign(static_cast<std::size_t>(k), 0);
  board.chosen_.assign(static_cast<std::size_t>(k), 1);
  for (std::int32_t i = 0; i < u; ++i) {
    board.loads_[static_cast<std::size_t>(i)] = 1;
    board.chosen_[static_cast<std::size_t>(i)] = 0;
  }
  if (u < k) board.loads_[static_cast<std::size_t>(u)] = k - u;
  return board;
}

std::int32_t UrnBoard::load(std::int32_t urn) const {
  BFDN_REQUIRE(urn >= 0 && urn < k_, "urn index");
  return loads_[static_cast<std::size_t>(urn)];
}

bool UrnBoard::chosen_before(std::int32_t urn) const {
  BFDN_REQUIRE(urn >= 0 && urn < k_, "urn index");
  return chosen_[static_cast<std::size_t>(urn)] != 0;
}

std::vector<std::int32_t> UrnBoard::unchosen_urns() const {
  std::vector<std::int32_t> out;
  for (std::int32_t i = 0; i < k_; ++i) {
    if (!chosen_[static_cast<std::size_t>(i)]) out.push_back(i);
  }
  return out;
}

std::int32_t UrnBoard::balls_in_unchosen() const {
  std::int32_t total = 0;
  for (std::int32_t i = 0; i < k_; ++i) {
    if (!chosen_[static_cast<std::size_t>(i)]) {
      total += loads_[static_cast<std::size_t>(i)];
    }
  }
  return total;
}

std::int32_t UrnBoard::num_unchosen() const {
  std::int32_t count = 0;
  for (char c : chosen_) count += (c == 0);
  return count;
}

bool UrnBoard::finished() const {
  for (std::int32_t i = 0; i < k_; ++i) {
    if (!chosen_[static_cast<std::size_t>(i)] &&
        loads_[static_cast<std::size_t>(i)] < delta_) {
      return false;
    }
  }
  return true;
}

void UrnBoard::apply(std::int32_t from, std::int32_t to) {
  BFDN_REQUIRE(from >= 0 && from < k_ && to >= 0 && to < k_, "urn index");
  BFDN_REQUIRE(loads_[static_cast<std::size_t>(from)] >= 1,
               "adversary chose an empty urn");
  chosen_[static_cast<std::size_t>(from)] = 1;
  --loads_[static_cast<std::size_t>(from)];
  ++loads_[static_cast<std::size_t>(to)];
  ++steps_;
}

std::string UrnBoard::to_string() const {
  std::ostringstream oss;
  oss << "[";
  for (std::int32_t i = 0; i < k_; ++i) {
    if (i) oss << ' ';
    oss << loads_[static_cast<std::size_t>(i)]
        << (chosen_[static_cast<std::size_t>(i)] ? "*" : "");
  }
  oss << "] step=" << steps_;
  return oss.str();
}

namespace {

class LeastLoadedPlayer : public PlayerStrategy {
 public:
  std::string name() const override { return "least-loaded"; }
  std::int32_t choose_destination(const UrnBoard& board,
                                  std::int32_t from) override {
    // b_t in argmin over unchosen urns (excluding the urn the adversary
    // just picked, which is chosen from this step on).
    std::int32_t best = -1;
    for (std::int32_t i = 0; i < board.k(); ++i) {
      if (i == from || board.chosen_before(i)) continue;
      if (best < 0 || board.load(i) < board.load(best)) best = i;
    }
    if (best >= 0) return best;
    // All urns chosen: destination is irrelevant to the stop rule;
    // balance globally.
    best = 0;
    for (std::int32_t i = 1; i < board.k(); ++i) {
      if (board.load(i) < board.load(best)) best = i;
    }
    return best;
  }
};

class RandomPlayer : public PlayerStrategy {
 public:
  explicit RandomPlayer(std::uint64_t seed) : rng_(seed) {}
  std::string name() const override { return "random"; }
  std::int32_t choose_destination(const UrnBoard& board,
                                  std::int32_t from) override {
    std::vector<std::int32_t> candidates;
    for (std::int32_t i = 0; i < board.k(); ++i) {
      if (i != from && !board.chosen_before(i)) candidates.push_back(i);
    }
    if (candidates.empty()) {
      return static_cast<std::int32_t>(
          rng_.next_below(static_cast<std::uint64_t>(board.k())));
    }
    return rng_.pick(candidates);
  }

 private:
  Rng rng_;
};

class MostLoadedPlayer : public PlayerStrategy {
 public:
  std::string name() const override { return "most-loaded"; }
  std::int32_t choose_destination(const UrnBoard& board,
                                  std::int32_t from) override {
    std::int32_t best = -1;
    for (std::int32_t i = 0; i < board.k(); ++i) {
      if (i == from || board.chosen_before(i)) continue;
      if (best < 0 || board.load(i) > board.load(best)) best = i;
    }
    if (best >= 0) return best;
    best = 0;
    for (std::int32_t i = 1; i < board.k(); ++i) {
      if (board.load(i) > board.load(best)) best = i;
    }
    return best;
  }
};

class GreedyAdversary : public AdversaryStrategy {
 public:
  std::string name() const override { return "greedy"; }
  std::int32_t choose_source(const UrnBoard& board) override {
    if (board.finished()) return -1;
    // Option (a): a non-empty urn already chosen.
    for (std::int32_t i = 0; i < board.k(); ++i) {
      if (board.chosen_before(i) && board.load(i) >= 1) return i;
    }
    // Option (b): the fullest unchosen urn (smallest budget loss).
    std::int32_t best = -1;
    for (std::int32_t i = 0; i < board.k(); ++i) {
      if (board.chosen_before(i) || board.load(i) < 1) continue;
      if (best < 0 || board.load(i) > board.load(best)) best = i;
    }
    return best;
  }
};

class RandomAdversary : public AdversaryStrategy {
 public:
  explicit RandomAdversary(std::uint64_t seed) : rng_(seed) {}
  std::string name() const override { return "random"; }
  std::int32_t choose_source(const UrnBoard& board) override {
    if (board.finished()) return -1;
    std::vector<std::int32_t> candidates;
    for (std::int32_t i = 0; i < board.k(); ++i) {
      if (board.load(i) >= 1) candidates.push_back(i);
    }
    if (candidates.empty()) return -1;
    return rng_.pick(candidates);
  }

 private:
  Rng rng_;
};

class EagerAdversary : public AdversaryStrategy {
 public:
  std::string name() const override { return "eager"; }
  std::int32_t choose_source(const UrnBoard& board) override {
    if (board.finished()) return -1;
    // Drain unchosen urns first (the dominated option (b)).
    for (std::int32_t i = 0; i < board.k(); ++i) {
      if (!board.chosen_before(i) && board.load(i) >= 1) return i;
    }
    for (std::int32_t i = 0; i < board.k(); ++i) {
      if (board.load(i) >= 1) return i;
    }
    return -1;
  }
};

class RoundRobinAdversary : public AdversaryStrategy {
 public:
  std::string name() const override { return "round-robin"; }
  std::int32_t choose_source(const UrnBoard& board) override {
    if (board.finished()) return -1;
    for (std::int32_t tried = 0; tried < board.k(); ++tried) {
      const std::int32_t urn = next_ % board.k();
      next_ = (next_ + 1) % board.k();
      if (board.load(urn) >= 1) return urn;
    }
    return -1;
  }

 private:
  std::int32_t next_ = 0;
};

}  // namespace

std::unique_ptr<PlayerStrategy> make_least_loaded_player() {
  return std::make_unique<LeastLoadedPlayer>();
}
std::unique_ptr<PlayerStrategy> make_random_player(std::uint64_t seed) {
  return std::make_unique<RandomPlayer>(seed);
}
std::unique_ptr<PlayerStrategy> make_most_loaded_player() {
  return std::make_unique<MostLoadedPlayer>();
}
std::unique_ptr<AdversaryStrategy> make_greedy_adversary() {
  return std::make_unique<GreedyAdversary>();
}
std::unique_ptr<AdversaryStrategy> make_random_adversary(
    std::uint64_t seed) {
  return std::make_unique<RandomAdversary>(seed);
}
std::unique_ptr<AdversaryStrategy> make_eager_adversary() {
  return std::make_unique<EagerAdversary>();
}
std::unique_ptr<AdversaryStrategy> make_round_robin_adversary() {
  return std::make_unique<RoundRobinAdversary>();
}

GameResult play_game(UrnBoard board, PlayerStrategy& player,
                     AdversaryStrategy& adversary, std::int64_t max_steps) {
  GameResult result;
  const std::int64_t limit =
      max_steps > 0 ? max_steps
                    : 4 * static_cast<std::int64_t>(board.k()) *
                              (board.k() + board.delta()) +
                          64;
  while (!board.finished()) {
    BFDN_CHECK(board.steps() < limit, "urn game exceeded its hard limit");
    const std::int32_t from = adversary.choose_source(board);
    if (from < 0) {
      result.adversary_conceded = true;
      break;
    }
    const std::int32_t to = player.choose_destination(board, from);
    board.apply(from, to);
  }
  result.steps = board.steps();
  return result;
}

double theorem3_bound(std::int32_t k, std::int32_t delta) {
  const double kk = static_cast<double>(k);
  const double log_term =
      std::min(std::log(std::max(1.0, static_cast<double>(delta))),
               std::log(std::max(1.0, kk)));
  return kk * log_term + 2.0 * kk;
}

}  // namespace bfdn
