// The two-player zero-sum balls-in-urns game of Section 3.
//
// Board: k urns holding k balls in total (initially one each). Each
// step, the adversary (player A) picks a ball from a non-empty urn, and
// the player (player B) moves it into an urn of its choice. The game
// ends when every urn never yet chosen by the adversary holds at least
// Delta balls (all chosen, if Delta >= k). The adversary maximizes the
// number of steps; the player minimizes it.
//
// Theorem 3: the least-loaded player strategy ends the game within
// k * min(log Delta, log k) + 2k steps against ANY adversary.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/rng.h"

namespace bfdn {

/// Mutable game board plus the bookkeeping of Section 3.1 (the set U_t
/// of never-chosen urns, N_t, u_t, x_t = Delta*u_t - N_t).
class UrnBoard {
 public:
  /// Standard start: k urns, one ball each. Delta as in the stop rule.
  UrnBoard(std::int32_t k, std::int32_t delta);

  /// The modified initial condition used in the reduction of Lemma 2:
  /// `u` urns hold one ball each, one extra urn (index u) holds the
  /// remaining k - u balls and counts as already chosen by the
  /// adversary. Requires 0 <= u <= k - 1.
  static UrnBoard lemma2_start(std::int32_t k, std::int32_t delta,
                               std::int32_t u);

  std::int32_t k() const { return k_; }
  std::int32_t delta() const { return delta_; }
  std::int32_t load(std::int32_t urn) const;
  bool chosen_before(std::int32_t urn) const;
  /// Urns never selected by the adversary (the set U_t).
  std::vector<std::int32_t> unchosen_urns() const;
  /// N_t: balls currently in unchosen urns.
  std::int32_t balls_in_unchosen() const;
  /// u_t = |U_t|.
  std::int32_t num_unchosen() const;

  bool finished() const;
  std::int64_t steps() const { return steps_; }

  /// Applies one step: adversary takes a ball from `from` (must be
  /// non-empty), player puts it into `to`.
  void apply(std::int32_t from, std::int32_t to);

  std::string to_string() const;

 private:
  UrnBoard() = default;
  std::int32_t k_ = 0;
  std::int32_t delta_ = 0;
  std::vector<std::int32_t> loads_;
  std::vector<char> chosen_;
  std::int64_t steps_ = 0;
};

/// Player B: decides where the taken ball goes.
class PlayerStrategy {
 public:
  virtual ~PlayerStrategy() = default;
  virtual std::string name() const = 0;
  /// Board is observed BEFORE the ball leaves urn `from`.
  virtual std::int32_t choose_destination(const UrnBoard& board,
                                          std::int32_t from) = 0;
};

/// Player A: decides which urn loses a ball, or concedes (returns -1)
/// when it cannot (or does not want to) prolong the game.
class AdversaryStrategy {
 public:
  virtual ~AdversaryStrategy() = default;
  virtual std::string name() const = 0;
  virtual std::int32_t choose_source(const UrnBoard& board) = 0;
};

// --- player strategies -------------------------------------------------

/// The paper's strategy: send the ball to the least-loaded urn among
/// those never chosen by the adversary (including `from` if unchosen —
/// though `from` just lost a ball so it is rarely the minimum). If every
/// urn has been chosen, falls back to the globally least-loaded urn.
std::unique_ptr<PlayerStrategy> make_least_loaded_player();

/// Ablation: uniformly random unchosen urn.
std::unique_ptr<PlayerStrategy> make_random_player(std::uint64_t seed);

/// Ablation: most-loaded unchosen urn (pessimal balancing).
std::unique_ptr<PlayerStrategy> make_most_loaded_player();

// --- adversary strategies ----------------------------------------------

/// The optimal greedy adversary from the proof of Theorem 3: prefer
/// option (a) (re-choose an already-chosen non-empty urn) whenever a
/// ball lies outside U_t; otherwise take from the fullest unchosen urn.
std::unique_ptr<AdversaryStrategy> make_greedy_adversary();

/// Random non-empty urn.
std::unique_ptr<AdversaryStrategy> make_random_adversary(std::uint64_t seed);

/// Always drains unchosen urns first (plays option (b) eagerly — the
/// move the proof shows is dominated).
std::unique_ptr<AdversaryStrategy> make_eager_adversary();

/// Cycles deterministically over non-empty urns.
std::unique_ptr<AdversaryStrategy> make_round_robin_adversary();

// --- game runner ---------------------------------------------------------

struct GameResult {
  std::int64_t steps = 0;
  bool adversary_conceded = false;
};

/// Plays until the stop condition (or the adversary concedes). The
/// Theorem-3 bound k*min(log Delta, log k) + 2k applies when the player
/// is least-loaded.
GameResult play_game(UrnBoard board, PlayerStrategy& player,
                     AdversaryStrategy& adversary,
                     std::int64_t max_steps = -1);

/// Theorem 3 right-hand side.
double theorem3_bound(std::int32_t k, std::int32_t delta);

}  // namespace bfdn
