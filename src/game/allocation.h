// Online resource allocation under uncertainty — the Section 1 / 3.1
// corollary of the urn-game analysis.
//
// k workers, k parallelizable tasks of unknown integer lengths. Each
// round every worker applies one unit of work to its task. When a task
// finishes, its workers become idle and are reassigned online; every
// reassignment is a "switch". With the least-crowded rule the paper
// shows the total number of switches is at most k log(k) + 2k.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.h"

namespace bfdn {

enum class ReassignRule {
  kLeastCrowded,     // paper: unfinished task with fewest workers
  kRandom,           // uniform unfinished task
  kFirstUnfinished,  // lowest-index unfinished task
  kMostCrowded,      // pessimal: pile onto the fullest task
};

std::string reassign_rule_name(ReassignRule rule);

struct AllocationResult {
  std::int64_t switches = 0;    // reassignments after the initial one
  std::int64_t rounds = 0;      // makespan
  std::int64_t total_work = 0;  // sum of task lengths
  std::int64_t idle_worker_rounds = 0;
};

/// Simulates the schedule. task_work.size() == number of workers == k
/// (the paper's setting); lengths must be >= 0 (0-length tasks complete
/// immediately). Workers start assigned one-to-one (worker i on task i;
/// the initial assignment is not counted as a switch).
AllocationResult simulate_allocation(const std::vector<std::int64_t>& task_work,
                                     ReassignRule rule,
                                     std::uint64_t seed = 1);

/// Paper bound on switches for the least-crowded rule: k log(k) + 2k.
double allocation_switch_bound(std::int32_t k);

}  // namespace bfdn
