// Exact value function R(N, u) of the urn game (Section 3.1, Lemma 4).
//
// R(N, u) is the largest number of further steps a strategic adversary
// can force, after player B's balancing move produced a board with N
// balls spread (as evenly as possible) over u never-chosen urns. The
// recurrences (1)/(2) of the paper define it; this module evaluates them
// exactly so the tests can verify Lemma 4 (monotonicity in N, dominance
// of option (a)) and compare Theorem 3's bound with the true optimum.
#pragma once

#include <cstdint>
#include <vector>

namespace bfdn {

class RTable {
 public:
  /// Builds the full table for parameters k (total balls) and delta.
  RTable(std::int32_t k, std::int32_t delta);

  std::int32_t k() const { return k_; }
  std::int32_t delta() const { return delta_; }

  /// R(N, u) for 0 <= N <= k, 0 <= u <= k.
  std::int64_t r(std::int32_t n, std::int32_t u) const;

  /// Exact optimal game length from the standard start (one ball per
  /// urn): R(k, k).
  std::int64_t optimal_game_length() const { return r(k_, k_); }

  /// Lemma 4 (i): N -> R(N, u) is non-increasing for every u.
  bool monotone_in_n() const;
  /// Lemma 4 (ii): for N < k (and x_t > 0) the max in recurrence (1) is
  /// achieved by the option-(a) branch R(N+1, u).
  bool option_a_dominates() const;

 private:
  std::int64_t& at(std::int32_t n, std::int32_t u);
  std::int64_t at(std::int32_t n, std::int32_t u) const;

  std::int32_t k_;
  std::int32_t delta_;
  std::vector<std::int64_t> table_;  // (k+1) x (k+1), row-major by N
};

}  // namespace bfdn
