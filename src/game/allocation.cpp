#include "game/allocation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/check.h"

namespace bfdn {

std::string reassign_rule_name(ReassignRule rule) {
  switch (rule) {
    case ReassignRule::kLeastCrowded: return "least-crowded";
    case ReassignRule::kRandom: return "random";
    case ReassignRule::kFirstUnfinished: return "first-unfinished";
    case ReassignRule::kMostCrowded: return "most-crowded";
  }
  return "?";
}

AllocationResult simulate_allocation(
    const std::vector<std::int64_t>& task_work, ReassignRule rule,
    std::uint64_t seed) {
  const auto k = static_cast<std::int32_t>(task_work.size());
  BFDN_REQUIRE(k >= 1, "need at least one task/worker");
  for (std::int64_t w : task_work) BFDN_REQUIRE(w >= 0, "negative work");

  Rng rng(seed);
  std::vector<std::int64_t> remaining = task_work;
  std::vector<std::int32_t> assignment(static_cast<std::size_t>(k));
  std::iota(assignment.begin(), assignment.end(), 0);
  std::vector<std::int32_t> crowd(static_cast<std::size_t>(k), 1);

  AllocationResult result;
  result.total_work =
      std::accumulate(task_work.begin(), task_work.end(), std::int64_t{0});

  auto unfinished = [&]() {
    std::vector<std::int32_t> out;
    for (std::int32_t t = 0; t < k; ++t) {
      if (remaining[static_cast<std::size_t>(t)] > 0) out.push_back(t);
    }
    return out;
  };

  auto pick_task = [&](const std::vector<std::int32_t>& candidates)
      -> std::int32_t {
    BFDN_CHECK(!candidates.empty(), "no unfinished task to pick");
    switch (rule) {
      case ReassignRule::kLeastCrowded: {
        std::int32_t best = candidates.front();
        for (std::int32_t t : candidates) {
          if (crowd[static_cast<std::size_t>(t)] <
              crowd[static_cast<std::size_t>(best)]) {
            best = t;
          }
        }
        return best;
      }
      case ReassignRule::kMostCrowded: {
        std::int32_t best = candidates.front();
        for (std::int32_t t : candidates) {
          if (crowd[static_cast<std::size_t>(t)] >
              crowd[static_cast<std::size_t>(best)]) {
            best = t;
          }
        }
        return best;
      }
      case ReassignRule::kFirstUnfinished:
        return candidates.front();
      case ReassignRule::kRandom:
        return rng.pick(candidates);
    }
    return candidates.front();
  };

  // Reassign workers whose task is already done (0-length tasks).
  auto reassign_idle = [&]() {
    const std::vector<std::int32_t> open = unfinished();
    if (open.empty()) return;
    for (std::int32_t w = 0; w < k; ++w) {
      const std::int32_t t = assignment[static_cast<std::size_t>(w)];
      if (t >= 0 && remaining[static_cast<std::size_t>(t)] > 0) continue;
      const std::vector<std::int32_t> now_open = unfinished();
      if (now_open.empty()) {
        assignment[static_cast<std::size_t>(w)] = -1;
        continue;
      }
      if (t >= 0) --crowd[static_cast<std::size_t>(t)];
      const std::int32_t next = pick_task(now_open);
      assignment[static_cast<std::size_t>(w)] = next;
      ++crowd[static_cast<std::size_t>(next)];
      ++result.switches;
    }
  };

  reassign_idle();
  while (!unfinished().empty()) {
    // One synchronous round of work.
    for (std::int32_t w = 0; w < k; ++w) {
      const std::int32_t t = assignment[static_cast<std::size_t>(w)];
      if (t < 0 || remaining[static_cast<std::size_t>(t)] <= 0) {
        ++result.idle_worker_rounds;
        continue;
      }
      --remaining[static_cast<std::size_t>(t)];
    }
    ++result.rounds;
    reassign_idle();
  }
  return result;
}

double allocation_switch_bound(std::int32_t k) {
  const double kk = static_cast<double>(k);
  return kk * std::log(std::max(kk, 1.0)) + 2.0 * kk;
}

}  // namespace bfdn
