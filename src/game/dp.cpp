#include "game/dp.h"

#include <algorithm>

#include "support/check.h"

namespace bfdn {

RTable::RTable(std::int32_t k, std::int32_t delta) : k_(k), delta_(delta) {
  BFDN_REQUIRE(k >= 1 && delta >= 1, "bad parameters");
  table_.assign(static_cast<std::size_t>(k + 1) *
                    static_cast<std::size_t>(k + 1),
                0);
  // u = 0 row is identically 0. Fill u increasing; within a u, N
  // decreasing (recurrence (1) consumes R(N+1, u)).
  for (std::int32_t u = 1; u <= k; ++u) {
    for (std::int32_t n = k; n >= 0; --n) {
      const std::int64_t slack = static_cast<std::int64_t>(delta_) * u - n;
      if (slack <= 0) {
        at(n, u) = 0;
        continue;
      }
      const std::int32_t ceil_share = (n + u - 1) / u;   // ceil(N/u)
      const std::int32_t floor_share = n / u;            // floor(N/u)
      std::int64_t best = std::max(at(n - ceil_share + 1, u - 1),
                                   at(n - floor_share + 1, u - 1));
      if (n < k) best = std::max(best, at(n + 1, u));
      at(n, u) = 1 + best;
    }
  }
}

std::int64_t& RTable::at(std::int32_t n, std::int32_t u) {
  BFDN_REQUIRE(n >= 0 && n <= k_ && u >= 0 && u <= k_, "R(N,u) range");
  return table_[static_cast<std::size_t>(n) *
                    static_cast<std::size_t>(k_ + 1) +
                static_cast<std::size_t>(u)];
}

std::int64_t RTable::at(std::int32_t n, std::int32_t u) const {
  BFDN_REQUIRE(n >= 0 && n <= k_ && u >= 0 && u <= k_, "R(N,u) range");
  return table_[static_cast<std::size_t>(n) *
                    static_cast<std::size_t>(k_ + 1) +
                static_cast<std::size_t>(u)];
}

std::int64_t RTable::r(std::int32_t n, std::int32_t u) const {
  return at(n, u);
}

bool RTable::monotone_in_n() const {
  // Non-increasing: R(N, u) >= R(N+1, u).
  for (std::int32_t u = 0; u <= k_; ++u) {
    for (std::int32_t n = 0; n < k_; ++n) {
      if (at(n, u) < at(n + 1, u)) return false;
    }
  }
  return true;
}

bool RTable::option_a_dominates() const {
  for (std::int32_t u = 1; u <= k_; ++u) {
    for (std::int32_t n = 0; n < k_; ++n) {
      const std::int64_t slack = static_cast<std::int64_t>(delta_) * u - n;
      if (slack <= 0) continue;
      const std::int32_t ceil_share = (n + u - 1) / u;
      const std::int32_t floor_share = n / u;
      const std::int64_t option_b =
          std::max(at(n - ceil_share + 1, u - 1),
                   at(n - floor_share + 1, u - 1));
      if (at(n + 1, u) < option_b) return false;
    }
  }
  return true;
}

}  // namespace bfdn
