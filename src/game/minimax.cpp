#include "game/minimax.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "support/check.h"

namespace bfdn {
namespace {

// (load, chosen-by-adversary) per urn, kept sorted for canonicalization.
using State = std::vector<std::pair<std::int32_t, bool>>;

bool finished(const State& state, std::int32_t delta) {
  for (const auto& [load, chosen] : state) {
    if (!chosen && load < delta) return false;
  }
  return true;
}

// Player destinations are restricted to unchosen urns. This is a
// dominated-strategy elimination, not a loss of generality: parking a
// ball in a chosen urn makes no progress towards the stop condition and
// hands the adversary extra option-(a) budget, so a minimizing player
// never benefits (and the paper's strategy indeed always plays into
// U_t). With the restriction every (adversary, player) step strictly
// decreases the potential (u_t, -N_t) lexicographically — taking from
// an unchosen urn drops u_t; otherwise N_t rises — so the state graph
// is acyclic and plain memoization is sound.
class Solver {
 public:
  explicit Solver(std::int32_t delta) : delta_(delta) {}

  std::int64_t value(State state) {
    std::sort(state.begin(), state.end());
    if (finished(state, delta_)) return 0;
    const auto memo_it = memo_.find(state);
    if (memo_it != memo_.end()) return memo_it->second;

    std::int64_t best_for_adversary = -1;  // adversary maximizes
    for (std::size_t i = 0; i < state.size(); ++i) {
      if (state[i].first <= 0) continue;
      if (i > 0 && state[i] == state[i - 1]) continue;  // same class
      State after_take = state;
      after_take[i].first -= 1;
      after_take[i].second = true;  // source becomes chosen

      std::int64_t best_for_player = -1;  // player minimizes
      for (std::size_t j = 0; j < after_take.size(); ++j) {
        if (after_take[j].second) continue;  // dominated (see above)
        if (j > 0 && after_take[j] == after_take[j - 1]) continue;
        State after_put = after_take;
        after_put[j].first += 1;
        const std::int64_t v = 1 + value(std::move(after_put));
        if (best_for_player < 0 || v < best_for_player) {
          best_for_player = v;
        }
      }
      if (best_for_player < 0) {
        // No unchosen destination left: the source pick emptied U_t, so
        // the game is over right after this step.
        best_for_player = 1;
      }
      best_for_adversary = std::max(best_for_adversary, best_for_player);
    }
    BFDN_CHECK(best_for_adversary >= 0, "unfinished game with no move");
    memo_[state] = best_for_adversary;
    return best_for_adversary;
  }

 private:
  std::int32_t delta_;
  std::map<State, std::int64_t> memo_;
};

}  // namespace

std::int64_t minimax_game_length(std::int32_t k, std::int32_t delta) {
  BFDN_REQUIRE(k >= 1 && delta >= 1, "bad parameters");
  Solver solver(delta);
  State start(static_cast<std::size_t>(k), {1, false});
  return solver.value(std::move(start));
}

}  // namespace bfdn
