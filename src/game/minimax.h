// Exact minimax value of the urn game (Section 3.1) under optimal play
// by BOTH sides, via memoized search over canonical board states.
//
// This is stronger than the R(N, u) recurrence of Lemma 4, which bakes
// in the least-loaded player: the minimax search lets the player move
// the ball anywhere. Agreement between the two (tested for small k)
// verifies that the paper's balancing strategy is minimax-optimal for
// the player, not merely within the Theorem 3 bound.
//
// States are canonicalized by sorting the (load, chosen) pairs — urns
// are exchangeable — so the memo stays small; practical up to k ~ 8.
#pragma once

#include <cstdint>

namespace bfdn {

/// Optimal game length from the standard start (one ball per urn,
/// nothing chosen), with both sides playing perfectly.
std::int64_t minimax_game_length(std::int32_t k, std::int32_t delta);

}  // namespace bfdn
