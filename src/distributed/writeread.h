// BFDN in the restricted memory-and-communication model of Section 4.1
// (which subsumes the write-read whiteboard model of [10], Remark 5).
//
// Information flow, enforced structurally by this simulator:
//  * Robots communicate with the central planner ONLY when located at
//    the root (the planner reads/writes their memory there).
//  * At any other node a robot can observe only the node's "finished
//    ports" list and may either SELECT a port from its stack or call the
//    local PARTITION(v) routine.
//  * PARTITION(v) hands each child port of v to at most one robot ever,
//    in descending port order; once all child ports are handed out it
//    answers port 0 (towards the root).
//  * Robot memory is Delta bits (finished-port bitmap of its anchor)
//    plus at most D stacked port numbers of log2(Delta) bits each, as
//    in the paper; max_robot_memory_bits reports the high-water mark.
//
// The central planner implements Algorithm 2: a working depth d, the
// anchor lists A/R and the children lists A'/R', with returning robots'
// memories driving the updates.
//
// Proposition 6: this version still explores within
// 2n/k + D^2 (min(log k, log Delta) + 3) rounds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "distributed/ports.h"
#include "graph/tree.h"
#include "sim/engine.h"
#include "support/stats.h"

namespace bfdn {

struct WriteReadResult {
  std::int64_t rounds = 0;
  bool complete = false;
  bool all_at_root = false;
  bool hit_round_limit = false;
  /// Reanchor assignments grouped by anchor depth (Lemma 2 view).
  Histogram reanchors_by_depth;
  std::int64_t total_reanchors = 0;
  /// High-water mark of any robot's memory, in bits, and the model's
  /// allowance Delta + D*ceil(log2(max(Delta,2))) for comparison.
  std::int64_t max_robot_memory_bits = 0;
  std::int64_t memory_allowance_bits = 0;
  /// Highest working depth the planner reached.
  std::int32_t final_working_depth = 0;
};

/// The write-read model is async-safe in the sense of
/// ActivationGranularity::kAsyncSafe: between root visits a robot acts
/// on local port information only, so activating any subset of robots
/// per time step cannot change its decisions. This simulator, however,
/// batch-steps the planner and robots together rather than going
/// through the engine's Algorithm interface, so per-robot-clock runs of
/// the model go through BfdnAlgorithm (which subsumes it per Remark 5)
/// rather than this free function.
constexpr ActivationGranularity kWriteReadActivationGranularity =
    ActivationGranularity::kAsyncSafe;

/// Runs the write-read BFDN to completion on `tree` with k robots.
/// If `trace` is non-null it receives the robot positions after every
/// round (one inner vector per round, k entries each).
WriteReadResult run_write_read_bfdn(
    const Tree& tree, std::int32_t k, std::int64_t max_rounds = 0,
    std::vector<std::vector<NodeId>>* trace = nullptr);

}  // namespace bfdn
