#include "distributed/ports.h"

#include <algorithm>

#include "support/check.h"

namespace bfdn {

PortedTree::PortedTree(const Tree& tree) : tree_(tree) {
  port_from_parent_.assign(static_cast<std::size_t>(tree.num_nodes()), -1);
  for (NodeId v = 0; v < tree.num_nodes(); ++v) {
    const auto kids = tree.children(v);
    const std::int32_t base = v == tree.root() ? 0 : 1;
    for (std::size_t i = 0; i < kids.size(); ++i) {
      port_from_parent_[static_cast<std::size_t>(kids[i])] =
          base + static_cast<std::int32_t>(i);
    }
  }
}

NodeId PortedTree::via_port(NodeId v, std::int32_t port) const {
  BFDN_REQUIRE(port >= 0 && port < degree(v), "port out of range");
  if (v != tree_.root()) {
    if (port == 0) return tree_.parent(v);
    return tree_.children(v)[static_cast<std::size_t>(port - 1)];
  }
  return tree_.children(v)[static_cast<std::size_t>(port)];
}

std::int32_t PortedTree::port_to_parent(NodeId v) const {
  BFDN_REQUIRE(v != tree_.root(), "root has no parent port");
  return 0;
}

std::int32_t PortedTree::port_from_parent(NodeId v) const {
  BFDN_REQUIRE(v != tree_.root(), "root has no parent");
  return port_from_parent_[static_cast<std::size_t>(v)];
}

NodeId PortedTree::resolve(
    const std::vector<std::int32_t>& ports_from_root) const {
  NodeId v = tree_.root();
  for (std::int32_t port : ports_from_root) v = via_port(v, port);
  return v;
}

std::vector<std::int32_t> PortedTree::address_of(NodeId v) const {
  std::vector<std::int32_t> address;
  for (NodeId cur = v; cur != tree_.root(); cur = tree_.parent(cur)) {
    address.push_back(port_from_parent(cur));
  }
  std::reverse(address.begin(), address.end());
  return address;
}

}  // namespace bfdn
