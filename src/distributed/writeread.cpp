#include "distributed/writeread.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "support/check.h"

namespace bfdn {
namespace {

/// Whiteboard at an explored node: PARTITION's hand-out cursor, which
/// robot each child port was handed to, and which ports are finished
/// (their handed robot came back up through them).
struct NodeBoard {
  bool initialized = false;
  std::int32_t next_hand = 0;  // descending cursor over child ports
  std::vector<std::int32_t> handed_to;  // per port, robot id or -1
  std::vector<char> finished;           // per port
};

struct Robot {
  enum class Phase { kIdle, kToAnchor, kExploring, kReturning };
  Phase phase = Phase::kIdle;
  NodeId pos = 0;
  std::vector<std::int32_t> port_stack;  // BF descent; back() is next

  // Memory about the current anchor (counted against the bit budget).
  NodeId anchor = 0;
  std::vector<std::int32_t> anchor_address;
  std::vector<char> finished_obs;  // observed finished ports of anchor
  std::int32_t anchor_degree = 0;
  bool has_report = false;
};

/// Planner-side record for one anchor candidate (Algorithm 2's A/R and
/// A'/R' are views over these).
struct AnchorRecord {
  std::vector<std::int32_t> address;
  bool returned = false;        // in R
  std::int32_t load = 0;        // robots assigned and not yet back
  // Children knowledge, filled by reports:
  std::int32_t degree = -1;     // -1 until a robot reports
  std::vector<char> child_finished;  // per port of the anchor
};

class WriteReadSimulation {
 public:
  WriteReadSimulation(const Tree& tree, std::int32_t k,
                      std::int64_t max_rounds,
                      std::vector<std::vector<NodeId>>* trace)
      : tree_(tree),
        ports_(tree),
        k_(k),
        max_rounds_(max_rounds),
        trace_(trace),
        boards_(static_cast<std::size_t>(tree.num_nodes())),
        robots_(static_cast<std::size_t>(k)) {
    BFDN_REQUIRE(k >= 1, "need at least one robot");
    delta_ = std::max<std::int32_t>(tree.max_degree(), 2);
    log_delta_ = static_cast<std::int64_t>(
        std::ceil(std::log2(static_cast<double>(delta_))));
    init_board(tree_.root());
    visited_.assign(static_cast<std::size_t>(tree.num_nodes()), 0);
    visited_[static_cast<std::size_t>(tree_.root())] = 1;
    num_visited_ = 1;
    // Planner starts with working depth 0 and A = {root}.
    anchors_.push_back(AnchorRecord{{}, false, 0, -1, {}});
  }

  WriteReadResult run() {
    WriteReadResult result;
    const std::int64_t limit =
        max_rounds_ > 0
            ? max_rounds_
            : 3 * static_cast<std::int64_t>(std::max(tree_.depth(), 1)) *
                      tree_.num_nodes() +
                  4 * tree_.num_nodes() + 4 * tree_.depth() + 64;

    for (;;) {
      planner_step(result);
      if (result.rounds >= limit) {
        result.hit_round_limit = true;
        break;
      }
      const bool moved = round_step(result);
      if (!moved) break;
      ++result.rounds;
      if (trace_ != nullptr) {
        std::vector<NodeId> positions;
        positions.reserve(static_cast<std::size_t>(k_));
        for (const Robot& robot : robots_) positions.push_back(robot.pos);
        trace_->push_back(std::move(positions));
      }
    }

    result.complete = num_visited_ == tree_.num_nodes();
    result.all_at_root = true;
    for (const Robot& robot : robots_) {
      if (robot.pos != tree_.root()) result.all_at_root = false;
    }
    result.final_working_depth = working_depth_;
    result.memory_allowance_bits =
        delta_ + static_cast<std::int64_t>(tree_.depth()) * log_delta_;
    return result;
  }

 private:
  void init_board(NodeId v) {
    NodeBoard& board = boards_[static_cast<std::size_t>(v)];
    if (board.initialized) return;
    board.initialized = true;
    const std::int32_t deg = ports_.degree(v);
    board.next_hand = deg - 1;
    board.handed_to.assign(static_cast<std::size_t>(std::max(deg, 0)), -1);
    board.finished.assign(static_cast<std::size_t>(std::max(deg, 0)), 0);
  }

  /// PARTITION(v) for one robot: next unhanded child port (descending),
  /// or the parent port 0 when exhausted (at the root: -1, "done").
  std::int32_t partition(NodeId v, std::int32_t robot) {
    NodeBoard& board = boards_[static_cast<std::size_t>(v)];
    BFDN_CHECK(board.initialized, "PARTITION on unvisited node");
    const std::int32_t floor = ports_.child_port_floor(v);
    if (board.next_hand >= floor) {
      const std::int32_t port = board.next_hand--;
      BFDN_CHECK(board.handed_to[static_cast<std::size_t>(port)] == -1,
                 "PARTITION handed a port twice");
      board.handed_to[static_cast<std::size_t>(port)] = robot;
      return port;
    }
    return v == tree_.root() ? -1 : 0;
  }

  void observe_anchor(Robot& robot) {
    const NodeBoard& board =
        boards_[static_cast<std::size_t>(robot.anchor)];
    robot.anchor_degree = ports_.degree(robot.anchor);
    robot.finished_obs.assign(board.finished.begin(), board.finished.end());
  }

  // --- central planner (runs only over robots located at the root) ----

  AnchorRecord* find_anchor(const std::vector<std::int32_t>& address) {
    for (AnchorRecord& record : anchors_) {
      if (record.address == address) return &record;
    }
    return nullptr;
  }

  void planner_step(WriteReadResult& result) {
    // (1) Read the memory of robots that returned to the root.
    for (std::int32_t i = 0; i < k_; ++i) {
      Robot& robot = robots_[static_cast<std::size_t>(i)];
      if (robot.pos != tree_.root() || !robot.has_report) continue;
      robot.has_report = false;
      AnchorRecord* record = find_anchor(robot.anchor_address);
      if (record == nullptr) continue;  // anchor from a previous depth
      record->returned = true;
      record->load = std::max(record->load - 1, 0);
      if (record->degree < 0) {
        record->degree = robot.anchor_degree;
        record->child_finished.assign(
            static_cast<std::size_t>(std::max(robot.anchor_degree, 0)), 0);
      }
      for (std::size_t p = 0; p < robot.finished_obs.size(); ++p) {
        if (robot.finished_obs[p]) record->child_finished[p] = 1;
      }
    }

    // (2) Advance the working depth when a robot has returned from
    // every anchor (Algorithm 2 lines 7-13).
    auto a_minus_r_empty = [&] {
      for (const AnchorRecord& record : anchors_) {
        if (!record.returned) return false;
      }
      return true;
    };
    while (a_minus_r_empty()) {
      std::vector<AnchorRecord> next;
      for (const AnchorRecord& record : anchors_) {
        BFDN_CHECK(record.degree >= 0, "returned anchor without report");
        const NodeId node = ports_.resolve(record.address);
        const std::int32_t floor = ports_.child_port_floor(node);
        for (std::int32_t p = floor; p < record.degree; ++p) {
          if (record.child_finished[static_cast<std::size_t>(p)]) continue;
          AnchorRecord child;
          child.address = record.address;
          child.address.push_back(p);
          next.push_back(std::move(child));
        }
      }
      if (next.empty()) {
        planner_finished_ = true;
        return;
      }
      ++working_depth_;
      anchors_ = std::move(next);
    }

    // (3) Reanchor idle robots to anchors of minimum load.
    if (planner_finished_) return;
    for (std::int32_t i = 0; i < k_; ++i) {
      Robot& robot = robots_[static_cast<std::size_t>(i)];
      if (robot.pos != tree_.root() || robot.phase != Robot::Phase::kIdle) {
        continue;
      }
      AnchorRecord* best = nullptr;
      for (AnchorRecord& record : anchors_) {
        if (record.returned) continue;  // withdrawn from U
        if (best == nullptr || record.load < best->load) best = &record;
      }
      if (best == nullptr) continue;  // wait for the depth to advance
      ++best->load;
      robot.anchor_address = best->address;
      robot.anchor = ports_.resolve(best->address);
      robot.port_stack.assign(best->address.rbegin(),
                              best->address.rend());
      robot.finished_obs.clear();
      robot.anchor_degree = 0;
      robot.phase = robot.port_stack.empty() ? Robot::Phase::kExploring
                                             : Robot::Phase::kToAnchor;
      result.reanchors_by_depth.add(
          static_cast<std::int64_t>(best->address.size()));
      ++result.total_reanchors;
      track_memory(robot, result);
    }
  }

  void track_memory(const Robot& robot, WriteReadResult& result) const {
    // delta_/log_delta_ are precomputed once in the constructor; this
    // runs for every executed move.
    const std::int64_t bits =
        static_cast<std::int64_t>(std::max(robot.anchor_address.size(),
                                           robot.port_stack.size())) *
            log_delta_ +
        (robot.finished_obs.empty() ? 0 : delta_);
    result.max_robot_memory_bits =
        std::max(result.max_robot_memory_bits, bits);
  }

  // --- one synchronous round of robot moves ----------------------------

  struct Move {
    std::int32_t robot;
    NodeId from;
    NodeId to;
    std::int32_t port_at_from;
    bool upward;
  };

  bool round_step(WriteReadResult& result) {
    auto& moves = moves_;  // reused across rounds, keeps its capacity
    moves.clear();
    // Phase changes with no physical move (a root-anchored robot seeing
    // PARTITION(root) exhausted): the planner must still get a chance to
    // process the resulting report, so the round loop continues.
    bool transitioned = false;

    for (std::int32_t i = 0; i < k_; ++i) {
      Robot& robot = robots_[static_cast<std::size_t>(i)];
      switch (robot.phase) {
        case Robot::Phase::kIdle:
          break;
        case Robot::Phase::kToAnchor: {
          BFDN_CHECK(!robot.port_stack.empty(), "BF stack empty");
          const std::int32_t port = robot.port_stack.back();
          robot.port_stack.pop_back();
          const NodeId to = ports_.via_port(robot.pos, port);
          moves.push_back({i, robot.pos, to, port, false});
          if (robot.port_stack.empty()) {
            robot.phase = Robot::Phase::kExploring;
          }
          break;
        }
        case Robot::Phase::kExploring: {
          if (robot.pos == robot.anchor) observe_anchor(robot);
          const std::int32_t port = partition(robot.pos, i);
          if (port >= ports_.child_port_floor(robot.pos)) {
            const NodeId to = ports_.via_port(robot.pos, port);
            moves.push_back({i, robot.pos, to, port, false});
            break;
          }
          // PARTITION exhausted here.
          if (robot.pos == robot.anchor) {
            observe_anchor(robot);
            if (robot.anchor == tree_.root()) {
              robot.phase = Robot::Phase::kIdle;
              robot.has_report = true;
              transitioned = true;
              break;  // no physical move
            }
            robot.phase = Robot::Phase::kReturning;
            moves.push_back(
                {i, robot.pos, tree_.parent(robot.pos), 0, true});
            break;
          }
          BFDN_CHECK(robot.pos != tree_.root(),
                     "exploring above the anchor");
          moves.push_back(
              {i, robot.pos, tree_.parent(robot.pos), 0, true});
          break;
        }
        case Robot::Phase::kReturning: {
          BFDN_CHECK(robot.pos != tree_.root(), "returning at root");
          moves.push_back(
              {i, robot.pos, tree_.parent(robot.pos), 0, true});
          break;
        }
      }
    }

    // Synchronous application.
    for (const Move& move : moves) {
      Robot& robot = robots_[static_cast<std::size_t>(move.robot)];
      robot.pos = move.to;
      if (!move.upward) {
        if (!visited_[static_cast<std::size_t>(move.to)]) {
          visited_[static_cast<std::size_t>(move.to)] = 1;
          ++num_visited_;
          init_board(move.to);
        }
      } else {
        // Finished-port rule: the port at the parent leading back down
        // to `from` becomes finished iff it was handed to this robot.
        const std::int32_t port_at_parent =
            ports_.port_from_parent(move.from);
        NodeBoard& board = boards_[static_cast<std::size_t>(move.to)];
        if (board.handed_to[static_cast<std::size_t>(port_at_parent)] ==
            move.robot) {
          board.finished[static_cast<std::size_t>(port_at_parent)] = 1;
        }
        if (move.to == tree_.root() &&
            robot.phase == Robot::Phase::kReturning) {
          robot.phase = Robot::Phase::kIdle;
          robot.has_report = true;
        }
      }
      track_memory(robot, result);
    }
    return !moves.empty() || transitioned;
  }

  const Tree& tree_;
  PortedTree ports_;
  std::int32_t k_;
  std::int64_t max_rounds_;
  std::vector<std::vector<NodeId>>* trace_;
  std::vector<NodeBoard> boards_;
  std::vector<Robot> robots_;
  std::vector<char> visited_;
  std::int64_t num_visited_ = 0;
  std::int32_t delta_ = 2;
  std::int64_t log_delta_ = 1;
  std::vector<Move> moves_;

  // Planner state (Algorithm 2).
  std::int32_t working_depth_ = 0;
  std::vector<AnchorRecord> anchors_;
  bool planner_finished_ = false;
};

}  // namespace

WriteReadResult run_write_read_bfdn(
    const Tree& tree, std::int32_t k, std::int64_t max_rounds,
    std::vector<std::vector<NodeId>>* trace) {
  WriteReadSimulation simulation(tree, k, max_rounds, trace);
  return simulation.run();
}

}  // namespace bfdn
