// Port-numbered view of a rooted tree (Section 4.1).
//
// At every node the endpoints of incident edges are numbered
// 0..degree-1. For every node other than the root, port 0 leads to the
// root (i.e. to the parent); ports 1.. lead to children. At the root all
// ports lead to children. A node at depth d is identified by the
// sequence of d ports that leads to it from the root.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/tree.h"

namespace bfdn {

class PortedTree {
 public:
  explicit PortedTree(const Tree& tree);

  const Tree& tree() const { return tree_; }
  std::int32_t degree(NodeId v) const { return tree_.degree(v); }

  /// First port that leads to a child (1 for non-root nodes, 0 at root).
  std::int32_t child_port_floor(NodeId v) const {
    return v == tree_.root() ? 0 : 1;
  }

  /// Neighbour reached through a port.
  NodeId via_port(NodeId v, std::int32_t port) const;

  /// Port at v leading to its parent (always 0; v must not be the root).
  std::int32_t port_to_parent(NodeId v) const;

  /// Port at parent(v) that leads to v.
  std::int32_t port_from_parent(NodeId v) const;

  /// Resolves a port sequence from the root; throws on invalid ports.
  NodeId resolve(const std::vector<std::int32_t>& ports_from_root) const;

  /// Port sequence identifying v (length == depth(v)).
  std::vector<std::int32_t> address_of(NodeId v) const;

 private:
  const Tree& tree_;
  std::vector<std::int32_t> port_from_parent_;  // per node; -1 at root
};

}  // namespace bfdn
