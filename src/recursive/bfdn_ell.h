// BFDN_l — the recursive algorithm of Section 5 (Theorem 10).
//
// Construction, following Definition 13 / Algorithm 3:
//  * The driver runs BFDN_l(k*, k, d_j) for the doubling depth schedule
//    d_j = 2^{j*l}, interrupting each call right after its last
//    iteration (without letting the top instance run deep) and starting
//    the next call from the current robot positions.
//  * BFDN_l(k*, K, d) for l >= 2 is the divide-depth functor
//    D[BFDN_{l-1}(k*, K/k*, d/n_iter); n_team = k*; n_iter = d^{1/l}]:
//    each of its n_iter iterations re-partitions the robots into teams,
//    one per sub-tree root carried over from the previous iteration,
//    relocates team members to their root along explored edges, and
//    runs one child instance per team in parallel; the iteration is
//    interrupted as soon as fewer than k* robots remain active.
//  * BFDN_1(k*, k', d') is depth-capped BFDN on the sub-tree: robots
//    re-anchor to the shallowest open node of minimum load within the
//    sub-tree and at relative depth <= d', run depth-next excursions,
//    and turn inactive at the sub-tree root when nothing in range
//    remains open. Depth-next moves are memoryless, so instances can be
//    handed robots anywhere inside their sub-tree (the paper's
//    "Parallel DFS Positions" start).
//  * Sub-tree roots for iteration i are computed from Open Node
//    Coverage: the ancestors at the iteration boundary depth of the
//    still-open nodes (deduplicated by the ancestor relation, and lifted
//    if they would exceed n_team). k is rounded down to floor(k^{1/l})^l
//    as in the theorem; surplus robots idle at the root.
//
// Theorem 10 guarantee:
//   4n/k^{1/l} + 2^{l+1} (l + 1 + min(log Delta, log(k)/l)) D^{1+1/l}.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.h"

namespace bfdn {

namespace detail {
class EllInstance;
}  // namespace detail

class BfdnEllAlgorithm : public Algorithm {
 public:
  /// num_robots = k (rounded internally), ell >= 1.
  BfdnEllAlgorithm(std::int32_t num_robots, std::int32_t ell);
  ~BfdnEllAlgorithm() override;

  std::string name() const override;
  void begin(const ExplorationView& view) override;
  void select_moves(const ExplorationView& view,
                    MoveSelector& selector) override;
  /// Step-only: the recursive instance tree synchronizes robot groups
  /// through per-phase barriers (active counts across whole subtrees of
  /// instances), so robots' future moves depend on when *other* robots
  /// reach their barriers — no per-robot committed segment exists.
  TransitCapability transit_capability() const override {
    return TransitCapability::kStepOnly;
  }

  std::int32_t ell() const { return ell_; }
  /// floor(k^{1/l})^l robots actually used.
  std::int32_t robots_used() const { return robots_used_; }
  std::int32_t k_star() const { return k_star_; }
  /// Number of depth phases (d_j calls) started so far.
  std::int32_t phases_started() const { return phase_; }

 private:
  void start_phase(const ExplorationView& view);

  std::int32_t num_robots_;
  std::int32_t ell_;
  std::int32_t robots_used_ = 0;
  std::int32_t k_star_ = 1;
  std::int32_t phase_ = 0;
  std::unique_ptr<detail::EllInstance> top_;
};

/// Theorem 10 right-hand side.
double theorem10_bound(std::int64_t n, std::int32_t depth,
                       std::int32_t max_degree, std::int32_t k,
                       std::int32_t ell);

}  // namespace bfdn
