#include "recursive/bfdn_ell.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

#include "support/check.h"
#include "support/strings.h"

namespace bfdn {
namespace detail {
namespace {

std::int64_t ipow(std::int64_t base, std::int32_t exp) {
  std::int64_t out = 1;
  for (std::int32_t i = 0; i < exp; ++i) out *= base;
  return out;
}

/// Node sequence (positions after each move) from `from` to `to` along
/// the discovered tree: up to the LCA, then down.
std::vector<NodeId> walk_between(const ExplorationView& view, NodeId from,
                                 NodeId to) {
  const std::vector<NodeId> pa = view.path_from_root(from);
  const std::vector<NodeId> pb = view.path_from_root(to);
  std::size_t common = 0;
  while (common < pa.size() && common < pb.size() &&
         pa[common] == pb[common]) {
    ++common;
  }
  std::vector<NodeId> path;
  // Up-moves: from pa.back() towards the LCA pa[common-1].
  for (std::size_t i = pa.size() - 1; i >= common; --i) {
    path.push_back(pa[i - 1]);
    if (i == common) break;  // unsigned guard
  }
  // Down-moves into pb.
  for (std::size_t i = common; i < pb.size(); ++i) path.push_back(pb[i]);
  return path;
}

}  // namespace

/// One node of the anchor-based instance tree (Section 5): either a
/// depth-capped BFDN_1 leaf or a divide-depth functor application.
class EllInstance {
 public:
  virtual ~EllInstance() = default;
  virtual void select(const ExplorationView& view, MoveSelector& sel) = 0;
  virtual std::int32_t num_active() const = 0;
  /// All team robots are inactive (sub-tree done as far as they know).
  virtual bool terminated() const = 0;
  /// The last iteration was interrupted (instance would now run deep);
  /// the phase driver of Definition 13 reacts to this on the top node.
  virtual bool iterations_done() const = 0;
};

namespace {

// ---------------------------------------------------------------------
// BFDN_1(k', k', d') on a sub-tree.
// ---------------------------------------------------------------------

class LeafInstance : public EllInstance {
 public:
  LeafInstance(NodeId root, std::int32_t cap_rel,
               const std::vector<std::int32_t>& team,
               const ExplorationView& view)
      : root_(root), root_depth_(view.depth(root)), cap_rel_(cap_rel) {
    for (std::int32_t id : team) {
      RobotState robot;
      robot.id = id;
      const NodeId pos = view.robot_pos(id);
      BFDN_CHECK(view.is_ancestor_or_self(root_, pos),
                 "leaf team robot outside its sub-tree");
      // Parallel-DFS-position start: a robot already inside continues
      // depth-next from where it stands, anchored to the first open
      // node on its path (or its own position).
      robot.anchor = pos;
      for (NodeId v : view.path_from_root(pos)) {
        if (view.depth(v) < root_depth_) continue;
        if (view.has_unexplored_child_edge(v)) {
          robot.anchor = v;
          break;
        }
      }
      robots_.push_back(std::move(robot));
    }
  }

  void select(const ExplorationView& view, MoveSelector& sel) override {
    for (RobotState& robot : robots_) {
      if (robot.inactive) continue;
      if (!view.can_move(robot.id)) continue;
      const NodeId pos = view.robot_pos(robot.id);
      if (!robot.stack.empty()) {  // BF descent towards the anchor
        sel.move_down(robot.id, robot.stack.back());
        robot.stack.pop_back();
        continue;
      }
      if (pos == root_) {
        const NodeId anchor = reanchor(view);
        if (anchor == kInvalidNode) {
          saw_empty_range_ = true;
          robot.inactive = true;
          continue;
        }
        robot.anchor = anchor;
        sel.note_reanchor(view.depth(anchor));
        if (anchor == root_) {
          (void)sel.try_take_dangling(robot.id);  // idle if all reserved
          continue;
        }
        const std::vector<NodeId> path = view.path_from_root(anchor);
        for (std::size_t j = path.size();
             j-- > static_cast<std::size_t>(root_depth_) + 1;) {
          robot.stack.push_back(path[j]);
        }
        sel.move_down(robot.id, robot.stack.back());
        robot.stack.pop_back();
        continue;
      }
      // Depth-next below the sub-tree root.
      if (sel.try_take_dangling(robot.id) == kInvalidNode) {
        sel.move_up(robot.id);
      }
    }
  }

  std::int32_t num_active() const override {
    std::int32_t count = 0;
    for (const RobotState& robot : robots_) count += !robot.inactive;
    return count;
  }

  bool terminated() const override { return num_active() == 0; }

  bool iterations_done() const override {
    // A BFDN_1 "runs deep" once its capped range has no open node left;
    // we detect that the first time a robot fails to re-anchor.
    return saw_empty_range_ || terminated();
  }

 private:
  struct RobotState {
    std::int32_t id = -1;
    NodeId anchor = kInvalidNode;
    std::vector<NodeId> stack;
    bool inactive = false;
  };

  NodeId reanchor(const ExplorationView& view) const {
    // Shallowest open node within T(root_) at relative depth <= cap,
    // then minimum load (ties to the smallest id), exactly as procedure
    // Reanchor restricted by Section 5's modified line 26. Scans the
    // depth buckets directly; the first depth with an eligible node is
    // the level.
    if (view.exploration_complete()) return kInvalidNode;
    const std::int32_t lo = std::max(root_depth_, view.min_open_depth());
    const std::int32_t hi = static_cast<std::int32_t>(std::min<std::int64_t>(
        static_cast<std::int64_t>(root_depth_) + cap_rel_,
        view.max_open_depth()));
    for (std::int32_t d = lo; d <= hi; ++d) {
      NodeId best = kInvalidNode;
      std::int32_t best_load = 0;
      for (NodeId v : view.open_nodes_at_depth(d)) {
        if (!view.is_ancestor_or_self(root_, v)) continue;
        std::int32_t load = 0;
        for (const RobotState& robot : robots_) {
          if (!robot.inactive && robot.anchor == v) ++load;
        }
        if (best == kInvalidNode || load < best_load ||
            (load == best_load && v < best)) {
          best = v;
          best_load = load;
        }
      }
      if (best != kInvalidNode) return best;
    }
    return kInvalidNode;
  }

  NodeId root_;
  std::int32_t root_depth_;
  std::int32_t cap_rel_;
  std::vector<RobotState> robots_;
  bool saw_empty_range_ = false;
};

// ---------------------------------------------------------------------
// Divide-depth functor D[BFDN_{m-1}; n_team = k*; n_iter] (Algorithm 3).
// ---------------------------------------------------------------------

class DivideInstance : public EllInstance {
 public:
  DivideInstance(NodeId root, std::int32_t level, std::int32_t k_star,
                 std::int32_t n_iter, std::int32_t d_child,
                 std::vector<std::int32_t> team, bool auto_deep,
                 const ExplorationView& view)
      : root_(root),
        root_depth_(view.depth(root)),
        level_(level),
        k_star_(k_star),
        n_iter_(n_iter),
        d_child_(d_child),
        team_(std::move(team)),
        auto_deep_(auto_deep) {
    BFDN_REQUIRE(level >= 2, "divide level must be >= 2");
    BFDN_REQUIRE(d_child >= 1 && n_iter >= 1, "bad depth split");
    k_child_ = static_cast<std::int32_t>(
        static_cast<std::int64_t>(team_.size()) / k_star_);
    k_child_ = std::max(k_child_, 1);
    setup_iteration(1, view);
  }

  void select(const ExplorationView& view, MoveSelector& sel) override {
    if (phase_ == Phase::kRun || phase_ == Phase::kDeep) {
      // Iteration barrier: interrupt all instances simultaneously when
      // fewer than k* robots remain active (Algorithm 3 line 15).
      if (phase_ == Phase::kRun && child_active_sum() < k_star_) {
        if (iter_ < n_iter_) {
          setup_iteration(iter_ + 1, view);
        } else {
          iterations_done_ = true;
          // Line 20: keep running the last iteration's instances
          // ("running deep"). The top-level driver will instead start
          // the next depth phase when auto_deep_ is false.
          phase_ = Phase::kDeep;
        }
      }
    }
    switch (phase_) {
      case Phase::kRelocate: {
        bool all_arrived = true;
        for (PendingTeam& pending : pending_teams_) {
          for (auto& [robot, path] : pending.walkers) {
            if (!path.empty()) all_arrived = false;
          }
        }
        if (all_arrived) {
          build_children(view);
          select(view, sel);  // children start this very round
          return;
        }
        for (PendingTeam& pending : pending_teams_) {
          for (auto& [robot, path] : pending.walkers) {
            if (path.empty()) continue;
            if (!view.can_move(robot)) continue;
            const NodeId next = path.back();
            path.pop_back();
            const NodeId pos = view.robot_pos(robot);
            if (view.is_explored(next) && view.depth(next) <
                                              view.depth(pos)) {
              sel.move_up(robot);
            } else {
              sel.move_down(robot, next);
            }
          }
        }
        break;
      }
      case Phase::kRun:
      case Phase::kDeep:
        for (auto& child : children_) child->select(view, sel);
        break;
      case Phase::kDone:
        break;
    }
  }

  std::int32_t num_active() const override {
    switch (phase_) {
      case Phase::kRelocate:
        return assigned_count_;
      case Phase::kRun:
      case Phase::kDeep:
        return child_active_sum();
      case Phase::kDone:
        return 0;
    }
    return 0;
  }

  bool terminated() const override {
    if (phase_ == Phase::kDone) return true;
    if (phase_ != Phase::kDeep) return false;
    for (const auto& child : children_) {
      if (!child->terminated()) return false;
    }
    return true;
  }

  bool iterations_done() const override {
    return iterations_done_ || phase_ == Phase::kDone;
  }

 private:
  enum class Phase { kRelocate, kRun, kDeep, kDone };

  struct PendingTeam {
    NodeId root = kInvalidNode;
    std::vector<std::int32_t> members;
    // Robots still walking to `root`, with their remaining node path.
    std::vector<std::pair<std::int32_t, std::vector<NodeId>>> walkers;
  };

  std::int32_t child_active_sum() const {
    std::int32_t total = 0;
    for (const auto& child : children_) total += child->num_active();
    return total;
  }

  /// Open Node Coverage roots for an iteration boundary: ancestors of
  /// open nodes at the boundary depth, deduplicated by the ancestor
  /// relation, lifted shallower if they would exceed n_team = k*.
  std::vector<NodeId> coverage_roots(const ExplorationView& view,
                                     std::int32_t boundary) const {
    std::vector<NodeId> open_inside;
    if (!view.exploration_complete()) {
      for (std::int32_t d = view.min_open_depth();
           d <= view.max_open_depth(); ++d) {
        for (NodeId o : view.open_nodes_at_depth(d)) {
          if (view.is_ancestor_or_self(root_, o)) open_inside.push_back(o);
        }
      }
    }
    if (open_inside.empty()) return {};
    for (std::int32_t b = boundary; b >= root_depth_; --b) {
      std::set<NodeId> reps;
      for (NodeId o : open_inside) {
        reps.insert(view.depth(o) >= b ? view.ancestor_at_depth(o, b) : o);
      }
      // Drop representatives covered by a strictly higher one.
      std::vector<NodeId> roots;
      for (NodeId r : reps) {
        bool covered = false;
        for (NodeId other : reps) {
          if (other != r && view.is_ancestor_or_self(other, r)) {
            covered = true;
            break;
          }
        }
        if (!covered) roots.push_back(r);
      }
      if (static_cast<std::int32_t>(roots.size()) <= k_star_) {
        return roots;
      }
    }
    return {root_};
  }

  void setup_iteration(std::int32_t iteration, const ExplorationView& view) {
    iter_ = iteration;
    children_.clear();
    pending_teams_.clear();
    const std::int32_t boundary = root_depth_ + (iteration - 1) * d_child_;
    const std::vector<NodeId> roots = coverage_roots(view, boundary);
    if (roots.empty()) {
      phase_ = Phase::kDone;
      assigned_count_ = 0;
      return;
    }
    BFDN_CHECK(static_cast<std::int32_t>(roots.size()) <= k_star_,
               "more iteration roots than teams");

    // Partition robots: members already inside a root's sub-tree stay
    // with it; the rest top the teams up and walk over.
    std::vector<std::int32_t> pool;
    std::map<NodeId, std::vector<std::int32_t>> continuing;
    for (std::int32_t robot : team_) {
      const NodeId pos = view.robot_pos(robot);
      NodeId home = kInvalidNode;
      for (NodeId r : roots) {
        if (view.is_ancestor_or_self(r, pos)) {
          home = r;
          break;
        }
      }
      if (home != kInvalidNode &&
          static_cast<std::int32_t>(continuing[home].size()) < k_child_) {
        continuing[home].push_back(robot);
      } else {
        pool.push_back(robot);
      }
    }
    assigned_count_ = 0;
    for (NodeId r : roots) {
      PendingTeam pending;
      pending.root = r;
      pending.members = continuing[r];
      const std::int32_t need =
          k_child_ - static_cast<std::int32_t>(pending.members.size());
      for (std::int32_t w = 0; w < need && !pool.empty(); ++w) {
        const std::int32_t robot = pool.back();
        pool.pop_back();
        pending.members.push_back(robot);
        std::vector<NodeId> path =
            walk_between(view, view.robot_pos(robot), r);
        if (!path.empty()) {
          std::reverse(path.begin(), path.end());  // pop_back order
          pending.walkers.emplace_back(robot, std::move(path));
        }
      }
      assigned_count_ +=
          static_cast<std::int32_t>(pending.members.size());
      pending_teams_.push_back(std::move(pending));
    }
    // Leftover pool robots form unassigned teams: inactive, wait.
    phase_ = Phase::kRelocate;
  }

  void build_children(const ExplorationView& view) {
    children_.clear();
    for (const PendingTeam& pending : pending_teams_) {
      if (level_ - 1 == 1) {
        children_.push_back(std::make_unique<LeafInstance>(
            pending.root, d_child_, pending.members, view));
      } else {
        children_.push_back(std::make_unique<DivideInstance>(
            pending.root, level_ - 1, k_star_, n_iter_,
            std::max(d_child_ / n_iter_, 1), pending.members,
            /*auto_deep=*/true, view));
      }
    }
    pending_teams_.clear();
    phase_ = Phase::kRun;
  }

  NodeId root_;
  std::int32_t root_depth_;
  std::int32_t level_;
  std::int32_t k_star_;
  std::int32_t n_iter_;
  std::int32_t d_child_;
  std::int32_t k_child_ = 1;
  std::vector<std::int32_t> team_;
  bool auto_deep_;

  Phase phase_ = Phase::kRelocate;
  std::int32_t iter_ = 0;
  std::int32_t assigned_count_ = 0;
  bool iterations_done_ = false;
  std::vector<PendingTeam> pending_teams_;
  std::vector<std::unique_ptr<EllInstance>> children_;
};

}  // namespace
}  // namespace detail

BfdnEllAlgorithm::BfdnEllAlgorithm(std::int32_t num_robots,
                                   std::int32_t ell)
    : num_robots_(num_robots), ell_(ell) {
  BFDN_REQUIRE(num_robots >= 1, "need at least one robot");
  BFDN_REQUIRE(ell >= 1, "ell >= 1");
  // K = floor(k^{1/l})^l, with a correction loop against FP error.
  std::int64_t base = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::floor(
             std::pow(static_cast<double>(num_robots),
                      1.0 / static_cast<double>(ell)))));
  while (detail::ipow(base + 1, ell) <= num_robots) ++base;
  while (base > 1 && detail::ipow(base, ell) > num_robots) --base;
  k_star_ = static_cast<std::int32_t>(base);
  robots_used_ = static_cast<std::int32_t>(detail::ipow(base, ell));
}

BfdnEllAlgorithm::~BfdnEllAlgorithm() = default;

std::string BfdnEllAlgorithm::name() const {
  return str_format("BFDN_%d", ell_);
}

void BfdnEllAlgorithm::begin(const ExplorationView&) {
  phase_ = 0;
  top_.reset();
}

void BfdnEllAlgorithm::start_phase(const ExplorationView& view) {
  ++phase_;
  // Definition 13: d_j = 2^{j*l}; n_iter = d_j^{1/l} = 2^j. Exponents
  // are clamped — reachable depths are bounded by the tree anyway.
  const std::int64_t d_total = std::int64_t{1}
                               << std::min(phase_ * ell_, 40);
  const std::int32_t n_iter = 1 << std::min(phase_, 20);
  std::vector<std::int32_t> team;
  for (std::int32_t i = 0; i < robots_used_; ++i) team.push_back(i);
  if (ell_ == 1) {
    top_ = std::make_unique<detail::LeafInstance>(
        view.root(),
        static_cast<std::int32_t>(std::min<std::int64_t>(
            d_total, std::numeric_limits<std::int32_t>::max() / 2)),
        team, view);
    return;
  }
  const std::int32_t d_child = static_cast<std::int32_t>(std::max<
      std::int64_t>(d_total / n_iter, 1));
  top_ = std::make_unique<detail::DivideInstance>(
      view.root(), ell_, k_star_, n_iter, d_child, std::move(team),
      /*auto_deep=*/false, view);
}

void BfdnEllAlgorithm::select_moves(const ExplorationView& view,
                                    MoveSelector& selector) {
  // A single engine round may involve several instantaneous bookkeeping
  // steps (robots turning inactive, iteration barriers firing, a new
  // depth phase starting) before somebody actually moves. The engine
  // treats a move-less round as termination, so we resolve bookkeeping
  // within the round: keep re-entering the instance until it either
  // selects a move or is genuinely finished.
  for (std::int32_t guard = 0; guard < 1 << 14; ++guard) {
    if (top_ == nullptr || top_->iterations_done()) {
      if (!view.exploration_complete()) {
        start_phase(view);
      } else if (top_ == nullptr || top_->terminated()) {
        return;  // everything explored, every robot inactive
      }
      // else: tree explored but robots still finishing their
      // depth-next excursions — let the deep-running instance drain.
    }
    top_->select(view, selector);
    for (std::int32_t i = 0; i < num_robots_; ++i) {
      if (selector.has_selected(i)) return;
    }
    if (view.exploration_complete() && top_->terminated()) return;
  }
  BFDN_CHECK(false, "BFDN_l failed to make progress within a round");
}

double theorem10_bound(std::int64_t n, std::int32_t depth,
                       std::int32_t max_degree, std::int32_t k,
                       std::int32_t ell) {
  BFDN_REQUIRE(ell >= 1, "ell >= 1");
  const double l = static_cast<double>(ell);
  const double log_term =
      std::min(std::log(static_cast<double>(std::max(max_degree, 1))),
               std::log(static_cast<double>(k)) / l);
  return 4.0 * static_cast<double>(n) /
             std::pow(static_cast<double>(k), 1.0 / l) +
         std::pow(2.0, l + 1.0) * (l + 1.0 + std::max(log_term, 0.0)) *
             std::pow(static_cast<double>(depth), 1.0 + 1.0 / l);
}

}  // namespace bfdn
