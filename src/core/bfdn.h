// Breadth-First Depth-Next (Algorithm 1) — the paper's primary
// contribution, in the complete-communication model.
//
// Robot life cycle: at the root a robot is (re-)anchored to the
// shallowest open node of minimum load (procedure Reanchor), walks to
// its anchor along explored edges in breadth-first moves (procedure BF,
// driven by a stack of path edges), then performs depth-next moves
// (procedure DN: take an adjacent unreserved dangling edge if any, else
// go up) until it reaches the root again.
//
// Guarantee (Theorem 1): exploration finishes and all robots are back at
// the root after at most 2n/k + D^2 (min(log k, log Delta) + 3) rounds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "support/rng.h"

namespace bfdn {

/// Anchor-choice policy of procedure Reanchor. The paper's rule is
/// kLeastLoaded; the alternatives exist for the ablation benches, which
/// show the log(k) term in Lemma 2 is earned by load balancing.
enum class ReanchorPolicy {
  kLeastLoaded,  // paper: argmin load among shallowest open nodes
  kRandom,       // uniform among shallowest open nodes
  kFirstFit,     // smallest node id among shallowest open nodes
  kMostLoaded,   // adversarially bad: argmax load
};

struct BfdnOptions {
  ReanchorPolicy policy = ReanchorPolicy::kLeastLoaded;
  /// Seed for the kRandom policy.
  std::uint64_t seed = 1;
  /// If >= 0, Reanchor only considers open nodes of depth <= depth_cap
  /// and robots whose anchor would exceed the cap become idle at the
  /// root (the BFDN_1(k, k, d) variant of Section 5).
  std::int32_t depth_cap = -1;
  /// Ablation of the design choice discussed after Algorithm 1: the
  /// paper sends a finished robot all the way back to the root before
  /// re-anchoring (which is what makes the write-read planner work).
  /// With this flag the robot re-anchors the moment its excursion ends
  /// and walks the shortest explored path to the new anchor instead.
  /// Complete-communication only; Claim 1's idle accounting and the
  /// write-read reduction do not apply to this variant.
  bool shortcut_reanchor = false;
  /// Verification-harness knob (src/verify): compute the Reanchor load
  /// n_v by scanning all robots' anchors instead of reading the
  /// incremental per-node counters. Semantically identical (and the
  /// differential oracle asserts so, run against run), just O(k) per
  /// query — the slow reference the counters are checked against.
  bool reference_loads = false;
  /// Verification-harness fault injection: set_anchor "forgets" to
  /// increment the new anchor's load counter on odd node ids — the
  /// classic off-by-one leak in the incremental Reanchor bookkeeping,
  /// which under-reports n_v on nodes that are still open and competed
  /// for. Only affects the counter path, never the reference_loads
  /// path, so the differential oracle must catch it. Never set outside
  /// tests.
  bool fault_load_leak = false;
};

class BfdnAlgorithm : public Algorithm {
 public:
  explicit BfdnAlgorithm(std::int32_t num_robots,
                         BfdnOptions options = BfdnOptions{});

  std::string name() const override;
  void begin(const ExplorationView& view) override;
  void select_moves(const ExplorationView& view,
                    MoveSelector& selector) override;
  std::vector<NodeId> anchors() const override;

  /// Async-safety (per-robot-clock engine). Every BFDN decision is a
  /// function of shared exploration state plus the deciding robot's own
  /// private (mode, anchor, path) — select_one never reads another
  /// robot's private state — so activating any subset of robots at a
  /// time step is well-defined and a robot that stays keeps staying
  /// until someone else moves (stay-stability). Holds for all ablation
  /// variants, including the step-only shortcut one.
  ActivationGranularity activation_granularity() const override;

  /// Fast-forward support. Every BFDN decision depends only on shared
  /// exploration state and the robot's own (mode, anchor, path), so BF
  /// descents and DN return climbs are committed segments. The shortcut
  /// ablation re-anchors mid-climb when passing the anchor — a decision
  /// point inside what would otherwise be a committed walk — so it
  /// stays step-only.
  TransitCapability transit_capability() const override;
  void plan_transit(const ExplorationView& view, std::int32_t robot,
                    TransitPlan& plan) override;
  void select_moves_subset(const ExplorationView& view,
                           MoveSelector& selector,
                           const std::vector<std::int32_t>& robots) override;

  /// Robots currently anchored at the root because the depth cap left
  /// them nothing to do ("inactive" in Section 5's terms).
  std::int32_t num_inactive() const;

 private:
  /// Robot mode. Navigation is *stateless* given (mode, anchor) and the
  /// observed position: an outbound robot recomputes its next step on
  /// the path to its anchor every round, so a cancelled move (Section
  /// 4.2 break-downs, including the reactive adversary of Remark 8)
  /// cannot desynchronize any stack — the robot simply retries.
  enum class Mode : std::uint8_t { kOutbound, kExploring };

  /// Procedure Reanchor for robot i; returns the chosen anchor, or
  /// kInvalidNode when no open node is eligible (robot idles at root).
  NodeId reanchor(const ExplorationView& view, std::int32_t robot);

  /// All anchor writes go through here so the per-node load counters
  /// (n_v in procedure Reanchor) stay incremental: load_of is O(1) and
  /// reanchor is O(candidates) instead of O(k * candidates).
  void set_anchor(std::size_t robot, NodeId v);
  std::int32_t load_of(NodeId v) const;

  std::int32_t num_robots_;
  BfdnOptions options_;
  Rng rng_;
  std::vector<NodeId> anchors_;  // v_i
  std::vector<Mode> modes_;
  std::vector<char> inactive_;  // idle-at-root flag (depth-cap variant)
  // anchor_load_[v] == #{j : anchors_[j] == v}; grown lazily (node ids
  // are dense and only explored nodes become anchors).
  std::vector<std::int32_t> anchor_load_;
  // Memoized path root -> anchors_[i] (paths_[i][d] is the depth-d node
  // on it), rebuilt once per reanchor. Purely a cache of a function of
  // the anchor, so navigation stays stateless: the BF next step from an
  // observed position pos on the path is paths_[i][depth(pos) + 1],
  // valid no matter how many moves an adversary cancelled.
  std::vector<std::vector<NodeId>> paths_;
  // Scratch for the kRandom policy's order-statistic selection.
  std::vector<NodeId> random_scratch_;

  void rebuild_path(std::size_t robot, NodeId anchor,
                    const ExplorationView& view);

  /// One robot's turn of the sequential selection loop; shared by
  /// select_moves and select_moves_subset so both modes run the exact
  /// same decision code.
  void select_one(const ExplorationView& view, MoveSelector& selector,
                  std::int32_t robot);
};

}  // namespace bfdn
