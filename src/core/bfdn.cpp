#include "core/bfdn.h"

#include <algorithm>
#include <limits>

#include "support/check.h"
#include "support/strings.h"

namespace bfdn {

BfdnAlgorithm::BfdnAlgorithm(std::int32_t num_robots, BfdnOptions options)
    : num_robots_(num_robots),
      options_(options),
      rng_(options.seed),
      anchors_(static_cast<std::size_t>(num_robots), kInvalidNode),
      modes_(static_cast<std::size_t>(num_robots), Mode::kExploring),
      inactive_(static_cast<std::size_t>(num_robots), 0),
      paths_(static_cast<std::size_t>(num_robots)) {
  BFDN_REQUIRE(num_robots >= 1, "need at least one robot");
}

std::string BfdnAlgorithm::name() const {
  const char* policy = "least-loaded";
  switch (options_.policy) {
    case ReanchorPolicy::kLeastLoaded: policy = "least-loaded"; break;
    case ReanchorPolicy::kRandom: policy = "random"; break;
    case ReanchorPolicy::kFirstFit: policy = "first-fit"; break;
    case ReanchorPolicy::kMostLoaded: policy = "most-loaded"; break;
  }
  const char* shortcut = options_.shortcut_reanchor ? "+shortcut" : "";
  if (options_.depth_cap >= 0) {
    return str_format("BFDN_1(d=%d, %s%s)", options_.depth_cap, policy,
                      shortcut);
  }
  return str_format("BFDN(%s%s)", policy, shortcut);
}

void BfdnAlgorithm::begin(const ExplorationView& view) {
  // "v_i <- root for all i" (line 2).
  std::fill(anchors_.begin(), anchors_.end(), view.root());
  std::fill(modes_.begin(), modes_.end(), Mode::kExploring);
  std::fill(inactive_.begin(), inactive_.end(), 0);
  anchor_load_.assign(static_cast<std::size_t>(view.root()) + 1, 0);
  anchor_load_[static_cast<std::size_t>(view.root())] = num_robots_;
}

void BfdnAlgorithm::set_anchor(std::size_t robot, NodeId v) {
  const NodeId old = anchors_[robot];
  if (old == v) return;
  if (old != kInvalidNode) {
    --anchor_load_[static_cast<std::size_t>(old)];
  }
  if (static_cast<std::size_t>(v) >= anchor_load_.size()) {
    anchor_load_.resize(static_cast<std::size_t>(v) + 1, 0);
  }
  // The injected fault (verification-harness demo) leaks the increment
  // on odd-id anchors, under-reporting n_v on nodes that are still open
  // and competed for; see BfdnOptions::fault_load_leak.
  if (!options_.fault_load_leak || v % 2 == 0) {
    ++anchor_load_[static_cast<std::size_t>(v)];
  }
  anchors_[robot] = v;
}

std::int32_t BfdnAlgorithm::load_of(NodeId v) const {
  if (options_.reference_loads) {
    // Slow reference: n_v recomputed from first principles every query.
    std::int32_t count = 0;
    for (const NodeId a : anchors_) count += a == v ? 1 : 0;
    return count;
  }
  const auto idx = static_cast<std::size_t>(v);
  return idx < anchor_load_.size() ? anchor_load_[idx] : 0;
}

void BfdnAlgorithm::rebuild_path(std::size_t robot, NodeId anchor,
                                 const ExplorationView& view) {
  auto& path = paths_[robot];
  path.resize(static_cast<std::size_t>(view.depth(anchor)) + 1);
  for (NodeId cur = anchor;; cur = view.parent(cur)) {
    path[static_cast<std::size_t>(view.depth(cur))] = cur;
    if (cur == view.root()) break;
  }
}

NodeId BfdnAlgorithm::reanchor(const ExplorationView& view,
                               std::int32_t /*robot*/) {
  if (view.exploration_complete()) return kInvalidNode;
  const std::int32_t d = view.min_open_depth();
  if (options_.depth_cap >= 0 && d > options_.depth_cap) {
    return kInvalidNode;  // BFDN_1(k, k, d): nothing shallow left to do
  }
  const std::vector<NodeId>& candidates = view.open_nodes_at_depth(d);
  BFDN_CHECK(!candidates.empty(), "open depth with no open node");

  // The bucket is unsorted; all policies tie-break on the smallest node
  // id so the choice matches a scan of the candidates in id order.
  switch (options_.policy) {
    case ReanchorPolicy::kLeastLoaded: {
      NodeId best = candidates.front();
      std::int32_t best_load = load_of(best);
      for (NodeId v : candidates) {
        const std::int32_t load = load_of(v);
        if (load < best_load || (load == best_load && v < best)) {
          best = v;
          best_load = load;
        }
      }
      return best;
    }
    case ReanchorPolicy::kMostLoaded: {
      NodeId best = candidates.front();
      std::int32_t best_load = load_of(best);
      for (NodeId v : candidates) {
        const std::int32_t load = load_of(v);
        if (load > best_load || (load == best_load && v < best)) {
          best = v;
          best_load = load;
        }
      }
      return best;
    }
    case ReanchorPolicy::kFirstFit:
      return *std::min_element(candidates.begin(), candidates.end());
    case ReanchorPolicy::kRandom: {
      // r-th smallest id, to match drawing from an id-sorted list.
      const auto r = static_cast<std::ptrdiff_t>(
          rng_.next_below(candidates.size()));
      random_scratch_.assign(candidates.begin(), candidates.end());
      std::nth_element(random_scratch_.begin(), random_scratch_.begin() + r,
                       random_scratch_.end());
      return random_scratch_[static_cast<std::size_t>(r)];
    }
  }
  BFDN_CHECK(false, "unreachable reanchor policy");
  return kInvalidNode;
}

void BfdnAlgorithm::select_moves(const ExplorationView& view,
                                 MoveSelector& selector) {
  for (std::int32_t i = 0; i < num_robots_; ++i) {
    // Section 4.2 variant: blocked robots take no part in the
    // sequential assignment (so they cannot hoard dangling edges).
    if (!view.can_move(i)) continue;
    select_one(view, selector, i);
  }
}

void BfdnAlgorithm::select_moves_subset(
    const ExplorationView& view, MoveSelector& selector,
    const std::vector<std::int32_t>& robots) {
  // Fast-forward never runs under an adversary, so every listed robot
  // is movable; the index-order walk keeps Claim 2's reservation order.
  for (std::int32_t i : robots) select_one(view, selector, i);
}

void BfdnAlgorithm::select_one(const ExplorationView& view,
                               MoveSelector& selector, std::int32_t i) {
  const std::size_t idx = static_cast<std::size_t>(i);
  const NodeId pos = view.robot_pos(i);

  if (pos == view.root()) {
    const NodeId anchor = reanchor(view, i);
    if (anchor == kInvalidNode) {
      set_anchor(idx, view.root());
      modes_[idx] = Mode::kExploring;
      inactive_[idx] = 1;
    } else {
      const NodeId previous = anchors_[idx];
      set_anchor(idx, anchor);
      modes_[idx] = Mode::kOutbound;
      inactive_[idx] = 0;
      rebuild_path(idx, anchor, view);
      selector.note_reanchor(view.depth(anchor));
      if (previous != anchor) {
        selector.note_reanchor_switch(view.depth(anchor));
      }
    }
  }

  if (modes_[idx] == Mode::kOutbound) {
    if (pos == anchors_[idx]) {
      modes_[idx] = Mode::kExploring;  // arrived; fall into DN below
    } else if (view.is_ancestor_or_self(pos, anchors_[idx])) {
      // Procedure BF: one explored edge down towards the anchor
      // (paths_[idx] caches the root -> anchor path).
      selector.move_down(
          i, paths_[idx][static_cast<std::size_t>(view.depth(pos)) + 1]);
      return;
    } else {
      // Only reachable in the shortcut ablation: climb to the LCA
      // first, then the ancestor branch above descends.
      selector.move_up(i);
      return;
    }
  }

  // Procedure DN: dangling-and-unselected edge if any, else up.
  if (selector.try_take_dangling(i) != kInvalidNode) return;
  if (options_.shortcut_reanchor && pos == anchors_[idx] &&
      pos != view.root()) {
    // Excursion over (about to leave T(anchor) upwards): re-anchor
    // from here and take the shortest explored path instead of
    // returning to the root first.
    const NodeId anchor = reanchor(view, i);
    if (anchor != kInvalidNode && anchor != pos) {
      const NodeId previous = anchors_[idx];
      set_anchor(idx, anchor);
      modes_[idx] = Mode::kOutbound;
      inactive_[idx] = 0;
      rebuild_path(idx, anchor, view);
      selector.note_reanchor(view.depth(anchor));
      if (previous != anchor) {
        selector.note_reanchor_switch(view.depth(anchor));
      }
      if (view.is_ancestor_or_self(pos, anchor)) {
        selector.move_down(
            i, paths_[idx][static_cast<std::size_t>(view.depth(pos)) + 1]);
      } else {
        selector.move_up(i);
      }
      return;
    }
    // Nothing open anywhere: fall through and climb home.
  }
  selector.move_up(i);
}

ActivationGranularity BfdnAlgorithm::activation_granularity() const {
  return ActivationGranularity::kAsyncSafe;
}

TransitCapability BfdnAlgorithm::transit_capability() const {
  // The shortcut ablation re-anchors the moment an excursion ends —
  // i.e. in the middle of what the planner below would commit as an
  // uninterrupted return climb — so it cannot expose segments.
  return options_.shortcut_reanchor ? TransitCapability::kStepOnly
                                    : TransitCapability::kCommittedSegments;
}

void BfdnAlgorithm::plan_transit(const ExplorationView& view,
                                 std::int32_t robot, TransitPlan& plan) {
  const std::size_t idx = static_cast<std::size_t>(robot);
  const NodeId pos = view.robot_pos(robot);

  if (inactive_[idx] != 0) {
    // Depth-cap parking (BFDN_1's "inactive" robots): reanchor returned
    // kInvalidNode because min_open_depth exceeded the cap (or nothing
    // is open), and min_open_depth never decreases — dangling counts
    // only shrink and a newly opened node is a child of a node that was
    // already open — so every future reanchor fails too and the robot
    // selects ⊥ forever.
    plan.kind = TransitPlan::Kind::kStayForever;
    return;
  }
  if (pos == view.root()) {
    // Next selection is a Reanchor decision — by definition an event.
    plan.kind = TransitPlan::Kind::kEvent;
    return;
  }
  if (modes_[idx] == Mode::kOutbound) {
    const NodeId anchor = anchors_[idx];
    if (!view.is_ancestor_or_self(pos, anchor)) {
      plan.kind = TransitPlan::Kind::kEvent;  // shortcut-only climb;
      return;                                 // unreachable (step-only)
    }
    // Procedure BF, whole descent: the root -> anchor path is committed
    // at reanchor time and consists of explored edges only, so no
    // concurrent discovery can change any step of it. Arrival at the
    // anchor (possibly zero steps away) is the event: the first DN
    // decision reads the anchor's live dangling state.
    plan.kind = TransitPlan::Kind::kWalk;
    const auto from = static_cast<std::size_t>(view.depth(pos)) + 1;
    const auto to = static_cast<std::size_t>(view.depth(anchor));
    for (std::size_t d = from; d <= to; ++d) {
      plan.path.push_back(paths_[idx][d]);
    }
    return;
  }
  // Procedure DN. A node with an unexplored child edge means the next
  // selection is a try_take_dangling that may win or lose against other
  // robots' reservations — an event.
  if (view.has_unexplored_child_edge(pos)) {
    plan.kind = TransitPlan::Kind::kEvent;
    return;
  }
  // Return climb: DN moves up until the first ancestor that still has
  // an unexplored child edge (or the root, where Reanchor runs).
  // Committed because dangling counts only decrease: an ancestor with
  // none now has none when the robot passes it. An ancestor that HAS
  // one now may lose it before arrival — arrival is therefore an event
  // round running the real try_take_dangling, which falls back to
  // another up-move if the edges are gone.
  plan.kind = TransitPlan::Kind::kWalk;
  NodeId cur = pos;
  while (cur != view.root()) {
    cur = view.parent(cur);
    plan.path.push_back(cur);
    if (view.has_unexplored_child_edge(cur)) break;
  }
}

std::vector<NodeId> BfdnAlgorithm::anchors() const { return anchors_; }

std::int32_t BfdnAlgorithm::num_inactive() const {
  std::int32_t count = 0;
  for (char flag : inactive_) count += flag;
  return count;
}

}  // namespace bfdn
