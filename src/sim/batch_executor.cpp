#include "sim/batch_executor.h"

#include <algorithm>

#include "sim/engine_internal.h"
#include "support/check.h"

namespace bfdn {

struct BatchExecutor::Member {
  std::unique_ptr<Algorithm> algorithm;
  RunConfig config;
  std::string coalesce_key;
  // Index of the earlier member whose run this one replicates, or -1
  // when the member executes itself.
  std::int32_t coalesce_with = -1;
};

BatchExecutor::BatchExecutor(const Tree& tree) : tree_(tree) {}
BatchExecutor::~BatchExecutor() = default;

std::int32_t BatchExecutor::add_member(
    std::unique_ptr<Algorithm> algorithm, const RunConfig& config,
    std::string coalesce_key) {
  BFDN_REQUIRE(!ran_, "add_member after run()");
  BFDN_REQUIRE(algorithm != nullptr, "member without an algorithm");
  BFDN_REQUIRE(config.num_robots >= 1, "need at least one robot");
  BFDN_REQUIRE(config.schedule == nullptr && config.reactive == nullptr &&
                   config.async == nullptr,
               "batch members run the synchronous complete-communication "
               "model; schedule/reactive/async runs go through "
               "run_exploration");
  Member member;
  member.algorithm = std::move(algorithm);
  member.config = config;
  member.coalesce_key = std::move(coalesce_key);
  members_.push_back(std::move(member));
  return static_cast<std::int32_t>(members_.size()) - 1;
}

std::size_t BatchExecutor::num_members() const { return members_.size(); }

std::vector<RunResult> BatchExecutor::run() {
  BFDN_REQUIRE(!ran_, "run() called twice");
  ran_ = true;
  const std::size_t n = members_.size();
  stats_.members = static_cast<std::int64_t>(n);
  std::vector<RunResult> results(n);

  // Coalescing: first member of each non-empty key executes; later
  // twins replicate its result below.
  for (std::size_t i = 0; i < n; ++i) {
    if (members_[i].coalesce_key.empty()) continue;
    for (std::size_t j = 0; j < i; ++j) {
      if (members_[j].coalesce_key == members_[i].coalesce_key) {
        members_[i].coalesce_with =
            members_[j].coalesce_with >= 0
                ? members_[j].coalesce_with
                : static_cast<std::int32_t>(j);
        break;
      }
    }
  }

  // Partition the executing members: the interleaved fast-forward pass
  // takes exactly the runs run_exploration would fast-forward; the
  // rest (per-round hooks, fast_forward off, step-only algorithms)
  // fall back to the solo engine, whose results are the definition of
  // correct. Fallbacks run first, in member order, so their per-round
  // hooks observe rounds in a deterministic order.
  std::vector<std::unique_ptr<engine_internal::FastForwardRun>> ff(n);
  for (std::size_t i = 0; i < n; ++i) {
    Member& member = members_[i];
    if (member.coalesce_with >= 0) {
      ++stats_.coalesced;
      continue;
    }
    ++stats_.distinct_runs;
    const RunConfig& config = member.config;
    const bool fast_forward =
        config.fast_forward && config.trace == nullptr &&
        config.observer == nullptr && !config.check_invariants &&
        member.algorithm->transit_capability() ==
            TransitCapability::kCommittedSegments;
    if (!fast_forward) {
      ++stats_.stepped_fallback;
      results[i] = run_exploration(tree_, *member.algorithm, config);
      continue;
    }
    ++stats_.interleaved;
    const std::int64_t max_rounds = config.max_rounds > 0
                                        ? config.max_rounds
                                        : default_round_limit(tree_);
    ff[i] = std::make_unique<engine_internal::FastForwardRun>(
        tree_, *member.algorithm, config.num_robots, max_rounds);
  }

  // The interleaved pass: always advance the run whose next selection
  // event is earliest (ties: lowest member index), so all runs move
  // through the tree's depth range together. Each advance() processes
  // one event round of one independent context; the schedule between
  // contexts is irrelevant to any of their results.
  for (;;) {
    std::size_t next = n;
    std::int64_t best_round = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (ff[i] == nullptr || ff[i]->done()) continue;
      const std::int64_t round = ff[i]->next_event_round();
      if (next == n || round < best_round) {
        next = i;
        best_round = round;
      }
    }
    if (next == n) break;
    if (!ff[next]->advance()) {
      results[next] = ff[next]->finish();
      ff[next].reset();
    }
  }
  // done() contexts that never got a final advance() call.
  for (std::size_t i = 0; i < n; ++i) {
    if (ff[i] != nullptr) {
      results[i] = ff[i]->finish();
      ff[i].reset();
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (members_[i].coalesce_with >= 0) {
      results[i] =
          results[static_cast<std::size_t>(members_[i].coalesce_with)];
    }
  }
  return results;
}

}  // namespace bfdn
