// Vectorized multi-run campaign executor: runs R explorations of one
// shared tree (seed sweeps, k sweeps, option sweeps) in a single
// interleaved pass instead of R independent engine invocations.
//
// Structure of arrays: every member run owns its per-run state
// (ExplorationState position/clock/frontier arrays, wake calendar,
// RunResult) while the tree's CSR arrays — the large read-only data —
// are shared by all of them. run() advances the member whose next
// selection event is earliest (ties broken by member index), so all
// runs sweep the tree's depth range roughly in lockstep and the tree
// data a run touches is the data its neighbors just touched — one
// cache-friendly pass over the shared structure per exploration phase
// rather than R cold passes.
//
// Bit-identity is structural, not approximated: each member executes
// through engine_internal::FastForwardRun, the exact event loop
// run_exploration uses, and a member's observable behavior depends
// only on its own state — so any interleaving reproduces the solo
// engine run for run (pinned by OracleCheck::kBatchEquivalence and
// tests/batch_executor_test.cpp).
//
// Fallbacks mirror run_exploration's: a member whose config forces the
// stepped loop (observer / trace / check_invariants / fast_forward off)
// or whose algorithm is step-only runs through run_exploration inside
// run(), in member order, before the interleaved pass. Members with a
// break-down schedule, reactive adversary or async scheduler are
// rejected at add_member — those execution models are per-run by
// construction and belong to run_exploration.
//
// Coalescing: members whose inputs provably describe the same run
// (e.g. a BFDN seed sweep under any non-random reanchor policy — the
// algorithm seed is only ever consumed by ReanchorPolicy::kRandom) may
// be tagged with equal coalesce keys by the caller; the run executes
// once and the result is replicated. The promise is the caller's, but
// it is differential-tested: the batch-equivalence oracle compares
// every member, replicated or not, against its own solo run.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.h"

namespace bfdn {

class BatchExecutor {
 public:
  /// The tree must outlive the executor; all members run on it.
  explicit BatchExecutor(const Tree& tree);
  ~BatchExecutor();

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  /// Adds one member run and returns its index (results come back in
  /// add order). The config must describe a synchronous
  /// complete-communication run: schedule, reactive and async members
  /// are rejected (BFDN_REQUIRE) — mixing per-run adversaries into a
  /// shared batch pass is not supported, use run_exploration.
  /// `coalesce_key`: members sharing a non-empty key are promised by
  /// the caller to be semantically identical runs; only the first
  /// executes and the others receive copies of its result. An empty
  /// key never coalesces.
  std::int32_t add_member(std::unique_ptr<Algorithm> algorithm,
                          const RunConfig& config,
                          std::string coalesce_key = {});

  std::size_t num_members() const;

  /// Executes every member and returns their results in add_member
  /// order, each bit-identical to run_exploration on the same inputs.
  /// Call at most once.
  std::vector<RunResult> run();

  struct Stats {
    std::int64_t members = 0;        // add_member calls
    std::int64_t distinct_runs = 0;  // actually executed
    std::int64_t coalesced = 0;      // members served by a twin's run
    std::int64_t interleaved = 0;    // distinct runs in the batched pass
    std::int64_t stepped_fallback = 0;  // distinct runs via the solo
                                        // engine (per-round hooks or a
                                        // step-only algorithm)
  };
  /// Populated by run().
  const Stats& stats() const { return stats_; }

 private:
  struct Member;

  const Tree& tree_;
  std::vector<Member> members_;
  Stats stats_;
  bool ran_ = false;
};

}  // namespace bfdn
