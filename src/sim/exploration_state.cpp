#include "sim/exploration_state.h"

#include <algorithm>

namespace bfdn {

ExplorationState::ExplorationState(const Tree& tree, std::int32_t num_robots)
    : tree_(tree), num_robots_(num_robots) {
  BFDN_REQUIRE(num_robots >= 1, "need at least one robot");
  const auto n = static_cast<std::size_t>(tree.num_nodes());
  robot_pos_.assign(static_cast<std::size_t>(num_robots), tree.root());
  explored_.assign(n, 0);
  dangling_.assign(n, {});
  reserved_.assign(n, 0);
  traversed_down_.assign(n, 0);
  traversed_up_.assign(n, 0);

  // Exploration starts with the root explored and all root edges dangling.
  explored_[static_cast<std::size_t>(tree.root())] = 1;
  num_explored_ = 1;
  auto& root_dangling = dangling_[static_cast<std::size_t>(tree.root())];
  const auto kids = tree.children(tree.root());
  root_dangling.assign(kids.begin(), kids.end());
  if (!root_dangling.empty()) mark_open(tree.root());
}

NodeId ExplorationState::robot_pos(std::int32_t robot) const {
  BFDN_REQUIRE(robot >= 0 && robot < num_robots_, "robot index");
  return robot_pos_[static_cast<std::size_t>(robot)];
}

void ExplorationState::set_robot_pos(std::int32_t robot, NodeId v) {
  BFDN_REQUIRE(robot >= 0 && robot < num_robots_, "robot index");
  robot_pos_[static_cast<std::size_t>(robot)] = v;
}

bool ExplorationState::is_explored(NodeId v) const {
  BFDN_REQUIRE(v >= 0 && v < tree_.num_nodes(), "node id");
  return explored_[static_cast<std::size_t>(v)] != 0;
}

std::int32_t ExplorationState::num_unexplored_child_edges(NodeId u) const {
  BFDN_REQUIRE(is_explored(u), "query on unexplored node");
  return static_cast<std::int32_t>(
             dangling_[static_cast<std::size_t>(u)].size()) +
         reserved_[static_cast<std::size_t>(u)];
}

std::int32_t ExplorationState::num_unreserved_dangling(NodeId u) const {
  BFDN_REQUIRE(is_explored(u), "query on unexplored node");
  return static_cast<std::int32_t>(
      dangling_[static_cast<std::size_t>(u)].size());
}

NodeId ExplorationState::reserve_dangling(NodeId u) {
  auto& pool = dangling_[static_cast<std::size_t>(u)];
  BFDN_REQUIRE(!pool.empty(), "no unreserved dangling edge at node");
  const NodeId child = pool.back();
  pool.pop_back();
  ++reserved_[static_cast<std::size_t>(u)];
  return child;
}

void ExplorationState::release_dangling(NodeId u, NodeId child) {
  BFDN_CHECK(reserved_[static_cast<std::size_t>(u)] > 0,
             "release without reservation");
  --reserved_[static_cast<std::size_t>(u)];
  dangling_[static_cast<std::size_t>(u)].push_back(child);
}

void ExplorationState::commit_dangling(NodeId u, NodeId child) {
  BFDN_CHECK(reserved_[static_cast<std::size_t>(u)] > 0,
             "commit without reservation");
  BFDN_CHECK(tree_.parent(child) == u, "edge does not hang off u");
  BFDN_CHECK(!is_explored(child), "child explored twice");
  --reserved_[static_cast<std::size_t>(u)];
  if (num_unexplored_child_edges(u) == 0) mark_closed(u);

  explored_[static_cast<std::size_t>(child)] = 1;
  ++num_explored_;
  auto& child_dangling = dangling_[static_cast<std::size_t>(child)];
  const auto kids = tree_.children(child);
  child_dangling.assign(kids.begin(), kids.end());
  if (!child_dangling.empty()) mark_open(child);
}

std::int32_t ExplorationState::min_open_depth() const {
  BFDN_REQUIRE(!open_by_depth_.empty(), "exploration is complete");
  return open_by_depth_.begin()->first;
}

std::vector<NodeId> ExplorationState::open_nodes_at_depth(
    std::int32_t depth) const {
  const auto it = open_by_depth_.find(depth);
  if (it == open_by_depth_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<NodeId> ExplorationState::open_nodes() const {
  std::vector<NodeId> out;
  for (const auto& [depth, nodes] : open_by_depth_) {
    out.insert(out.end(), nodes.begin(), nodes.end());
  }
  return out;
}

std::int64_t ExplorationState::num_open_nodes() const {
  std::int64_t total = 0;
  for (const auto& [depth, nodes] : open_by_depth_) {
    total += static_cast<std::int64_t>(nodes.size());
  }
  return total;
}

bool ExplorationState::record_traversal(NodeId child, bool downward) {
  auto& flag = downward ? traversed_down_[static_cast<std::size_t>(child)]
                        : traversed_up_[static_cast<std::size_t>(child)];
  if (flag) return false;
  flag = 1;
  ++edge_events_;
  return true;
}

void ExplorationState::mark_open(NodeId u) {
  open_by_depth_[tree_.depth(u)].insert(u);
}

void ExplorationState::mark_closed(NodeId u) {
  const auto it = open_by_depth_.find(tree_.depth(u));
  BFDN_CHECK(it != open_by_depth_.end(), "closing a node not open");
  it->second.erase(u);
  if (it->second.empty()) open_by_depth_.erase(it);
}

bool ExplorationView::can_move(std::int32_t robot) const {
  BFDN_REQUIRE(robot >= 0 && robot < num_robots(), "robot index");
  return movable_[static_cast<std::size_t>(robot)] != 0;
}

std::int32_t ExplorationView::depth(NodeId v) const {
  BFDN_REQUIRE(state_.is_explored(v), "depth of unexplored node");
  return state_.tree().depth(v);
}

NodeId ExplorationView::parent(NodeId v) const {
  BFDN_REQUIRE(state_.is_explored(v), "parent of unexplored node");
  return state_.tree().parent(v);
}

std::vector<NodeId> ExplorationView::explored_children(NodeId v) const {
  BFDN_REQUIRE(state_.is_explored(v), "children of unexplored node");
  std::vector<NodeId> out;
  for (NodeId c : state_.tree().children(v)) {
    if (state_.is_explored(c)) out.push_back(c);
  }
  return out;
}

std::vector<NodeId> ExplorationView::path_from_root(NodeId v) const {
  BFDN_REQUIRE(state_.is_explored(v), "path to unexplored node");
  return state_.tree().path_from_root(v);
}

bool ExplorationView::is_ancestor_or_self(NodeId a, NodeId b) const {
  BFDN_REQUIRE(state_.is_explored(a) && state_.is_explored(b),
               "ancestor query on unexplored nodes");
  return state_.tree().is_ancestor_or_self(a, b);
}

NodeId ExplorationView::ancestor_at_depth(NodeId v,
                                          std::int32_t target_depth) const {
  BFDN_REQUIRE(state_.is_explored(v), "ancestor of unexplored node");
  BFDN_REQUIRE(target_depth >= 0 && target_depth <= depth(v),
               "target depth out of range");
  NodeId cur = v;
  while (state_.tree().depth(cur) > target_depth) {
    cur = state_.tree().parent(cur);
  }
  return cur;
}

}  // namespace bfdn
