#include "sim/exploration_state.h"

#include <algorithm>

#include "support/rng.h"

namespace bfdn {

namespace {
const std::vector<NodeId> kNoOpenNodes;
}  // namespace

ExplorationState::ExplorationState(const Tree& tree, std::int32_t num_robots)
    : tree_(tree), num_robots_(num_robots) {
  BFDN_REQUIRE(num_robots >= 1, "need at least one robot");
  const auto n = static_cast<std::size_t>(tree.num_nodes());
  robot_pos_.assign(static_cast<std::size_t>(num_robots), tree.root());
  robot_clock_.assign(static_cast<std::size_t>(num_robots), 0);
  explored_.assign(n, 0);
  reserved_.assign(n, 0);
  traversed_down_.assign(n, 0);
  traversed_up_.assign(n, 0);

  // CSR dangling pool: one contiguous copy of every child list. A
  // node's slice starts pristine and is only consumed/recycled after
  // the node is explored, so commit_dangling never allocates.
  dangling_offset_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    dangling_offset_[v + 1] =
        dangling_offset_[v] + tree.num_children(static_cast<NodeId>(v));
  }
  dangling_pool_.assign(static_cast<std::size_t>(dangling_offset_[n]),
                        kInvalidNode);
  for (std::size_t v = 0; v < n; ++v) {
    const auto kids = tree.children(static_cast<NodeId>(v));
    std::copy(kids.begin(), kids.end(),
              dangling_pool_.begin() +
                  static_cast<std::ptrdiff_t>(dangling_offset_[v]));
  }
  dangling_count_.assign(n, 0);

  // Depth buckets pre-reserved to the per-depth node counts, so
  // mark_open is allocation-free for the lifetime of the state.
  open_buckets_.resize(static_cast<std::size_t>(tree.depth()) + 1);
  {
    std::vector<std::int64_t> at_depth(open_buckets_.size(), 0);
    for (NodeId v = 0; v < tree.num_nodes(); ++v) {
      ++at_depth[static_cast<std::size_t>(tree.depth(v))];
    }
    for (std::size_t d = 0; d < open_buckets_.size(); ++d) {
      open_buckets_[d].reserve(static_cast<std::size_t>(at_depth[d]));
    }
  }
  open_pos_.assign(n, -1);
  min_open_depth_ = static_cast<std::int32_t>(open_buckets_.size());

  // Exploration starts with the root explored and all root edges dangling.
  explored_[static_cast<std::size_t>(tree.root())] = 1;
  num_explored_ = 1;
  dangling_count_[static_cast<std::size_t>(tree.root())] =
      tree.num_children(tree.root());
  if (dangling_count_[static_cast<std::size_t>(tree.root())] > 0) {
    mark_open(tree.root());
  }
}

NodeId ExplorationState::robot_pos(std::int32_t robot) const {
  BFDN_REQUIRE(robot >= 0 && robot < num_robots_, "robot index");
  return robot_pos_[static_cast<std::size_t>(robot)];
}

void ExplorationState::set_robot_pos(std::int32_t robot, NodeId v) {
  BFDN_REQUIRE(robot >= 0 && robot < num_robots_, "robot index");
  robot_pos_[static_cast<std::size_t>(robot)] = v;
}

std::int64_t ExplorationState::robot_clock(std::int32_t robot) const {
  BFDN_REQUIRE(robot >= 0 && robot < num_robots_, "robot index");
  return std::max(clock_base_,
                  robot_clock_[static_cast<std::size_t>(robot)]);
}

void ExplorationState::set_robot_clock(std::int32_t robot, std::int64_t t) {
  BFDN_REQUIRE(robot >= 0 && robot < num_robots_, "robot index");
  robot_clock_[static_cast<std::size_t>(robot)] = t;
}

void ExplorationState::set_clock_base(std::int64_t t) { clock_base_ = t; }

bool ExplorationState::is_explored(NodeId v) const {
  BFDN_REQUIRE(v >= 0 && v < tree_.num_nodes(), "node id");
  return explored_[static_cast<std::size_t>(v)] != 0;
}

std::int32_t ExplorationState::num_unexplored_child_edges(NodeId u) const {
  BFDN_REQUIRE(is_explored(u), "query on unexplored node");
  return dangling_count_[static_cast<std::size_t>(u)] +
         reserved_[static_cast<std::size_t>(u)];
}

std::int32_t ExplorationState::num_unreserved_dangling(NodeId u) const {
  BFDN_REQUIRE(is_explored(u), "query on unexplored node");
  return dangling_count_[static_cast<std::size_t>(u)];
}

NodeId ExplorationState::reserve_dangling(NodeId u) {
  auto& count = dangling_count_[static_cast<std::size_t>(u)];
  BFDN_REQUIRE(count > 0, "no unreserved dangling edge at node");
  const NodeId child =
      dangling_pool_[static_cast<std::size_t>(
          dangling_offset_[static_cast<std::size_t>(u)] + count - 1)];
  --count;
  ++reserved_[static_cast<std::size_t>(u)];
  return child;
}

void ExplorationState::release_dangling(NodeId u, NodeId child) {
  BFDN_CHECK(reserved_[static_cast<std::size_t>(u)] > 0,
             "release without reservation");
  --reserved_[static_cast<std::size_t>(u)];
  auto& count = dangling_count_[static_cast<std::size_t>(u)];
  dangling_pool_[static_cast<std::size_t>(
      dangling_offset_[static_cast<std::size_t>(u)] + count)] = child;
  ++count;
}

void ExplorationState::commit_dangling(NodeId u, NodeId child) {
  BFDN_CHECK(reserved_[static_cast<std::size_t>(u)] > 0,
             "commit without reservation");
  BFDN_CHECK(tree_.parent(child) == u, "edge does not hang off u");
  BFDN_CHECK(!is_explored(child), "child explored twice");
  --reserved_[static_cast<std::size_t>(u)];
  if (num_unexplored_child_edges(u) == 0) mark_closed(u);

  explored_[static_cast<std::size_t>(child)] = 1;
  ++num_explored_;
  // The child's pool slice is pristine (a node is committed exactly
  // once), so arming its dangling edges is a counter write.
  const std::int32_t kids = tree_.num_children(child);
  dangling_count_[static_cast<std::size_t>(child)] = kids;
  if (kids > 0) mark_open(child);
}

std::int32_t ExplorationState::min_open_depth() const {
  BFDN_REQUIRE(num_open_ > 0, "exploration is complete");
  return min_open_depth_;
}

const std::vector<NodeId>& ExplorationState::open_nodes_at_depth(
    std::int32_t depth) const {
  BFDN_REQUIRE(depth >= 0, "negative depth");
  if (static_cast<std::size_t>(depth) >= open_buckets_.size()) {
    return kNoOpenNodes;
  }
  return open_buckets_[static_cast<std::size_t>(depth)];
}

std::vector<NodeId> ExplorationState::open_nodes() const {
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(num_open_));
  for (const auto& bucket : open_buckets_) {
    out.insert(out.end(), bucket.begin(), bucket.end());
  }
  return out;
}

bool ExplorationState::record_traversal(NodeId child, bool downward) {
  auto& flag = downward ? traversed_down_[static_cast<std::size_t>(child)]
                        : traversed_up_[static_cast<std::size_t>(child)];
  if (flag) return false;
  flag = 1;
  ++edge_events_;
  return true;
}

std::uint64_t ExplorationState::state_hash() const {
  // splitmix64 as the mixing function: absorb each word by xoring it
  // into the running state and taking one generator step.
  std::uint64_t h = 0x42464446u;  // arbitrary non-zero start ("BFDF")
  const auto absorb = [&h](std::uint64_t word) {
    std::uint64_t mixed = h ^ word;
    h = splitmix64(mixed);
  };
  for (const NodeId pos : robot_pos_) {
    absorb(static_cast<std::uint64_t>(static_cast<std::uint32_t>(pos)));
  }
  // Per-node observable flags, packed into one word per node so the
  // digest does not depend on how the flags are stored internally.
  const auto n = static_cast<std::size_t>(tree_.num_nodes());
  for (std::size_t v = 0; v < n; ++v) {
    std::uint64_t word = explored_[v] != 0 ? 1u : 0u;
    word |= static_cast<std::uint64_t>(traversed_down_[v] != 0 ? 1u : 0u)
            << 1;
    word |= static_cast<std::uint64_t>(traversed_up_[v] != 0 ? 1u : 0u) << 2;
    word |= static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                dangling_count_[v] + reserved_[v]))
            << 3;
    absorb(word);
  }
  absorb(static_cast<std::uint64_t>(num_open_));
  absorb(static_cast<std::uint64_t>(edge_events_));
  absorb(static_cast<std::uint64_t>(num_explored_));
  return h;
}

void ExplorationState::mark_open(NodeId u) {
  const auto d = static_cast<std::size_t>(tree_.depth(u));
  auto& bucket = open_buckets_[d];
  open_pos_[static_cast<std::size_t>(u)] =
      static_cast<std::int32_t>(bucket.size());
  bucket.push_back(u);
  ++num_open_;
  min_open_depth_ =
      std::min(min_open_depth_, static_cast<std::int32_t>(d));
}

void ExplorationState::mark_closed(NodeId u) {
  const auto d = static_cast<std::size_t>(tree_.depth(u));
  const std::int32_t pos = open_pos_[static_cast<std::size_t>(u)];
  BFDN_CHECK(pos >= 0, "closing a node not open");
  auto& bucket = open_buckets_[d];
  const NodeId moved = bucket.back();
  bucket[static_cast<std::size_t>(pos)] = moved;
  open_pos_[static_cast<std::size_t>(moved)] = pos;
  bucket.pop_back();
  open_pos_[static_cast<std::size_t>(u)] = -1;
  --num_open_;
  if (num_open_ == 0) {
    min_open_depth_ = static_cast<std::int32_t>(open_buckets_.size());
  } else if (bucket.empty() &&
             static_cast<std::int32_t>(d) == min_open_depth_) {
    while (open_buckets_[static_cast<std::size_t>(min_open_depth_)]
               .empty()) {
      ++min_open_depth_;
    }
  }
}

bool ExplorationView::can_move(std::int32_t robot) const {
  BFDN_REQUIRE(robot >= 0 && robot < num_robots(), "robot index");
  return movable_[static_cast<std::size_t>(robot)] != 0;
}

std::int32_t ExplorationView::depth(NodeId v) const {
  BFDN_REQUIRE(state_.is_explored(v), "depth of unexplored node");
  return state_.tree().depth(v);
}

NodeId ExplorationView::parent(NodeId v) const {
  BFDN_REQUIRE(state_.is_explored(v), "parent of unexplored node");
  return state_.tree().parent(v);
}

std::vector<NodeId> ExplorationView::explored_children(NodeId v) const {
  BFDN_REQUIRE(state_.is_explored(v), "children of unexplored node");
  std::vector<NodeId> out;
  for (NodeId c : state_.tree().children(v)) {
    if (state_.is_explored(c)) out.push_back(c);
  }
  return out;
}

std::vector<NodeId> ExplorationView::path_from_root(NodeId v) const {
  BFDN_REQUIRE(state_.is_explored(v), "path to unexplored node");
  return state_.tree().path_from_root(v);
}

bool ExplorationView::is_ancestor_or_self(NodeId a, NodeId b) const {
  BFDN_REQUIRE(state_.is_explored(a) && state_.is_explored(b),
               "ancestor query on unexplored nodes");
  return state_.tree().is_ancestor_or_self(a, b);
}

NodeId ExplorationView::ancestor_at_depth(NodeId v,
                                          std::int32_t target_depth) const {
  BFDN_REQUIRE(state_.is_explored(v), "ancestor of unexplored node");
  BFDN_REQUIRE(target_depth >= 0 && target_depth <= depth(v),
               "target depth out of range");
  NodeId cur = v;
  while (state_.tree().depth(cur) > target_depth) {
    cur = state_.tree().parent(cur);
  }
  return cur;
}

}  // namespace bfdn
