// Engine internals shared between the execution drivers: the stepped
// round loop and the async event loop in engine.cpp, and the batched
// campaign kernel in batch_executor.cpp. Everything here used to live
// in engine.cpp's anonymous namespace; it is exposed (under
// engine_internal) so the batch executor can replay the fast-forward
// semantics bit-identically instead of approximating them. Not part of
// the public simulation API — include sim/engine.h instead.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/engine.h"

namespace bfdn {

// Engine-private access to MoveSelector internals (friend of
// MoveSelector; see engine.h).
struct EngineAccess {
  static const std::vector<MoveSelector::Pending>& pending(
      const MoveSelector& sel) {
    return sel.pending_;
  }
  static const std::vector<std::uint64_t>& reanchors(
      const MoveSelector& sel) {
    return sel.reanchor_counts_;
  }
  static const std::vector<std::uint64_t>& reanchor_switches(
      const MoveSelector& sel) {
    return sel.reanchor_switch_counts_;
  }
  static const std::vector<std::pair<NodeId, NodeId>>& reservations(
      const MoveSelector& sel) {
    return sel.reserved_this_round_;
  }
};

namespace engine_internal {

/// Claim 4: all open nodes lie in the union of anchor subtrees.
void check_open_node_coverage(const Tree& tree,
                              const ExplorationState& state,
                              const std::vector<NodeId>& anchors);

/// Shared result/accounting setup for every engine mode.
void init_depth_accounting(const Tree& tree, RunResult& result,
                           std::vector<std::int64_t>& unexplored_at_depth);

/// Flushes the selector's per-depth reanchor counters into the result
/// histograms (identical in every engine mode).
void flush_reanchor_counts(const MoveSelector& selector, RunResult& result);

/// The MOVE step for one robot's selected move, identical in every
/// engine mode: position update, first-traversal flags, dangling commit
/// with depth-completion accounting, per-robot move counter. Returns
/// true iff the robot actually moved (i.e. not stay/none; the caller
/// does its own idle accounting). `commit_round` is the round recorded
/// in depth_completed_round when this move commits the last unexplored
/// node of a depth.
bool apply_pending_move(const Tree& tree, ExplorationState& state,
                        std::int32_t robot, const MoveSelector::Pending& p,
                        std::vector<std::int64_t>& unexplored_at_depth,
                        RunResult& result, std::int64_t commit_round);

/// One step of a committed walk (TransitPlan::kWalk): validates the
/// step, records the traversal and advances the robot. Shared between
/// the fast-forward engine (which executes whole walks eagerly), the
/// async engine (which replays them one activation at a time) and the
/// batch executor.
void apply_walk_step(const Tree& tree, ExplorationState& state,
                     std::int32_t robot, NodeId next, RunResult& result);

/// Resumable fast-forward execution context: run_fast_forward's event
/// loop cut at its event boundaries. One advance() call processes one
/// event round (the algorithm's real selection logic for the woken
/// robots, their moves, and the eager execution of any committed walks
/// they plan), including the analytic gap accounting that precedes the
/// event. The run's observable behavior is a pure function of
/// (tree, algorithm, k, max_rounds) — each context owns all of its
/// mutable state — so any interleaving of advance() calls across
/// independent contexts produces exactly the results of running each
/// context to completion on its own. BatchExecutor relies on this to
/// interleave R runs over one shared tree.
class FastForwardRun {
 public:
  FastForwardRun(const Tree& tree, Algorithm& algorithm, std::int32_t k,
                 std::int64_t max_rounds);

  /// Round of the next pending selection event; max_rounds + 1 when
  /// every robot is parked or capped (the next advance() terminates).
  std::int64_t next_event_round() const;

  bool done() const { return done_; }

  /// Processes one event round. Returns false once the run has ended
  /// (round limit, algorithm finished, or terminal all-stay).
  bool advance();

  /// Final accounting (round-limit flag, activation total, completion
  /// flags, state hash) and result hand-over. Call once, after done().
  RunResult finish();

 private:
  const Tree& tree_;
  Algorithm& algorithm_;
  const std::int32_t k_;
  const std::int64_t max_rounds_;
  ExplorationState state_;
  RunResult result_;
  std::vector<std::int64_t> unexplored_at_depth_;
  const std::vector<char> movable_;
  ExplorationView view_;
  MoveSelector selector_;
  // wake_[i]: next round in which robot i runs selection; parked robots
  // (kStayForever, or walks capped by the round limit) get the sentinel
  // max_rounds + 1 and never wake. All robots start awake at round 1.
  std::vector<std::int64_t> wake_;
  std::vector<char> parked_;
  std::int64_t num_parked_ = 0;
  std::vector<std::int32_t> woken_;
  TransitPlan plan_;  // reused; path keeps its capacity across events
  bool done_ = false;
  bool finished_ = false;
};

}  // namespace engine_internal
}  // namespace bfdn
