// ASCII rendering of trees and exploration traces — the terminal
// counterpart of the Python demo credited in the paper's
// acknowledgements. Intended for small trees (every node gets a line).
#pragma once

#include <string>
#include <vector>

#include "graph/tree.h"
#include "sim/engine.h"

namespace bfdn {

/// Indented tree listing: one line per node in DFS order, e.g.
///   0
///   ├─ 1  [R0 R2]
///   │  └─ 3
///   └─ 2
/// `annotations[v]` (optional, may be empty) is appended to node v's
/// line; pass {} for a bare tree.
std::string render_tree_ascii(const Tree& tree,
                              const std::vector<std::string>& annotations);

/// Renders one trace frame: the tree with per-node robot markers
/// ("[R0 R3]") as annotations.
std::string render_trace_frame(const Tree& tree, const TraceFrame& frame);

/// Per-robot summary of a full trace: moves made, deepest node reached,
/// rounds spent parked at the root.
struct RobotTraceSummary {
  std::int64_t moves = 0;
  std::int32_t deepest = 0;
  std::int64_t rounds_at_root = 0;
};
std::vector<RobotTraceSummary> summarize_trace(
    const Tree& tree, const std::vector<TraceFrame>& trace);

}  // namespace bfdn
