#include "sim/render.h"

#include <map>
#include <sstream>

#include "support/check.h"

namespace bfdn {
namespace {

void render_node(const Tree& tree, NodeId v, const std::string& prefix,
                 bool last_child, bool is_root,
                 const std::vector<std::string>& annotations,
                 std::ostringstream& oss) {
  oss << prefix;
  std::string child_prefix = prefix;
  if (!is_root) {
    oss << (last_child ? "└─ " : "├─ ");
    child_prefix += last_child ? "   " : "│  ";
  }
  oss << v;
  if (static_cast<std::size_t>(v) < annotations.size() &&
      !annotations[static_cast<std::size_t>(v)].empty()) {
    oss << "  " << annotations[static_cast<std::size_t>(v)];
  }
  oss << '\n';
  const auto kids = tree.children(v);
  for (std::size_t i = 0; i < kids.size(); ++i) {
    render_node(tree, kids[i], child_prefix, i + 1 == kids.size(), false,
                annotations, oss);
  }
}

}  // namespace

std::string render_tree_ascii(
    const Tree& tree, const std::vector<std::string>& annotations) {
  std::ostringstream oss;
  render_node(tree, tree.root(), "", true, true, annotations, oss);
  return oss.str();
}

std::string render_trace_frame(const Tree& tree, const TraceFrame& frame) {
  std::map<NodeId, std::string> markers;
  for (std::size_t r = 0; r < frame.positions.size(); ++r) {
    std::string& text = markers[frame.positions[r]];
    text += text.empty() ? "[R" : " R";
    text += std::to_string(r);
  }
  std::vector<std::string> annotations(
      static_cast<std::size_t>(tree.num_nodes()));
  for (auto& [node, text] : markers) {
    annotations[static_cast<std::size_t>(node)] = text + "]";
  }
  std::ostringstream oss;
  oss << "round " << frame.round << ":\n"
      << render_tree_ascii(tree, annotations);
  return oss.str();
}

std::vector<RobotTraceSummary> summarize_trace(
    const Tree& tree, const std::vector<TraceFrame>& trace) {
  if (trace.empty()) return {};
  const std::size_t k = trace.front().positions.size();
  std::vector<RobotTraceSummary> out(k);
  std::vector<NodeId> prev(k, tree.root());
  for (const TraceFrame& frame : trace) {
    BFDN_REQUIRE(frame.positions.size() == k, "ragged trace");
    for (std::size_t r = 0; r < k; ++r) {
      const NodeId pos = frame.positions[r];
      if (pos != prev[r]) ++out[r].moves;
      out[r].deepest = std::max(out[r].deepest, tree.depth(pos));
      if (pos == tree.root()) ++out[r].rounds_at_root;
      prev[r] = pos;
    }
  }
  return out;
}

}  // namespace bfdn
