// Synchronous round engine for collaborative tree exploration
// (complete-communication model, Section 2; break-down extension,
// Section 4.2).
//
// A round is: (1) the algorithm makes sequential per-robot selections
// through MoveSelector (mirroring Algorithm 1's "for i = 1 to k"
// decision loop, including exclusive reservation of dangling edges —
// Claim 2 holds by construction); (2) all selected moves execute
// synchronously and the partially explored tree is updated.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/tree.h"
#include "sim/exploration_state.h"
#include "support/stats.h"

namespace bfdn {

/// Adversarial movement schedule M(t, i) of Section 4.2. Outside the
/// break-down setting pass nullptr (every robot may always move).
class BreakdownSchedule {
 public:
  virtual ~BreakdownSchedule() = default;
  /// May robot `robot` move at round `t` (0-based)?
  virtual bool allowed(std::int64_t t, std::int32_t robot) = 0;
  /// True iff no robot will ever be allowed to move at round >= t.
  virtual bool exhausted(std::int64_t t) const = 0;
};

/// Per-robot virtual clock source for the asynchronous execution model
/// (see docs/MODEL.md, "Per-robot clocks"). The scheduler decides at
/// which virtual times each robot is activated; the engine processes
/// activations in ascending time order, robots sharing a time forming
/// one synchronous mini-round. Implementations must be deterministic
/// pure functions of (robot, now) — no internal state — so a run is
/// reproducible from the spec alone, and must satisfy
/// first_activation(i) >= 1 and next_activation(now, i) > now with all
/// gaps finite (every robot is activated infinitely often).
/// Concrete schedulers live in src/adversarial/async_scheduler.h.
class AsyncScheduler {
 public:
  virtual ~AsyncScheduler() = default;
  virtual std::string name() const = 0;
  /// Virtual time of robot's first activation (>= 1).
  virtual std::int64_t first_activation(std::int32_t robot) const = 0;
  /// Next activation of `robot` strictly after virtual time `now`.
  virtual std::int64_t next_activation(std::int64_t now,
                                       std::int32_t robot) const = 0;
  /// True iff every robot is activated at every virtual time (all
  /// clocks tick together) — the schedule under which the async engine
  /// must reproduce the synchronous engine bit-identically.
  virtual bool lockstep() const { return false; }
};

/// Remark 8 extension: an adversary that inspects the moves the robots
/// selected this round BEFORE deciding which robots to block. Blocked
/// robots stay put and their dangling-edge reservations return to the
/// pool. Implementations must stop blocking after a finite budget, or
/// the run only ends at the round limit. Requires algorithms that
/// navigate statelessly from observed positions (BfdnAlgorithm does).
class ReactiveAdversary {
 public:
  virtual ~ReactiveAdversary() = default;

  /// What the adversary sees about one robot's selection.
  struct ObservedMove {
    std::int32_t robot = 0;
    bool moves = false;           // false: stays anyway
    bool takes_dangling = false;  // would discover a new edge
  };

  /// Flags (size k) of robots to block this round.
  virtual std::vector<char> choose_blocked(
      std::int64_t round, const std::vector<ObservedMove>& observed) = 0;
};

/// Per-round move selection handed to the algorithm. One instance is
/// reused across rounds (reset() clears it) so the steady-state round
/// loop does not allocate.
class MoveSelector {
 public:
  MoveSelector(ExplorationState& state, const std::vector<char>& movable);

  /// Clears all selections, reservations and reanchor counts for the
  /// next round, keeping buffer capacity.
  void reset();

  /// Robot stays put (the paper's ⊥).
  void stay(std::int32_t robot);
  /// Moves one step towards the root; at the root this is ⊥/stay.
  void move_up(std::int32_t robot);
  /// Moves down an *explored* edge to the given explored child.
  void move_down(std::int32_t robot, NodeId child);
  /// Reserves and selects a dangling edge at the robot's position.
  /// Returns the opaque edge token, or kInvalidNode (selecting nothing)
  /// if no unreserved dangling edge exists there. Exclusive: no other
  /// try_take_dangling call this round can return the same token, which
  /// is exactly Claim 2's guarantee for BFDN's DN procedure.
  NodeId try_take_dangling(std::int32_t robot);

  /// Dangling edges at u already reserved this round (tokens usable
  /// with join_dangling). The general model permits several robots to
  /// traverse one edge synchronously; group-based algorithms such as
  /// CTE opt in through this pair of calls. BFDN never joins.
  std::vector<NodeId> reserved_dangling_at(NodeId u) const;

  /// Selects an already-reserved dangling edge for an additional robot
  /// at the same node (group traversal).
  void join_dangling(std::int32_t robot, NodeId token);

  /// Records that the algorithm re-anchored a robot to depth `depth`
  /// (Lemma 2 bookkeeping; purely observational).
  void note_reanchor(std::int32_t depth);

  /// Records a re-anchor that *changed* the robot's anchor. This is the
  /// quantity Lemma 2's urn-game argument bounds by
  /// k(min{log k, log Delta} + 3) per depth: repeated assignments to the
  /// same anchor (e.g. the root of a star, once per excursion) are not
  /// ball moves in the game and are excluded. Call in addition to
  /// note_reanchor when the anchor moved.
  void note_reanchor_switch(std::int32_t depth);

  bool has_selected(std::int32_t robot) const;

  /// Engine-facing move representation (read by the engine only).
  enum class Kind : std::uint8_t { kNone, kStay, kUp, kDownExplored,
                                   kDownDangling };
  struct Pending {
    Kind kind = Kind::kNone;
    NodeId target = kInvalidNode;  // child id for the down kinds
  };

 private:
  friend struct EngineAccess;
  void require_selectable(std::int32_t robot) const;

  ExplorationState& state_;
  const std::vector<char>& movable_;
  std::vector<Pending> pending_;
  // token -> node it hangs off, for join validation.
  std::vector<std::pair<NodeId, NodeId>> reserved_this_round_;
  // Reanchor counts indexed by depth (flat: note_reanchor must stay
  // allocation-free once warmed up to the deepest anchor seen).
  std::vector<std::uint64_t> reanchor_counts_;
  std::vector<std::uint64_t> reanchor_switch_counts_;
};

/// Whether an algorithm can expose per-robot committed transit segments
/// to the engine's fast-forward mode (see TransitPlan). kStepOnly
/// algorithms are always simulated round by round.
enum class TransitCapability : std::uint8_t {
  kStepOnly,
  kCommittedSegments,
};

/// Whether an algorithm's per-robot decisions stay correct when robots
/// are activated out of lockstep by an AsyncScheduler. kAsyncSafe
/// requires (1) select_moves_subset implemented for arbitrary batches
/// (not only the fast-forward wake sets), (2) each robot's decision to
/// depend only on shared exploration state plus that robot's private
/// state, (3) stay-stability: a robot that selected stay selects stay
/// again at its next activation if no move executed in between, and
/// (4) finished() left at the default. Lockstep-only algorithms under
/// an async RunConfig are auto-driven by the round-robin schedule,
/// i.e. executed synchronously.
enum class ActivationGranularity : std::uint8_t {
  kLockstep,
  kAsyncSafe,
};

/// One robot's committed plan between two of its decision points
/// ("events"), produced by Algorithm::plan_transit right after the
/// robot's move in an event round:
///  - kEvent: the robot's very next selection depends on shared state
///    (it may reanchor, take a dangling edge, ...); wake it next round.
///  - kWalk: the robot will deterministically traverse `path` (one node
///    per round, each step an up-move to the parent or a down-move along
///    an already-explored edge), then needs a fresh selection on the
///    round after arrival. An empty path is equivalent to kEvent.
///  - kStayForever: the robot selects stay (the paper's ⊥) in every
///    remaining round of the run, no matter how the state evolves.
/// The contract is that replaying the stepped engine would produce
/// exactly these moves; see docs/MODEL.md ("Fast-forward") for the
/// obligations this places on the algorithm.
struct TransitPlan {
  enum class Kind : std::uint8_t { kEvent, kWalk, kStayForever };
  Kind kind = Kind::kEvent;
  std::vector<NodeId> path;  // kWalk only; nodes visited, in order
};

/// A collaborative exploration algorithm in the complete-communication
/// model. Implementations keep their own per-robot state across rounds.
class Algorithm {
 public:
  virtual ~Algorithm() = default;

  virtual std::string name() const = 0;

  /// Called once before the first round.
  virtual void begin(const ExplorationView& view);

  /// Called every round; make one selection per robot (unselected robots
  /// stay). Selections for robots with view.can_move(i) == false are
  /// rejected by the selector.
  virtual void select_moves(const ExplorationView& view,
                            MoveSelector& selector) = 0;

  /// Early-termination signal for algorithms that finish away from the
  /// root (e.g. the recursive BFDN_l). Default: never; the engine then
  /// stops on the first round with no movement (Algorithm 1's do-while).
  virtual bool finished(const ExplorationView& view) const;

  /// Current anchor of each robot, if the algorithm is anchor-based;
  /// used by the optional Claim-4 invariant checker. Empty = not
  /// anchor-based.
  virtual std::vector<NodeId> anchors() const;

  /// Opt-in to the per-robot-clock engine (RunConfig::async). Default:
  /// kLockstep — the engine then drives the algorithm round-robin
  /// (synchronously) even when an async scheduler is configured.
  virtual ActivationGranularity activation_granularity() const;

  /// Opt-in to the engine's fast-forward mode. Default: kStepOnly.
  /// Implementations returning kCommittedSegments must also override
  /// plan_transit and select_moves_subset, must not override finished(),
  /// and their select_moves must decide each robot's move from shared
  /// exploration state plus that robot's own private state only (never
  /// from another robot's position) — the fast-forward engine advances
  /// robots out of lockstep between events.
  virtual TransitCapability transit_capability() const;

  /// Fast-forward planning hook, called for robot `robot` immediately
  /// after its move in an event round (post-MOVE state). Fills `plan`
  /// (cleared by the engine beforehand) with the robot's committed
  /// segment. Only called when transit_capability() is
  /// kCommittedSegments.
  virtual void plan_transit(const ExplorationView& view, std::int32_t robot,
                            TransitPlan& plan);

  /// Like select_moves but only for the given robots (ascending robot
  /// indices); all other robots are mid-walk or parked and make no
  /// selection. Must behave exactly as select_moves restricted to
  /// `robots` — in particular dangling-edge reservation order follows
  /// the given index order, preserving Claim 2. Only called when
  /// transit_capability() is kCommittedSegments.
  virtual void select_moves_subset(const ExplorationView& view,
                                   MoveSelector& selector,
                                   const std::vector<std::int32_t>& robots);
};

struct TraceFrame {
  std::int64_t round = 0;
  std::vector<NodeId> positions;
};

/// Per-round observation hook for the verification harness
/// (src/verify): called after the synchronous MOVE of every counted
/// round — including all-stay rounds under break-downs, where time
/// passes without movement — with the post-move state. The reference is
/// only valid during the call.
class RoundObserver {
 public:
  virtual ~RoundObserver() = default;
  virtual void on_round(std::int64_t round, const ExplorationState& state) = 0;
};

struct RunConfig {
  std::int32_t num_robots = 1;
  /// 0 = automatic limit (comfortably above the 3*D*n termination bound).
  std::int64_t max_rounds = 0;
  /// Check Claims 2 and 4 every round (slow; for tests).
  bool check_invariants = false;
  /// Break-down adversary; nullptr = all robots always move.
  BreakdownSchedule* schedule = nullptr;
  /// Reactive adversary (Remark 8); mutually exclusive with `schedule`.
  ReactiveAdversary* reactive = nullptr;
  /// Per-robot-clock activation source; nullptr = the synchronous
  /// model (all robots activated every round). Mutually exclusive with
  /// `schedule` and `reactive`. Algorithms advertising kAsyncSafe run
  /// through the async event loop; kLockstep algorithms are auto-driven
  /// by the round-robin schedule (i.e. the scheduler is ignored and the
  /// run is synchronous; see docs/MODEL.md).
  AsyncScheduler* async = nullptr;
  /// If non-null, receives one frame per executed round.
  std::vector<TraceFrame>* trace = nullptr;
  /// If non-null, called after every counted round (verification hook).
  RoundObserver* observer = nullptr;
  /// Event-driven fast-forward: between events the engine executes each
  /// robot's committed walk in one batched update instead of stepping
  /// every round. Results are identical to the stepped engine. Auto-
  /// disabled (falls back to stepping) when the algorithm is step-only,
  /// an observer/trace/invariant-checker needs per-round state, or a
  /// break-down schedule / reactive adversary can interrupt transits.
  bool fast_forward = true;
};

struct RunResult {
  /// Rounds executed (the terminal all-stay round is not counted, as in
  /// the paper's do-while).
  std::int64_t rounds = 0;
  bool complete = false;      // every node explored
  bool all_at_root = false;   // every robot back at the root
  bool hit_round_limit = false;
  std::int64_t edge_events = 0;
  /// Rounds in which at least one *movable* robot stayed put.
  std::int64_t rounds_with_idle = 0;
  /// Total robot-rounds in which a movable robot stayed put.
  std::int64_t idle_robot_rounds = 0;
  /// Moves actually performed, per robot; sum = k*A(M) in Section 4.2.
  std::vector<std::int64_t> robot_moves;
  /// Reanchor calls per returned depth (Lemma 2).
  Histogram reanchors_by_depth;
  std::int64_t total_reanchors = 0;
  /// Reanchor calls that *changed* the robot's anchor, per depth — the
  /// per-depth quantity Lemma 2 bounds by k(min{log k, log Delta} + 3)
  /// (see MoveSelector::note_reanchor_switch).
  Histogram reanchor_switches_by_depth;
  std::int64_t total_reanchor_switches = 0;
  /// Robot-moves cancelled by a reactive adversary (Remark 8).
  std::int64_t reactive_blocks = 0;
  /// Robot-activation slots in counted rounds: one per (robot, time)
  /// pair in which the scheduler activated the robot and the round was
  /// counted. Synchronously this is movable-robots x counted rounds
  /// (= k x rounds outside break-downs); under an async schedule, the
  /// sum of mini-round batch sizes over counted event times. The
  /// bench's activations/s throughput denominator.
  std::int64_t total_activations = 0;
  /// depth_completed_round[d]: first round after which every node at
  /// depth d is explored (-1 if the run ended before that; [0] == 0).
  /// BFDN's breadth-first re-anchoring makes this strictly increasing
  /// and front-loaded; depth-first swarms fill it almost all at once.
  std::vector<std::int64_t> depth_completed_round;
  /// Digest of the final ExplorationState (positions, per-edge traversal
  /// flags, counters); lets differential checks compare end states of
  /// two runs without attaching an observer.
  std::uint64_t final_state_hash = 0;
};

/// Runs `algorithm` on `tree` until termination (see RunConfig).
RunResult run_exploration(const Tree& tree, Algorithm& algorithm,
                          const RunConfig& config);

/// The automatic round limit run_exploration applies when
/// RunConfig::max_rounds == 0: comfortably above the 3*D*n termination
/// bound. Exposed so callers driving slow async schedules can scale it.
std::int64_t default_round_limit(const Tree& tree);

/// Theorem 1 right-hand side: 2n/k + D^2 (min(log k, log Delta) + 3).
double theorem1_bound(std::int64_t n, std::int32_t depth,
                      std::int32_t max_degree, std::int32_t k);

/// Lemma 2 right-hand side: k (min(log k, log Delta) + 3).
double lemma2_bound(std::int32_t k, std::int32_t max_degree);

/// Offline lower bound, stated in the paper as max(2n/k, 2D): every
/// edge is crossed in both directions and some robot must reach the
/// deepest node and come home. The exact edge count is n - 1, so we
/// use max(2(n-1)/k, 2D) — a single-robot DFS achieves exactly 2(n-1).
double offline_lower_bound(std::int64_t n, std::int32_t depth,
                           std::int32_t k);

}  // namespace bfdn
