// Partially explored tree — the online information state of Section 2.
//
// The hidden ground-truth Tree lives in the engine; algorithms interact
// only with ExplorationView, which exposes exactly what the paper's
// model reveals: explored nodes, discovered edges (including dangling
// ones), node depths within the discovered tree, and robot positions.
//
// Edge identity. In a tree every non-root node c corresponds to the
// unique edge (parent(c), c); we therefore key edges by the child's
// NodeId. For a *dangling* edge the child id acts as an opaque
// reservation token: algorithms never learn anything about the subtree
// behind it until a robot traverses the edge (the view offers no
// accessor on unexplored nodes, and dangling edges at a node are handed
// out one at a time by the reservation API).
//
// Hot-path layout. Everything the per-round loop touches is flat and
// incrementally maintained, so a steady-state round allocates nothing:
//  * open nodes live in depth-indexed buckets (vector-of-vectors with a
//    per-node in-bucket position index for O(1) insert and swap-remove)
//    behind a cached min-open-depth cursor;
//  * dangling edges live in one CSR-shaped pool sliced per node — a
//    prefix of each node's child list is "unreserved", reserve/release
//    move the slice boundary.
// Accessors hand out const references into the buckets instead of
// copies; see the invalidation contract on open_nodes_at_depth.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/tree.h"
#include "support/check.h"

namespace bfdn {

class ExplorationState {
 public:
  ExplorationState(const Tree& tree, std::int32_t num_robots);

  const Tree& tree() const { return tree_; }
  std::int32_t num_robots() const { return num_robots_; }

  // --- robot positions -----------------------------------------------
  NodeId robot_pos(std::int32_t robot) const;
  void set_robot_pos(std::int32_t robot, NodeId v);

  // --- per-robot virtual clocks ----------------------------------------
  /// Number of activations this robot has received so far. Under the
  /// synchronous model every robot's clock equals the round counter; an
  /// AsyncScheduler makes them diverge. Clocks are *derived* scheduling
  /// metadata, not observable exploration state, so they do NOT enter
  /// state_hash(): two executions reaching the same configuration at
  /// different robot speeds hash equal.
  std::int64_t robot_clock(std::int32_t robot) const;
  /// Sets one robot's clock (async engine, per activation slot).
  void set_robot_clock(std::int32_t robot, std::int64_t t);
  /// Sets every robot's clock at once, O(1) (sync/fast-forward engines:
  /// all clocks tick together). A later set_robot_clock overrides the
  /// base for that robot only.
  void set_clock_base(std::int64_t t);

  // --- explored / dangling bookkeeping --------------------------------
  bool is_explored(NodeId v) const;
  /// Number of incident child edges of u not yet traversed (dangling,
  /// whether or not currently reserved for this round).
  std::int32_t num_unexplored_child_edges(NodeId u) const;
  /// Number of dangling edges at u available for reservation right now.
  std::int32_t num_unreserved_dangling(NodeId u) const;

  /// Reserves one dangling edge at u for this round; returns the hidden
  /// child id (opaque token). Requires num_unreserved_dangling(u) > 0.
  NodeId reserve_dangling(NodeId u);
  /// Returns a reserved edge to the pool (robot was blocked).
  void release_dangling(NodeId u, NodeId child);
  /// Commits a reserved edge: the robot moved through it; the child
  /// becomes explored and its own child edges become dangling.
  void commit_dangling(NodeId u, NodeId child);

  // --- open nodes (adjacent to >= 1 unexplored edge) -------------------
  bool exploration_complete() const { return num_open_ == 0; }
  /// Depth of the shallowest open node; requires !exploration_complete().
  /// O(1): the cursor is maintained incrementally.
  std::int32_t min_open_depth() const;
  /// Open nodes at exactly the given depth (may be empty). Zero-copy:
  /// the reference stays valid — and its contents stable — across
  /// reserve/release calls, but is INVALIDATED by commit_dangling
  /// (which mutates the buckets). Bucket order is maintenance order,
  /// not sorted; consumers needing a canonical order must impose their
  /// own tie-breaks (see BfdnAlgorithm::reanchor).
  const std::vector<NodeId>& open_nodes_at_depth(std::int32_t depth) const;
  /// Largest depth that could hold an open node (== tree depth); for
  /// bucket scans of the form [min_open_depth() .. max_open_depth()].
  std::int32_t max_open_depth() const {
    return static_cast<std::int32_t>(open_buckets_.size()) - 1;
  }
  /// All open nodes, ascending depth (bucket order within a depth).
  /// Allocates; for tests and invariant checkers, not the round loop.
  std::vector<NodeId> open_nodes() const;
  std::int64_t num_open_nodes() const { return num_open_; }

  // --- edge-event accounting (Section 5) -------------------------------
  /// Marks a traversal of edge (parent(v), v) in the given direction;
  /// returns true iff this is the first traversal in that direction
  /// (an "edge event").
  bool record_traversal(NodeId child, bool downward);
  std::int64_t edge_events() const { return edge_events_; }

  std::int64_t num_explored_nodes() const { return num_explored_; }

  /// 64-bit digest of the observable exploration state: robot positions,
  /// the explored set, per-node unexplored-edge counts and the
  /// first-traversal flags. Independent of internal layout (bucket
  /// order, pool slicing), so two states that evolved through the same
  /// decisions hash equal even across representation refactors. O(n);
  /// for the trace record/replay harness (src/verify), not the round
  /// loop.
  std::uint64_t state_hash() const;

 private:
  void mark_open(NodeId u);
  void mark_closed(NodeId u);

  const Tree& tree_;
  std::int32_t num_robots_;
  std::vector<NodeId> robot_pos_;
  // Per-robot virtual clocks. robot_clock(i) = max(clock_base_,
  // robot_clock_[i]); the base lets the synchronous engines advance all
  // k clocks in O(1) per round.
  std::vector<std::int64_t> robot_clock_;
  std::int64_t clock_base_ = 0;
  std::vector<char> explored_;
  // Dangling pool, CSR-shaped: slots [dangling_offset_[u],
  // dangling_offset_[u] + dangling_count_[u]) hold u's unreserved
  // dangling children. Initialized once to the tree's child lists; a
  // node's slice is pristine until the node is explored.
  std::vector<std::int64_t> dangling_offset_;
  std::vector<NodeId> dangling_pool_;
  std::vector<std::int32_t> dangling_count_;
  // Per node: count of dangling edges reserved this round.
  std::vector<std::int32_t> reserved_;
  // Open nodes in depth-indexed flat buckets (index 0..tree depth),
  // each pre-reserved to the number of tree nodes at that depth so
  // discovery never reallocates. open_pos_[v] is v's index inside its
  // bucket, -1 when v is not open.
  std::vector<std::vector<NodeId>> open_buckets_;
  std::vector<std::int32_t> open_pos_;
  std::int64_t num_open_ = 0;
  // Cached cursor: depth of the shallowest open node; == bucket count
  // (sentinel) when no node is open.
  std::int32_t min_open_depth_ = 0;
  // Per edge (keyed by child id): first-traversal flags down/up.
  std::vector<char> traversed_down_;
  std::vector<char> traversed_up_;
  std::int64_t edge_events_ = 0;
  std::int64_t num_explored_ = 0;
};

/// Read-only facade handed to algorithms. Exposes only model-legal
/// information (no subtree sizes, no unexplored structure).
class ExplorationView {
 public:
  ExplorationView(const ExplorationState& state,
                  const std::vector<char>& movable)
      : state_(state), movable_(movable) {}

  std::int32_t num_robots() const { return state_.num_robots(); }
  NodeId root() const { return state_.tree().root(); }
  NodeId robot_pos(std::int32_t robot) const {
    return state_.robot_pos(robot);
  }
  /// This robot's virtual clock: how many activations it has received.
  /// Synchronously all clocks agree with the round counter; see
  /// docs/MODEL.md "Per-robot clocks".
  std::int64_t robot_clock(std::int32_t robot) const {
    return state_.robot_clock(robot);
  }
  /// Whether the adversary allows this robot to move this round
  /// (always true outside the break-down setting of Section 4.2).
  bool can_move(std::int32_t robot) const;

  bool is_explored(NodeId v) const { return state_.is_explored(v); }
  /// Depth of an *explored* node in the discovered tree (== true depth).
  std::int32_t depth(NodeId v) const;
  /// Parent of an explored non-root node in the discovered tree.
  NodeId parent(NodeId v) const;
  /// Explored children of an explored node (traversed edges only).
  /// Allocates; hot paths should use for_each_explored_child.
  std::vector<NodeId> explored_children(NodeId v) const;
  /// Allocation-free iteration over the explored children of an
  /// explored node, in child order.
  template <typename Fn>
  void for_each_explored_child(NodeId v, Fn&& fn) const {
    BFDN_REQUIRE(state_.is_explored(v), "children of unexplored node");
    for (NodeId c : state_.tree().children(v)) {
      if (state_.is_explored(c)) fn(c);
    }
  }

  bool has_unexplored_child_edge(NodeId u) const {
    return state_.num_unexplored_child_edges(u) > 0;
  }
  std::int32_t num_unexplored_child_edges(NodeId u) const {
    return state_.num_unexplored_child_edges(u);
  }
  bool has_unreserved_dangling(NodeId u) const {
    return state_.num_unreserved_dangling(u) > 0;
  }
  std::int32_t num_unreserved_dangling(NodeId u) const {
    return state_.num_unreserved_dangling(u);
  }

  bool exploration_complete() const { return state_.exploration_complete(); }
  std::int32_t min_open_depth() const { return state_.min_open_depth(); }
  /// Zero-copy; same reference-invalidation contract as
  /// ExplorationState::open_nodes_at_depth. Within one select_moves
  /// call no commit happens, so the reference is stable for the whole
  /// round's selection phase.
  const std::vector<NodeId>& open_nodes_at_depth(std::int32_t d) const {
    return state_.open_nodes_at_depth(d);
  }
  std::int32_t max_open_depth() const { return state_.max_open_depth(); }
  std::vector<NodeId> open_nodes() const { return state_.open_nodes(); }
  std::int64_t num_open_nodes() const { return state_.num_open_nodes(); }

  /// Path root -> v (inclusive) within the discovered tree. Allocates;
  /// hot paths should use ancestor_at_depth for single steps.
  std::vector<NodeId> path_from_root(NodeId v) const;

  /// Ancestor relation within the discovered tree (both explored).
  bool is_ancestor_or_self(NodeId a, NodeId b) const;
  /// Ancestor of v at the given depth (<= depth(v)), both explored.
  /// Allocation-free; the next BF step towards an anchor from pos is
  /// ancestor_at_depth(anchor, depth(pos) + 1).
  NodeId ancestor_at_depth(NodeId v, std::int32_t target_depth) const;

 private:
  const ExplorationState& state_;
  const std::vector<char>& movable_;
};

}  // namespace bfdn
