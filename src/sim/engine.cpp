#include "sim/engine.h"

#include <algorithm>
#include <cmath>

#include "sim/engine_internal.h"
#include "support/check.h"
#include "support/strings.h"

namespace bfdn {

using engine_internal::apply_pending_move;
using engine_internal::apply_walk_step;
using engine_internal::check_open_node_coverage;
using engine_internal::flush_reanchor_counts;
using engine_internal::init_depth_accounting;

MoveSelector::MoveSelector(ExplorationState& state,
                           const std::vector<char>& movable)
    : state_(state), movable_(movable) {
  pending_.assign(static_cast<std::size_t>(state.num_robots()), Pending{});
}

void MoveSelector::reset() {
  std::fill(pending_.begin(), pending_.end(), Pending{});
  reserved_this_round_.clear();
  std::fill(reanchor_counts_.begin(), reanchor_counts_.end(), 0);
  std::fill(reanchor_switch_counts_.begin(), reanchor_switch_counts_.end(),
            0);
}

void MoveSelector::require_selectable(std::int32_t robot) const {
  BFDN_REQUIRE(robot >= 0 && robot < state_.num_robots(), "robot index");
  BFDN_REQUIRE(movable_[static_cast<std::size_t>(robot)] != 0,
               "selection for a robot the adversary blocked this round");
  BFDN_REQUIRE(pending_[static_cast<std::size_t>(robot)].kind == Kind::kNone,
               "robot already selected a move this round");
}

void MoveSelector::stay(std::int32_t robot) {
  require_selectable(robot);
  pending_[static_cast<std::size_t>(robot)] = {Kind::kStay, kInvalidNode};
}

void MoveSelector::move_up(std::int32_t robot) {
  require_selectable(robot);
  const NodeId pos = state_.robot_pos(robot);
  if (pos == state_.tree().root()) {
    // "If Robot_i is at the root, up is interpreted as ⊥."
    pending_[static_cast<std::size_t>(robot)] = {Kind::kStay, kInvalidNode};
    return;
  }
  pending_[static_cast<std::size_t>(robot)] = {Kind::kUp, pos};
}

void MoveSelector::move_down(std::int32_t robot, NodeId child) {
  require_selectable(robot);
  BFDN_REQUIRE(state_.is_explored(child),
               "move_down target must be an explored child");
  BFDN_REQUIRE(state_.tree().parent(child) == state_.robot_pos(robot),
               "move_down target is not a child of the robot's position");
  pending_[static_cast<std::size_t>(robot)] = {Kind::kDownExplored, child};
}

NodeId MoveSelector::try_take_dangling(std::int32_t robot) {
  require_selectable(robot);
  const NodeId pos = state_.robot_pos(robot);
  if (state_.num_unreserved_dangling(pos) == 0) return kInvalidNode;
  const NodeId child = state_.reserve_dangling(pos);
  pending_[static_cast<std::size_t>(robot)] = {Kind::kDownDangling, child};
  reserved_this_round_.emplace_back(child, pos);
  return child;
}

std::vector<NodeId> MoveSelector::reserved_dangling_at(NodeId u) const {
  std::vector<NodeId> out;
  for (const auto& [token, at] : reserved_this_round_) {
    if (at == u) out.push_back(token);
  }
  return out;
}

void MoveSelector::join_dangling(std::int32_t robot, NodeId token) {
  require_selectable(robot);
  const NodeId pos = state_.robot_pos(robot);
  bool valid = false;
  for (const auto& [t, at] : reserved_this_round_) {
    if (t == token && at == pos) {
      valid = true;
      break;
    }
  }
  BFDN_REQUIRE(valid, "join_dangling token not reserved at robot's node");
  pending_[static_cast<std::size_t>(robot)] = {Kind::kDownDangling, token};
}

void MoveSelector::note_reanchor(std::int32_t depth) {
  BFDN_REQUIRE(depth >= 0, "negative reanchor depth");
  const auto d = static_cast<std::size_t>(depth);
  if (d >= reanchor_counts_.size()) reanchor_counts_.resize(d + 1, 0);
  ++reanchor_counts_[d];
}

void MoveSelector::note_reanchor_switch(std::int32_t depth) {
  BFDN_REQUIRE(depth >= 0, "negative reanchor depth");
  const auto d = static_cast<std::size_t>(depth);
  if (d >= reanchor_switch_counts_.size()) {
    reanchor_switch_counts_.resize(d + 1, 0);
  }
  ++reanchor_switch_counts_[d];
}

bool MoveSelector::has_selected(std::int32_t robot) const {
  BFDN_REQUIRE(robot >= 0 && robot < state_.num_robots(), "robot index");
  return pending_[static_cast<std::size_t>(robot)].kind != Kind::kNone;
}

void Algorithm::begin(const ExplorationView&) {}
bool Algorithm::finished(const ExplorationView&) const { return false; }
std::vector<NodeId> Algorithm::anchors() const { return {}; }

ActivationGranularity Algorithm::activation_granularity() const {
  return ActivationGranularity::kLockstep;
}

TransitCapability Algorithm::transit_capability() const {
  return TransitCapability::kStepOnly;
}

void Algorithm::plan_transit(const ExplorationView&, std::int32_t,
                             TransitPlan&) {
  BFDN_CHECK(false, "plan_transit called on a step-only algorithm");
}

void Algorithm::select_moves_subset(const ExplorationView&, MoveSelector&,
                                    const std::vector<std::int32_t>&) {
  BFDN_CHECK(false,
             "select_moves_subset called on a step-only algorithm");
}

// The shared per-move/per-round helpers below are declared in
// sim/engine_internal.h so batch_executor.cpp replays the exact same
// semantics; their definitions stay here next to the loops they mirror.
namespace engine_internal {

void check_open_node_coverage(const Tree& tree,
                              const ExplorationState& state,
                              const std::vector<NodeId>& anchors) {
  if (anchors.empty()) return;
  for (NodeId open : state.open_nodes()) {
    bool covered = false;
    for (NodeId anchor : anchors) {
      if (anchor != kInvalidNode &&
          tree.is_ancestor_or_self(anchor, open)) {
        covered = true;
        break;
      }
    }
    BFDN_CHECK(covered, str_format("Claim 4 violated: open node %d is in "
                                   "no anchor subtree",
                                   open));
  }
}

void init_depth_accounting(const Tree& tree, RunResult& result,
                           std::vector<std::int64_t>& unexplored_at_depth) {
  unexplored_at_depth.assign(static_cast<std::size_t>(tree.depth()) + 1, 0);
  for (NodeId v = 1; v < tree.num_nodes(); ++v) {
    ++unexplored_at_depth[static_cast<std::size_t>(tree.depth(v))];
  }
  result.depth_completed_round.assign(
      static_cast<std::size_t>(tree.depth()) + 1, -1);
  result.depth_completed_round[0] = 0;
  for (std::size_t d = 1; d < unexplored_at_depth.size(); ++d) {
    if (unexplored_at_depth[d] == 0) {
      result.depth_completed_round[d] = 0;  // hollow level (impossible
                                            // in a tree, but cheap)
    }
  }
}

void flush_reanchor_counts(const MoveSelector& selector, RunResult& result) {
  const std::vector<std::uint64_t>& reanchors =
      EngineAccess::reanchors(selector);
  for (std::size_t depth = 0; depth < reanchors.size(); ++depth) {
    if (reanchors[depth] == 0) continue;
    result.reanchors_by_depth.add(static_cast<std::int64_t>(depth),
                                  reanchors[depth]);
    result.total_reanchors += static_cast<std::int64_t>(reanchors[depth]);
  }
  const std::vector<std::uint64_t>& switches =
      EngineAccess::reanchor_switches(selector);
  for (std::size_t depth = 0; depth < switches.size(); ++depth) {
    if (switches[depth] == 0) continue;
    result.reanchor_switches_by_depth.add(static_cast<std::int64_t>(depth),
                                          switches[depth]);
    result.total_reanchor_switches +=
        static_cast<std::int64_t>(switches[depth]);
  }
}

bool apply_pending_move(const Tree& tree, ExplorationState& state,
                        std::int32_t robot, const MoveSelector::Pending& p,
                        std::vector<std::int64_t>& unexplored_at_depth,
                        RunResult& result, std::int64_t commit_round) {
  const NodeId pos = state.robot_pos(robot);
  switch (p.kind) {
    case MoveSelector::Kind::kNone:
    case MoveSelector::Kind::kStay:
      return false;
    case MoveSelector::Kind::kUp:
      BFDN_CHECK(p.target == pos, "stale up-move");
      state.set_robot_pos(robot, tree.parent(pos));
      state.record_traversal(pos, /*downward=*/false);
      ++result.robot_moves[static_cast<std::size_t>(robot)];
      return true;
    case MoveSelector::Kind::kDownExplored:
      state.set_robot_pos(robot, p.target);
      state.record_traversal(p.target, /*downward=*/true);
      ++result.robot_moves[static_cast<std::size_t>(robot)];
      return true;
    case MoveSelector::Kind::kDownDangling:
      if (!state.is_explored(p.target)) {
        state.commit_dangling(pos, p.target);
        const auto d = static_cast<std::size_t>(tree.depth(p.target));
        if (--unexplored_at_depth[d] == 0) {
          result.depth_completed_round[d] = commit_round;
        }
      }
      // else: a joiner; an earlier robot in this round's commit order
      // already explored the edge (group traversal).
      state.set_robot_pos(robot, p.target);
      state.record_traversal(p.target, /*downward=*/true);
      ++result.robot_moves[static_cast<std::size_t>(robot)];
      return true;
  }
  return false;  // unreachable
}

void apply_walk_step(const Tree& tree, ExplorationState& state,
                     std::int32_t robot, NodeId next, RunResult& result) {
  const NodeId cur = state.robot_pos(robot);
  if (cur != tree.root() && next == tree.parent(cur)) {
    state.record_traversal(cur, /*downward=*/false);
  } else {
    BFDN_CHECK(tree.parent(next) == cur && state.is_explored(next),
               "committed walk step is not an up-move or an "
               "explored down-move");
    state.record_traversal(next, /*downward=*/true);
  }
  state.set_robot_pos(robot, next);
  ++result.robot_moves[static_cast<std::size_t>(robot)];
}

// Event-driven fast-forward execution (engine_internal::FastForwardRun).
// Robots alternate between "event rounds", where they run the
// algorithm's real selection logic, and committed walks
// (TransitPlan::kWalk), which the engine executes in one batch the
// moment they are planned: the robot's position, the first-traversal
// flags and its move counter advance over the whole segment, and the
// robot is parked until its wake round. Because a committed-segment
// algorithm decides each robot's move from shared exploration state
// plus that robot's own private state only, and transit moves touch no
// shared state another robot's decision reads (traversal flags are
// write-only bookkeeping; dangling counts only ever decrease),
// executing the walk eagerly is indistinguishable from interleaving it
// with the other robots' rounds — the stepped engine would produce
// exactly the same moves. The round counter advances analytically over
// the gaps between events; every accounting rule below mirrors one
// line of the stepped loop (see docs/MODEL.md). The loop is cut at its
// event boundaries into an advance() method so the batch executor can
// interleave several runs; run_exploration drives one context straight
// through, which is the exact former single-run loop.
FastForwardRun::FastForwardRun(const Tree& tree, Algorithm& algorithm,
                               std::int32_t k, std::int64_t max_rounds)
    : tree_(tree),
      algorithm_(algorithm),
      k_(k),
      max_rounds_(max_rounds),
      state_(tree, k),
      movable_(static_cast<std::size_t>(k), 1),
      view_(state_, movable_),
      selector_(state_, movable_),
      wake_(static_cast<std::size_t>(k), 1),
      parked_(static_cast<std::size_t>(k), 0) {
  result_.robot_moves.assign(static_cast<std::size_t>(k), 0);
  init_depth_accounting(tree, result_, unexplored_at_depth_);
  algorithm_.begin(view_);
  woken_.reserve(static_cast<std::size_t>(k));
}

std::int64_t FastForwardRun::next_event_round() const {
  // Next event round: the earliest wake among non-parked robots.
  std::int64_t event_round = max_rounds_ + 1;
  for (std::int32_t i = 0; i < k_; ++i) {
    if (!parked_[static_cast<std::size_t>(i)]) {
      event_round =
          std::min(event_round, wake_[static_cast<std::size_t>(i)]);
    }
  }
  return event_round;
}

bool FastForwardRun::advance() {
  if (done_) return false;
  const std::int64_t event_round = next_event_round();

  // Gap rounds (result.rounds, event_round): every non-parked robot is
  // mid-walk and moves in each of them, so they all count; parked
  // robots stay, which is exactly the stepped loop's idle accounting.
  const std::int64_t gap_end = std::min(event_round - 1, max_rounds_);
  if (gap_end > result_.rounds) {
    const std::int64_t gap = gap_end - result_.rounds;
    if (num_parked_ > 0) {
      result_.rounds_with_idle += gap;
      result_.idle_robot_rounds += gap * num_parked_;
    }
    result_.rounds = gap_end;
  }
  if (event_round > max_rounds_) {
    // Either all robots are parked forever (stepped: the next round is
    // all-stay or past the limit) or every remaining walk was capped
    // at the limit; hit_round_limit is derived in finish().
    done_ = true;
    return false;
  }

  if (algorithm_.finished(view_)) {
    done_ = true;
    return false;
  }

  woken_.clear();
  for (std::int32_t i = 0; i < k_; ++i) {
    if (!parked_[static_cast<std::size_t>(i)] &&
        wake_[static_cast<std::size_t>(i)] == event_round) {
      woken_.push_back(i);
    }
  }

  // Selection, restricted to the woken robots; everyone else is
  // mid-walk (their move this round was already executed) or parked.
  state_.set_clock_base(event_round);
  selector_.reset();
  algorithm_.select_moves_subset(view_, selector_, woken_);
  const std::vector<MoveSelector::Pending>& pending =
      EngineAccess::pending(selector_);

  bool any_move = false;
  for (std::int32_t i : woken_) {
    const auto kind = pending[static_cast<std::size_t>(i)].kind;
    if (kind == MoveSelector::Kind::kUp ||
        kind == MoveSelector::Kind::kDownExplored ||
        kind == MoveSelector::Kind::kDownDangling) {
      any_move = true;
      break;
    }
  }
  if (!any_move) {
    // A mid-walk robot (wake beyond this round) still moves this
    // round; only if nobody moves is this Algorithm 1's terminal
    // all-stay round, which is not counted.
    bool walker_moving = false;
    for (std::int32_t i = 0; i < k_; ++i) {
      if (!parked_[static_cast<std::size_t>(i)] &&
          wake_[static_cast<std::size_t>(i)] > event_round) {
        walker_moving = true;
        break;
      }
    }
    if (!walker_moving) {
      done_ = true;
      return false;
    }
  }

  // Synchronous MOVE for the woken robots (mid-walk robots' moves for
  // this round were executed when their walk was planned).
  std::int64_t idle_movable = 0;
  for (std::int32_t i : woken_) {
    if (!apply_pending_move(tree_, state_, i,
                            pending[static_cast<std::size_t>(i)],
                            unexplored_at_depth_, result_, event_round)) {
      ++idle_movable;
    }
  }
  result_.rounds = event_round;
  idle_movable += num_parked_;
  if (idle_movable > 0) {
    ++result_.rounds_with_idle;
    result_.idle_robot_rounds += idle_movable;
  }
  flush_reanchor_counts(selector_, result_);

  // Re-plan every woken robot from the post-MOVE state and execute
  // committed walks immediately; the walk's steps occupy rounds
  // event_round + 1 .. event_round + len.
  for (std::int32_t i : woken_) {
    plan_.kind = TransitPlan::Kind::kEvent;
    plan_.path.clear();
    algorithm_.plan_transit(view_, i, plan_);
    switch (plan_.kind) {
      case TransitPlan::Kind::kStayForever:
        parked_[static_cast<std::size_t>(i)] = 1;
        ++num_parked_;
        break;
      case TransitPlan::Kind::kEvent:
        wake_[static_cast<std::size_t>(i)] = event_round + 1;
        break;
      case TransitPlan::Kind::kWalk: {
        const auto full_len = static_cast<std::int64_t>(plan_.path.size());
        const std::int64_t len =
            std::min(full_len, max_rounds_ - event_round);
        for (std::int64_t s = 0; s < len; ++s) {
          apply_walk_step(tree_, state_, i,
                          plan_.path[static_cast<std::size_t>(s)], result_);
        }
        // A limit-capped walk parks the robot just past the horizon.
        wake_[static_cast<std::size_t>(i)] =
            len < full_len ? max_rounds_ + 1 : event_round + len + 1;
        break;
      }
    }
  }
  return true;
}

RunResult FastForwardRun::finish() {
  BFDN_REQUIRE(done_, "finish() before the run ended");
  BFDN_REQUIRE(!finished_, "finish() called twice");
  finished_ = true;
  // The stepped loop flags the limit whenever it executes max_rounds
  // rounds without an earlier break (its limit check precedes the
  // round's all-stay test).
  if (result_.rounds >= max_rounds_) result_.hit_round_limit = true;
  // All clocks tick together: every robot is activated (mid-walk,
  // parked-stay or selecting) in every counted round, exactly like the
  // stepped loop.
  result_.total_activations =
      static_cast<std::int64_t>(k_) * result_.rounds;
  result_.complete = state_.num_explored_nodes() == tree_.num_nodes();
  result_.edge_events = state_.edge_events();
  result_.all_at_root = true;
  for (std::int32_t i = 0; i < k_; ++i) {
    if (state_.robot_pos(i) != tree_.root()) {
      result_.all_at_root = false;
      break;
    }
  }
  result_.final_state_hash = state_.state_hash();
  return std::move(result_);
}

}  // namespace engine_internal

namespace {

RunResult run_fast_forward(const Tree& tree, Algorithm& algorithm,
                           const RunConfig& config,
                           std::int64_t max_rounds) {
  engine_internal::FastForwardRun run(tree, algorithm, config.num_robots,
                                      max_rounds);
  while (run.advance()) {
  }
  return run.finish();
}

/// Per-robot-clock event loop (RunConfig::async). Time is a virtual
/// integer axis; the scheduler decides at which times each robot is
/// activated, and every loop iteration processes the earliest pending
/// activation time T as one synchronous mini-round over the robots
/// activated at T: selection against the pre-MOVE state, then MOVE in
/// ascending robot index — the same two-phase structure as the stepped
/// loop, so a lockstep (round-robin) schedule reproduces the
/// synchronous execution bit-exactly.
///
/// Two sub-modes, equivalent for committed-segment algorithms:
///  * plan-batched (default): after each selection the robot's transit
///    is planned once (plan_transit) and a kWalk path is replayed one
///    step per activation without calling back into the algorithm;
///    kStayForever parks the robot — it keeps its activation slots
///    (stay accounting) but never selects again.
///  * stepped fallback: every activation runs real selection. Forced by
///    per-round hooks (trace / observer / check_invariants) or a
///    step-only transit capability.
///
/// Termination: no global all-stay round exists under a partial
/// schedule, so the engine tracks the last time any robot moved and,
/// per robot, the last time it was activated and chose to stay. Once
/// every robot is parked or has stayed strictly after the last move,
/// stay-stability (part of the kAsyncSafe contract) guarantees nobody
/// ever moves again. Under round-robin this fires exactly on the
/// stepped loop's uncounted terminal all-stay round.
///
/// Accounting: an event time T is "counted" iff at least one move
/// executes at T. A counted event mirrors one stepped round: idle =
/// stay slots (including parked robots' slots), total_activations +=
/// batch size, depth completion and hooks use round = T. Uncounted
/// events contribute nothing, and result.rounds is the makespan — the
/// last counted time.
RunResult run_async(const Tree& tree, Algorithm& algorithm,
                    const RunConfig& config, std::int64_t max_rounds) {
  const std::int32_t k = config.num_robots;
  const AsyncScheduler& schedule = *config.async;
  ExplorationState state(tree, k);
  RunResult result;
  result.robot_moves.assign(static_cast<std::size_t>(k), 0);
  std::vector<std::int64_t> unexplored_at_depth;
  init_depth_accounting(tree, result, unexplored_at_depth);

  const std::vector<char> movable(static_cast<std::size_t>(k), 1);
  ExplorationView view(state, movable);
  algorithm.begin(view);
  MoveSelector selector(state, movable);

  const bool batched =
      algorithm.transit_capability() ==
          TransitCapability::kCommittedSegments &&
      config.trace == nullptr && config.observer == nullptr &&
      !config.check_invariants;

  std::vector<std::int64_t> next_time(static_cast<std::size_t>(k));
  for (std::int32_t i = 0; i < k; ++i) {
    const std::int64_t first = schedule.first_activation(i);
    BFDN_CHECK(first >= 1, "scheduler first_activation must be >= 1");
    next_time[static_cast<std::size_t>(i)] = first;
  }
  std::vector<char> parked(static_cast<std::size_t>(k), 0);
  // Batched-mode walk replay: walk_of[i] is robot i's committed path,
  // walk_pos[i] the next step; an exhausted path means the robot's next
  // activation runs selection.
  std::vector<std::vector<NodeId>> walk_of(static_cast<std::size_t>(k));
  std::vector<std::size_t> walk_pos(static_cast<std::size_t>(k), 0);

  std::vector<std::int64_t> last_stay_time(static_cast<std::size_t>(k), -1);
  std::int64_t last_move_time = 0;

  std::vector<std::int32_t> slots;      // robots activated at T, ascending
  std::vector<std::int32_t> selecting;  // the slots that run selection
  slots.reserve(static_cast<std::size_t>(k));
  selecting.reserve(static_cast<std::size_t>(k));
  TransitPlan plan;

  for (;;) {
    std::int64_t event_time = next_time[0];
    for (std::int32_t i = 1; i < k; ++i) {
      event_time = std::min(event_time, next_time[static_cast<std::size_t>(i)]);
    }
    if (algorithm.finished(view)) break;
    if (event_time > max_rounds) {
      result.hit_round_limit = true;
      break;
    }

    slots.clear();
    selecting.clear();
    for (std::int32_t i = 0; i < k; ++i) {
      if (next_time[static_cast<std::size_t>(i)] != event_time) continue;
      slots.push_back(i);
      const std::int64_t next = schedule.next_activation(event_time, i);
      BFDN_CHECK(next > event_time,
                 "scheduler next_activation must advance time");
      next_time[static_cast<std::size_t>(i)] = next;
      state.set_robot_clock(i, event_time);
      if (parked[static_cast<std::size_t>(i)]) continue;  // stay slot
      if (batched && walk_pos[static_cast<std::size_t>(i)] <
                         walk_of[static_cast<std::size_t>(i)].size()) {
        continue;  // mid-walk: the step is committed, no selection
      }
      selecting.push_back(i);
    }

    selector.reset();
    if (!selecting.empty()) {
      algorithm.select_moves_subset(view, selector, selecting);
    }
    const std::vector<MoveSelector::Pending>& pending =
        EngineAccess::pending(selector);

    // MOVE over the whole batch, ascending robot index (the commit
    // order group traversals rely on): walkers replay their next
    // committed step, selectors apply their selected move.
    std::int64_t moves = 0;
    std::int64_t idle_slots = 0;
    for (std::int32_t i : slots) {
      const auto s = static_cast<std::size_t>(i);
      if (parked[s]) {
        ++idle_slots;
        continue;
      }
      if (batched && walk_pos[s] < walk_of[s].size()) {
        apply_walk_step(tree, state, i, walk_of[s][walk_pos[s]++], result);
        ++moves;
        continue;
      }
      if (apply_pending_move(tree, state, i, pending[s],
                             unexplored_at_depth, result, event_time)) {
        ++moves;
      } else {
        ++idle_slots;
        last_stay_time[s] = event_time;
      }
    }

    if (moves > 0) {
      last_move_time = event_time;
      if (idle_slots > 0) {
        ++result.rounds_with_idle;
        result.idle_robot_rounds += idle_slots;
      }
      result.total_activations += static_cast<std::int64_t>(slots.size());
      flush_reanchor_counts(selector, result);

      // Per-round hooks only ever run in the stepped sub-mode (their
      // presence disables batching above); they see counted events as
      // rounds, exactly the stepped loop's view under round-robin.
      if (config.trace != nullptr) {
        TraceFrame frame;
        frame.round = event_time;
        frame.positions.reserve(static_cast<std::size_t>(k));
        for (std::int32_t i = 0; i < k; ++i) {
          frame.positions.push_back(state.robot_pos(i));
        }
        config.trace->push_back(std::move(frame));
      }
      if (config.observer != nullptr) {
        config.observer->on_round(event_time, state);
      }
      if (config.check_invariants) {
        check_open_node_coverage(tree, state, algorithm.anchors());
      }
    }

    // Re-plan the robots that just ran selection from the post-MOVE
    // state (mirrors the fast-forward plan step).
    if (batched) {
      for (std::int32_t i : selecting) {
        const auto s = static_cast<std::size_t>(i);
        plan.kind = TransitPlan::Kind::kEvent;
        plan.path.clear();
        algorithm.plan_transit(view, i, plan);
        switch (plan.kind) {
          case TransitPlan::Kind::kStayForever:
            parked[s] = 1;
            break;
          case TransitPlan::Kind::kEvent:
            walk_of[s].clear();
            walk_pos[s] = 0;
            break;
          case TransitPlan::Kind::kWalk:
            walk_of[s] = std::move(plan.path);
            walk_pos[s] = 0;
            plan.path.clear();
            break;
        }
      }
    }

    // Natural termination: every robot is parked or has stayed
    // strictly after the last move anywhere in the system.
    bool stable = true;
    for (std::int32_t i = 0; i < k; ++i) {
      const auto s = static_cast<std::size_t>(i);
      if (parked[s]) continue;
      if (last_stay_time[s] <= last_move_time) {
        stable = false;
        break;
      }
    }
    if (stable) break;
  }

  result.rounds = last_move_time;
  result.complete = state.num_explored_nodes() == tree.num_nodes();
  result.edge_events = state.edge_events();
  result.all_at_root = true;
  for (std::int32_t i = 0; i < k; ++i) {
    if (state.robot_pos(i) != tree.root()) {
      result.all_at_root = false;
      break;
    }
  }
  result.final_state_hash = state.state_hash();
  return result;
}

}  // namespace

RunResult run_exploration(const Tree& tree, Algorithm& algorithm,
                          const RunConfig& config) {
  BFDN_REQUIRE(config.num_robots >= 1, "need at least one robot");
  BFDN_REQUIRE(config.schedule == nullptr || config.reactive == nullptr,
               "schedule and reactive adversary are mutually exclusive");
  BFDN_REQUIRE(config.async == nullptr ||
                   (config.schedule == nullptr && config.reactive == nullptr),
               "async scheduler is mutually exclusive with the break-down "
               "and reactive adversaries");
  const std::int64_t max_rounds = config.max_rounds > 0
                                      ? config.max_rounds
                                      : default_round_limit(tree);

  // Per-robot-clock mode: only algorithms that advertise async-safety
  // run the real event loop; a lockstep-only algorithm under an async
  // config is auto-driven by the synchronous round-robin schedule,
  // which is exactly the stepped loop below.
  if (config.async != nullptr &&
      algorithm.activation_granularity() ==
          ActivationGranularity::kAsyncSafe) {
    return run_async(tree, algorithm, config, max_rounds);
  }

  // Fast-forward needs committed-segment hints from the algorithm and
  // is incompatible with anything that must see (or perturb) every
  // round: per-round hooks and adversaries force the stepped loop.
  const bool use_fast_forward =
      config.fast_forward && config.schedule == nullptr &&
      config.reactive == nullptr && config.trace == nullptr &&
      config.observer == nullptr && !config.check_invariants &&
      algorithm.transit_capability() == TransitCapability::kCommittedSegments;
  if (use_fast_forward) {
    return run_fast_forward(tree, algorithm, config, max_rounds);
  }

  ExplorationState state(tree, config.num_robots);
  RunResult result;
  result.robot_moves.assign(static_cast<std::size_t>(config.num_robots), 0);
  // Per-depth discovery accounting for the completion timeline.
  std::vector<std::int64_t> unexplored_at_depth;
  init_depth_accounting(tree, result, unexplored_at_depth);

  std::vector<char> movable(static_cast<std::size_t>(config.num_robots), 1);
  ExplorationView view(state, movable);
  algorithm.begin(view);

  // Round-loop scratch, hoisted so a steady-state round allocates
  // nothing: the selector and the mutable copy of its selections are
  // reset in place every round.
  MoveSelector selector(state, movable);
  std::vector<MoveSelector::Pending> pending;
  pending.reserve(static_cast<std::size_t>(config.num_robots));
  std::vector<ReactiveAdversary::ObservedMove> observed;

  for (std::int64_t t = 0;; ++t) {
    if (algorithm.finished(view)) break;
    if (t >= max_rounds) {
      result.hit_round_limit = true;
      break;
    }

    if (config.schedule != nullptr || config.reactive != nullptr) {
      if (state.exploration_complete()) break;  // Section 4.2: no return
    }
    if (config.schedule != nullptr) {
      if (config.schedule->exhausted(t)) break;
      for (std::int32_t i = 0; i < config.num_robots; ++i) {
        movable[static_cast<std::size_t>(i)] =
            config.schedule->allowed(t, i) ? 1 : 0;
      }
    }

    state.set_clock_base(t + 1);
    selector.reset();
    algorithm.select_moves(view, selector);

    // Mutable copy of the round's selections: the reactive adversary may
    // cancel some of them below.
    pending.assign(EngineAccess::pending(selector).begin(),
                   EngineAccess::pending(selector).end());

    if (config.reactive != nullptr) {
      observed.assign(static_cast<std::size_t>(config.num_robots),
                      ReactiveAdversary::ObservedMove{});
      for (std::int32_t i = 0; i < config.num_robots; ++i) {
        auto& entry = observed[static_cast<std::size_t>(i)];
        entry.robot = i;
        const auto kind = pending[static_cast<std::size_t>(i)].kind;
        entry.moves = kind == MoveSelector::Kind::kUp ||
                      kind == MoveSelector::Kind::kDownExplored ||
                      kind == MoveSelector::Kind::kDownDangling;
        entry.takes_dangling =
            kind == MoveSelector::Kind::kDownDangling;
      }
      const std::vector<char> blocked =
          config.reactive->choose_blocked(t, observed);
      BFDN_CHECK(static_cast<std::int32_t>(blocked.size()) ==
                     config.num_robots,
                 "reactive adversary returned a wrong-sized block mask");
      for (std::int32_t i = 0; i < config.num_robots; ++i) {
        if (!blocked[static_cast<std::size_t>(i)]) continue;
        auto& p = pending[static_cast<std::size_t>(i)];
        if (p.kind != MoveSelector::Kind::kNone &&
            p.kind != MoveSelector::Kind::kStay) {
          ++result.reactive_blocks;
        }
        p = {MoveSelector::Kind::kStay, kInvalidNode};
      }
      // Release reservations whose edge no robot will traverse anymore
      // (a group-joining teammate may still carry a blocked reserver's
      // edge, in which case the reservation must survive to be consumed
      // by that commit).
      for (const auto& [token, at] : EngineAccess::reservations(selector)) {
        bool still_used = false;
        for (const auto& p : pending) {
          if (p.kind == MoveSelector::Kind::kDownDangling &&
              p.target == token) {
            still_used = true;
            break;
          }
        }
        if (!still_used) state.release_dangling(at, token);
      }
    }

    bool any_move = false;
    for (const auto& p : pending) {
      if (p.kind == MoveSelector::Kind::kUp ||
          p.kind == MoveSelector::Kind::kDownExplored ||
          p.kind == MoveSelector::Kind::kDownDangling) {
        any_move = true;
        break;
      }
    }
    if (!any_move) {
      // This is Algorithm 1's termination test: the terminal round is
      // not counted. (Any dangling reservation always comes with a
      // move, and cancelled ones were already released above.)
      if (config.schedule == nullptr && config.reactive == nullptr) {
        break;
      }
      // Under break-downs an all-stay round can simply mean every useful
      // robot was blocked; time still passes.
      ++result.rounds;
      for (const char m : movable) {
        if (m) ++result.total_activations;
      }
      if (config.observer != nullptr) {
        config.observer->on_round(result.rounds, state);
      }
      continue;
    }

    // Synchronous MOVE.
    std::int64_t idle_movable = 0;
    for (std::int32_t i = 0; i < config.num_robots; ++i) {
      if (!apply_pending_move(tree, state, i,
                              pending[static_cast<std::size_t>(i)],
                              unexplored_at_depth, result,
                              result.rounds + 1) &&
          movable[static_cast<std::size_t>(i)]) {
        ++idle_movable;
      }
    }
    ++result.rounds;
    for (const char m : movable) {
      if (m) ++result.total_activations;
    }
    if (idle_movable > 0) {
      ++result.rounds_with_idle;
      result.idle_robot_rounds += idle_movable;
    }
    flush_reanchor_counts(selector, result);

    if (config.trace != nullptr) {
      TraceFrame frame;
      frame.round = result.rounds;
      frame.positions.reserve(static_cast<std::size_t>(config.num_robots));
      for (std::int32_t i = 0; i < config.num_robots; ++i) {
        frame.positions.push_back(state.robot_pos(i));
      }
      config.trace->push_back(std::move(frame));
    }

    if (config.observer != nullptr) {
      config.observer->on_round(result.rounds, state);
    }

    if (config.check_invariants) {
      check_open_node_coverage(tree, state, algorithm.anchors());
    }
  }

  result.complete = state.num_explored_nodes() == tree.num_nodes();
  result.edge_events = state.edge_events();
  result.all_at_root = true;
  for (std::int32_t i = 0; i < config.num_robots; ++i) {
    if (state.robot_pos(i) != tree.root()) {
      result.all_at_root = false;
      break;
    }
  }
  result.final_state_hash = state.state_hash();
  return result;
}

std::int64_t default_round_limit(const Tree& tree) {
  return 3 * static_cast<std::int64_t>(std::max(tree.depth(), 1)) *
             tree.num_nodes() +
         4 * tree.num_nodes() + 4 * tree.depth() + 64;
}

double theorem1_bound(std::int64_t n, std::int32_t depth,
                      std::int32_t max_degree, std::int32_t k) {
  const double log_term = std::min(std::log(static_cast<double>(k)),
                                   std::log(static_cast<double>(
                                       std::max(max_degree, 1))));
  return 2.0 * static_cast<double>(n) / static_cast<double>(k) +
         static_cast<double>(depth) * static_cast<double>(depth) *
             (std::max(log_term, 0.0) + 3.0);
}

double lemma2_bound(std::int32_t k, std::int32_t max_degree) {
  const double log_term = std::min(std::log(static_cast<double>(k)),
                                   std::log(static_cast<double>(
                                       std::max(max_degree, 1))));
  return static_cast<double>(k) * (std::max(log_term, 0.0) + 3.0);
}

double offline_lower_bound(std::int64_t n, std::int32_t depth,
                           std::int32_t k) {
  return std::max(
      2.0 * static_cast<double>(n - 1) / static_cast<double>(k),
      2.0 * static_cast<double>(depth));
}

}  // namespace bfdn
