#include "sim/engine.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"
#include "support/strings.h"

namespace bfdn {

MoveSelector::MoveSelector(ExplorationState& state,
                           const std::vector<char>& movable)
    : state_(state), movable_(movable) {
  pending_.assign(static_cast<std::size_t>(state.num_robots()), Pending{});
}

void MoveSelector::reset() {
  std::fill(pending_.begin(), pending_.end(), Pending{});
  reserved_this_round_.clear();
  std::fill(reanchor_counts_.begin(), reanchor_counts_.end(), 0);
  std::fill(reanchor_switch_counts_.begin(), reanchor_switch_counts_.end(),
            0);
}

void MoveSelector::require_selectable(std::int32_t robot) const {
  BFDN_REQUIRE(robot >= 0 && robot < state_.num_robots(), "robot index");
  BFDN_REQUIRE(movable_[static_cast<std::size_t>(robot)] != 0,
               "selection for a robot the adversary blocked this round");
  BFDN_REQUIRE(pending_[static_cast<std::size_t>(robot)].kind == Kind::kNone,
               "robot already selected a move this round");
}

void MoveSelector::stay(std::int32_t robot) {
  require_selectable(robot);
  pending_[static_cast<std::size_t>(robot)] = {Kind::kStay, kInvalidNode};
}

void MoveSelector::move_up(std::int32_t robot) {
  require_selectable(robot);
  const NodeId pos = state_.robot_pos(robot);
  if (pos == state_.tree().root()) {
    // "If Robot_i is at the root, up is interpreted as ⊥."
    pending_[static_cast<std::size_t>(robot)] = {Kind::kStay, kInvalidNode};
    return;
  }
  pending_[static_cast<std::size_t>(robot)] = {Kind::kUp, pos};
}

void MoveSelector::move_down(std::int32_t robot, NodeId child) {
  require_selectable(robot);
  BFDN_REQUIRE(state_.is_explored(child),
               "move_down target must be an explored child");
  BFDN_REQUIRE(state_.tree().parent(child) == state_.robot_pos(robot),
               "move_down target is not a child of the robot's position");
  pending_[static_cast<std::size_t>(robot)] = {Kind::kDownExplored, child};
}

NodeId MoveSelector::try_take_dangling(std::int32_t robot) {
  require_selectable(robot);
  const NodeId pos = state_.robot_pos(robot);
  if (state_.num_unreserved_dangling(pos) == 0) return kInvalidNode;
  const NodeId child = state_.reserve_dangling(pos);
  pending_[static_cast<std::size_t>(robot)] = {Kind::kDownDangling, child};
  reserved_this_round_.emplace_back(child, pos);
  return child;
}

std::vector<NodeId> MoveSelector::reserved_dangling_at(NodeId u) const {
  std::vector<NodeId> out;
  for (const auto& [token, at] : reserved_this_round_) {
    if (at == u) out.push_back(token);
  }
  return out;
}

void MoveSelector::join_dangling(std::int32_t robot, NodeId token) {
  require_selectable(robot);
  const NodeId pos = state_.robot_pos(robot);
  bool valid = false;
  for (const auto& [t, at] : reserved_this_round_) {
    if (t == token && at == pos) {
      valid = true;
      break;
    }
  }
  BFDN_REQUIRE(valid, "join_dangling token not reserved at robot's node");
  pending_[static_cast<std::size_t>(robot)] = {Kind::kDownDangling, token};
}

void MoveSelector::note_reanchor(std::int32_t depth) {
  BFDN_REQUIRE(depth >= 0, "negative reanchor depth");
  const auto d = static_cast<std::size_t>(depth);
  if (d >= reanchor_counts_.size()) reanchor_counts_.resize(d + 1, 0);
  ++reanchor_counts_[d];
}

void MoveSelector::note_reanchor_switch(std::int32_t depth) {
  BFDN_REQUIRE(depth >= 0, "negative reanchor depth");
  const auto d = static_cast<std::size_t>(depth);
  if (d >= reanchor_switch_counts_.size()) {
    reanchor_switch_counts_.resize(d + 1, 0);
  }
  ++reanchor_switch_counts_[d];
}

bool MoveSelector::has_selected(std::int32_t robot) const {
  BFDN_REQUIRE(robot >= 0 && robot < state_.num_robots(), "robot index");
  return pending_[static_cast<std::size_t>(robot)].kind != Kind::kNone;
}

void Algorithm::begin(const ExplorationView&) {}
bool Algorithm::finished(const ExplorationView&) const { return false; }
std::vector<NodeId> Algorithm::anchors() const { return {}; }

// Engine-private access to MoveSelector internals.
struct EngineAccess {
  static const std::vector<MoveSelector::Pending>& pending(
      const MoveSelector& sel) {
    return sel.pending_;
  }
  static const std::vector<std::uint64_t>& reanchors(
      const MoveSelector& sel) {
    return sel.reanchor_counts_;
  }
  static const std::vector<std::uint64_t>& reanchor_switches(
      const MoveSelector& sel) {
    return sel.reanchor_switch_counts_;
  }
  static const std::vector<std::pair<NodeId, NodeId>>& reservations(
      const MoveSelector& sel) {
    return sel.reserved_this_round_;
  }
};

namespace {

/// Claim 4: all open nodes lie in the union of anchor subtrees.
void check_open_node_coverage(const Tree& tree,
                              const ExplorationState& state,
                              const std::vector<NodeId>& anchors) {
  if (anchors.empty()) return;
  for (NodeId open : state.open_nodes()) {
    bool covered = false;
    for (NodeId anchor : anchors) {
      if (anchor != kInvalidNode &&
          tree.is_ancestor_or_self(anchor, open)) {
        covered = true;
        break;
      }
    }
    BFDN_CHECK(covered, str_format("Claim 4 violated: open node %d is in "
                                   "no anchor subtree",
                                   open));
  }
}

}  // namespace

RunResult run_exploration(const Tree& tree, Algorithm& algorithm,
                          const RunConfig& config) {
  BFDN_REQUIRE(config.num_robots >= 1, "need at least one robot");
  BFDN_REQUIRE(config.schedule == nullptr || config.reactive == nullptr,
               "schedule and reactive adversary are mutually exclusive");
  ExplorationState state(tree, config.num_robots);
  const std::int64_t max_rounds =
      config.max_rounds > 0
          ? config.max_rounds
          : 3 * static_cast<std::int64_t>(std::max(tree.depth(), 1)) *
                    tree.num_nodes() +
                4 * tree.num_nodes() + 4 * tree.depth() + 64;

  RunResult result;
  result.robot_moves.assign(static_cast<std::size_t>(config.num_robots), 0);
  // Per-depth discovery accounting for the completion timeline.
  std::vector<std::int64_t> unexplored_at_depth(
      static_cast<std::size_t>(tree.depth()) + 1, 0);
  for (NodeId v = 1; v < tree.num_nodes(); ++v) {
    ++unexplored_at_depth[static_cast<std::size_t>(tree.depth(v))];
  }
  result.depth_completed_round.assign(
      static_cast<std::size_t>(tree.depth()) + 1, -1);
  result.depth_completed_round[0] = 0;
  for (std::size_t d = 1; d < unexplored_at_depth.size(); ++d) {
    if (unexplored_at_depth[d] == 0) {
      result.depth_completed_round[d] = 0;  // hollow level (impossible
                                            // in a tree, but cheap)
    }
  }

  std::vector<char> movable(static_cast<std::size_t>(config.num_robots), 1);
  ExplorationView view(state, movable);
  algorithm.begin(view);

  // Round-loop scratch, hoisted so a steady-state round allocates
  // nothing: the selector and the mutable copy of its selections are
  // reset in place every round.
  MoveSelector selector(state, movable);
  std::vector<MoveSelector::Pending> pending;
  pending.reserve(static_cast<std::size_t>(config.num_robots));
  std::vector<ReactiveAdversary::ObservedMove> observed;

  for (std::int64_t t = 0;; ++t) {
    if (algorithm.finished(view)) break;
    if (t >= max_rounds) {
      result.hit_round_limit = true;
      break;
    }

    if (config.schedule != nullptr || config.reactive != nullptr) {
      if (state.exploration_complete()) break;  // Section 4.2: no return
    }
    if (config.schedule != nullptr) {
      if (config.schedule->exhausted(t)) break;
      for (std::int32_t i = 0; i < config.num_robots; ++i) {
        movable[static_cast<std::size_t>(i)] =
            config.schedule->allowed(t, i) ? 1 : 0;
      }
    }

    selector.reset();
    algorithm.select_moves(view, selector);

    // Mutable copy of the round's selections: the reactive adversary may
    // cancel some of them below.
    pending.assign(EngineAccess::pending(selector).begin(),
                   EngineAccess::pending(selector).end());

    if (config.reactive != nullptr) {
      observed.assign(static_cast<std::size_t>(config.num_robots),
                      ReactiveAdversary::ObservedMove{});
      for (std::int32_t i = 0; i < config.num_robots; ++i) {
        auto& entry = observed[static_cast<std::size_t>(i)];
        entry.robot = i;
        const auto kind = pending[static_cast<std::size_t>(i)].kind;
        entry.moves = kind == MoveSelector::Kind::kUp ||
                      kind == MoveSelector::Kind::kDownExplored ||
                      kind == MoveSelector::Kind::kDownDangling;
        entry.takes_dangling =
            kind == MoveSelector::Kind::kDownDangling;
      }
      const std::vector<char> blocked =
          config.reactive->choose_blocked(t, observed);
      BFDN_CHECK(static_cast<std::int32_t>(blocked.size()) ==
                     config.num_robots,
                 "reactive adversary returned a wrong-sized block mask");
      for (std::int32_t i = 0; i < config.num_robots; ++i) {
        if (!blocked[static_cast<std::size_t>(i)]) continue;
        auto& p = pending[static_cast<std::size_t>(i)];
        if (p.kind != MoveSelector::Kind::kNone &&
            p.kind != MoveSelector::Kind::kStay) {
          ++result.reactive_blocks;
        }
        p = {MoveSelector::Kind::kStay, kInvalidNode};
      }
      // Release reservations whose edge no robot will traverse anymore
      // (a group-joining teammate may still carry a blocked reserver's
      // edge, in which case the reservation must survive to be consumed
      // by that commit).
      for (const auto& [token, at] : EngineAccess::reservations(selector)) {
        bool still_used = false;
        for (const auto& p : pending) {
          if (p.kind == MoveSelector::Kind::kDownDangling &&
              p.target == token) {
            still_used = true;
            break;
          }
        }
        if (!still_used) state.release_dangling(at, token);
      }
    }

    bool any_move = false;
    for (const auto& p : pending) {
      if (p.kind == MoveSelector::Kind::kUp ||
          p.kind == MoveSelector::Kind::kDownExplored ||
          p.kind == MoveSelector::Kind::kDownDangling) {
        any_move = true;
        break;
      }
    }
    if (!any_move) {
      // This is Algorithm 1's termination test: the terminal round is
      // not counted. (Any dangling reservation always comes with a
      // move, and cancelled ones were already released above.)
      if (config.schedule == nullptr && config.reactive == nullptr) {
        break;
      }
      // Under break-downs an all-stay round can simply mean every useful
      // robot was blocked; time still passes.
      ++result.rounds;
      if (config.observer != nullptr) {
        config.observer->on_round(result.rounds, state);
      }
      continue;
    }

    // Synchronous MOVE.
    std::int64_t idle_movable = 0;
    for (std::int32_t i = 0; i < config.num_robots; ++i) {
      const auto& p = pending[static_cast<std::size_t>(i)];
      const NodeId pos = state.robot_pos(i);
      switch (p.kind) {
        case MoveSelector::Kind::kNone:
        case MoveSelector::Kind::kStay:
          if (movable[static_cast<std::size_t>(i)]) ++idle_movable;
          break;
        case MoveSelector::Kind::kUp:
          BFDN_CHECK(p.target == pos, "stale up-move");
          state.set_robot_pos(i, tree.parent(pos));
          state.record_traversal(pos, /*downward=*/false);
          ++result.robot_moves[static_cast<std::size_t>(i)];
          break;
        case MoveSelector::Kind::kDownExplored:
          state.set_robot_pos(i, p.target);
          state.record_traversal(p.target, /*downward=*/true);
          ++result.robot_moves[static_cast<std::size_t>(i)];
          break;
        case MoveSelector::Kind::kDownDangling: {
          if (!state.is_explored(p.target)) {
            state.commit_dangling(pos, p.target);
            const auto d =
                static_cast<std::size_t>(tree.depth(p.target));
            if (--unexplored_at_depth[d] == 0) {
              result.depth_completed_round[d] = result.rounds + 1;
            }
          }
          // else: a joiner; an earlier robot in this round's commit
          // order already explored the edge (group traversal).
          state.set_robot_pos(i, p.target);
          state.record_traversal(p.target, /*downward=*/true);
          ++result.robot_moves[static_cast<std::size_t>(i)];
          break;
        }
      }
    }
    ++result.rounds;
    if (idle_movable > 0) {
      ++result.rounds_with_idle;
      result.idle_robot_rounds += idle_movable;
    }
    const std::vector<std::uint64_t>& reanchors =
        EngineAccess::reanchors(selector);
    for (std::size_t depth = 0; depth < reanchors.size(); ++depth) {
      if (reanchors[depth] == 0) continue;
      result.reanchors_by_depth.add(static_cast<std::int64_t>(depth),
                                    reanchors[depth]);
      result.total_reanchors += static_cast<std::int64_t>(reanchors[depth]);
    }
    const std::vector<std::uint64_t>& switches =
        EngineAccess::reanchor_switches(selector);
    for (std::size_t depth = 0; depth < switches.size(); ++depth) {
      if (switches[depth] == 0) continue;
      result.reanchor_switches_by_depth.add(
          static_cast<std::int64_t>(depth), switches[depth]);
      result.total_reanchor_switches +=
          static_cast<std::int64_t>(switches[depth]);
    }

    if (config.trace != nullptr) {
      TraceFrame frame;
      frame.round = result.rounds;
      frame.positions.reserve(static_cast<std::size_t>(config.num_robots));
      for (std::int32_t i = 0; i < config.num_robots; ++i) {
        frame.positions.push_back(state.robot_pos(i));
      }
      config.trace->push_back(std::move(frame));
    }

    if (config.observer != nullptr) {
      config.observer->on_round(result.rounds, state);
    }

    if (config.check_invariants) {
      check_open_node_coverage(tree, state, algorithm.anchors());
    }
  }

  result.complete = state.num_explored_nodes() == tree.num_nodes();
  result.edge_events = state.edge_events();
  result.all_at_root = true;
  for (std::int32_t i = 0; i < config.num_robots; ++i) {
    if (state.robot_pos(i) != tree.root()) {
      result.all_at_root = false;
      break;
    }
  }
  return result;
}

double theorem1_bound(std::int64_t n, std::int32_t depth,
                      std::int32_t max_degree, std::int32_t k) {
  const double log_term = std::min(std::log(static_cast<double>(k)),
                                   std::log(static_cast<double>(
                                       std::max(max_degree, 1))));
  return 2.0 * static_cast<double>(n) / static_cast<double>(k) +
         static_cast<double>(depth) * static_cast<double>(depth) *
             (std::max(log_term, 0.0) + 3.0);
}

double lemma2_bound(std::int32_t k, std::int32_t max_degree) {
  const double log_term = std::min(std::log(static_cast<double>(k)),
                                   std::log(static_cast<double>(
                                       std::max(max_degree, 1))));
  return static_cast<double>(k) * (std::max(log_term, 0.0) + 3.0);
}

double offline_lower_bound(std::int64_t n, std::int32_t depth,
                           std::int32_t k) {
  return std::max(
      2.0 * static_cast<double>(n - 1) / static_cast<double>(k),
      2.0 * static_cast<double>(depth));
}

}  // namespace bfdn
