#include "exp/aggregate.h"

#include "support/stats.h"
#include "support/table.h"

namespace bfdn {

std::map<AggregateKey, Aggregate> aggregate_results(
    const std::vector<CellResult>& results) {
  std::map<AggregateKey, RunningStat> rounds_stats;
  std::map<AggregateKey, RunningStat> lower_stats;
  std::map<AggregateKey, Aggregate> out;
  for (const CellResult& cell : results) {
    const AggregateKey key{cell.algorithm, cell.k};
    Aggregate& agg = out[key];
    ++agg.cells;
    if (!cell.complete) ++agg.incomplete;
    rounds_stats[key].add(static_cast<double>(cell.rounds));
    lower_stats[key].add(cell.ratio_vs_lower);
    if (cell.ratio_vs_opt > agg.max_ratio_vs_opt) {
      agg.max_ratio_vs_opt = cell.ratio_vs_opt;
      agg.worst_tree = cell.tree_name;
    }
    agg.max_overhead = std::max(agg.max_overhead, cell.overhead);
  }
  for (auto& [key, agg] : out) {
    agg.mean_rounds = rounds_stats[key].mean();
    agg.stddev_rounds = rounds_stats[key].stddev();
    agg.mean_ratio_vs_lower = lower_stats[key].mean();
  }
  return out;
}

std::string results_to_csv(const std::vector<CellResult>& results) {
  Table table({"tree", "n", "depth", "max_degree", "k", "algorithm",
               "rounds", "complete", "ratio_vs_opt", "ratio_vs_lower",
               "overhead"});
  for (const CellResult& result : results) {
    table.add_row({result.tree_name, cell(result.n),
                   cell(std::int64_t{result.depth}),
                   cell(std::int64_t{result.max_degree}), cell(result.k),
                   algorithm_kind_name(result.algorithm),
                   cell(result.rounds), cell_bool(result.complete),
                   cell(result.ratio_vs_opt, 4),
                   cell(result.ratio_vs_lower, 4),
                   cell(result.overhead, 1)});
  }
  return table.to_csv();
}

}  // namespace bfdn
