// Aggregation of campaign cell results: per-(algorithm, k) summary
// statistics across instances, and a CSV dump of the raw cells for
// external analysis.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exp/campaign.h"

namespace bfdn {

struct AggregateKey {
  AlgorithmKind algorithm = AlgorithmKind::kBfdn;
  std::int32_t k = 0;

  bool operator<(const AggregateKey& other) const {
    if (algorithm != other.algorithm) return algorithm < other.algorithm;
    return k < other.k;
  }
};

struct Aggregate {
  std::int64_t cells = 0;
  std::int64_t incomplete = 0;
  double mean_rounds = 0;
  double stddev_rounds = 0;
  double max_ratio_vs_opt = 0;       // empirical competitive ratio
  std::string worst_tree;            // witness of the max ratio
  double mean_ratio_vs_lower = 0;
  double max_overhead = 0;
};

/// Groups cells by (algorithm, k) and summarizes.
std::map<AggregateKey, Aggregate> aggregate_results(
    const std::vector<CellResult>& results);

/// Raw cells as CSV (header + one line per cell).
std::string results_to_csv(const std::vector<CellResult>& results);

}  // namespace bfdn
