// Adversarial instance search: hill-climbing over tree shapes to make
// an algorithm as slow as possible relative to n/k + D.
//
// The literature's lower bounds are hand-crafted instances targeting a
// specific algorithm's tie-breaking ([11] builds the n = kD tree that
// stalls CTE). This harness searches for such instances automatically:
// starting from a seed tree, it repeatedly moves a random leaf to a
// random new parent and keeps the mutation iff the measured
// rounds/(n/k + D) ratio grows. The evolved ratios corroborate the
// competitive hierarchy empirically: bounded algorithms plateau under
// their guarantee, unbounded ones keep climbing.
#pragma once

#include <cstdint>

#include "exp/campaign.h"
#include "graph/tree.h"
#include "support/rng.h"

namespace bfdn {

struct AdversarialSearchResult {
  Tree tree;                    // the evolved instance
  double initial_ratio = 0;     // rounds/(n/k + D) of the seed tree
  double best_ratio = 0;        // after the search
  std::int64_t accepted = 0;    // improving mutations kept
  std::int64_t iterations = 0;  // mutations tried
};

struct AdversarialSearchOptions {
  std::int64_t n = 600;            // node budget (kept fixed)
  std::int32_t max_depth = 60;     // mutations never exceed this depth
  std::int32_t k = 16;             // team size under attack
  std::int64_t iterations = 300;   // mutation attempts
  std::uint64_t seed = 1;
};

/// Evolves a worst-case-ish tree for the given algorithm.
AdversarialSearchResult adversarial_search(
    AlgorithmKind algorithm, const AdversarialSearchOptions& options);

}  // namespace bfdn
