#include "exp/adversarial_search.h"

#include <vector>

#include "graph/generators.h"
#include "support/check.h"

namespace bfdn {
namespace {

double evaluate(AlgorithmKind algorithm, const Tree& tree,
                std::int32_t k) {
  const std::int64_t rounds = run_single_cell(algorithm, tree, k);
  return static_cast<double>(rounds) /
         (static_cast<double>(tree.num_nodes()) / k + tree.depth());
}

}  // namespace

AdversarialSearchResult adversarial_search(
    AlgorithmKind algorithm, const AdversarialSearchOptions& options) {
  BFDN_REQUIRE(options.n >= 4, "need a few nodes");
  BFDN_REQUIRE(options.max_depth >= 2, "need some depth headroom");
  BFDN_REQUIRE(options.k >= 1, "k >= 1");
  Rng rng(options.seed);

  // Seed: a random tree using half the allowed depth, leaving the
  // search room to stretch or flatten.
  Rng seed_rng = rng.split();
  const auto seed_depth = std::max<std::int32_t>(
      2, std::min<std::int32_t>(options.max_depth / 2,
                                static_cast<std::int32_t>(options.n - 1)));
  Tree current = make_tree_with_depth(options.n, seed_depth, seed_rng);
  std::vector<NodeId> parents(static_cast<std::size_t>(options.n));
  for (NodeId v = 0; v < current.num_nodes(); ++v) {
    parents[static_cast<std::size_t>(v)] = current.parent(v);
  }

  AdversarialSearchResult result{Tree::from_parents(parents), 0, 0, 0, 0};
  result.initial_ratio = evaluate(algorithm, current, options.k);
  result.best_ratio = result.initial_ratio;

  for (std::int64_t it = 0; it < options.iterations; ++it) {
    ++result.iterations;
    // Mutation: re-home a random leaf under a random new parent that
    // respects the depth cap.
    std::vector<std::int32_t> child_count(
        static_cast<std::size_t>(options.n), 0);
    for (NodeId v = 1; v < current.num_nodes(); ++v) {
      ++child_count[static_cast<std::size_t>(
          parents[static_cast<std::size_t>(v)])];
    }
    NodeId leaf = kInvalidNode;
    for (int tries = 0; tries < 64; ++tries) {
      const auto candidate = static_cast<NodeId>(
          1 + rng.next_below(static_cast<std::uint64_t>(options.n - 1)));
      if (child_count[static_cast<std::size_t>(candidate)] == 0) {
        leaf = candidate;
        break;
      }
    }
    if (leaf == kInvalidNode) continue;
    NodeId new_parent = kInvalidNode;
    for (int tries = 0; tries < 64; ++tries) {
      const auto candidate = static_cast<NodeId>(
          rng.next_below(static_cast<std::uint64_t>(options.n)));
      if (candidate == leaf) continue;
      if (current.depth(candidate) + 1 > options.max_depth) continue;
      new_parent = candidate;
      break;
    }
    if (new_parent == kInvalidNode ||
        new_parent == parents[static_cast<std::size_t>(leaf)]) {
      continue;
    }

    const NodeId old_parent = parents[static_cast<std::size_t>(leaf)];
    parents[static_cast<std::size_t>(leaf)] = new_parent;
    Tree mutated = Tree::from_parents(parents);
    const double ratio = evaluate(algorithm, mutated, options.k);
    if (ratio > result.best_ratio) {
      result.best_ratio = ratio;
      ++result.accepted;
      current = std::move(mutated);
    } else {
      parents[static_cast<std::size_t>(leaf)] = old_parent;  // revert
    }
  }
  result.tree = std::move(current);
  return result;
}

}  // namespace bfdn
