// Experiment campaigns: evaluate a grid of (tree instance, algorithm,
// team size) cells and collect per-cell metrics. The bench binaries
// that sweep many configurations (competitive-ratio estimates, winner
// maps) are built on this.
//
// Execution: each tree's cells run through one sim/BatchExecutor — a
// single interleaved pass over the shared tree instead of one cold
// engine invocation per cell — and trees shard across the thread pool.
// Every cell still builds its own algorithm and run state and writes
// into its own pre-allocated result slot; results are bit-identical to
// solo run_exploration calls (the batch-equivalence oracle pins this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/tree.h"

namespace bfdn {

enum class AlgorithmKind {
  kBfdn,
  kBfdnShortcut,
  kCte,
  kDnSwarm,
  kBfdnEll2,
  kBfdnEll3,
  kBfsLevels,
  kBrass,
};

std::string algorithm_kind_name(AlgorithmKind kind);

struct CellResult {
  std::string tree_name;
  std::int64_t n = 0;
  std::int32_t depth = 0;
  std::int32_t max_degree = 0;
  std::int32_t k = 0;
  AlgorithmKind algorithm = AlgorithmKind::kBfdn;
  std::int64_t rounds = 0;
  bool complete = false;
  bool all_at_root = false;
  /// rounds / (n/k + D): the competitive-ratio denominator of Section 1
  /// (up to a constant factor).
  double ratio_vs_opt = 0;
  /// rounds / max(2(n-1)/k, 2D).
  double ratio_vs_lower = 0;
  /// rounds - 2n/k: the competitive-overhead lens of [1].
  double overhead = 0;
};

/// Runs one (algorithm, tree, k) cell to completion and returns the
/// round count; throws if the algorithm fails to explore the tree.
std::int64_t run_single_cell(AlgorithmKind algorithm, const Tree& tree,
                             std::int32_t k);

class Campaign {
 public:
  /// Registers an instance (takes ownership of the tree).
  void add_tree(std::string name, Tree tree);
  void add_team_size(std::int32_t k);
  void add_algorithm(AlgorithmKind kind);

  std::size_t num_cells() const;

  /// Runs every (tree, k, algorithm) cell; threads == 0 picks the
  /// hardware concurrency. Results are in deterministic cell order
  /// (tree-major, then k, then algorithm) regardless of thread count.
  std::vector<CellResult> run(std::int32_t threads = 0) const;

 private:
  struct Instance {
    std::string name;
    Tree tree;
  };
  std::vector<Instance> instances_;
  std::vector<std::int32_t> team_sizes_;
  std::vector<AlgorithmKind> algorithms_;
};

}  // namespace bfdn
