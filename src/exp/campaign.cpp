#include "exp/campaign.h"

#include <memory>

#include "baselines/bfs_levels.h"
#include "baselines/brass.h"
#include "baselines/cte.h"
#include "baselines/depth_next_only.h"
#include "core/bfdn.h"
#include "recursive/bfdn_ell.h"
#include "sim/batch_executor.h"
#include "sim/engine.h"
#include "support/check.h"
#include "support/thread_pool.h"

namespace bfdn {

std::string algorithm_kind_name(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kBfdn: return "BFDN";
    case AlgorithmKind::kBfdnShortcut: return "BFDN+shortcut";
    case AlgorithmKind::kCte: return "CTE";
    case AlgorithmKind::kDnSwarm: return "DN-swarm";
    case AlgorithmKind::kBfdnEll2: return "BFDN_2";
    case AlgorithmKind::kBfdnEll3: return "BFDN_3";
    case AlgorithmKind::kBfsLevels: return "BFS-levels";
    case AlgorithmKind::kBrass: return "Brass";
  }
  return "?";
}

namespace {

std::unique_ptr<Algorithm> make_algorithm(AlgorithmKind kind,
                                          const Tree& tree,
                                          std::int32_t k) {
  switch (kind) {
    case AlgorithmKind::kBfdn:
      return std::make_unique<BfdnAlgorithm>(k);
    case AlgorithmKind::kBfdnShortcut: {
      BfdnOptions options;
      options.shortcut_reanchor = true;
      return std::make_unique<BfdnAlgorithm>(k, options);
    }
    case AlgorithmKind::kCte:
      return std::make_unique<CteAlgorithm>(tree, k);
    case AlgorithmKind::kDnSwarm:
      return std::make_unique<DepthNextOnlyAlgorithm>(k);
    case AlgorithmKind::kBfdnEll2:
      return std::make_unique<BfdnEllAlgorithm>(k, 2);
    case AlgorithmKind::kBfdnEll3:
      return std::make_unique<BfdnEllAlgorithm>(k, 3);
    case AlgorithmKind::kBfsLevels:
      return std::make_unique<BfsLevelsAlgorithm>(k);
    case AlgorithmKind::kBrass:
      return std::make_unique<BrassAlgorithm>(k);
  }
  BFDN_CHECK(false, "unknown algorithm kind");
  return nullptr;
}

}  // namespace

std::int64_t run_single_cell(AlgorithmKind algorithm, const Tree& tree,
                             std::int32_t k) {
  auto algo = make_algorithm(algorithm, tree, k);
  RunConfig config;
  config.num_robots = k;
  const RunResult result = run_exploration(tree, *algo, config);
  BFDN_CHECK(result.complete, "cell failed to explore the tree");
  return result.rounds;
}

void Campaign::add_tree(std::string name, Tree tree) {
  instances_.push_back({std::move(name), std::move(tree)});
}

void Campaign::add_team_size(std::int32_t k) {
  BFDN_REQUIRE(k >= 1, "k >= 1");
  team_sizes_.push_back(k);
}

void Campaign::add_algorithm(AlgorithmKind kind) {
  algorithms_.push_back(kind);
}

std::size_t Campaign::num_cells() const {
  return instances_.size() * team_sizes_.size() * algorithms_.size();
}

std::vector<CellResult> Campaign::run(std::int32_t threads) const {
  BFDN_REQUIRE(!instances_.empty(), "campaign without trees");
  BFDN_REQUIRE(!team_sizes_.empty(), "campaign without team sizes");
  BFDN_REQUIRE(!algorithms_.empty(), "campaign without algorithms");

  std::vector<CellResult> results(num_cells());
  const std::size_t cells_per_tree =
      team_sizes_.size() * algorithms_.size();
  ThreadPool pool(threads);
  std::size_t base = 0;
  for (const Instance& instance : instances_) {
    CellResult* out = &results[base];
    base += cells_per_tree;
    const Instance* inst = &instance;
    // One task per tree: all of the tree's cells run through a single
    // BatchExecutor pass, sharing the tree's arrays while each member
    // keeps its own run state. Slot order within the block matches the
    // add_member order (k-major, then algorithm), so results land in
    // the same deterministic cell order as before.
    pool.submit([this, out, inst] {
      const Tree& tree = inst->tree;
      BatchExecutor batch(tree);
      for (const std::int32_t k : team_sizes_) {
        for (const AlgorithmKind kind : algorithms_) {
          RunConfig config;
          config.num_robots = k;
          batch.add_member(make_algorithm(kind, tree, k), config);
        }
      }
      const std::vector<RunResult> runs = batch.run();
      std::size_t slot = 0;
      for (const std::int32_t k : team_sizes_) {
        for (const AlgorithmKind kind : algorithms_) {
          const RunResult& run_result = runs[slot];
          CellResult* cell = out + slot;
          ++slot;
          cell->tree_name = inst->name;
          cell->n = tree.num_nodes();
          cell->depth = tree.depth();
          cell->max_degree = tree.max_degree();
          cell->k = k;
          cell->algorithm = kind;
          cell->rounds = run_result.rounds;
          cell->complete = run_result.complete;
          cell->all_at_root = run_result.all_at_root;
          const double opt_proxy =
              static_cast<double>(tree.num_nodes()) / k + tree.depth();
          cell->ratio_vs_opt =
              static_cast<double>(run_result.rounds) / opt_proxy;
          const double lower =
              offline_lower_bound(tree.num_nodes(), tree.depth(), k);
          cell->ratio_vs_lower =
              static_cast<double>(run_result.rounds) / lower;
          cell->overhead =
              static_cast<double>(run_result.rounds) -
              2.0 * static_cast<double>(tree.num_nodes()) / k;
        }
      }
    });
  }
  pool.wait_idle();
  return results;
}

}  // namespace bfdn
