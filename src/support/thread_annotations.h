// Clang Thread Safety Analysis macros and the annotated mutex wrappers
// the concurrent tier is written against (docs/LINT.md §"Lock
// discipline", DESIGN.md §5c).
//
// Under clang, BFDN_GUARDED_BY / BFDN_REQUIRES / BFDN_ACQUIRE / ... and
// the Mutex/MutexLock capability classes below let
// `-Wthread-safety -Werror` prove at compile time that every guarded
// field is only touched with its mutex held and that every
// lock-requiring function is only called with the lock held — the same
// bug class the TSan gate catches dynamically, moved to the compiler.
// Under GCC (which has no thread-safety attributes) every macro expands
// to nothing and the wrappers degrade to a plain std::mutex +
// std::unique_lock with zero overhead, so the tier-1 toolchain is
// unaffected; CI's `thread-safety` job compiles the tree with clang to
// enforce the annotations (scripts/check.sh --locks-only).
//
// Conventions (enforced by the bfdn_lint `locks` rule family):
//   * every mutex-typed member guards something: it appears in at least
//     one BFDN_GUARDED_BY / BFDN_REQUIRES, or carries an explicit
//     `// NOLINT(locks): <reason>`;
//   * condition variables are notified with their paired mutex held
//     (the PR-5 Scheduler teardown race: an unlocked notify can touch a
//     condition variable whose owner is mid-destruction);
//   * waits always take a predicate;
//   * wait predicates run with the lock held by std::condition_variable
//     contract, which clang cannot see into the lambda — assert it with
//     `mutex_.assert_held()` as the predicate's first statement.
#pragma once

#include <mutex>

#if defined(__clang__)
#define BFDN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define BFDN_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// On a class: instances are capabilities (lockable things).
#define BFDN_CAPABILITY(x) BFDN_THREAD_ANNOTATION(capability(x))
/// On a class: RAII object acquiring a capability for its lifetime.
#define BFDN_SCOPED_CAPABILITY BFDN_THREAD_ANNOTATION(scoped_lockable)
/// On a data member: only touch it with the named mutex held.
#define BFDN_GUARDED_BY(x) BFDN_THREAD_ANNOTATION(guarded_by(x))
/// On a pointer member: the pointee is guarded by the named mutex.
#define BFDN_PT_GUARDED_BY(x) BFDN_THREAD_ANNOTATION(pt_guarded_by(x))
/// On a function: callers must hold the listed mutexes.
#define BFDN_REQUIRES(...) \
  BFDN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// On a function: it acquires the listed mutexes and returns holding them.
#define BFDN_ACQUIRE(...) \
  BFDN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// On a function: it releases the listed mutexes.
#define BFDN_RELEASE(...) \
  BFDN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// On a function: it may acquire the mutex; returns `ret` on success.
#define BFDN_TRY_ACQUIRE(ret, ...) \
  BFDN_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))
/// On a function: callers must NOT hold the listed mutexes
/// (self-deadlock guard on public entry points that lock internally).
#define BFDN_EXCLUDES(...) \
  BFDN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// On a function: tells the analysis the capability is held from here on
/// without acquiring it (no runtime effect). Used by wait predicates.
#define BFDN_ASSERT_CAPABILITY(...) \
  BFDN_THREAD_ANNOTATION(assert_capability(__VA_ARGS__))
/// Lock-ordering documentation, checked by clang when both are held.
#define BFDN_ACQUIRED_BEFORE(...) \
  BFDN_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define BFDN_ACQUIRED_AFTER(...) \
  BFDN_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
/// Escape hatch: the function is not analyzed. Use sparingly, with a
/// comment saying why the discipline cannot be expressed.
#define BFDN_NO_THREAD_SAFETY_ANALYSIS \
  BFDN_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace bfdn {

/// std::mutex wearing the capability attribute so clang can track it.
/// `native()` exposes the wrapped mutex for std::condition_variable,
/// which only accepts std::unique_lock<std::mutex>.
class BFDN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() BFDN_ACQUIRE() { mutex_.lock(); }
  void unlock() BFDN_RELEASE() { mutex_.unlock(); }
  bool try_lock() BFDN_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  /// Declares to the analysis that this mutex is held at the call site
  /// without acquiring it. For contexts clang analyzes as separate
  /// functions but that run under the lock by contract — condition
  /// variable wait predicates. Compiles to nothing.
  void assert_held() const BFDN_ASSERT_CAPABILITY() {}

  /// The wrapped handle, for std::condition_variable::wait via
  /// MutexLock::native(). Invisible to the thread-safety analysis.
  std::mutex& native() { return mutex_; }

 private:
  std::mutex mutex_;  // NOLINT(locks): the wrapped handle IS the capability; it guards nothing itself
};

/// Scoped lock over Mutex (the annotated std::unique_lock). `native()`
/// hands the underlying unique_lock to condition-variable waits; code
/// that drops the lock around IO (store/result_store.cpp flush_batch)
/// goes through `native().unlock()/.lock()`, which the analysis cannot
/// see — such sections must not touch guarded state while unlocked.
class BFDN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) BFDN_ACQUIRE(mutex)
      : lock_(mutex.native()) {}
  ~MutexLock() BFDN_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace bfdn
