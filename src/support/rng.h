// Deterministic pseudo-random number generation.
//
// Every randomized component in this repository (tree generators,
// adversary strategies, workload samplers) takes an explicit 64-bit seed
// and draws from an Rng instance, so that every experiment is
// reproducible byte-for-byte. The generator is xoshiro256**, seeded via
// splitmix64, which is the conventional pairing recommended by the
// xoshiro authors.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "support/check.h"

namespace bfdn {

/// splitmix64 step; used for seeding and for cheap hash-like mixing.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator with convenience sampling helpers.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements, so it can
/// also be plugged into <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Raw 64 random bits.
  result_type operator()();

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli draw with probability p of true.
  bool next_bool(double p = 0.5);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t next_weighted(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i + 1));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// Picks a uniformly random element; requires non-empty input.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    BFDN_REQUIRE(!items.empty(), "pick from empty vector");
    return items[static_cast<std::size_t>(next_below(items.size()))];
  }

  /// Derives an independent child generator (stable under reordering of
  /// draws from the parent); used to give each repetition of an
  /// experiment its own stream.
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace bfdn
