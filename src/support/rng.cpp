#include "support/rng.h"

#include <cmath>

namespace bfdn {
namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  BFDN_REQUIRE(bound > 0, "next_below(0)");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  BFDN_REQUIRE(lo <= hi, "next_int with lo > hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

std::size_t Rng::next_weighted(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    BFDN_REQUIRE(w >= 0 && std::isfinite(w), "weights must be >= 0");
    total += w;
  }
  BFDN_REQUIRE(total > 0, "next_weighted needs a positive weight");
  double x = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0) return i;
  }
  return weights.size() - 1;  // floating-point edge: last positive bucket
}

Rng Rng::split() {
  std::uint64_t derived = (*this)();
  return Rng(splitmix64(derived));
}

}  // namespace bfdn
