// Minimal fixed-size thread pool used by the experiment campaign runner
// to evaluate independent (tree, algorithm, k) cells in parallel.
//
// Deliberately small: submit void() jobs, wait for all of them. Results
// flow through the closures (each campaign cell writes to its own
// pre-allocated slot, so no synchronization is needed beyond the pool's
// own queue lock). Locking follows the annotated-Mutex convention
// (support/thread_annotations.h, DESIGN.md §5c): guarded fields are
// declared as such and clang -Wthread-safety proves the accesses.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "support/thread_annotations.h"

namespace bfdn {

class ThreadPool {
 public:
  /// threads == 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(std::int32_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::int32_t num_threads() const {
    return static_cast<std::int32_t>(workers_.size());
  }

  /// Enqueues a job. A throwing job does not terminate the process: the
  /// first exception any job throws is captured and rethrown from the
  /// next wait_idle() call (later exceptions are dropped).
  void submit(std::function<void()> job) BFDN_EXCLUDES(mutex_);

  /// Blocks until every submitted job has finished, then rethrows the
  /// first exception a job threw since the last wait_idle() (if any);
  /// the stored exception is cleared, so the pool stays usable.
  void wait_idle() BFDN_EXCLUDES(mutex_);

 private:
  void worker_loop() BFDN_EXCLUDES(mutex_);

  Mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> queue_ BFDN_GUARDED_BY(mutex_);
  std::int64_t in_flight_ BFDN_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ BFDN_GUARDED_BY(mutex_) = false;
  std::exception_ptr first_exception_ BFDN_GUARDED_BY(mutex_);
  std::vector<std::thread> workers_;
};

}  // namespace bfdn
