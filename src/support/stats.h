// Small statistics helpers used by benches and experiment harnesses.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bfdn {

/// Streaming accumulator: count, min, max, mean, (population) variance.
/// Uses Welford's algorithm for numerical stability.
class RunningStat {
 public:
  void add(double x);

  std::uint64_t count() const { return count_; }
  double mean() const;
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
  double sum_ = 0;
};

/// Percentile of a sample by linear interpolation; q in [0, 1].
/// Copies and sorts the input; fine for bench-sized samples.
double percentile(std::vector<double> sample, double q);

/// Integer histogram keyed by bucket value; used e.g. for
/// reanchors-per-depth counts.
class Histogram {
 public:
  void add(std::int64_t key, std::uint64_t weight = 1);
  std::uint64_t at(std::int64_t key) const;
  std::uint64_t total() const { return total_; }
  std::int64_t max_key() const;
  const std::map<std::int64_t, std::uint64_t>& buckets() const {
    return buckets_;
  }
  /// Renders "k1:v1 k2:v2 ..." for compact logging.
  std::string to_string() const;

 private:
  std::map<std::int64_t, std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

}  // namespace bfdn
