#include "support/check.h"

#include <sstream>

namespace bfdn::detail {

void check_failed(const char* kind, const char* expr, const char* file,
                  int line, const std::string& message) {
  std::ostringstream oss;
  oss << kind << " failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) oss << " — " << message;
  throw CheckError(oss.str());
}

}  // namespace bfdn::detail
