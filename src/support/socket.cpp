#include "support/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/check.h"
#include "support/strings.h"

namespace bfdn {
namespace {

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

void set_nodelay(int fd) {
  // Request/response lines are tiny; Nagle would add 40ms stalls.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

bool Socket::send_all(const std::string& data) {
  if (fd_ < 0) return false;
  std::size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE, not process death.
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> Socket::recv_line() {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    if (fd_ < 0) break;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // includes EAGAIN from SO_RCVTIMEO
    }
    if (n == 0) break;  // EOF
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
  if (!buffer_.empty()) {
    std::string line = std::move(buffer_);
    buffer_.clear();
    return line;
  }
  return std::nullopt;
}

std::optional<std::string> Socket::recv_exact(std::size_t n) {
  while (buffer_.size() < n) {
    if (fd_ < 0) return std::nullopt;
    char chunk[4096];
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;  // includes EAGAIN from SO_RCVTIMEO
    }
    if (got == 0) return std::nullopt;  // EOF mid-payload
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
  std::string payload = buffer_.substr(0, n);
  buffer_.erase(0, n);
  return payload;
}

void Socket::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ListenSocket::~ListenSocket() { close(); }

void ListenSocket::listen(std::uint16_t port) {
  BFDN_REQUIRE(fd_ < 0, "ListenSocket: already listening");
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  BFDN_REQUIRE(fd_ >= 0, "socket() failed");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    close();
    BFDN_REQUIRE(false, str_format("bind(127.0.0.1:%u) failed: %s", port,
                                   std::strerror(err)));
  }
  socklen_t len = sizeof(addr);
  BFDN_CHECK(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
                 0,
             "getsockname failed");
  port_ = ntohs(addr.sin_port);
  if (::listen(fd_, 64) != 0) {
    const int err = errno;
    close();
    BFDN_REQUIRE(false,
                 str_format("listen failed: %s", std::strerror(err)));
  }
}

std::optional<Socket> ListenSocket::accept(std::int32_t timeout_ms) {
  if (fd_ < 0) return std::nullopt;
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0) return std::nullopt;
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return std::nullopt;
  set_nodelay(client);
  return Socket(client);
}

void ListenSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket connect_local(std::uint16_t port, std::int32_t recv_timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  BFDN_REQUIRE(fd >= 0, "socket() failed");
  sockaddr_in addr = loopback(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    BFDN_REQUIRE(false, str_format("connect(127.0.0.1:%u) failed: %s",
                                   port, std::strerror(err)));
  }
  set_nodelay(fd);
  if (recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = recv_timeout_ms / 1000;
    tv.tv_usec = (recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  return Socket(fd);
}

}  // namespace bfdn
