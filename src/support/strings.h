// Minimal string formatting helpers (printf-style, type-checked by the
// compiler's format attribute where available).
#pragma once

#include <string>
#include <vector>

namespace bfdn {

/// snprintf-backed formatting into a std::string.
#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
std::string
str_format(const char* fmt, ...);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items,
                 const std::string& sep);

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(const std::string& text, char delim);

}  // namespace bfdn
