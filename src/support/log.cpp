#include "support/log.h"

#include <atomic>
#include <cstdio>

namespace bfdn {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) <
      g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), message.c_str());
}

void log_debug(const std::string& message) {
  log_message(LogLevel::kDebug, message);
}
void log_info(const std::string& message) {
  log_message(LogLevel::kInfo, message);
}
void log_warn(const std::string& message) {
  log_message(LogLevel::kWarn, message);
}
void log_error(const std::string& message) {
  log_message(LogLevel::kError, message);
}

}  // namespace bfdn
