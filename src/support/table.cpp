#include "support/table.h"

#include <algorithm>
#include <sstream>

#include "support/check.h"
#include "support/strings.h"

namespace bfdn {
namespace {

std::string csv_escape(const std::string& cell_text) {
  if (cell_text.find_first_of(",\"\n") == std::string::npos) return cell_text;
  std::string out = "\"";
  for (char c : cell_text) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  BFDN_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  BFDN_REQUIRE(row.size() == header_.size(), "row width mismatch");
  rows_.push_back(std::move(row));
}

const std::vector<std::string>& Table::row(std::size_t i) const {
  BFDN_REQUIRE(i < rows_.size(), "row index out of range");
  return rows_[i];
}

std::string Table::to_console() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c != 0) oss << "  ";
      oss << r[c];
      for (std::size_t pad = r[c].size(); pad < widths[c]; ++pad) oss << ' ';
    }
    oss << '\n';
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c != 0) oss << "  ";
    oss << std::string(widths[c], '-');
  }
  oss << '\n';
  for (const auto& r : rows_) emit(r);
  return oss.str();
}

std::string Table::to_csv() const {
  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c != 0) oss << ',';
      oss << csv_escape(r[c]);
    }
    oss << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return oss.str();
}

std::string Table::to_markdown() const {
  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& r) {
    oss << "| ";
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c != 0) oss << " | ";
      oss << r[c];
    }
    oss << " |\n";
  };
  emit(header_);
  oss << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) oss << "---|";
  oss << '\n';
  for (const auto& r : rows_) emit(r);
  return oss.str();
}

std::string cell(std::int64_t v) { return std::to_string(v); }
std::string cell(std::uint64_t v) { return std::to_string(v); }
std::string cell(int v) { return std::to_string(v); }
std::string cell(double v, int precision) {
  return str_format("%.*f", precision, v);
}
std::string cell_bool(bool v) { return v ? "yes" : "no"; }

}  // namespace bfdn
