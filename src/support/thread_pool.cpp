#include "support/thread_pool.h"

#include <algorithm>

#include "support/check.h"

namespace bfdn {

ThreadPool::ThreadPool(std::int32_t threads) {
  if (threads <= 0) {
    threads = static_cast<std::int32_t>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  workers_.reserve(static_cast<std::size_t>(threads));
  for (std::int32_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job) {
  BFDN_REQUIRE(job != nullptr, "null job");
  {
    std::unique_lock<std::mutex> lock(mutex_);
    BFDN_REQUIRE(!shutting_down_, "submit after shutdown");
    queue_.push(std::move(job));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_exception_ != nullptr) {
    std::exception_ptr error = first_exception_;
    first_exception_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop();
    }
    std::exception_ptr error;
    try {
      job();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (error != nullptr && first_exception_ == nullptr) {
        first_exception_ = error;
      }
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace bfdn
