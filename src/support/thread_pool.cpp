#include "support/thread_pool.h"

#include <algorithm>
#include <utility>

#include "support/check.h"

namespace bfdn {

ThreadPool::ThreadPool(std::int32_t threads) {
  if (threads <= 0) {
    threads = static_cast<std::int32_t>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  workers_.reserve(static_cast<std::size_t>(threads));
  for (std::int32_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
    // Notify under the lock: an unlocked notify races a worker that
    // re-checks the predicate and exits, destroying the cv under us.
    work_available_.notify_all();
  }
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job) {
  BFDN_REQUIRE(job != nullptr, "null job");
  MutexLock lock(mutex_);
  BFDN_REQUIRE(!shutting_down_, "submit after shutdown");
  queue_.push(std::move(job));
  ++in_flight_;
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  all_done_.wait(lock.native(), [this] {
    mutex_.assert_held();  // the cv re-acquires before the predicate
    return in_flight_ == 0;
  });
  if (first_exception_ != nullptr) {
    std::exception_ptr error = first_exception_;
    first_exception_ = nullptr;
    lock.native().unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(mutex_);
      work_available_.wait(lock.native(), [this] {
        mutex_.assert_held();
        return shutting_down_ || !queue_.empty();
      });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop();
    }
    std::exception_ptr error;
    try {
      job();
    } catch (...) {
      error = std::current_exception();
    }
    {
      MutexLock lock(mutex_);
      if (error != nullptr && first_exception_ == nullptr) {
        first_exception_ = error;
      }
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace bfdn
