// Thin POSIX TCP helpers for the local serving subsystem
// (src/service). Loopback only: the protocol carries no authentication,
// so the listener binds 127.0.0.1 exclusively.
//
// Blocking I/O with a line-oriented receive buffer — the service
// protocol is one JSON document per '\n'-terminated line, so recv_line
// is the only framing either side needs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace bfdn {

/// Connected TCP socket (move-only RAII over the fd).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes the whole buffer (retrying short writes). Returns false on
  /// a connection error (EPIPE etc.; SIGPIPE is suppressed).
  bool send_all(const std::string& data);

  /// Reads up to and including the next '\n'; returns the line without
  /// its terminator. std::nullopt on EOF / connection error. A final
  /// unterminated fragment before EOF is returned as a line.
  std::optional<std::string> recv_line();

  /// Reads exactly `n` raw bytes (consuming any bytes already buffered
  /// past the last returned line first — the segment-shipping protocol
  /// sends a JSON header line followed by a binary payload on the same
  /// connection). std::nullopt on EOF / connection error before `n`
  /// bytes arrived.
  std::optional<std::string> recv_exact(std::size_t n);

  /// Half-closes the read side, waking a peer blocked in recv_line.
  void shutdown_read();

  void close();

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes received past the last returned line
};

/// Listening socket bound to 127.0.0.1. port 0 picks an ephemeral port;
/// port() reports the actual one.
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket();

  ListenSocket(ListenSocket&&) = delete;
  ListenSocket& operator=(ListenSocket&&) = delete;

  /// Binds and listens; throws CheckError on failure (e.g. port in use).
  void listen(std::uint16_t port);

  bool valid() const { return fd_ >= 0; }
  std::uint16_t port() const { return port_; }

  /// Waits up to timeout_ms for a connection. Returns a connected
  /// socket, or std::nullopt on timeout or once close()d.
  std::optional<Socket> accept(std::int32_t timeout_ms);

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:port. Throws CheckError when nothing listens
/// there. recv_timeout_ms > 0 arms SO_RCVTIMEO so a dead server cannot
/// hang the client forever.
Socket connect_local(std::uint16_t port, std::int32_t recv_timeout_ms = 0);

}  // namespace bfdn
