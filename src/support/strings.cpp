#include "support/strings.h"

#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace bfdn {

std::string str_format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed <= 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string join(const std::vector<std::string>& items,
                 const std::string& sep) {
  std::ostringstream oss;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) oss << sep;
    oss << items[i];
  }
  return oss.str();
}

std::vector<std::string> split(const std::string& text, char delim) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream iss(text);
  while (std::getline(iss, field, delim)) out.push_back(field);
  if (!text.empty() && text.back() == delim) out.emplace_back();
  return out;
}

}  // namespace bfdn
