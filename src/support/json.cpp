#include "support/json.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "support/check.h"
#include "support/strings.h"

namespace bfdn {

std::string json_quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += str_format("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

JsonWriter::JsonWriter(bool pretty) : pretty_(pretty) {}

void JsonWriter::newline_indent() {
  out_.push_back('\n');
  out_.append(2 * stack_.size(), ' ');
}

void JsonWriter::before_value() {
  if (key_pending_) {
    key_pending_ = false;
    return;
  }
  if (stack_.empty()) {
    BFDN_REQUIRE(out_.empty(), "JsonWriter: one top-level value only");
    return;
  }
  BFDN_REQUIRE(stack_.back().first == '[',
               "JsonWriter: object member needs key()");
  if (stack_.back().second++ > 0) out_.push_back(',');
  if (pretty_) newline_indent();
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_.push_back('{');
  stack_.emplace_back('{', 0);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  BFDN_REQUIRE(!stack_.empty() && stack_.back().first == '{' &&
                   !key_pending_,
               "JsonWriter: mismatched end_object");
  const bool had_members = stack_.back().second > 0;
  stack_.pop_back();
  if (pretty_ && had_members) newline_indent();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_.push_back('[');
  stack_.emplace_back('[', 0);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  BFDN_REQUIRE(!stack_.empty() && stack_.back().first == '[',
               "JsonWriter: mismatched end_array");
  const bool had_items = stack_.back().second > 0;
  stack_.pop_back();
  if (pretty_ && had_items) newline_indent();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  BFDN_REQUIRE(!stack_.empty() && stack_.back().first == '{' &&
                   !key_pending_,
               "JsonWriter: key() outside object");
  if (stack_.back().second++ > 0) out_.push_back(',');
  if (pretty_) newline_indent();
  out_ += json_quote(name);
  out_.push_back(':');
  if (pretty_) out_.push_back(' ');
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  out_ += json_quote(text);
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string_view(text));
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value();
  out_ += str_format("%lld", static_cast<long long>(number));
  return *this;
}

JsonWriter& JsonWriter::value(std::int32_t number) {
  return value(static_cast<std::int64_t>(number));
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  before_value();
  out_ += str_format("%llu", static_cast<unsigned long long>(number));
  return *this;
}

JsonWriter& JsonWriter::value(double number, int decimals) {
  before_value();
  out_ += decimals < 0 ? str_format("%.6g", number)
                       : str_format("%.*f", decimals, number);
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  out_ += flag ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value_null() {
  before_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  before_value();
  out_ += json;
  return *this;
}

bool JsonValue::as_bool() const {
  BFDN_REQUIRE(type_ == Type::kBool, "JsonValue: not a bool");
  return bool_;
}

std::int64_t JsonValue::as_int() const {
  BFDN_REQUIRE(type_ == Type::kNumber, "JsonValue: not a number");
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text_.c_str(), &end, 10);
  BFDN_REQUIRE(errno == 0 && end != nullptr && *end == '\0',
               "JsonValue: not an int64: " + text_);
  return v;
}

std::uint64_t JsonValue::as_uint() const {
  BFDN_REQUIRE(type_ == Type::kNumber, "JsonValue: not a number");
  BFDN_REQUIRE(!text_.empty() && text_[0] != '-',
               "JsonValue: negative uint64: " + text_);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text_.c_str(), &end, 10);
  BFDN_REQUIRE(errno == 0 && end != nullptr && *end == '\0',
               "JsonValue: not a uint64: " + text_);
  return v;
}

double JsonValue::as_double() const {
  BFDN_REQUIRE(type_ == Type::kNumber, "JsonValue: not a number");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text_.c_str(), &end);
  BFDN_REQUIRE(errno == 0 && end != nullptr && *end == '\0',
               "JsonValue: not a double: " + text_);
  return v;
}

const std::string& JsonValue::as_string() const {
  BFDN_REQUIRE(type_ == Type::kString, "JsonValue: not a string");
  return text_;
}

std::size_t JsonValue::size() const {
  BFDN_REQUIRE(type_ == Type::kArray, "JsonValue: not an array");
  return items_.size();
}

const JsonValue& JsonValue::at(std::size_t index) const {
  BFDN_REQUIRE(type_ == Type::kArray && index < items_.size(),
               "JsonValue: bad array index");
  return items_[index];
}

bool JsonValue::has(std::string_view key) const {
  if (type_ != Type::kObject) return false;
  for (const auto& [name, value] : members_) {
    if (name == key) return true;
  }
  return false;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  BFDN_REQUIRE(type_ == Type::kObject, "JsonValue: not an object");
  for (const auto& [name, value] : members_) {
    if (name == key) return value;
  }
  BFDN_REQUIRE(false, "JsonValue: missing member " + std::string(key));
  return *this;  // unreachable
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  BFDN_REQUIRE(type_ == Type::kObject, "JsonValue: not an object");
  return members_;
}

std::string JsonValue::get_string(std::string_view key,
                                  const std::string& fallback) const {
  return has(key) ? at(key).as_string() : fallback;
}

std::int64_t JsonValue::get_int(std::string_view key,
                                std::int64_t fallback) const {
  return has(key) ? at(key).as_int() : fallback;
}

std::uint64_t JsonValue::get_uint(std::string_view key,
                                  std::uint64_t fallback) const {
  return has(key) ? at(key).as_uint() : fallback;
}

double JsonValue::get_double(std::string_view key, double fallback) const {
  return has(key) ? at(key).as_double() : fallback;
}

bool JsonValue::get_bool(std::string_view key, bool fallback) const {
  return has(key) ? at(key).as_bool() : fallback;
}

/// Recursive-descent parser over a string_view with an index cursor.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out, std::string* error) {
    try {
      skip_ws();
      parse_value(out, /*depth=*/0);
      skip_ws();
      require(pos_ == text_.size(), "trailing characters");
      return true;
    } catch (const CheckError& e) {
      if (error != nullptr) *error = e.what();
      return false;
    }
  }

 private:
  void require(bool ok, const char* what) {
    BFDN_REQUIRE(ok, str_format("json parse error at offset %zu: %s", pos_,
                                what));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    require(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c, const char* what) { require(consume(c), what); }

  void parse_value(JsonValue& out, int depth) {
    require(depth < 64, "nesting too deep");
    switch (peek()) {
      case '{': parse_object(out, depth); return;
      case '[': parse_array(out, depth); return;
      case '"':
        out.type_ = JsonValue::Type::kString;
        out.text_ = parse_string();
        return;
      case 't':
        expect_word("true");
        out.type_ = JsonValue::Type::kBool;
        out.bool_ = true;
        return;
      case 'f':
        expect_word("false");
        out.type_ = JsonValue::Type::kBool;
        out.bool_ = false;
        return;
      case 'n':
        expect_word("null");
        out.type_ = JsonValue::Type::kNull;
        return;
      default:
        out.type_ = JsonValue::Type::kNumber;
        out.text_ = parse_number();
        return;
    }
  }

  void expect_word(const char* word) {
    for (const char* c = word; *c != '\0'; ++c) {
      require(consume(*c), "bad literal");
    }
  }

  std::string parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    require(pos_ > start + (text_[start] == '-' ? 1 : 0), "bad number");
    return std::string(text_.substr(start, pos_ - start));
  }

  std::string parse_string() {
    expect('"', "expected string");
    std::string out;
    for (;;) {
      require(pos_ < text_.size(), "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      require(pos_ < text_.size(), "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          require(pos_ + 4 <= text_.size(), "bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else require(false, "bad \\u escape");
          }
          // Protocol strings are ASCII; encode BMP code points as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: require(false, "bad escape");
      }
    }
  }

  void parse_object(JsonValue& out, int depth) {
    expect('{', "expected object");
    out.type_ = JsonValue::Type::kObject;
    skip_ws();
    if (consume('}')) return;
    for (;;) {
      skip_ws();
      std::string name = parse_string();
      skip_ws();
      expect(':', "expected ':'");
      skip_ws();
      JsonValue member;
      parse_value(member, depth + 1);
      out.members_.emplace_back(std::move(name), std::move(member));
      skip_ws();
      if (consume(',')) continue;
      expect('}', "expected ',' or '}'");
      return;
    }
  }

  void parse_array(JsonValue& out, int depth) {
    expect('[', "expected array");
    out.type_ = JsonValue::Type::kArray;
    skip_ws();
    if (consume(']')) return;
    for (;;) {
      skip_ws();
      JsonValue item;
      parse_value(item, depth + 1);
      out.items_.push_back(std::move(item));
      skip_ws();
      if (consume(',')) continue;
      expect(']', "expected ',' or ']'");
      return;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool json_parse(std::string_view text, JsonValue& out, std::string* error) {
  out = JsonValue();
  return JsonParser(text).parse(out, error);
}

}  // namespace bfdn
