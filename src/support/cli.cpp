#include "support/cli.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "support/check.h"

namespace bfdn {
namespace {

const char* kind_name(int kind) {
  switch (kind) {
    case 0: return "int";
    case 1: return "double";
    case 2: return "string";
    case 3: return "bool";
    default: return "?";
  }
}

}  // namespace

CliParser::CliParser(std::string program_name, std::string description)
    : program_name_(std::move(program_name)),
      description_(std::move(description)) {}

void CliParser::add_int(const std::string& name, std::int64_t default_value,
                        const std::string& help) {
  flags_[name] = Flag{Kind::kInt, help, std::to_string(default_value)};
}

void CliParser::add_double(const std::string& name, double default_value,
                           const std::string& help) {
  flags_[name] = Flag{Kind::kDouble, help, std::to_string(default_value)};
}

void CliParser::add_string(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  flags_[name] = Flag{Kind::kString, help, default_value};
}

void CliParser::add_bool(const std::string& name, bool default_value,
                         const std::string& help) {
  flags_[name] = Flag{Kind::kBool, help, default_value ? "true" : "false"};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    BFDN_REQUIRE(arg.rfind("--", 0) == 0, "expected --flag, got: " + arg);
    arg = arg.substr(2);
    if (arg == "help") {
      std::fputs(help_text().c_str(), stdout);
      return false;
    }
    std::string name = arg;
    std::string value;
    bool have_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      have_value = true;
    }
    const auto it = flags_.find(name);
    BFDN_REQUIRE(it != flags_.end(), "unknown flag: --" + name);
    if (!have_value) {
      if (it->second.kind == Kind::kBool) {
        value = "true";
      } else {
        BFDN_REQUIRE(i + 1 < argc, "missing value for --" + name);
        value = argv[++i];
      }
    }
    set_value(name, value);
  }
  return true;
}

void CliParser::set_value(const std::string& name, const std::string& value) {
  Flag& f = flags_.at(name);
  switch (f.kind) {
    case Kind::kInt: {
      char* end = nullptr;
      (void)std::strtoll(value.c_str(), &end, 10);
      BFDN_REQUIRE(end && *end == '\0' && !value.empty(),
                   "bad int for --" + name + ": " + value);
      break;
    }
    case Kind::kDouble: {
      char* end = nullptr;
      (void)std::strtod(value.c_str(), &end);
      BFDN_REQUIRE(end && *end == '\0' && !value.empty(),
                   "bad double for --" + name + ": " + value);
      break;
    }
    case Kind::kBool:
      BFDN_REQUIRE(value == "true" || value == "false",
                   "bad bool for --" + name + ": " + value);
      break;
    case Kind::kString:
      break;
  }
  f.value = value;
}

const CliParser::Flag& CliParser::flag(const std::string& name,
                                       Kind kind) const {
  const auto it = flags_.find(name);
  BFDN_REQUIRE(it != flags_.end(), "flag not registered: --" + name);
  BFDN_REQUIRE(it->second.kind == kind,
               "flag --" + name + " is not of the requested type");
  return it->second;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  return std::strtoll(flag(name, Kind::kInt).value.c_str(), nullptr, 10);
}

double CliParser::get_double(const std::string& name) const {
  return std::strtod(flag(name, Kind::kDouble).value.c_str(), nullptr);
}

std::string CliParser::get_string(const std::string& name) const {
  return flag(name, Kind::kString).value;
}

bool CliParser::get_bool(const std::string& name) const {
  return flag(name, Kind::kBool).value == "true";
}

std::string CliParser::help_text() const {
  std::ostringstream oss;
  oss << program_name_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& [name, f] : flags_) {
    oss << "  --" << name << " (" << kind_name(static_cast<int>(f.kind))
        << ", default " << f.value << ")\n      " << f.help << "\n";
  }
  return oss.str();
}

}  // namespace bfdn
