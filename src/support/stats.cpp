#include "support/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/check.h"

namespace bfdn {

void RunningStat::add(double x) {
  ++count_;
  sum_ += x;
  if (count_ == 1) {
    min_ = max_ = x;
    mean_ = x;
    m2_ = 0;
    return;
  }
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::mean() const {
  BFDN_REQUIRE(count_ > 0, "mean of empty sample");
  return mean_;
}

double RunningStat::variance() const {
  BFDN_REQUIRE(count_ > 0, "variance of empty sample");
  return m2_ / static_cast<double>(count_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::min() const {
  BFDN_REQUIRE(count_ > 0, "min of empty sample");
  return min_;
}

double RunningStat::max() const {
  BFDN_REQUIRE(count_ > 0, "max of empty sample");
  return max_;
}

double percentile(std::vector<double> sample, double q) {
  BFDN_REQUIRE(!sample.empty(), "percentile of empty sample");
  BFDN_REQUIRE(q >= 0 && q <= 1, "q must be in [0,1]");
  std::sort(sample.begin(), sample.end());
  if (sample.size() == 1) return sample.front();
  const double pos = q * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] + frac * (sample[hi] - sample[lo]);
}

void Histogram::add(std::int64_t key, std::uint64_t weight) {
  buckets_[key] += weight;
  total_ += weight;
}

std::uint64_t Histogram::at(std::int64_t key) const {
  const auto it = buckets_.find(key);
  return it == buckets_.end() ? 0 : it->second;
}

std::int64_t Histogram::max_key() const {
  BFDN_REQUIRE(!buckets_.empty(), "max_key of empty histogram");
  return buckets_.rbegin()->first;
}

std::string Histogram::to_string() const {
  std::ostringstream oss;
  bool first = true;
  for (const auto& [key, value] : buckets_) {
    if (!first) oss << ' ';
    first = false;
    oss << key << ':' << value;
  }
  return oss.str();
}

}  // namespace bfdn
