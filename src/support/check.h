// Lightweight runtime checking for invariants and preconditions.
//
// The simulator and algorithms use these macros to fail fast (with a
// descriptive message) when a model invariant is violated. They are
// always on: this is a research reproduction where silent corruption of
// the exploration state would invalidate measured results, so the cost
// of a branch per check is accepted even in release builds.
#pragma once

#include <stdexcept>
#include <string>

namespace bfdn {

/// Error thrown when a BFDN_CHECK / BFDN_REQUIRE fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* kind, const char* expr,
                               const char* file, int line,
                               const std::string& message);
}  // namespace detail

}  // namespace bfdn

/// Verifies an internal invariant. Failure indicates a bug in this library.
#define BFDN_CHECK(expr, ...)                                             \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::bfdn::detail::check_failed("invariant", #expr, __FILE__,          \
                                   __LINE__, ::std::string{__VA_ARGS__}); \
    }                                                                     \
  } while (false)

/// Verifies a caller-supplied precondition (argument validation).
#define BFDN_REQUIRE(expr, ...)                                           \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::bfdn::detail::check_failed("precondition", #expr, __FILE__,       \
                                   __LINE__, ::std::string{__VA_ARGS__}); \
    }                                                                     \
  } while (false)
