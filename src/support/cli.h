// Tiny command-line flag parser for bench and example binaries.
//
// Supported syntax: --name=value, --name value, and bare boolean
// --name. Unknown flags are an error (fail fast rather than silently
// running the wrong sweep). "--help" prints registered flags and the
// binary description.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bfdn {

class CliParser {
 public:
  CliParser(std::string program_name, std::string description);

  /// Registers a flag and returns the current (default) value. Call all
  /// registrations before parse().
  void add_int(const std::string& name, std::int64_t default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);
  void add_bool(const std::string& name, bool default_value,
                const std::string& help);

  /// Parses argv. Returns false if --help was requested (help already
  /// printed); throws CheckError on malformed input or unknown flags.
  bool parse(int argc, const char* const* argv);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  std::string get_string(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  std::string help_text() const;

 private:
  enum class Kind { kInt, kDouble, kString, kBool };
  struct Flag {
    Kind kind;
    std::string help;
    std::string value;  // canonical textual value
  };

  const Flag& flag(const std::string& name, Kind kind) const;
  void set_value(const std::string& name, const std::string& value);

  std::string program_name_;
  std::string description_;
  std::map<std::string, Flag> flags_;
};

}  // namespace bfdn
