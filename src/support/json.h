// Minimal JSON emission and parsing, shared by the bench binaries
// (BENCH_*.json documents) and the serving protocol (src/service).
//
// The writer replaces the hand-rolled printf JSON that used to live in
// bench/bench_*.cpp: it tracks nesting and comma placement so emitting
// a document is a linear sequence of begin/key/value calls that cannot
// produce malformed output. The parser is a small recursive-descent
// reader covering the JSON subset the protocol uses (objects, arrays,
// strings, numbers, booleans, null); numbers keep their source text so
// 64-bit identifiers round-trip without double-precision loss.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bfdn {

/// Escapes and quotes a string for JSON output.
std::string json_quote(std::string_view text);

/// Streaming JSON document builder. Compact by default (single line,
/// protocol framing); pretty mode emits two-space indentation for the
/// committed BENCH files.
class JsonWriter {
 public:
  explicit JsonWriter(bool pretty = false);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member name; must be followed by a value or container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::int32_t number);
  JsonWriter& value(std::uint64_t number);
  /// decimals < 0 formats with %.6g; otherwise fixed-point %.*f.
  JsonWriter& value(double number, int decimals = -1);
  JsonWriter& value(bool flag);
  JsonWriter& value_null();
  /// Splices pre-serialized JSON verbatim (e.g. a cached result object).
  JsonWriter& raw(std::string_view json);

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& kv(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }
  JsonWriter& kv(std::string_view name, double number, int decimals) {
    key(name);
    return value(number, decimals);
  }

  /// The document so far. Valid once every container is closed.
  const std::string& str() const { return out_; }

 private:
  void before_value();
  void newline_indent();

  bool pretty_ = false;
  std::string out_;
  // One entry per open container: '{' or '['; value_count of the top.
  std::vector<std::pair<char, std::int32_t>> stack_;
  bool key_pending_ = false;
};

/// Parsed JSON value. Numbers keep their raw text; accessors convert on
/// demand and throw CheckError on type or range mismatch.
class JsonValue {
 public:
  enum class Type : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject,
  };

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_null() const { return type_ == Type::kNull; }

  bool as_bool() const;
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  double as_double() const;
  const std::string& as_string() const;

  // Arrays.
  std::size_t size() const;
  const JsonValue& at(std::size_t index) const;

  // Objects (member order preserved).
  bool has(std::string_view key) const;
  /// Member lookup; throws CheckError when absent.
  const JsonValue& at(std::string_view key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  // Convenience lookups with defaults, for optional protocol fields.
  std::string get_string(std::string_view key,
                         const std::string& fallback) const;
  std::int64_t get_int(std::string_view key, std::int64_t fallback) const;
  std::uint64_t get_uint(std::string_view key,
                         std::uint64_t fallback) const;
  double get_double(std::string_view key, double fallback) const;
  bool get_bool(std::string_view key, bool fallback) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::string text_;  // number source text or string payload
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one JSON document (surrounding whitespace allowed, nothing
/// else after it). Returns false and fills *error on malformed input.
bool json_parse(std::string_view text, JsonValue& out, std::string* error);

}  // namespace bfdn
