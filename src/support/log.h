// Leveled stderr logger. Benches keep stdout clean for tables; progress
// and diagnostics go through here.
#pragma once

#include <string>

namespace bfdn {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the minimum level that is emitted (default kInfo).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits "[level] message\n" to stderr if level >= threshold.
void log_message(LogLevel level, const std::string& message);

void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

}  // namespace bfdn
