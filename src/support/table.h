// Tabular output for bench harnesses.
//
// Each bench binary prints the rows of the table/figure it reproduces in
// three renderings: an aligned console table (human), optionally CSV and
// GitHub-flavoured markdown (for EXPERIMENTS.md). Cells are strings; the
// caller formats numbers (so a bench controls its own precision).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace bfdn {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::string>& row(std::size_t i) const;

  /// Space-aligned rendering with a separator rule under the header.
  std::string to_console() const;
  /// RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  std::string to_csv() const;
  /// GitHub-flavoured markdown table.
  std::string to_markdown() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Convenience cell formatters.
std::string cell(std::int64_t v);
std::string cell(std::uint64_t v);
std::string cell(int v);
std::string cell(double v, int precision = 2);
std::string cell_bool(bool v);

}  // namespace bfdn
