#include "adversarial/reactive.h"

#include "support/check.h"

namespace bfdn {

BudgetedReactiveAdversary::BudgetedReactiveAdversary(std::int64_t budget)
    : budget_(budget) {
  BFDN_REQUIRE(budget >= 0, "budget >= 0");
}

std::vector<char> BudgetedReactiveAdversary::choose_blocked(
    std::int64_t round, const std::vector<ObservedMove>& observed) {
  std::vector<char> blocked(observed.size(), 0);
  if (budget_ <= 0) return blocked;
  const std::vector<char> wanted = choose_impl(round, observed);
  BFDN_CHECK(wanted.size() == observed.size(), "block mask size");
  for (std::size_t i = 0; i < wanted.size(); ++i) {
    if (!wanted[i]) continue;
    if (!observed[i].moves) continue;  // blocking a stayer is free: skip
    if (budget_ <= 0) break;
    blocked[i] = 1;
    --budget_;
    ++spent_;
  }
  return blocked;
}

namespace {

class DiscoveryBlocker : public BudgetedReactiveAdversary {
 public:
  using BudgetedReactiveAdversary::BudgetedReactiveAdversary;
  std::string name() const override { return "discovery-blocker"; }

 protected:
  std::vector<char> choose_impl(
      std::int64_t, const std::vector<ObservedMove>& observed) override {
    std::vector<char> out(observed.size(), 0);
    for (std::size_t i = 0; i < observed.size(); ++i) {
      out[i] = observed[i].takes_dangling ? 1 : 0;
    }
    return out;
  }
};

class TargetedBlocker : public BudgetedReactiveAdversary {
 public:
  TargetedBlocker(std::int64_t budget, std::vector<std::int32_t> victims)
      : BudgetedReactiveAdversary(budget), victims_(std::move(victims)) {}
  std::string name() const override { return "targeted-blocker"; }

 protected:
  std::vector<char> choose_impl(
      std::int64_t, const std::vector<ObservedMove>& observed) override {
    std::vector<char> out(observed.size(), 0);
    for (std::int32_t victim : victims_) {
      if (victim >= 0 &&
          static_cast<std::size_t>(victim) < observed.size()) {
        out[static_cast<std::size_t>(victim)] = 1;
      }
    }
    return out;
  }

 private:
  std::vector<std::int32_t> victims_;
};

class RandomBlocker : public BudgetedReactiveAdversary {
 public:
  RandomBlocker(std::int64_t budget, double p, std::uint64_t seed)
      : BudgetedReactiveAdversary(budget), p_(p), rng_(seed) {
    BFDN_REQUIRE(p >= 0.0 && p <= 1.0, "p in [0, 1]");
  }
  std::string name() const override { return "random-blocker"; }

 protected:
  std::vector<char> choose_impl(
      std::int64_t, const std::vector<ObservedMove>& observed) override {
    std::vector<char> out(observed.size(), 0);
    for (std::size_t i = 0; i < observed.size(); ++i) {
      if (observed[i].moves && rng_.next_bool(p_)) out[i] = 1;
    }
    return out;
  }

 private:
  double p_;
  Rng rng_;
};

}  // namespace

std::unique_ptr<BudgetedReactiveAdversary> make_discovery_blocker(
    std::int64_t budget) {
  return std::make_unique<DiscoveryBlocker>(budget);
}

std::unique_ptr<BudgetedReactiveAdversary> make_targeted_blocker(
    std::int64_t budget, std::vector<std::int32_t> victims) {
  return std::make_unique<TargetedBlocker>(budget, std::move(victims));
}

std::unique_ptr<BudgetedReactiveAdversary> make_random_blocker(
    std::int64_t budget, double p, std::uint64_t seed) {
  return std::make_unique<RandomBlocker>(budget, p, seed);
}

}  // namespace bfdn
