#include "adversarial/async_scheduler.h"

#include "support/check.h"
#include "support/rng.h"
#include "support/strings.h"

namespace bfdn {

FixedRateScheduler::FixedRateScheduler(std::int32_t num_robots,
                                       std::int64_t period,
                                       std::int32_t num_slow)
    : num_robots_(num_robots), period_(period), num_slow_(num_slow) {
  BFDN_REQUIRE(num_robots >= 1, "need at least one robot");
  BFDN_REQUIRE(period >= 1, "period must be >= 1");
  BFDN_REQUIRE(num_slow >= 0 && num_slow <= num_robots,
               "num_slow out of range");
}

std::string FixedRateScheduler::name() const {
  return str_format("fixed-rate(period=%lld,slow=%d)",
                    static_cast<long long>(period_), num_slow_);
}

std::int64_t FixedRateScheduler::first_activation(std::int32_t) const {
  return 1;  // both rates include time 1
}

std::int64_t FixedRateScheduler::next_activation(std::int64_t now,
                                                 std::int32_t robot) const {
  if (!slow(robot)) return now + 1;
  // Slow robots are activated at times congruent to 1 mod period.
  return now + (period_ - ((now - 1) % period_));
}

LaggardScheduler::LaggardScheduler(std::int32_t num_robots,
                                   std::int64_t period,
                                   std::int32_t num_slow)
    : num_robots_(num_robots), period_(period), num_slow_(num_slow) {
  BFDN_REQUIRE(num_robots >= 1, "need at least one robot");
  BFDN_REQUIRE(period >= 1, "period must be >= 1");
  BFDN_REQUIRE(num_slow >= 0 && num_slow <= num_robots,
               "num_slow out of range");
}

std::string LaggardScheduler::name() const {
  return str_format("laggard(period=%lld,slow=%d)",
                    static_cast<long long>(period_), num_slow_);
}

std::int64_t LaggardScheduler::first_activation(std::int32_t) const {
  return 1;  // time 1 lies in the first (active) window
}

std::int64_t LaggardScheduler::next_activation(std::int64_t now,
                                               std::int32_t robot) const {
  if (!laggard(robot)) return now + 1;
  // Laggards are active at times t whose window index (t-1)/period is
  // even; a candidate landing in a stalled window jumps to the start of
  // the next active one.
  std::int64_t t = now + 1;
  const std::int64_t window = (t - 1) / period_;
  if (window % 2 == 1) t = (window + 1) * period_ + 1;
  return t;
}

RandomScheduler::RandomScheduler(std::uint64_t seed, std::int64_t max_delay)
    : seed_(seed), max_delay_(max_delay) {
  BFDN_REQUIRE(max_delay >= 0, "max_delay must be >= 0");
}

std::string RandomScheduler::name() const {
  return str_format("random(seed=%llu,delay=%lld)",
                    static_cast<unsigned long long>(seed_),
                    static_cast<long long>(max_delay_));
}

namespace {
/// Stateless per-(seed, robot, time) gap draw: a splitmix64 hash of the
/// triple, so the schedule is a pure function independent of query
/// order.
std::int64_t random_gap(std::uint64_t seed, std::int32_t robot,
                        std::int64_t now, std::int64_t max_delay) {
  std::uint64_t state =
      seed ^ (0x9E3779B97F4A7C15ULL *
              (static_cast<std::uint64_t>(robot) + 1)) ^
      (static_cast<std::uint64_t>(now) * 0xBF58476D1CE4E5B9ULL);
  const std::uint64_t draw = splitmix64(state);
  return 1 + static_cast<std::int64_t>(
                 draw % static_cast<std::uint64_t>(max_delay + 1));
}
}  // namespace

std::int64_t RandomScheduler::first_activation(std::int32_t robot) const {
  return random_gap(seed_, robot, 0, max_delay_);
}

std::int64_t RandomScheduler::next_activation(std::int64_t now,
                                              std::int32_t robot) const {
  return now + random_gap(seed_, robot, now, max_delay_);
}

}  // namespace bfdn
