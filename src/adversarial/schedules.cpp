#include "adversarial/schedules.h"

#include <cmath>

#include "support/check.h"

namespace bfdn {

FiniteSchedule::FiniteSchedule(std::int64_t horizon,
                               std::int32_t num_robots)
    : horizon_(horizon), num_robots_(num_robots) {
  BFDN_REQUIRE(horizon >= 0, "horizon >= 0");
  BFDN_REQUIRE(num_robots >= 1, "k >= 1");
}

bool FiniteSchedule::allowed(std::int64_t t, std::int32_t robot) {
  if (t >= horizon_) return false;
  const bool ok = allowed_impl(t, robot);
  if (ok) ++granted_;
  return ok;
}

bool FiniteSchedule::exhausted(std::int64_t t) const {
  return t >= horizon_;
}

double FiniteSchedule::average_allowed() const {
  return static_cast<double>(granted_) / static_cast<double>(num_robots_);
}

namespace {

class FullSchedule : public FiniteSchedule {
 public:
  using FiniteSchedule::FiniteSchedule;
  std::string name() const override { return "full"; }

 protected:
  bool allowed_impl(std::int64_t, std::int32_t) override { return true; }
};

class RoundRobinSchedule : public FiniteSchedule {
 public:
  using FiniteSchedule::FiniteSchedule;
  std::string name() const override { return "round-robin"; }

 protected:
  bool allowed_impl(std::int64_t t, std::int32_t robot) override {
    return t % num_robots() == robot;
  }
};

class RandomSchedule : public FiniteSchedule {
 public:
  RandomSchedule(std::int64_t horizon, std::int32_t k, double p,
                 std::uint64_t seed)
      : FiniteSchedule(horizon, k), p_(p), seed_(seed) {
    BFDN_REQUIRE(p > 0.0 && p <= 1.0, "p in (0, 1]");
  }
  std::string name() const override { return "random"; }

 protected:
  bool allowed_impl(std::int64_t t, std::int32_t robot) override {
    // Stateless hash so queries are order-independent.
    std::uint64_t state = seed_ ^ (static_cast<std::uint64_t>(t) << 20) ^
                          static_cast<std::uint64_t>(robot);
    const std::uint64_t draw = splitmix64(state);
    return static_cast<double>(draw >> 11) * 0x1.0p-53 < p_;
  }

 private:
  double p_;
  std::uint64_t seed_;
};

class BurstSchedule : public FiniteSchedule {
 public:
  BurstSchedule(std::int64_t horizon, std::int32_t k, std::int64_t burst)
      : FiniteSchedule(horizon, k), burst_(burst) {
    BFDN_REQUIRE(burst >= 1, "burst >= 1");
  }
  std::string name() const override { return "burst"; }

 protected:
  bool allowed_impl(std::int64_t t, std::int32_t) override {
    return (t / burst_) % 2 == 0;
  }

 private:
  std::int64_t burst_;
};

class RollingOutageSchedule : public FiniteSchedule {
 public:
  RollingOutageSchedule(std::int64_t horizon, std::int32_t k,
                        std::int64_t period)
      : FiniteSchedule(horizon, k), period_(period) {
    BFDN_REQUIRE(period >= 1, "period >= 1");
  }
  std::string name() const override { return "rolling-outage"; }

 protected:
  bool allowed_impl(std::int64_t t, std::int32_t robot) override {
    const std::int32_t k = num_robots();
    const std::int32_t window = k / 2;
    if (window == 0) return true;
    const auto start = static_cast<std::int32_t>((t / period_) % k);
    // Blocked iff robot is in [start, start + window) cyclically.
    const std::int32_t offset = (robot - start % k + k) % k;
    return offset >= window;
  }

 private:
  std::int64_t period_;
};

}  // namespace

std::unique_ptr<FiniteSchedule> make_full_schedule(std::int64_t horizon,
                                                   std::int32_t k) {
  return std::make_unique<FullSchedule>(horizon, k);
}

std::unique_ptr<FiniteSchedule> make_round_robin_schedule(
    std::int64_t horizon, std::int32_t k) {
  return std::make_unique<RoundRobinSchedule>(horizon, k);
}

std::unique_ptr<FiniteSchedule> make_random_schedule(std::int64_t horizon,
                                                     std::int32_t k,
                                                     double p,
                                                     std::uint64_t seed) {
  return std::make_unique<RandomSchedule>(horizon, k, p, seed);
}

std::unique_ptr<FiniteSchedule> make_burst_schedule(std::int64_t horizon,
                                                    std::int32_t k,
                                                    std::int64_t burst) {
  return std::make_unique<BurstSchedule>(horizon, k, burst);
}

std::unique_ptr<FiniteSchedule> make_rolling_outage_schedule(
    std::int64_t horizon, std::int32_t k, std::int64_t period) {
  return std::make_unique<RollingOutageSchedule>(horizon, k, period);
}

double proposition7_bound(std::int64_t n, std::int32_t depth,
                          std::int32_t k) {
  return 2.0 * static_cast<double>(n) / static_cast<double>(k) +
         static_cast<double>(depth) * static_cast<double>(depth) *
             (std::log(std::max(1.0, static_cast<double>(k))) + 3.0);
}

}  // namespace bfdn
