// Concrete AsyncScheduler implementations for the per-robot-clock
// engine (RunConfig::async; see docs/MODEL.md "Per-robot clocks").
//
// A scheduler is a pure function of (time, robot): it decides at which
// virtual times each robot is activated, independently of the
// exploration state — the adversary here controls *speeds*, not moves
// (contrast BreakdownSchedule, which blocks selected moves, and
// ReactiveAdversary, which cancels observed ones). All schedulers are
// deterministic: the random one derives its gaps from splitmix64 over
// (seed, robot, time), so the same spec always produces the same
// activation sequence regardless of call order.
//
// Asynchronous collective tree exploration (arXiv:2507.15658) motivates
// the axis: a correct algorithm must tolerate stragglers, heterogeneous
// speeds and adversarial lag. The round-robin scheduler is the model's
// degenerate point — all clocks tick together — and the engine
// guarantees it reproduces the synchronous execution bit-exactly
// (OracleCheck::kAsyncEquivalence).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/engine.h"

namespace bfdn {

/// All robots are activated at every time step 1, 2, 3, ...: the
/// synchronous model expressed as a scheduler. lockstep() is true, and
/// the async engine run is bit-identical to the stepped loop.
class RoundRobinScheduler : public AsyncScheduler {
 public:
  std::string name() const override { return "round-robin"; }
  std::int64_t first_activation(std::int32_t) const override { return 1; }
  std::int64_t next_activation(std::int64_t now,
                               std::int32_t) const override {
    return now + 1;
  }
  bool lockstep() const override { return true; }
};

/// Heterogeneous speeds: the last `num_slow` robots run at 1/period of
/// full speed (activated at t = 1, 1 + period, 1 + 2*period, ...);
/// everyone else is activated every step. period == 1 degenerates to
/// round-robin.
class FixedRateScheduler : public AsyncScheduler {
 public:
  FixedRateScheduler(std::int32_t num_robots, std::int64_t period,
                     std::int32_t num_slow);

  std::string name() const override;
  std::int64_t first_activation(std::int32_t robot) const override;
  std::int64_t next_activation(std::int64_t now,
                               std::int32_t robot) const override;

 private:
  bool slow(std::int32_t robot) const {
    return robot >= num_robots_ - num_slow_;
  }

  std::int32_t num_robots_;
  std::int64_t period_;
  std::int32_t num_slow_;
};

/// Adversarial laggard: the last `num_slow` robots alternate between an
/// active window of `period` steps and a stalled window of the same
/// length (active during times t with ((t-1)/period) even); the rest
/// run at full speed. Starves the laggards in long bursts rather than
/// uniformly, the worst shape for anchor hand-off.
class LaggardScheduler : public AsyncScheduler {
 public:
  LaggardScheduler(std::int32_t num_robots, std::int64_t period,
                   std::int32_t num_slow);

  std::string name() const override;
  std::int64_t first_activation(std::int32_t robot) const override;
  std::int64_t next_activation(std::int64_t now,
                               std::int32_t robot) const override;

 private:
  bool laggard(std::int32_t robot) const {
    return robot >= num_robots_ - num_slow_;
  }

  std::int32_t num_robots_;
  std::int64_t period_;
  std::int32_t num_slow_;
};

/// Seed-driven random gaps: after an activation at time t, robot i's
/// next activation follows after a gap of 1 + (mix(seed, i, t) mod
/// (max_delay + 1)) steps. Stateless — the gap is a hash of (seed,
/// robot, time) — so activation sequences are reproducible and
/// independent of evaluation order. max_delay == 0 degenerates to
/// round-robin.
class RandomScheduler : public AsyncScheduler {
 public:
  RandomScheduler(std::uint64_t seed, std::int64_t max_delay);

  std::string name() const override;
  std::int64_t first_activation(std::int32_t robot) const override;
  std::int64_t next_activation(std::int64_t now,
                               std::int32_t robot) const override;

 private:
  std::uint64_t seed_;
  std::int64_t max_delay_;
};

}  // namespace bfdn
