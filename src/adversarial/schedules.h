// Break-down schedules M(t, i) for the adversarial setting of Section
// 4.2: at each round the adversary decides which robots may move. All
// schedules here have finitely many allowed moves, as the model demands.
//
// Proposition 7: if the average allowed distance A(M) = (1/k) sum M(t,i)
// reaches 2n/k + D^2(log k + 3), the Section-4.2 variant of BFDN has
// visited every edge.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/engine.h"
#include "support/rng.h"

namespace bfdn {

/// A BreakdownSchedule with bookkeeping shared by all concrete
/// adversaries: a horizon after which everything is blocked, and a count
/// of allowed robot-moves (to compute A(M)).
class FiniteSchedule : public BreakdownSchedule {
 public:
  FiniteSchedule(std::int64_t horizon, std::int32_t num_robots);

  bool allowed(std::int64_t t, std::int32_t robot) final;
  bool exhausted(std::int64_t t) const final;

  virtual std::string name() const = 0;

  std::int64_t horizon() const { return horizon_; }
  std::int32_t num_robots() const { return num_robots_; }
  /// Allowed robot-moves granted so far (queried rounds only).
  std::int64_t granted_moves() const { return granted_; }
  /// A(M) over the queried prefix: granted / k.
  double average_allowed() const;

 protected:
  virtual bool allowed_impl(std::int64_t t, std::int32_t robot) = 0;

 private:
  std::int64_t horizon_;
  std::int32_t num_robots_;
  std::int64_t granted_ = 0;
};

/// Every robot always allowed until the horizon.
std::unique_ptr<FiniteSchedule> make_full_schedule(std::int64_t horizon,
                                                   std::int32_t k);

/// Robot i moves only on rounds with t % k == i (staggered single-robot
/// progress; the slowest useful schedule).
std::unique_ptr<FiniteSchedule> make_round_robin_schedule(
    std::int64_t horizon, std::int32_t k);

/// Each (t, i) allowed independently with probability p.
std::unique_ptr<FiniteSchedule> make_random_schedule(std::int64_t horizon,
                                                     std::int32_t k,
                                                     double p,
                                                     std::uint64_t seed);

/// Alternates bursts: `burst` rounds all-allowed, then `burst` rounds
/// all-blocked.
std::unique_ptr<FiniteSchedule> make_burst_schedule(std::int64_t horizon,
                                                    std::int32_t k,
                                                    std::int64_t burst);

/// Blocks a moving window of half the robots, shifting every `period`
/// rounds — models correlated failures of robot groups.
std::unique_ptr<FiniteSchedule> make_rolling_outage_schedule(
    std::int64_t horizon, std::int32_t k, std::int64_t period);

/// Proposition 7 right-hand side: 2n/k + D^2 (log k + 3). Note the
/// log(Delta) branch is NOT available under break-downs (the adversary
/// can force all k robots onto one anchor).
double proposition7_bound(std::int64_t n, std::int32_t depth,
                          std::int32_t k);

}  // namespace bfdn
