// Reactive adversaries (Remark 8): they see the selected moves of the
// round before choosing which robots to block. All implementations
// carry a finite block budget — once it is spent they never block
// again, so every run eventually finishes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/engine.h"
#include "support/rng.h"

namespace bfdn {

/// Base with budget accounting shared by the concrete adversaries.
class BudgetedReactiveAdversary : public ReactiveAdversary {
 public:
  explicit BudgetedReactiveAdversary(std::int64_t budget);

  std::vector<char> choose_blocked(
      std::int64_t round,
      const std::vector<ObservedMove>& observed) final;

  virtual std::string name() const = 0;
  std::int64_t budget_left() const { return budget_; }
  std::int64_t blocks_spent() const { return spent_; }

 protected:
  /// Flags robots to block; the base trims the result to the budget
  /// (robots with lower index keep their block when trimming).
  virtual std::vector<char> choose_impl(
      std::int64_t round, const std::vector<ObservedMove>& observed) = 0;

 private:
  std::int64_t budget_;
  std::int64_t spent_ = 0;
};

/// Blocks every robot that is about to traverse a dangling edge — the
/// meanest information-adaptive move: it stalls discovery itself.
std::unique_ptr<BudgetedReactiveAdversary> make_discovery_blocker(
    std::int64_t budget);

/// Persistently blocks the given robots. Blocking early-indexed robots
/// is much nastier than late-indexed ones: the sequential selection
/// order means low-index robots reserve dangling edges first, so a
/// reactive adversary can let them hoard the whole frontier and then
/// freeze them, starving the unblocked robots — a starvation pattern
/// that the paper's Section 4.2 modification ("blocked robots take no
/// part in the assignment") rules out for oblivious schedules but that
/// Remark 8's reactive adversary brings back. See the reactive tests.
std::unique_ptr<BudgetedReactiveAdversary> make_targeted_blocker(
    std::int64_t budget, std::vector<std::int32_t> victims);

/// Blocks each moving robot independently with probability p.
std::unique_ptr<BudgetedReactiveAdversary> make_random_blocker(
    std::int64_t budget, double p, std::uint64_t seed);

}  // namespace bfdn
