#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <map>
#include <set>
#include <utility>

#include "lint/locks.h"
#include "lint/source_model.h"
#include "support/check.h"
#include "support/json.h"
#include "support/strings.h"

namespace bfdn {
namespace lint {
namespace {

namespace fs = std::filesystem;

std::uint64_t fnv1a(std::uint64_t hash, const std::string& text) {
  for (const char c : text) {
    hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    hash *= 1099511628211ULL;
  }
  // Separator so {"ab","c"} and {"a","bc"} hash differently.
  hash ^= 0xff;
  hash *= 1099511628211ULL;
  return hash;
}
constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;

// ---------------------------------------------------------------------------
// Layering
// ---------------------------------------------------------------------------

class LayerMap {
 public:
  explicit LayerMap(const std::vector<std::vector<std::string>>& layers) {
    for (std::size_t rank = 0; rank < layers.size(); ++rank) {
      for (const std::string& dir : layers[rank]) {
        rank_[dir] = static_cast<std::int32_t>(rank);
      }
    }
  }

  /// The layer directory of a scanned file: the first path segment with
  /// a configured rank ("src/sim/engine.cpp" -> "sim", "tools/x.cpp" ->
  /// "tools"). Empty when no segment is configured.
  std::string dir_of(const std::string& rel) const {
    for (const std::string& segment : split(rel, '/')) {
      if (rank_.count(segment) > 0) return segment;
    }
    return {};
  }

  std::int32_t rank_of(const std::string& dir) const {
    const auto it = rank_.find(dir);
    return it == rank_.end() ? -1 : it->second;
  }

 private:
  std::map<std::string, std::int32_t> rank_;
};

void check_layering(const SourceFile& file, const LayerMap& layers,
                    const FileSuppressions& suppressions,
                    Report& report) {
  const std::string from_dir = layers.dir_of(file.rel);
  if (from_dir.empty()) {
    report.findings.push_back(
        {file.rel, 1, "layering",
         "file is in no configured layer; add its directory to "
         "\"layers\" in the rules file"});
    return;
  }
  const std::int32_t from_rank = layers.rank_of(from_dir);
  for (const IncludeEdge& include : file.includes) {
    const std::vector<std::string> segments = split(include.target, '/');
    if (segments.size() < 2) continue;  // local include, no layer claim
    const std::string& to_dir = segments.front();
    const std::int32_t to_rank = layers.rank_of(to_dir);
    if (to_rank < 0) continue;  // not a layer directory (e.g. gtest/)
    if (to_dir == from_dir || to_rank < from_rank) continue;
    if (suppressed(suppressions, include.line, "layering")) continue;
    report.findings.push_back(
        {file.rel, include.line, "layering",
         str_format("back-edge: layer '%s' (rank %d) must not include "
                    "'%s' (rank %d)",
                    from_dir.c_str(), from_rank, to_dir.c_str(),
                    to_rank)});
  }
}

// ---------------------------------------------------------------------------
// Banned calls
// ---------------------------------------------------------------------------

void check_banned(const SourceFile& file,
                  const std::vector<BannedRule>& rules,
                  const FileSuppressions& suppressions, Report& report) {
  for (const BannedRule& rule : rules) {
    if (path_allowed(file.rel, rule.allow)) continue;
    const std::set<std::string> banned(rule.tokens.begin(),
                                       rule.tokens.end());
    for (std::size_t i = 0; i < file.tokens.size(); ++i) {
      const Token& token = file.tokens[i];
      if (banned.count(token.text) == 0) continue;
      if (rule.call_only) {
        const bool called = i + 1 < file.tokens.size() &&
                            file.tokens[i + 1].text == "(";
        const bool member =
            i > 0 && (file.tokens[i - 1].text == "." ||
                      file.tokens[i - 1].text == "->");
        if (!called || member) continue;
      }
      if (suppressed(suppressions, token.line, rule.rule)) continue;
      report.findings.push_back(
          {file.rel, token.line, rule.rule,
           str_format("'%s' is banned here", token.text.c_str()) +
               (rule.why.empty() ? "" : ": " + rule.why)});
    }
  }
}

// ---------------------------------------------------------------------------
// Unordered-container iteration in hashed paths
// ---------------------------------------------------------------------------

const std::set<std::string>& unordered_type_names() {
  static const std::set<std::string> kNames = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kNames;
}

/// Collects names declared with an unordered container type in this
/// token stream: direct declarations ("std::unordered_map<K, V> name")
/// and declarations through a local "using Alias = std::unordered_..."
/// alias. Template arguments are skipped by angle-bracket balance.
void harvest_unordered_names(const std::vector<Token>& tokens,
                             std::set<std::string>& vars,
                             std::set<std::string>& aliases) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const bool direct = unordered_type_names().count(tokens[i].text) > 0;
    const bool via_alias =
        aliases.count(tokens[i].text) > 0 &&
        (i == 0 || (tokens[i - 1].text != "using" &&
                    tokens[i - 1].text != "::"));
    if (!direct && !via_alias) continue;

    // "using Alias = std::unordered_map<...>" registers the alias.
    if (direct) {
      std::size_t back = i;
      while (back >= 2 && (tokens[back - 1].text == "::" ||
                           tokens[back - 1].text == "std")) {
        --back;
      }
      if (back >= 2 && tokens[back - 1].text == "=" &&
          tokens[back - 2].text != "using" && back >= 3 &&
          tokens[back - 3].text == "using") {
        aliases.insert(tokens[back - 2].text);
        continue;
      }
    }

    std::size_t j = i + 1;
    if (direct) {
      if (j >= tokens.size() || tokens[j].text != "<") continue;
      std::int32_t depth = 0;
      for (; j < tokens.size(); ++j) {
        if (tokens[j].text == "<") ++depth;
        if (tokens[j].text == ">" && --depth == 0) break;
      }
      ++j;  // past the closing '>'
    }
    while (j < tokens.size() &&
           (tokens[j].text == "&" || tokens[j].text == "*" ||
            tokens[j].text == "const")) {
      ++j;
    }
    if (j < tokens.size() && is_ident_start(tokens[j].text[0])) {
      vars.insert(tokens[j].text);
    }
  }
}

void check_unordered_iteration(const SourceFile& file,
                               const std::set<std::string>& vars,
                               const std::set<std::string>& aliases,
                               const FileSuppressions& suppressions,
                               Report& report) {
  const auto is_unordered_expr = [&](const Token& token) {
    return vars.count(token.text) > 0 || aliases.count(token.text) > 0 ||
           unordered_type_names().count(token.text) > 0;
  };
  const auto flag = [&](std::int32_t line, const std::string& what) {
    if (suppressed(suppressions, line, "unordered-iteration")) return;
    report.findings.push_back(
        {file.rel, line, "unordered-iteration",
         what + ": iteration order over unordered containers is "
                "unspecified, which breaks the per-round state-hash "
                "contract in this hashed path"});
  };
  const std::vector<Token>& tokens = file.tokens;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    // Range-for whose sequence expression mentions a tracked container.
    if (tokens[i].text == "for" && tokens[i + 1].text == "(") {
      std::int32_t depth = 0;
      std::size_t colon = 0;
      std::size_t close = 0;
      for (std::size_t j = i + 1; j < tokens.size(); ++j) {
        if (tokens[j].text == "(") ++depth;
        if (tokens[j].text == ")" && --depth == 0) {
          close = j;
          break;
        }
        if (tokens[j].text == ":" && depth == 1 && colon == 0) colon = j;
      }
      if (colon == 0 || close == 0) continue;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (is_unordered_expr(tokens[j])) {
          flag(tokens[i].line, str_format("range-for over '%s'",
                                          tokens[j].text.c_str()));
          break;
        }
      }
      continue;
    }
    // Explicit iterator walk: tracked.begin() / cbegin() / rbegin().
    if (vars.count(tokens[i].text) > 0 && i + 2 < tokens.size() &&
        (tokens[i + 1].text == "." || tokens[i + 1].text == "->") &&
        (tokens[i + 2].text == "begin" || tokens[i + 2].text == "cbegin" ||
         tokens[i + 2].text == "rbegin" ||
         tokens[i + 2].text == "crbegin")) {
      flag(tokens[i].line, str_format("iterator walk over '%s'",
                                      tokens[i].text.c_str()));
    }
  }
}

// ---------------------------------------------------------------------------
// Trace-format hygiene
// ---------------------------------------------------------------------------

/// Appends the normalized token stream of `struct <name> { ... }` (or
/// class) to the fingerprint. Returns false when the struct is absent.
bool hash_struct(const std::vector<Token>& tokens, const std::string& name,
                 std::uint64_t& hash) {
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].text != "struct" && tokens[i].text != "class") continue;
    if (tokens[i + 1].text != name) continue;
    std::size_t j = i + 2;
    while (j < tokens.size() && tokens[j].text != "{" &&
           tokens[j].text != ";") {
      ++j;  // base-class list
    }
    if (j >= tokens.size() || tokens[j].text == ";") continue;  // fwd decl
    hash = fnv1a(hash, "struct");
    hash = fnv1a(hash, name);
    std::int32_t depth = 0;
    for (; j < tokens.size(); ++j) {
      hash = fnv1a(hash, tokens[j].text);
      if (tokens[j].text == "{") ++depth;
      if (tokens[j].text == "}" && --depth == 0) break;
    }
    return true;
  }
  return false;
}

void check_trace_rule(const std::string& root, const Config& config,
                      Report& report) {
  if (config.trace.files.empty()) return;
  const std::string version = compute_trace_version(root, config);
  const std::uint64_t fingerprint =
      compute_trace_fingerprint(root, config);

  // Every configured struct must exist somewhere in the trace files,
  // otherwise the fingerprint silently stops covering it.
  std::set<std::string> found;
  for (const std::string& rel : config.trace.files) {
    const std::vector<Token> tokens = tokenize(
        strip_source(read_file(fs::path(root) / rel)).code_only);
    for (const std::string& name : config.trace.structs) {
      std::uint64_t scratch = kFnvOffset;
      if (hash_struct(tokens, name, scratch)) found.insert(name);
    }
  }
  for (const std::string& name : config.trace.structs) {
    if (found.count(name) == 0) {
      report.findings.push_back(
          {config.trace.files.front(), 1, "trace-version",
           "serialization struct '" + name +
               "' named in the rules file was not found in the "
               "configured trace files"});
    }
  }

  if (version != config.trace.version) {
    report.findings.push_back(
        {config.trace.version_file, 1, "trace-version",
         "trace format version is '" + version +
             "' but the rules baseline records '" + config.trace.version +
             "'; refresh with bfdn_lint --write-trace-baseline"});
  } else if (fingerprint != config.trace.fingerprint) {
    report.findings.push_back(
        {config.trace.version_file, 1, "trace-version",
         "serialization structs changed without a trace-format version "
         "bump: bump kTraceFormatVersion (and the BFDNTRC magic), then "
         "refresh the baseline with bfdn_lint --write-trace-baseline"});
  }
}

// ---------------------------------------------------------------------------
// Config (de)serialization
// ---------------------------------------------------------------------------

std::vector<std::string> string_array(const JsonValue& value) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < value.size(); ++i) {
    out.push_back(value.at(i).as_string());
  }
  return out;
}

}  // namespace

Config load_config(const std::string& path) {
  JsonValue doc;
  std::string error;
  BFDN_REQUIRE(json_parse(read_file(path), doc, &error),
               "lint: malformed rules file " + path + ": " + error);
  Config config;
  const JsonValue& layers = doc.at("layers");
  for (std::size_t i = 0; i < layers.size(); ++i) {
    config.layers.push_back(string_array(layers.at(i)));
  }
  config.scan_roots = string_array(doc.at("scan_roots"));
  if (doc.has("banned")) {
    const JsonValue& banned = doc.at("banned");
    for (std::size_t i = 0; i < banned.size(); ++i) {
      const JsonValue& entry = banned.at(i);
      BannedRule rule;
      rule.rule = entry.at("rule").as_string();
      rule.tokens = string_array(entry.at("tokens"));
      if (entry.has("allow")) rule.allow = string_array(entry.at("allow"));
      rule.call_only = entry.get_bool("call_only", false);
      rule.why = entry.get_string("why", "");
      config.banned.push_back(std::move(rule));
    }
  }
  if (doc.has("hashed_paths")) {
    config.hashed_paths = string_array(doc.at("hashed_paths"));
  }
  if (doc.has("trace")) {
    const JsonValue& trace = doc.at("trace");
    config.trace.files = string_array(trace.at("files"));
    config.trace.structs = string_array(trace.at("structs"));
    config.trace.version_file = trace.at("version_file").as_string();
    config.trace.version = trace.get_string("version", "");
    config.trace.fingerprint = trace.get_uint("fingerprint", 0);
  }
  if (doc.has("locks")) {
    const JsonValue& locks = doc.at("locks");
    config.locks.enabled = true;
    config.locks.mutex_types =
        locks.has("mutex_types") ? string_array(locks.at("mutex_types"))
                                 : std::vector<std::string>{
                                       "Mutex", "mutex", "timed_mutex",
                                       "recursive_mutex", "shared_mutex"};
    config.locks.lock_types =
        locks.has("lock_types")
            ? string_array(locks.at("lock_types"))
            : std::vector<std::string>{"MutexLock", "lock_guard",
                                       "unique_lock", "scoped_lock",
                                       "shared_lock"};
    if (locks.has("exempt")) {
      config.locks.exempt = string_array(locks.at("exempt"));
    }
  }
  return config;
}

std::string config_to_json(const Config& config) {
  JsonWriter w(/*pretty=*/true);
  w.begin_object();
  w.key("layers").begin_array();
  for (const auto& band : config.layers) {
    w.begin_array();
    for (const auto& dir : band) w.value(dir);
    w.end_array();
  }
  w.end_array();
  w.key("scan_roots").begin_array();
  for (const auto& dir : config.scan_roots) w.value(dir);
  w.end_array();
  w.key("banned").begin_array();
  for (const auto& rule : config.banned) {
    w.begin_object();
    w.kv("rule", rule.rule);
    w.key("tokens").begin_array();
    for (const auto& token : rule.tokens) w.value(token);
    w.end_array();
    w.kv("call_only", rule.call_only);
    w.key("allow").begin_array();
    for (const auto& prefix : rule.allow) w.value(prefix);
    w.end_array();
    w.kv("why", rule.why);
    w.end_object();
  }
  w.end_array();
  w.key("hashed_paths").begin_array();
  for (const auto& prefix : config.hashed_paths) w.value(prefix);
  w.end_array();
  if (config.locks.enabled) {
    w.key("locks").begin_object();
    w.key("mutex_types").begin_array();
    for (const auto& name : config.locks.mutex_types) w.value(name);
    w.end_array();
    w.key("lock_types").begin_array();
    for (const auto& name : config.locks.lock_types) w.value(name);
    w.end_array();
    w.key("exempt").begin_array();
    for (const auto& prefix : config.locks.exempt) w.value(prefix);
    w.end_array();
    w.end_object();
  }
  w.key("trace").begin_object();
  w.key("files").begin_array();
  for (const auto& file : config.trace.files) w.value(file);
  w.end_array();
  w.key("structs").begin_array();
  for (const auto& name : config.trace.structs) w.value(name);
  w.end_array();
  w.kv("version_file", config.trace.version_file);
  w.kv("version", config.trace.version);
  w.kv("fingerprint", config.trace.fingerprint);
  w.end_object();
  w.end_object();
  return w.str() + "\n";
}

std::uint64_t compute_trace_fingerprint(const std::string& root,
                                        const Config& config) {
  std::uint64_t hash = kFnvOffset;
  for (const std::string& rel : config.trace.files) {
    const std::vector<Token> tokens = tokenize(
        strip_source(read_file(fs::path(root) / rel)).code_only);
    for (const std::string& name : config.trace.structs) {
      hash_struct(tokens, name, hash);
    }
  }
  return hash;
}

std::string compute_trace_version(const std::string& root,
                                  const Config& config) {
  const std::string text =
      read_file(fs::path(root) / config.trace.version_file);
  std::string magic;
  const std::size_t at = text.find("BFDNTRC");
  if (at != std::string::npos) {
    std::size_t end = at + 7;
    while (end < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[end])) != 0) {
      ++end;
    }
    magic = text.substr(at, end - at);
  }
  std::string version_number;
  const std::size_t decl = text.find("kTraceFormatVersion");
  if (decl != std::string::npos) {
    std::size_t i = text.find('=', decl);
    if (i != std::string::npos) {
      ++i;
      while (i < text.size() &&
             std::isspace(static_cast<unsigned char>(text[i])) != 0) {
        ++i;
      }
      while (i < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[i])) != 0) {
        version_number.push_back(text[i]);
        ++i;
      }
    }
  }
  return magic + ":v" + version_number;
}

Report run_lint(const std::string& root, const Config& config) {
  Report report;
  const LayerMap layers(config.layers);

  // Deterministic scan order: collect, then sort by relative path.
  std::vector<std::pair<std::string, fs::path>> paths;
  for (const std::string& scan_root : config.scan_roots) {
    const fs::path base = fs::path(root) / scan_root;
    BFDN_REQUIRE(fs::is_directory(base),
                 "lint: scan root is not a directory: " + base.string());
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".hpp" && ext != ".cpp" && ext != ".cc") {
        continue;
      }
      paths.emplace_back(
          entry.path().lexically_relative(root).generic_string(),
          entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());

  // Parse everything up front: the per-file rules walk one file at a
  // time, but the locks family needs the whole repo's declarations to
  // qualify mutex nodes and pair condition variables across TUs.
  std::vector<SourceFile> files;
  std::vector<FileSuppressions> suppressions(paths.size());
  files.reserve(paths.size());
  for (const auto& [rel, full] : paths) {
    files.push_back(parse_file(full, rel));
  }

  for (std::size_t n = 0; n < files.size(); ++n) {
    const SourceFile& file = files[n];
    ++report.files_scanned;

    scan_nolint(file, suppressions[n], report);
    check_layering(file, layers, suppressions[n], report);
    check_banned(file, config.banned, suppressions[n], report);

    if (path_allowed(file.rel, config.hashed_paths)) {
      std::set<std::string> vars;
      std::set<std::string> aliases;
      // Members declared in the sibling header are iterated from the
      // .cpp, so harvest its declarations first.
      const fs::path& full = paths[n].second;
      const std::string ext = full.extension().string();
      if (ext == ".cpp" || ext == ".cc") {
        fs::path header = full;
        header.replace_extension(".h");
        if (fs::exists(header)) {
          harvest_unordered_names(
              tokenize(strip_source(read_file(header)).code_only), vars,
              aliases);
        }
      }
      harvest_unordered_names(file.tokens, vars, aliases);
      check_unordered_iteration(file, vars, aliases, suppressions[n],
                                report);
    }
  }

  if (config.locks.enabled) {
    check_locks(files, suppressions, config.locks, report);
  }

  check_trace_rule(root, config, report);

  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return report;
}

std::string format_report(const Report& report) {
  std::string out;
  for (const Finding& finding : report.findings) {
    out += str_format("%s:%d: [%s] ", finding.file.c_str(), finding.line,
                      finding.rule.c_str());
    out += finding.message;
    out += "\n";
  }
  std::map<std::string, std::int64_t> by_check;
  for (const Suppression& suppression : report.suppressions) {
    ++by_check[suppression.check];
  }
  std::vector<std::string> tally;
  for (const auto& [check, count] : by_check) {
    tally.push_back(
        str_format("%s:%lld", check.c_str(),
                   static_cast<long long>(count)));
  }
  out += str_format(
      "bfdn_lint: %d files scanned, %d findings, %d suppressions",
      report.files_scanned,
      static_cast<std::int32_t>(report.findings.size()),
      static_cast<std::int32_t>(report.suppressions.size()));
  if (!tally.empty()) out += " (" + join(tally, ", ") + ")";
  out += "\n";
  return out;
}

}  // namespace lint
}  // namespace bfdn
