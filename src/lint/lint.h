// Repo-aware static analysis for the BFDN codebase (tools/bfdn_lint).
//
// The repo's core contract — served runs bit-identical to direct engine
// runs, traces replayable through per-round splitmix64 hashes — is
// otherwise enforced only dynamically (golden tests, differential
// oracles, the fuzzer). This engine catches the classes of regression
// that break that contract *statically*, at CI time:
//
//   layering             #include back-edges against the architecture
//                        layer DAG (support -> graph -> sim -> core and
//                        the algorithm layers -> verify/exp -> service
//                        -> tools);
//   banned calls         wall-clock, rand(), random_device & friends in
//                        deterministic code (configurable allowlist);
//   unordered-iteration  iteration over unordered_{map,set} in any file
//                        that feeds final_state_hash or trace hashing
//                        (iteration order is unspecified => the hash
//                        sequence would depend on libstdc++ internals);
//   trace-version        edits to the serialization structs of the
//                        BFDNTRC trace format without a format-version
//                        bump (fingerprint baseline in the rules file);
//   nolint-format        suppressions must carry a check name and a
//                        reason: "// NOLINT(<check>): <reason>". Well-
//                        formed suppressions are counted and reported.
//   locks                lock-discipline family (src/lint/locks.h):
//                        repo-wide lock-acquisition-order cycles
//                        (lock-order), unannotated mutex members
//                        (lock-annotation), condition-variable notifies
//                        without the paired mutex held
//                        (cv-notify-unlocked) and waits without a
//                        predicate (cv-wait-no-predicate).
//
// Analysis is token-level (comments and string literals stripped), not
// a full parse: simple, fast, zero dependencies beyond support/, and
// precise enough for the rule set above. Rules load from a JSON config
// (scripts/lint_rules.json) so allowlists and the layer map evolve
// without recompiling. The engine is a library so tests/lint_test.cpp
// can run it against fixture source trees and assert exact findings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bfdn {
namespace lint {

/// One rule violation, anchored at file:line (1-based).
struct Finding {
  std::string file;  // path relative to the scanned root
  std::int32_t line = 0;
  std::string rule;  // e.g. "layering", "raw-rand", "trace-version"
  std::string message;
};

/// One well-formed inline suppression: "// NOLINT(<check>): <reason>".
struct Suppression {
  std::string file;
  std::int32_t line = 0;
  std::string check;
  std::string reason;
};

struct Report {
  std::vector<Finding> findings;  // sorted by (file, line, rule)
  std::vector<Suppression> suppressions;
  std::int32_t files_scanned = 0;
  bool clean() const { return findings.empty(); }
};

/// A determinism ban: any of `tokens` appearing in a scanned file whose
/// path does not start with one of the `allow` prefixes is a finding.
/// With `call_only`, an identifier matches only when directly invoked
/// (followed by '(' and not a member access), so e.g. a variable named
/// `time` does not trip the wall-clock rule.
struct BannedRule {
  std::string rule;  // finding id, e.g. "raw-rand"
  std::vector<std::string> tokens;
  std::vector<std::string> allow;  // path prefixes, repo-relative
  bool call_only = false;
  std::string why;  // rationale echoed in the finding message
};

/// Trace-format hygiene baseline: a fingerprint over the (normalized)
/// definitions of the serialization structs, plus the format version
/// string they were recorded at. Changing a struct without bumping the
/// version is the exact bug class this guards against: old trace files
/// would be reinterpreted under a new layout instead of rejected.
struct TraceRule {
  std::vector<std::string> files;    // files holding the structs
  std::vector<std::string> structs;  // struct names to fingerprint
  std::string version_file;          // file with magic + version constant
  std::string version;               // recorded, e.g. "BFDNTRC1:v1"
  std::uint64_t fingerprint = 0;     // recorded token fingerprint
};

/// Lock-discipline family configuration. Presence of a "locks" object
/// in the rules JSON enables the family; the type lists default to the
/// std + support/thread_annotations.h vocabulary when omitted.
struct LocksConfig {
  bool enabled = false;
  /// Unqualified type names treated as mutexes when declaring members.
  std::vector<std::string> mutex_types;
  /// Unqualified RAII guard type names whose declarations acquire.
  std::vector<std::string> lock_types;
  /// Path prefixes exempt from the family (scanned but not analyzed).
  std::vector<std::string> exempt;
};

struct Config {
  /// Layer bands in dependency order (rank 0 = bottom). A quoted
  /// include from band r into band r' is legal iff r' < r or both files
  /// share a top-level directory. Directories are the first path
  /// segment under the scan root ("support", "graph", ..., "tools").
  std::vector<std::vector<std::string>> layers;
  /// Directories (relative to the root) to scan, e.g. ["src", "tools"].
  std::vector<std::string> scan_roots;
  std::vector<BannedRule> banned;
  /// Path prefixes of files that feed final_state_hash or trace
  /// hashing; the unordered-iteration rule applies inside these.
  std::vector<std::string> hashed_paths;
  TraceRule trace;
  LocksConfig locks;
};

/// Loads the JSON rules file; throws CheckError on malformed input.
Config load_config(const std::string& path);

/// Canonical re-emission of the config (used by --write-trace-baseline
/// to refresh the recorded trace fingerprint in place).
std::string config_to_json(const Config& config);

/// Runs every rule over the tree rooted at `root`. Throws CheckError
/// when `root` or a configured scan root does not exist.
Report run_lint(const std::string& root, const Config& config);

/// Current fingerprint over the configured serialization structs, and
/// the current format version string ("<magic>:v<n>") parsed from the
/// version file. Exposed for --write-trace-baseline and the tests.
std::uint64_t compute_trace_fingerprint(const std::string& root,
                                        const Config& config);
std::string compute_trace_version(const std::string& root,
                                  const Config& config);

/// Formats a report the way bfdn_lint prints it: one "file:line:
/// [rule] message" per finding, then the suppression tally.
std::string format_report(const Report& report);

}  // namespace lint
}  // namespace bfdn
