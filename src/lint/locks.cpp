#include "lint/locks.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <utility>

#include "support/strings.h"

namespace bfdn {
namespace lint {
namespace {

// Thread-annotation macros (support/thread_annotations.h) whose argument
// identifiers count as coverage for a mutex member.
const std::set<std::string>& annotation_macros() {
  static const std::set<std::string> kMacros = {
      "BFDN_GUARDED_BY",    "BFDN_PT_GUARDED_BY",
      "BFDN_REQUIRES",      "BFDN_ACQUIRE",
      "BFDN_RELEASE",       "BFDN_TRY_ACQUIRE",
      "BFDN_EXCLUDES",      "BFDN_ASSERT_CAPABILITY",
      "BFDN_ACQUIRED_BEFORE", "BFDN_ACQUIRED_AFTER"};
  return kMacros;
}

const std::set<std::string>& cv_type_names() {
  static const std::set<std::string> kTypes = {"condition_variable",
                                               "condition_variable_any"};
  return kTypes;
}

// ---------------------------------------------------------------------------
// Scope precomputation: which class body / out-of-line member definition
// contains each token. This is what lets a bare `mutex_` acquired in
// `Scheduler::Job::wait()` resolve to the node "Job::mutex_".
// ---------------------------------------------------------------------------

struct ScopeInfo {
  /// Innermost class/struct whose body contains token i ("" if none).
  std::vector<std::string> cls;
  /// Token i sits directly in a class body (member-declaration position,
  /// not inside a nested method body).
  std::vector<bool> direct;
  /// Class qualifier of the enclosing out-of-line member definition.
  std::vector<std::string> func_cls;
};

bool is_ident_token(const Token& token) {
  return !token.text.empty() && is_ident_start(token.text[0]);
}

/// Maps each class/struct body's opening-brace token index to the class
/// name. Skips forward declarations, `enum class` and template
/// parameters; attribute macros between the keyword and the name (e.g.
/// `class BFDN_CAPABILITY("mutex") Mutex {`) are stepped over because
/// the *last* identifier before the base-clause colon or brace wins.
void find_class_bodies(const std::vector<Token>& t,
                       std::map<std::size_t, std::string>& open) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].text != "class" && t[i].text != "struct") continue;
    if (i > 0 && (t[i - 1].text == "enum" || t[i - 1].text == "<" ||
                  t[i - 1].text == "," || t[i - 1].text == "typename")) {
      continue;
    }
    std::string name;
    bool in_bases = false;
    for (std::size_t j = i + 1; j < t.size() && j < i + 64; ++j) {
      const std::string& tok = t[j].text;
      if (tok == "{") {
        if (!name.empty()) open[j] = name;
        break;
      }
      if (tok == ";") break;  // forward declaration
      if (tok == ":") in_bases = true;
      if (!in_bases && tok != "final" && is_ident_token(t[j])) name = tok;
    }
  }
}

/// Maps the body-opening brace of every out-of-line member definition
/// (`Type Class::method(...) ... {`, including `Outer::Inner::` chains
/// and destructors) to the class qualifier — the identifier right
/// before the last `::`. Calls through a qualified name are rejected
/// because what follows their `)` is never a function-body `{`.
void find_function_bodies(const std::vector<Token>& t,
                          std::map<std::size_t, std::string>& open) {
  static const std::set<std::string> kFiller = {
      "const", "noexcept", "override", "final", "->", "::",
      "&",     "*",        "<",        ">"};
  for (std::size_t i = 3; i < t.size(); ++i) {
    if (t[i].text != "(") continue;
    std::string cls;
    if (is_ident_token(t[i - 1]) && t[i - 2].text == "::" &&
        is_ident_token(t[i - 3])) {
      cls = t[i - 3].text;
    } else if (i >= 4 && is_ident_token(t[i - 1]) &&
               t[i - 2].text == "~" && t[i - 3].text == "::" &&
               is_ident_token(t[i - 4])) {
      cls = t[i - 4].text;
    } else {
      continue;
    }
    std::int32_t depth = 0;
    std::size_t k = i;
    for (; k < t.size(); ++k) {
      if (t[k].text == "(") ++depth;
      if (t[k].text == ")" && --depth == 0) break;
    }
    if (k >= t.size()) continue;
    for (std::size_t j = k + 1; j < t.size() && j < k + 64; ++j) {
      const std::string& tok = t[j].text;
      if (tok == "{") {
        open[j] = cls;
        break;
      }
      if (tok == "(") {  // annotation macro args, noexcept(...)
        std::int32_t d = 0;
        for (; j < t.size(); ++j) {
          if (t[j].text == "(") ++d;
          if (t[j].text == ")" && --d == 0) break;
        }
        if (j >= t.size()) break;
        continue;
      }
      if (kFiller.count(tok) > 0 || is_ident_token(t[j])) continue;
      break;  // a call site or declarator, not a definition
    }
  }
}

ScopeInfo build_scope_info(const std::vector<Token>& t) {
  std::map<std::size_t, std::string> class_open;
  std::map<std::size_t, std::string> func_open;
  find_class_bodies(t, class_open);
  find_function_bodies(t, func_open);

  ScopeInfo info;
  info.cls.resize(t.size());
  info.direct.resize(t.size());
  info.func_cls.resize(t.size());
  struct Open {
    enum Kind { kOther, kClass, kFunc } kind;
    std::string name;
  };
  std::vector<Open> stack;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].text == "}" && !stack.empty()) stack.pop_back();
    std::string cls;
    std::string func_cls;
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (cls.empty() && it->kind == Open::kClass) cls = it->name;
      if (func_cls.empty() && it->kind == Open::kFunc) func_cls = it->name;
    }
    info.cls[i] = cls;
    info.func_cls[i] = func_cls;
    info.direct[i] = !stack.empty() && stack.back().kind == Open::kClass;
    if (t[i].text == "{") {
      const auto c = class_open.find(i);
      const auto f = func_open.find(i);
      if (c != class_open.end()) {
        stack.push_back({Open::kClass, c->second});
      } else if (f != func_open.end()) {
        stack.push_back({Open::kFunc, f->second});
      } else {
        stack.push_back({Open::kOther, ""});
      }
    }
  }
  return info;
}

// ---------------------------------------------------------------------------
// Per-file harvest and analysis
// ---------------------------------------------------------------------------

struct MemberDecl {
  std::string cls;   // enclosing class ("" never happens for members)
  std::string name;  // member identifier
  std::string file;
  std::int32_t line = 0;
};

struct Edge {
  std::string file;  // site of the *inner* acquisition
  std::int32_t line = 0;
  std::string from;  // qualified node already held
};

struct NotifySite {
  std::string cv;  // qualified condition-variable node
  std::string spelled;  // receiver as written, for the message
  std::string file;
  std::int32_t line = 0;
  std::vector<std::string> held;  // qualified mutex nodes held
  bool suppressed = false;
};

/// Everything accumulated across files before the global passes.
struct Analysis {
  // member name -> qualified "Cls::name" declarations (repo-wide)
  std::map<std::string, std::set<std::string>> mutex_members;
  std::map<std::string, std::set<std::string>> cv_members;
  std::vector<MemberDecl> mutex_decls;  // for the coverage pass
  // file -> identifiers appearing inside BFDN_* annotation arguments
  std::map<std::string, std::set<std::string>> annotation_args;
  // file -> locally declared (non-member) mutex / cv names
  std::map<std::string, std::set<std::string>> local_mutexes;
  std::map<std::string, std::set<std::string>> local_cvs;
  // acquisition-order graph: from -> to -> first site recorded
  std::map<std::string, std::map<std::string, Edge>> edges;
  // condition variable -> mutexes it is waited on with
  std::map<std::string, std::set<std::string>> paired;
  std::vector<NotifySite> notifies;
};

/// Harvests member declarations (`[mutable] [std::]Type name;` directly
/// in a class body), local declarations of the same shape, and
/// annotation-argument identifiers.
void harvest_decls(const SourceFile& file, const ScopeInfo& scopes,
                   const LocksConfig& config, Analysis& analysis) {
  const std::vector<Token>& t = file.tokens;
  const std::set<std::string> mutex_types(config.mutex_types.begin(),
                                          config.mutex_types.end());
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    const bool is_mutex = mutex_types.count(t[i].text) > 0;
    const bool is_cv = cv_type_names().count(t[i].text) > 0;
    if (is_mutex || is_cv) {
      if (i > 0 &&
          (t[i - 1].text == "class" || t[i - 1].text == "struct")) {
        continue;  // the wrapper's own definition, not a declaration
      }
      if (!is_ident_token(t[i + 1]) || t[i + 2].text != ";") continue;
      const std::string& name = t[i + 1].text;
      if (scopes.direct[i]) {
        const std::string cls =
            scopes.cls[i].empty() ? file.rel : scopes.cls[i];
        if (is_mutex) {
          analysis.mutex_members[name].insert(cls + "::" + name);
          analysis.mutex_decls.push_back(
              {cls, name, file.rel, t[i + 1].line});
        } else {
          analysis.cv_members[name].insert(cls + "::" + name);
        }
      } else {
        if (is_mutex) {
          analysis.local_mutexes[file.rel].insert(name);
        } else {
          analysis.local_cvs[file.rel].insert(name);
        }
      }
      continue;
    }
    if (annotation_macros().count(t[i].text) > 0 &&
        t[i + 1].text == "(") {
      std::int32_t depth = 0;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].text == "(") ++depth;
        if (t[j].text == ")" && --depth == 0) break;
        if (is_ident_token(t[j])) {
          analysis.annotation_args[file.rel].insert(t[j].text);
        }
      }
    }
  }
}

/// Splits the argument list whose "(" is at `open` into top-level
/// comma-separated token runs. Returns the index of the closing ")"
/// (or t.size() when unbalanced).
std::size_t split_args(const std::vector<Token>& t, std::size_t open,
                       std::vector<std::vector<Token>>& args) {
  std::int32_t paren = 0;
  std::int32_t brace = 0;
  std::int32_t bracket = 0;
  std::vector<Token> current;
  for (std::size_t j = open; j < t.size(); ++j) {
    const std::string& tok = t[j].text;
    if (tok == "(") {
      ++paren;
      if (paren == 1) continue;
    }
    if (tok == ")") {
      --paren;
      if (paren == 0) {
        if (!current.empty()) args.push_back(current);
        return j;
      }
    }
    if (tok == "{") ++brace;
    if (tok == "}") --brace;
    if (tok == "[") ++bracket;
    if (tok == "]") --bracket;
    if (tok == "," && paren == 1 && brace == 0 && bracket == 0) {
      if (!current.empty()) args.push_back(current);
      current.clear();
      continue;
    }
    current.push_back(t[j]);
  }
  return t.size();
}

std::string join_tokens(const std::vector<Token>& tokens) {
  std::string out;
  for (const Token& token : tokens) {
    if (!out.empty() && is_ident_start(token.text[0]) &&
        is_ident_char(out.back())) {
      out += ' ';
    }
    out += token.text;
  }
  return out;
}

/// Qualifies a mutex or condition-variable expression to a repo-wide
/// node name: enclosing class member first, then the enclosing
/// out-of-line definition's class, then a file-local declaration, then
/// a repo-unique member name, else a file-scoped fallback.
std::string resolve_node(
    std::vector<Token> expr, const std::string& file,
    const std::string& cls, const std::string& func_cls,
    const std::map<std::string, std::set<std::string>>& members,
    const std::set<std::string>* locals) {
  while (!expr.empty() &&
         (expr.front().text == "&" || expr.front().text == "*")) {
    expr.erase(expr.begin());
  }
  if (expr.size() == 3 && expr[0].text == "this" &&
      expr[1].text == "->") {
    expr.erase(expr.begin(), expr.begin() + 2);
  }
  if (expr.empty()) return {};
  if (expr.size() == 1 && is_ident_token(expr[0])) {
    const std::string& name = expr[0].text;
    const auto it = members.find(name);
    if (it != members.end()) {
      if (!cls.empty() && it->second.count(cls + "::" + name) > 0) {
        return cls + "::" + name;
      }
      if (!func_cls.empty() &&
          it->second.count(func_cls + "::" + name) > 0) {
        return func_cls + "::" + name;
      }
    }
    if (locals != nullptr && locals->count(name) > 0) {
      return file + "::" + name;
    }
    if (it != members.end() && it->second.size() == 1) {
      return *it->second.begin();
    }
    return file + "::" + name;
  }
  // Member access chain: resolve by the final member name when it is
  // unique across the repo (`peer.mutex` -> "Peer::mutex").
  if (expr.size() >= 3 && is_ident_token(expr.back()) &&
      (expr[expr.size() - 2].text == "." ||
       expr[expr.size() - 2].text == "->")) {
    const auto it = members.find(expr.back().text);
    if (it != members.end() && it->second.size() == 1) {
      return *it->second.begin();
    }
  }
  return file + "::" + join_tokens(expr);
}

struct HeldLock {
  std::int32_t depth = 0;  // brace depth at acquisition
  std::string node;        // qualified mutex node
  std::string var;         // guard variable name, for cv-wait pairing
};

/// The function-body walk: RAII acquisitions, order edges, cv waits
/// (pairing + predicate check) and notify sites.
void analyze_file(const SourceFile& file, const ScopeInfo& scopes,
                  const FileSuppressions& sup, const LocksConfig& config,
                  Analysis& analysis, Report& report) {
  const std::vector<Token>& t = file.tokens;
  const std::set<std::string> lock_types(config.lock_types.begin(),
                                         config.lock_types.end());
  const auto local_mutexes = analysis.local_mutexes.find(file.rel);
  const auto local_cvs = analysis.local_cvs.find(file.rel);
  const std::set<std::string>* mutex_locals =
      local_mutexes == analysis.local_mutexes.end() ? nullptr
                                                    : &local_mutexes->second;
  const std::set<std::string>* cv_locals =
      local_cvs == analysis.local_cvs.end() ? nullptr : &local_cvs->second;

  std::int32_t depth = 0;
  std::vector<HeldLock> held;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& tok = t[i].text;
    if (tok == "{") {
      ++depth;
      continue;
    }
    if (tok == "}") {
      --depth;
      while (!held.empty() && held.back().depth > depth) held.pop_back();
      continue;
    }

    // RAII acquisition: `LockType[<...>] var ( mutex-expr [, ...] );`
    if (lock_types.count(tok) > 0 && i + 1 < t.size()) {
      std::size_t j = i + 1;
      if (j < t.size() && t[j].text == "<") {
        std::int32_t angle = 0;
        for (; j < t.size(); ++j) {
          if (t[j].text == "<") ++angle;
          if (t[j].text == ">" && --angle == 0) break;
        }
        ++j;
      }
      if (j + 1 >= t.size() || !is_ident_token(t[j]) ||
          t[j + 1].text != "(") {
        continue;
      }
      const std::string var = t[j].text;
      const std::int32_t line = t[j].line;
      std::vector<std::vector<Token>> args;
      if (split_args(t, j + 1, args) >= t.size()) continue;
      const std::size_t count =
          tok == "scoped_lock" ? args.size() : std::min<std::size_t>(
                                                   1, args.size());
      for (std::size_t a = 0; a < count; ++a) {
        const std::string node = resolve_node(
            args[a], file.rel, scopes.cls[i], scopes.func_cls[i],
            analysis.mutex_members, mutex_locals);
        if (node.empty()) continue;
        if (!suppressed(sup, line, "lock-order")) {
          for (const HeldLock& outer : held) {
            if (outer.node == node) continue;
            auto& slot = analysis.edges[outer.node];
            if (slot.count(node) == 0) {
              slot.emplace(node, Edge{file.rel, line, outer.node});
            }
          }
        }
        held.push_back({depth, node, var});
      }
      continue;
    }

    // Condition-variable call: `recv.wait(...)` / `recv.notify_all()`.
    const bool is_wait =
        tok == "wait" || tok == "wait_for" || tok == "wait_until";
    const bool is_notify = tok == "notify_one" || tok == "notify_all";
    if ((is_wait || is_notify) && i >= 2 && i + 1 < t.size() &&
        t[i + 1].text == "(" &&
        (t[i - 1].text == "." || t[i - 1].text == "->") &&
        is_ident_token(t[i - 2])) {
      const std::string cv_node = resolve_node(
          {t[i - 2]}, file.rel, scopes.cls[i], scopes.func_cls[i],
          analysis.cv_members, cv_locals);
      // Only harvested condition variables count: `future.wait()` and
      // friends must not trip the family.
      const bool known =
          analysis.cv_members.count(t[i - 2].text) > 0 ||
          (cv_locals != nullptr && cv_locals->count(t[i - 2].text) > 0);
      if (!known) continue;
      const std::int32_t line = t[i].line;
      if (is_notify) {
        NotifySite site;
        site.cv = cv_node;
        site.spelled = t[i - 2].text + t[i - 1].text + tok;
        site.file = file.rel;
        site.line = line;
        for (const HeldLock& h : held) site.held.push_back(h.node);
        site.suppressed = suppressed(sup, line, "cv-notify-unlocked");
        analysis.notifies.push_back(std::move(site));
        continue;
      }
      std::vector<std::vector<Token>> args;
      if (split_args(t, i + 1, args) >= t.size()) continue;
      if (!args.empty() && is_ident_token(args[0][0])) {
        for (const HeldLock& h : held) {
          if (h.var == args[0][0].text) {
            analysis.paired[cv_node].insert(h.node);
            break;
          }
        }
      }
      const std::size_t required = tok == "wait" ? 2 : 3;
      if (args.size() < required &&
          !suppressed(sup, line, "cv-wait-no-predicate")) {
        report.findings.push_back(
            {file.rel, line, "cv-wait-no-predicate",
             str_format("'%s.%s' has no predicate: a spurious wakeup "
                        "returns with the waited condition false; pass "
                        "the condition as the final argument",
                        t[i - 2].text.c_str(), tok.c_str())});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Global passes
// ---------------------------------------------------------------------------

void check_annotation_coverage(
    const Analysis& analysis,
    const std::map<std::string, const FileSuppressions*>& sup_by_file,
    Report& report) {
  // A member may be annotated in its declaring header or used under
  // BFDN_REQUIRES in the sibling source (and vice versa).
  const auto sibling = [](const std::string& rel) {
    std::vector<std::string> out;
    const std::size_t dot = rel.rfind('.');
    if (dot == std::string::npos) return out;
    const std::string stem = rel.substr(0, dot);
    const std::string ext = rel.substr(dot);
    if (ext == ".h" || ext == ".hpp") {
      out.push_back(stem + ".cpp");
      out.push_back(stem + ".cc");
    } else {
      out.push_back(stem + ".h");
      out.push_back(stem + ".hpp");
    }
    return out;
  };
  for (const MemberDecl& decl : analysis.mutex_decls) {
    bool annotated = false;
    std::vector<std::string> places = sibling(decl.file);
    places.insert(places.begin(), decl.file);
    for (const std::string& place : places) {
      const auto it = analysis.annotation_args.find(place);
      if (it != analysis.annotation_args.end() &&
          it->second.count(decl.name) > 0) {
        annotated = true;
        break;
      }
    }
    if (annotated) continue;
    const auto sup = sup_by_file.find(decl.file);
    if (sup != sup_by_file.end() &&
        suppressed(*sup->second, decl.line, "lock-annotation")) {
      continue;
    }
    report.findings.push_back(
        {decl.file, decl.line, "lock-annotation",
         str_format("mutex member '%s::%s' is never named in a "
                    "BFDN_GUARDED_BY/BFDN_REQUIRES annotation here or "
                    "in the sibling file; say what it guards, or "
                    "suppress with // NOLINT(locks): <reason>",
                    decl.cls.c_str(), decl.name.c_str())});
  }
}

void check_notify_sites(const Analysis& analysis, Report& report) {
  for (const NotifySite& site : analysis.notifies) {
    if (site.suppressed) continue;
    const auto paired = analysis.paired.find(site.cv);
    if (paired != analysis.paired.end()) {
      bool holds_paired = false;
      for (const std::string& node : site.held) {
        if (paired->second.count(node) > 0) {
          holds_paired = true;
          break;
        }
      }
      if (!holds_paired) {
        std::vector<std::string> names(paired->second.begin(),
                                       paired->second.end());
        report.findings.push_back(
            {site.file, site.line, "cv-notify-unlocked",
             str_format("'%s' without holding '%s', the mutex its "
                        "waiters use: a waiter's owner can tear the "
                        "condition variable down between the waiter's "
                        "predicate check and this notify (the PR-5 "
                        "Scheduler::finish race); notify under the lock",
                        site.spelled.c_str(),
                        join(names, "' / '").c_str())});
      }
    } else if (site.held.empty()) {
      report.findings.push_back(
          {site.file, site.line, "cv-notify-unlocked",
           str_format("'%s' with no lock held and no wait() site pairing "
                      "'%s' to a mutex: notify under the mutex the "
                      "waiters block on",
                      site.spelled.c_str(), site.cv.c_str())});
    }
  }
}

/// DFS over the deduplicated acquisition-order graph; every distinct
/// cycle is reported once, rotated to start at its lexicographically
/// smallest node and anchored at the smallest edge site it contains.
class CycleFinder {
 public:
  CycleFinder(const Analysis& analysis, Report& report)
      : analysis_(analysis), report_(report) {}

  void run() {
    for (auto it = analysis_.edges.begin(); it != analysis_.edges.end();
         ++it) {
      visit(it->first);
    }
  }

 private:
  void visit(const std::string& node) {
    if (done_.count(node) > 0) return;
    const auto on_path =
        std::find(path_.begin(), path_.end(), node);
    if (on_path != path_.end()) {
      report_cycle(std::vector<std::string>(on_path, path_.end()));
      return;
    }
    path_.push_back(node);
    const auto it = analysis_.edges.find(node);
    if (it != analysis_.edges.end()) {
      for (auto edge = it->second.begin(); edge != it->second.end();
           ++edge) {
        visit(edge->first);
      }
    }
    path_.pop_back();
    done_.insert(node);
  }

  void report_cycle(std::vector<std::string> cycle) {
    const auto smallest =
        std::min_element(cycle.begin(), cycle.end());
    std::rotate(cycle.begin(), smallest, cycle.end());
    std::string key = join(cycle, "|");
    if (!seen_.insert(key).second) return;

    std::string message =
        "lock-acquisition order cycle (potential deadlock): " + cycle[0];
    std::string anchor_file;
    std::int32_t anchor_line = 0;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      const std::string& from = cycle[i];
      const std::string& to = cycle[(i + 1) % cycle.size()];
      const Edge& edge = analysis_.edges.at(from).at(to);
      message += str_format(" -> %s (%s:%d)", to.c_str(),
                            edge.file.c_str(), edge.line);
      if (anchor_file.empty() ||
          std::tie(edge.file, edge.line) <
              std::tie(anchor_file, anchor_line)) {
        anchor_file = edge.file;
        anchor_line = edge.line;
      }
    }
    report_.findings.push_back(
        {anchor_file, anchor_line, "lock-order", message});
  }

  const Analysis& analysis_;
  Report& report_;
  std::vector<std::string> path_;
  std::set<std::string> done_;
  std::set<std::string> seen_;
};

}  // namespace

void check_locks(const std::vector<SourceFile>& files,
                 const std::vector<FileSuppressions>& suppressions,
                 const LocksConfig& config, Report& report) {
  Analysis analysis;
  std::vector<ScopeInfo> scopes(files.size());
  std::map<std::string, const FileSuppressions*> sup_by_file;
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (path_allowed(files[i].rel, config.exempt)) continue;
    scopes[i] = build_scope_info(files[i].tokens);
    sup_by_file[files[i].rel] = &suppressions[i];
    harvest_decls(files[i], scopes[i], config, analysis);
  }
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (path_allowed(files[i].rel, config.exempt)) continue;
    analyze_file(files[i], scopes[i], suppressions[i], config, analysis,
                 report);
  }
  check_annotation_coverage(analysis, sup_by_file, report);
  check_notify_sites(analysis, report);
  CycleFinder(analysis, report).run();
}

}  // namespace lint
}  // namespace bfdn
