// Shared token-level source model for the lint rule families.
//
// lint.cpp (layering / banned / unordered / trace rules) and locks.cpp
// (the lock-discipline family) analyze the same stripped, tokenized view
// of each translation unit; this header is that view. Everything here is
// an internal engine detail — tools and tests include lint/lint.h only.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace bfdn {
namespace lint {

std::string read_file(const std::filesystem::path& path);

struct StrippedText {
  std::string no_comments;  // comments blanked, string literals kept
  std::string no_strings;   // string/char literals blanked, comments kept
  std::string code_only;    // comments and string/char literals blanked
};

/// Single-pass state machine. Blanked characters become spaces so every
/// byte keeps its (line, column) position; newlines survive verbatim.
/// Handles //, /* */, "..." with escapes, '...' and raw string literals
/// (R"delim(...)delim", any encoding prefix) — a raw string's contents
/// are blanked wholesale and its embedded quotes cannot desynchronize
/// the scanner for the code that follows.
StrippedText strip_source(const std::string& text);

struct Token {
  std::string text;
  std::int32_t line = 0;
};

bool is_ident_start(char c);
bool is_ident_char(char c);

/// Identifiers and numbers stay whole; "::" and "->" are single tokens
/// (so a lone ':' unambiguously marks a range-for); every other
/// non-space character is its own token.
std::vector<Token> tokenize(const std::string& code);

std::vector<std::string> split_lines(const std::string& text);

bool starts_with(const std::string& text, const std::string& prefix);

/// True when `rel` starts with any of the configured path prefixes.
bool path_allowed(const std::string& rel,
                  const std::vector<std::string>& prefixes);

struct IncludeEdge {
  std::string target;  // quoted include path as written
  std::int32_t line = 0;
};

struct SourceFile {
  std::string rel;  // forward-slash path relative to the lint root
  /// Lines with string literals blanked (comments kept): NOLINT markers
  /// live in comments, but a literal spelling "NOLINT" (e.g. in the
  /// linter's own sources) must not look like a suppression.
  std::vector<std::string> nolint_lines;
  std::vector<Token> tokens;  // comments and literals stripped
  std::vector<IncludeEdge> includes;
};

SourceFile parse_file(const std::filesystem::path& full, std::string rel);

struct FileSuppressions {
  /// line -> set of check names suppressed on that line.
  std::map<std::int32_t, std::set<std::string>> by_line;
};

/// Parses "// NOLINT(<check>): <reason>" and NOLINTNEXTLINE variants.
/// Malformed markers (missing check list or missing reason) become
/// findings; well-formed ones are recorded in both outputs. A marker
/// must *start* its line comment — prose mentioning the keyword
/// mid-comment is ignored.
void scan_nolint(const SourceFile& file, FileSuppressions& suppressions,
                 Report& report);

/// True when `rule` (or "*") is suppressed on `line`. Rules belonging
/// to a family also honour the family name — "locks" suppresses any of
/// the lock-discipline rules.
bool suppressed(const FileSuppressions& suppressions, std::int32_t line,
                const std::string& rule);

}  // namespace lint
}  // namespace bfdn
