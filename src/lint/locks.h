// Lock-discipline rule family ("locks") for bfdn_lint.
//
// The concurrent tier (service, store, cluster, support/thread_pool) is
// written against the annotated Mutex/MutexLock wrappers in
// support/thread_annotations.h; clang's -Wthread-safety proves guarded
// access per translation unit, but it is blind to two whole-repo
// properties and unavailable under the tier-1 GCC toolchain. This
// family covers that gap at token level:
//
//   lock-order            RAII acquisitions nested inside a held lock
//                         form a repo-wide acquisition-order graph over
//                         qualified mutex names (Class::member); any
//                         cycle is a potential deadlock, reported once
//                         with every edge's file:line cited.
//   lock-annotation       every mutex-typed data member must appear in
//                         at least one BFDN_GUARDED_BY / BFDN_REQUIRES
//                         (or other BFDN_ thread annotation) in its
//                         file or the sibling header/source, or carry a
//                         // NOLINT(locks): reason. An unguarded mutex
//                         is a mutex nobody can prove anything about.
//   cv-notify-unlocked    notify_one/notify_all on a condition-variable
//                         member while its paired mutex (learned from
//                         the wait sites) is not held — the exact PR-5
//                         Scheduler::finish teardown race shape.
//   cv-wait-no-predicate  wait()/wait_for()/wait_until() without a
//                         predicate argument: spurious wakeups then
//                         break the caller's invariant silently.
//
// Analysis is heuristic by design (token streams, not a full parse):
// acquisition tracking covers RAII guards only (MutexLock, lock_guard,
// unique_lock, scoped_lock declarations with the mutex in the
// constructor argument list), and mutex expressions are qualified via
// the enclosing class, falling back to a repo-unique member name and
// finally to a file-local name. See docs/LINT.md §"Lock discipline".
#pragma once

#include <string>
#include <vector>

#include "lint/lint.h"
#include "lint/source_model.h"

namespace bfdn {
namespace lint {

/// Runs the locks family over every parsed file. `suppressions` is
/// parallel to `files`. Only called when Config::locks.enabled.
void check_locks(const std::vector<SourceFile>& files,
                 const std::vector<FileSuppressions>& suppressions,
                 const LocksConfig& config, Report& report);

}  // namespace lint
}  // namespace bfdn
