#include "lint/source_model.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <utility>

#include "support/check.h"
#include "support/strings.h"

namespace bfdn {
namespace lint {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  BFDN_REQUIRE(in.good(), "lint: cannot read " + path.string());
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

namespace {

/// The contiguous identifier run ending just before `quote` is a raw
/// string prefix iff it is exactly R with an optional encoding prefix.
/// Returns the start index of the run, or npos when not a raw string.
std::size_t raw_string_prefix(const std::string& text, std::size_t quote) {
  std::size_t start = quote;
  while (start > 0 && is_ident_char(text[start - 1])) --start;
  const std::string prefix = text.substr(start, quote - start);
  if (prefix == "R" || prefix == "LR" || prefix == "uR" || prefix == "UR" ||
      prefix == "u8R") {
    return start;
  }
  return std::string::npos;
}

}  // namespace

StrippedText strip_source(const std::string& text) {
  enum class State {
    kCode, kLineComment, kBlockComment, kString, kChar,
  };
  StrippedText out;
  out.no_comments = text;
  out.no_strings = text;
  out.code_only = text;
  const auto blank_comment = [&](std::size_t i) {
    out.no_comments[i] = out.code_only[i] = ' ';
  };
  const auto blank_string = [&](std::size_t i) {
    out.no_strings[i] = out.code_only[i] = ' ';
  };
  State state = State::kCode;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          blank_comment(i);
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          blank_comment(i);
        } else if (c == '"') {
          // Raw string: R"delim( ... )delim" — no escapes, may span
          // lines and contain quotes. Blank it wholesale (prefix
          // included) so its contents can't desynchronize the scanner.
          const std::size_t prefix = raw_string_prefix(text, i);
          if (prefix != std::string::npos) {
            std::size_t d = i + 1;  // delimiter: up to 16 chars, then '('
            while (d < text.size() && d - i <= 17 && text[d] != '(' &&
                   text[d] != ')' && text[d] != '\\' && text[d] != '"' &&
                   text[d] != '\n' &&
                   std::isspace(static_cast<unsigned char>(text[d])) == 0) {
              ++d;
            }
            if (d < text.size() && text[d] == '(') {
              const std::string closer =
                  ")" + text.substr(i + 1, d - i - 1) + "\"";
              const std::size_t end = text.find(closer, d + 1);
              const std::size_t stop = end == std::string::npos
                                           ? text.size()
                                           : end + closer.size();
              for (std::size_t j = prefix; j < stop; ++j) {
                if (text[j] != '\n') blank_string(j);
              }
              i = stop - 1;  // loop increment steps past the literal
              break;
            }
            // Malformed delimiter: fall through as an ordinary string.
          }
          state = State::kString;
          blank_string(i);
        } else if (c == '\'') {
          state = State::kChar;
          blank_string(i);
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          blank_comment(i);
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          blank_comment(i);
          blank_comment(i + 1);
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          blank_comment(i);
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          blank_string(i);
          if (next != '\n') blank_string(i + 1);
          ++i;
        } else if (c == '"' || c == '\n') {
          state = State::kCode;
          if (c == '"') blank_string(i);
        } else {
          blank_string(i);
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          blank_string(i);
          if (next != '\n') blank_string(i + 1);
          ++i;
        } else if (c == '\'' || c == '\n') {
          state = State::kCode;
          if (c == '\'') blank_string(i);
        } else {
          blank_string(i);
        }
        break;
    }
  }
  return out;
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::vector<Token> tokenize(const std::string& code) {
  std::vector<Token> tokens;
  std::int32_t line = 1;
  for (std::size_t i = 0; i < code.size();) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t j = i + 1;
      while (j < code.size() && is_ident_char(code[j])) ++j;
      tokens.push_back({code.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i + 1;
      while (j < code.size() &&
             (is_ident_char(code[j]) || code[j] == '.')) {
        ++j;
      }
      tokens.push_back({code.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (c == ':' && i + 1 < code.size() && code[i + 1] == ':') {
      tokens.push_back({"::", line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < code.size() && code[i + 1] == '>') {
      tokens.push_back({"->", line});
      i += 2;
      continue;
    }
    tokens.push_back({std::string(1, c), line});
    ++i;
  }
  return tokens;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  lines.push_back(current);
  return lines;
}

bool starts_with(const std::string& text, const std::string& prefix) {
  return text.rfind(prefix, 0) == 0;
}

bool path_allowed(const std::string& rel,
                  const std::vector<std::string>& prefixes) {
  for (const auto& prefix : prefixes) {
    if (starts_with(rel, prefix)) return true;
  }
  return false;
}

SourceFile parse_file(const fs::path& full, std::string rel) {
  SourceFile file;
  file.rel = std::move(rel);
  const std::string text = read_file(full);
  const StrippedText stripped = strip_source(text);
  file.nolint_lines = split_lines(stripped.no_strings);
  file.tokens = tokenize(stripped.code_only);

  const std::vector<std::string> lines =
      split_lines(stripped.no_comments);
  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::string& line = lines[n];
    std::size_t i = line.find_first_not_of(" \t");
    if (i == std::string::npos || line[i] != '#') continue;
    i = line.find_first_not_of(" \t", i + 1);
    if (i == std::string::npos || line.compare(i, 7, "include") != 0) {
      continue;
    }
    const std::size_t open = line.find('"', i + 7);
    if (open == std::string::npos) continue;  // <system> include
    const std::size_t close = line.find('"', open + 1);
    if (close == std::string::npos) continue;
    file.includes.push_back({line.substr(open + 1, close - open - 1),
                             static_cast<std::int32_t>(n + 1)});
  }
  return file;
}

void scan_nolint(const SourceFile& file, FileSuppressions& suppressions,
                 Report& report) {
  for (std::size_t n = 0; n < file.nolint_lines.size(); ++n) {
    const std::string& line = file.nolint_lines[n];
    const std::size_t slashes = line.find("//");
    if (slashes == std::string::npos) continue;
    std::size_t at = slashes;
    while (at < line.size() && line[at] == '/') ++at;
    while (at < line.size() &&
           std::isspace(static_cast<unsigned char>(line[at])) != 0) {
      ++at;
    }
    if (line.compare(at, 6, "NOLINT") != 0) continue;
    const auto line_no = static_cast<std::int32_t>(n + 1);
    std::size_t i = at + 6;
    std::int32_t target_line = line_no;
    if (line.compare(i, 8, "NEXTLINE") == 0) {
      i += 8;
      target_line = line_no + 1;
    }
    const auto malformed = [&](const std::string& detail) {
      report.findings.push_back(
          {file.rel, line_no, "nolint-format",
           "suppression must be written '// NOLINT(<check>): <reason>' "
           "(" + detail + ")"});
    };
    if (i >= line.size() || line[i] != '(') {
      malformed("missing (<check>)");
      continue;
    }
    const std::size_t close = line.find(')', i);
    if (close == std::string::npos) {
      malformed("unterminated check list");
      continue;
    }
    const std::string checks = line.substr(i + 1, close - i - 1);
    std::size_t j = close + 1;
    if (j >= line.size() || line[j] != ':') {
      malformed("missing ': <reason>' after the check list");
      continue;
    }
    ++j;
    while (j < line.size() &&
           std::isspace(static_cast<unsigned char>(line[j])) != 0) {
      ++j;
    }
    const std::string reason = line.substr(j);
    if (checks.empty() || reason.empty()) {
      malformed(checks.empty() ? "empty check list" : "empty reason");
      continue;
    }
    for (const std::string& check : split(checks, ',')) {
      std::string name = check;
      name.erase(0, name.find_first_not_of(" \t"));
      name.erase(name.find_last_not_of(" \t") + 1);
      if (name.empty()) continue;
      suppressions.by_line[target_line].insert(name);
      report.suppressions.push_back({file.rel, line_no, name, reason});
    }
  }
}

bool suppressed(const FileSuppressions& suppressions, std::int32_t line,
                const std::string& rule) {
  const auto it = suppressions.by_line.find(line);
  if (it == suppressions.by_line.end()) return false;
  if (it->second.count(rule) > 0 || it->second.count("*") > 0) return true;
  // Family alias: NOLINT(locks) waives any lock-discipline rule.
  if (starts_with(rule, "lock-") || starts_with(rule, "cv-")) {
    return it->second.count("locks") > 0;
  }
  return false;
}

}  // namespace lint
}  // namespace bfdn
