// CTE — Collective Tree Exploration in the style of Fraigniaud,
// Gasieniec, Kowalski and Pelc [10]: the O(n/log k + D) competitive
// baseline the paper compares against.
//
// Behaviour: the robots at a node split as evenly as possible across the
// branches (children subtrees and dangling edges) that still contain
// unexplored edges, taking the robots already working inside each
// subtree into account; robots with no unexplored work below them climb
// towards the root. Several robots may traverse the same edge in one
// round (group moves), which the engine supports via join_dangling.
//
// Information use: CTE runs in the complete-communication model, where
// the team knows the whole discovered tree and all robot positions. For
// speed we precompute preorder intervals of the *hidden* tree to answer
// "how much unexplored work / how many robots inside T(c)?" — for
// explored nodes these intervals order exactly like the discovered
// tree's, so no illegal information flows into decisions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/tree.h"
#include "sim/engine.h"

namespace bfdn {

class CteAlgorithm : public Algorithm {
 public:
  CteAlgorithm(const Tree& tree, std::int32_t num_robots);

  std::string name() const override { return "CTE"; }
  void select_moves(const ExplorationView& view,
                    MoveSelector& selector) override;
  /// Step-only: CTE splits the swarm by the live robot *population* of
  /// each subtree (robots_in_subtree reads every robot's position), so
  /// a robot's next move can change whenever any other robot moves.
  TransitCapability transit_capability() const override {
    return TransitCapability::kStepOnly;
  }

 private:
  /// Sum of unexplored-edge weights of open nodes inside T(c).
  std::int64_t work_in_subtree(NodeId c) const;
  /// Robots currently positioned inside T(c).
  std::int32_t robots_in_subtree(NodeId c,
                                 const ExplorationView& view) const;

  std::int32_t num_robots_;
  std::vector<std::int64_t> in_time_;
  std::vector<std::int64_t> out_time_;
  // Rebuilt each round: open-node in-times (sorted) + weight prefix sums.
  std::vector<std::int64_t> open_in_times_;
  std::vector<std::int64_t> open_weight_prefix_;
  // Scratch (in_time, weight) pairs; reused across rounds.
  std::vector<std::pair<std::int64_t, std::int64_t>> open_scratch_;
};

}  // namespace bfdn
