// BFS-level waves — the "simple algorithm" behind the paper's open-
// directions remark that k >= n/D robots explore any tree in O(D^2)
// rounds (attributed to Ortolf-Schindelhauer [13]).
//
// The tree is explored stratum by stratum. For the current working
// depth d, idle robots at the root are assigned (one each) to distinct
// open nodes at depth d, walk down, traverse one dangling edge, and
// come straight home; when a level has more dangling edges than robots
// it takes several waves. Each wave costs O(d), a level with w_d
// dangling edges costs ceil(w_d / k) * O(d) and the total is
// O(D^2 + n D / k) — O(D^2) once k >= n/D.
//
// Unlike BFDN, a robot never does more than one discovery per trip, so
// the 2n/k term carries a D factor; the algorithm exists here as the
// reference point for E14 and as a contrast in the shootouts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/engine.h"

namespace bfdn {

class BfsLevelsAlgorithm : public Algorithm {
 public:
  explicit BfsLevelsAlgorithm(std::int32_t num_robots);

  std::string name() const override { return "BFS-levels"; }
  void begin(const ExplorationView& view) override;
  void select_moves(const ExplorationView& view,
                    MoveSelector& selector) override;
  /// Step-only: probe targets are re-assigned from a global view of all
  /// robots' phases each round, so no per-robot segment is committed.
  TransitCapability transit_capability() const override {
    return TransitCapability::kStepOnly;
  }

 private:
  enum class Phase : std::uint8_t { kIdle, kOutbound, kProbe, kHome };

  std::int32_t num_robots_;
  std::vector<Phase> phases_;
  std::vector<NodeId> targets_;  // assigned open node per robot
};

/// The open-directions cost form: c * (D^2 + n*D/k).
double bfs_levels_cost_model(std::int64_t n, std::int32_t depth,
                             std::int32_t k);

}  // namespace bfdn
