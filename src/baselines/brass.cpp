#include "baselines/brass.h"

#include <algorithm>
#include <map>

#include "support/check.h"

namespace bfdn {

BrassAlgorithm::BrassAlgorithm(std::int32_t num_robots)
    : num_robots_(num_robots) {
  BFDN_REQUIRE(num_robots >= 1, "need at least one robot");
}

void BrassAlgorithm::begin(const ExplorationView&) {
  entries_.clear();
  finished_.clear();
}

void BrassAlgorithm::ensure_size(NodeId v) {
  const auto need = static_cast<std::size_t>(v) + 1;
  if (entries_.size() < need) {
    entries_.resize(need, 0);
    finished_.resize(need, 0);
  }
}

void BrassAlgorithm::select_moves(const ExplorationView& view,
                                  MoveSelector& selector) {
  // Per-round: entries added this round (so simultaneous robots spread)
  // and dangling reservations already made at each node, with their
  // tokens, so a second robot preferring a taken edge can join it.
  std::map<NodeId, std::int64_t> round_entries;
  std::map<NodeId, std::vector<NodeId>> round_tokens;

  for (std::int32_t i = 0; i < num_robots_; ++i) {
    if (!view.can_move(i)) continue;
    const NodeId pos = view.robot_pos(i);
    ensure_size(pos);

    // Candidate with the fewest entries: any unreserved dangling edge
    // counts 0 entries (+ this round's reservations at pos), explored
    // unfinished children count their cumulative entries.
    NodeId best_child = kInvalidNode;
    std::int64_t best_score = -1;
    view.for_each_explored_child(pos, [&](NodeId child) {
      ensure_size(child);
      if (finished_[static_cast<std::size_t>(child)]) return;
      const std::int64_t score =
          entries_[static_cast<std::size_t>(child)] +
          round_entries[child];
      if (best_score < 0 || score < best_score) {
        best_child = child;
        best_score = score;
      }
    });
    const bool fresh_available = view.has_unreserved_dangling(pos);
    const std::vector<NodeId>& taken = round_tokens[pos];

    if (fresh_available && (best_score != 0 || best_child == kInvalidNode)) {
      const NodeId token = selector.try_take_dangling(i);
      BFDN_CHECK(token != kInvalidNode, "dangling availability raced");
      round_tokens[pos].push_back(token);
      round_entries[token] += 1;
      continue;
    }
    if (best_child == kInvalidNode && !taken.empty()) {
      // All children finished or unknown, no fresh edge left, but a
      // colleague reserved one this round: share it (group move).
      const NodeId token = taken.front();
      selector.join_dangling(i, token);
      round_entries[token] += 1;
      continue;
    }
    if (best_child != kInvalidNode) {
      selector.move_down(i, best_child);
      round_entries[best_child] += 1;
      ensure_size(best_child);
      entries_[static_cast<std::size_t>(best_child)] += 1;
      continue;
    }
    // No candidate at all: the subtree under pos is fully explored.
    if (!view.has_unexplored_child_edge(pos)) {
      bool all_children_finished = true;
      view.for_each_explored_child(pos, [&](NodeId child) {
        ensure_size(child);
        if (!finished_[static_cast<std::size_t>(child)]) {
          all_children_finished = false;
        }
      });
      if (all_children_finished) {
        finished_[static_cast<std::size_t>(pos)] = 1;
      }
    }
    selector.move_up(i);  // ⊥ at the root
  }

  // Cumulative entry counters for the dangling edges taken this round
  // (their ids become valid child ids once the move commits).
  for (const auto& [node, tokens] : round_tokens) {
    for (const NodeId token : tokens) {
      ensure_size(token);
      entries_[static_cast<std::size_t>(token)] += 1;
    }
  }
}

}  // namespace bfdn
