// Depth-Next-only swarm: every robot runs the DN procedure from the
// root with no re-anchoring (equivalently, BFDN where every anchor is
// the root forever).
//
// A natural greedy baseline: robots fan out over dangling edges and
// otherwise climb. It completes exploration but has no non-trivial
// guarantee — on comb-like trees the swarm clumps and the measured
// rounds blow up, which is precisely the behaviour BFDN's breadth-first
// re-anchoring fixes; the benches use it to show that gap.
#pragma once

#include <string>

#include "sim/engine.h"

namespace bfdn {

class DepthNextOnlyAlgorithm : public Algorithm {
 public:
  explicit DepthNextOnlyAlgorithm(std::int32_t num_robots);

  std::string name() const override { return "DN-swarm"; }
  void select_moves(const ExplorationView& view,
                    MoveSelector& selector) override;

  /// Fast-forward support: a DN robot's move depends only on its own
  /// position and the shared dangling counts, so its return climbs are
  /// committed segments and a robot stuck at a dangling-free root stays
  /// forever (dangling counts never grow).
  TransitCapability transit_capability() const override;
  void plan_transit(const ExplorationView& view, std::int32_t robot,
                    TransitPlan& plan) override;
  void select_moves_subset(const ExplorationView& view,
                           MoveSelector& selector,
                           const std::vector<std::int32_t>& robots) override;

 private:
  void select_one(const ExplorationView& view, MoveSelector& selector,
                  std::int32_t robot);

  std::int32_t num_robots_;
};

}  // namespace bfdn
