// Offline baselines from Section 1.
//
// The offline k-traversal problem (tree known in advance) is NP-hard
// [10], but the simple DFS-split algorithm of Dynia et al. / Ortolf-
// Schindelhauer achieves at most 2(n/k + D) rounds: cut the length-
// 2(n-1) depth-first tour into k segments and assign one robot per
// segment. These functions compute its exact cost and the trivial lower
// bound max(2n/k, 2D), giving every bench its offline reference row.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/tree.h"

namespace bfdn {

struct OfflineSplitPlan {
  /// Rounds the DFS-split schedule needs: max over robots of
  /// (walk to segment start) + (segment length) + (walk home).
  std::int64_t rounds = 0;
  /// Per-robot segment lengths (empty segments for surplus robots).
  std::vector<std::int64_t> segment_lengths;
  /// Per-robot total cost.
  std::vector<std::int64_t> robot_costs;
};

/// Computes the DFS-split plan for k robots on a known tree.
OfflineSplitPlan offline_dfs_split(const Tree& tree, std::int32_t k);

}  // namespace bfdn
