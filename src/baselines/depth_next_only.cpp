#include "baselines/depth_next_only.h"

#include "support/check.h"

namespace bfdn {

DepthNextOnlyAlgorithm::DepthNextOnlyAlgorithm(std::int32_t num_robots)
    : num_robots_(num_robots) {
  BFDN_REQUIRE(num_robots >= 1, "need at least one robot");
}

void DepthNextOnlyAlgorithm::select_moves(const ExplorationView& view,
                                          MoveSelector& selector) {
  for (std::int32_t i = 0; i < num_robots_; ++i) {
    if (!view.can_move(i)) continue;
    select_one(view, selector, i);
  }
}

void DepthNextOnlyAlgorithm::select_one(const ExplorationView& /*view*/,
                                        MoveSelector& selector,
                                        std::int32_t i) {
  if (selector.try_take_dangling(i) == kInvalidNode) {
    selector.move_up(i);  // at the root this is ⊥
  }
}

TransitCapability DepthNextOnlyAlgorithm::transit_capability() const {
  return TransitCapability::kCommittedSegments;
}

void DepthNextOnlyAlgorithm::select_moves_subset(
    const ExplorationView& view, MoveSelector& selector,
    const std::vector<std::int32_t>& robots) {
  for (std::int32_t i : robots) select_one(view, selector, i);
}

void DepthNextOnlyAlgorithm::plan_transit(const ExplorationView& view,
                                          std::int32_t robot,
                                          TransitPlan& plan) {
  const NodeId pos = view.robot_pos(robot);
  if (view.has_unexplored_child_edge(pos)) {
    // Next selection is a try_take_dangling that competes with other
    // robots' reservations — an event.
    plan.kind = TransitPlan::Kind::kEvent;
    return;
  }
  if (pos == view.root()) {
    // No dangling edge at the root and dangling counts only decrease:
    // the robot selects ⊥ in every remaining round.
    plan.kind = TransitPlan::Kind::kStayForever;
    return;
  }
  // Committed return climb, exactly as in BfdnAlgorithm::plan_transit:
  // up to the first ancestor that still has an unexplored child edge
  // (arrival is an event; the take may still lose to a rival and fall
  // back to another climb) or to the root.
  plan.kind = TransitPlan::Kind::kWalk;
  NodeId cur = pos;
  while (cur != view.root()) {
    cur = view.parent(cur);
    plan.path.push_back(cur);
    if (view.has_unexplored_child_edge(cur)) break;
  }
}

}  // namespace bfdn
