#include "baselines/depth_next_only.h"

#include "support/check.h"

namespace bfdn {

DepthNextOnlyAlgorithm::DepthNextOnlyAlgorithm(std::int32_t num_robots)
    : num_robots_(num_robots) {
  BFDN_REQUIRE(num_robots >= 1, "need at least one robot");
}

void DepthNextOnlyAlgorithm::select_moves(const ExplorationView& view,
                                          MoveSelector& selector) {
  for (std::int32_t i = 0; i < num_robots_; ++i) {
    if (!view.can_move(i)) continue;
    if (selector.try_take_dangling(i) == kInvalidNode) {
      selector.move_up(i);  // at the root this is ⊥
    }
  }
}

}  // namespace bfdn
