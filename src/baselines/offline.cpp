#include "baselines/offline.h"

#include <algorithm>

#include "graph/algorithms.h"
#include "support/check.h"

namespace bfdn {

OfflineSplitPlan offline_dfs_split(const Tree& tree, std::int32_t k) {
  BFDN_REQUIRE(k >= 1, "need at least one robot");
  OfflineSplitPlan plan;
  plan.segment_lengths.assign(static_cast<std::size_t>(k), 0);
  plan.robot_costs.assign(static_cast<std::size_t>(k), 0);
  const std::vector<NodeId> tour = euler_tour(tree);
  const auto len = static_cast<std::int64_t>(tour.size());
  if (len == 0) return plan;  // single-node tree

  const std::int64_t seg = (len + k - 1) / k;  // ceil(2(n-1)/k)
  for (std::int32_t j = 0; j < k; ++j) {
    const std::int64_t begin = static_cast<std::int64_t>(j) * seg;
    if (begin >= len) break;
    const std::int64_t end = std::min(begin + seg, len);
    // The segment's first move leaves the node preceding position
    // `begin` on the tour (the root for the first segment).
    const NodeId start_node =
        begin == 0 ? tree.root() : tour[static_cast<std::size_t>(begin - 1)];
    const NodeId last_node = tour[static_cast<std::size_t>(end - 1)];
    const std::int64_t cost = tree.depth(start_node) + (end - begin) +
                              tree.depth(last_node);
    plan.segment_lengths[static_cast<std::size_t>(j)] = end - begin;
    plan.robot_costs[static_cast<std::size_t>(j)] = cost;
    plan.rounds = std::max(plan.rounds, cost);
  }
  return plan;
}

}  // namespace bfdn
