// Counter-based multirobot DFS in the style of Brass, Cabrera-Mora,
// Gasparri and Xiao [1] — the algorithm whose 2n/k + O((D+k)^k)
// competitive-overhead guarantee the paper improves upon.
//
// Behaviour: robots perform depth-first exploration guided by per-edge
// entry counters (implementable with pebbles/whiteboards, which is the
// point of [1]): at a node, descend into the unfinished child subtree
// entered the fewest times (a dangling edge counts as zero entries);
// when every child subtree is finished, mark the node finished and
// climb. Finished flags propagate exactly like the markers of [1]: a
// node is marked when it has no dangling edge and all explored children
// are marked.
//
// Note the asymmetry the paper highlights: this algorithm behaves well
// in practice (it is close to CTE — [1] is "a novel analysis of CTE"),
// but its proven additive overhead is (D+k)^k, astronomically above
// BFDN's D^2 log k. E10 shows both measured columns side by side.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.h"

namespace bfdn {

class BrassAlgorithm : public Algorithm {
 public:
  explicit BrassAlgorithm(std::int32_t num_robots);

  std::string name() const override { return "Brass-counters"; }
  void begin(const ExplorationView& view) override;
  void select_moves(const ExplorationView& view,
                    MoveSelector& selector) override;
  /// Step-only: the whiteboard entry counters mutate on every visit, so
  /// each single step is itself a decision point — there is never a
  /// multi-round committed segment to expose.
  TransitCapability transit_capability() const override {
    return TransitCapability::kStepOnly;
  }

 private:
  std::int32_t num_robots_;
  // Sized lazily to the number of discovered node ids (node ids are the
  // engine's opaque tokens; using them as indices is the standard
  // whiteboard emulation).
  std::vector<std::int64_t> entries_;  // per node: times entered
  std::vector<char> finished_;         // per node: subtree finished

  void ensure_size(NodeId v);
};

}  // namespace bfdn
