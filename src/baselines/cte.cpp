#include "baselines/cte.h"

#include <algorithm>
#include <map>

#include "graph/algorithms.h"
#include "support/check.h"

namespace bfdn {

CteAlgorithm::CteAlgorithm(const Tree& tree, std::int32_t num_robots)
    : num_robots_(num_robots) {
  BFDN_REQUIRE(num_robots >= 1, "need at least one robot");
  const auto n = static_cast<std::size_t>(tree.num_nodes());
  in_time_.assign(n, 0);
  out_time_.assign(n, 0);
  std::int64_t clock = 0;
  for (NodeId v : preorder(tree)) {
    in_time_[static_cast<std::size_t>(v)] = clock++;
  }
  for (std::size_t v = 0; v < n; ++v) {
    out_time_[v] = in_time_[v] + tree.subtree_size(static_cast<NodeId>(v));
  }
}

std::int64_t CteAlgorithm::work_in_subtree(NodeId c) const {
  const std::int64_t lo = in_time_[static_cast<std::size_t>(c)];
  const std::int64_t hi = out_time_[static_cast<std::size_t>(c)];
  const auto begin = std::lower_bound(open_in_times_.begin(),
                                      open_in_times_.end(), lo);
  const auto end =
      std::lower_bound(open_in_times_.begin(), open_in_times_.end(), hi);
  const auto bi = static_cast<std::size_t>(begin - open_in_times_.begin());
  const auto ei = static_cast<std::size_t>(end - open_in_times_.begin());
  return open_weight_prefix_[ei] - open_weight_prefix_[bi];
}

std::int32_t CteAlgorithm::robots_in_subtree(
    NodeId c, const ExplorationView& view) const {
  const std::int64_t lo = in_time_[static_cast<std::size_t>(c)];
  const std::int64_t hi = out_time_[static_cast<std::size_t>(c)];
  std::int32_t count = 0;
  for (std::int32_t r = 0; r < num_robots_; ++r) {
    const std::int64_t t =
        in_time_[static_cast<std::size_t>(view.robot_pos(r))];
    if (t >= lo && t < hi) ++count;
  }
  return count;
}

void CteAlgorithm::select_moves(const ExplorationView& view,
                                MoveSelector& selector) {
  // Snapshot the open frontier: sorted in-times with unexplored-edge
  // weights, so work_in_subtree is two binary searches. Iterate the
  // depth buckets directly instead of materialising open_nodes().
  open_scratch_.clear();
  if (!view.exploration_complete()) {
    for (std::int32_t d = view.min_open_depth(); d <= view.max_open_depth();
         ++d) {
      for (NodeId u : view.open_nodes_at_depth(d)) {
        open_scratch_.emplace_back(in_time_[static_cast<std::size_t>(u)],
                                   view.num_unexplored_child_edges(u));
      }
    }
  }
  std::sort(open_scratch_.begin(), open_scratch_.end());
  open_in_times_.clear();
  open_weight_prefix_.assign(1, 0);
  for (const auto& [t, w] : open_scratch_) {
    open_in_times_.push_back(t);
    open_weight_prefix_.push_back(open_weight_prefix_.back() + w);
  }

  // Group movable robots by position, preserving index order.
  std::map<NodeId, std::vector<std::int32_t>> groups;
  for (std::int32_t i = 0; i < num_robots_; ++i) {
    if (!view.can_move(i)) continue;
    groups[view.robot_pos(i)].push_back(i);
  }

  for (const auto& [v, robots] : groups) {
    struct Branch {
      bool dangling;      // true: group goes through a reserved token
      NodeId target;      // explored child, or token once reserved
      std::int64_t load;  // robots inside / assigned
    };
    std::vector<Branch> branches;
    view.for_each_explored_child(v, [&](NodeId c) {
      if (work_in_subtree(c) > 0) {
        branches.push_back(Branch{false, c, robots_in_subtree(c, view)});
      }
    });
    std::int32_t fresh_dangling = view.num_unreserved_dangling(v);

    for (std::int32_t robot : robots) {
      // Cheapest existing branch, if any.
      std::int64_t best_load = -1;
      std::size_t best_idx = 0;
      for (std::size_t b = 0; b < branches.size(); ++b) {
        if (best_load < 0 || branches[b].load < best_load) {
          best_load = branches[b].load;
          best_idx = b;
        }
      }
      // Opening an untouched dangling edge costs load 0.
      if (fresh_dangling > 0 && (best_load < 0 || best_load >= 1)) {
        const NodeId token = selector.try_take_dangling(robot);
        BFDN_CHECK(token != kInvalidNode, "dangling count out of sync");
        --fresh_dangling;
        branches.push_back(Branch{true, token, 1});
        continue;
      }
      if (best_load < 0) {
        // No unexplored work below v: climb (⊥ at the root).
        selector.move_up(robot);
        continue;
      }
      Branch& chosen = branches[best_idx];
      if (chosen.dangling) {
        selector.join_dangling(robot, chosen.target);
      } else {
        selector.move_down(robot, chosen.target);
      }
      ++chosen.load;
    }
  }
}

}  // namespace bfdn
