// Runtime-guarantee formulas of Appendix A, used to reproduce Figure 1
// (the analytic map of which algorithm has the best guarantee where).
//
// As in the paper's appendix, regions are defined "up to multiplicative
// constants that only depend on k"; the formulas below use constant 1
// in front of each O(.) term, and the winner map additionally exposes
// the paper's pairwise comparison rules so both views can be printed.
#pragma once

#include <cstdint>
#include <string>

namespace bfdn {

/// CTE [10]: n / log(k) + D.
double guarantee_cte(double n, double d, double k);

/// BFDN (Theorem 1): 2n/k + D^2 (min(log k, log Delta) + 3); Delta
/// unknown at map time, so the log(k) branch is used as in Figure 1.
double guarantee_bfdn(double n, double d, double k);

/// BFDN_l (Theorem 10): 4n/k^{1/l} + 2^{l+1} (l + 1 + log(k)/l) D^{1+1/l}.
double guarantee_bfdn_ell(double n, double d, double k, std::int32_t ell);

/// Yo* [13]: 2^{sqrt(log2 D log2 log2 k)} log k (log n + log k)(n/k + D).
double guarantee_yostar(double n, double d, double k);

/// Largest ell <= max_ell minimizing the BFDN_l guarantee (the paper
/// requires ell <= cst log k / log log k; callers pass that cap).
std::int32_t best_ell(double n, double d, double k, std::int32_t max_ell);

/// Name of the algorithm with the smallest guarantee at (n, D, k):
/// "CTE", "Yo*", "BFDN" or "BFDN_l". Used for the Figure 1 map.
std::string fig1_winner(double n, double d, double k, std::int32_t max_ell);

/// The paper's closed-form pairwise thresholds (Appendix A), exposed so
/// the bench can print them next to the evaluated map:
/// BFDN beats CTE iff D^2 log(k)^2 <= n.
bool bfdn_beats_cte_rule(double n, double d, double k);
/// BFDN beats Yo* iff k D^2 <= n / k (simplified rule of Appendix A).
bool bfdn_beats_yostar_rule(double n, double d, double k);
/// BFDN_l beats CTE if D < n^{l/(l+1)} / (k log^2 k).
bool bfdn_ell_beats_cte_rule(double n, double d, double k,
                             std::int32_t ell);

}  // namespace bfdn
