#include "baselines/guarantees.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace bfdn {
namespace {

double safe_log(double x) { return std::log(std::max(x, 1.0)); }
double safe_log2(double x) { return std::log2(std::max(x, 2.0)); }

}  // namespace

double guarantee_cte(double n, double d, double k) {
  return n / std::max(safe_log(k), 1e-9) + d;
}

double guarantee_bfdn(double n, double d, double k) {
  return 2.0 * n / k + d * d * (safe_log(k) + 3.0);
}

double guarantee_bfdn_ell(double n, double d, double k, std::int32_t ell) {
  BFDN_REQUIRE(ell >= 1, "ell >= 1");
  const double l = static_cast<double>(ell);
  return 4.0 * n / std::pow(k, 1.0 / l) +
         std::pow(2.0, l + 1.0) * (l + 1.0 + safe_log(k) / l) *
             std::pow(d, 1.0 + 1.0 / l);
}

double guarantee_yostar(double n, double d, double k) {
  const double blowup =
      std::pow(2.0, std::sqrt(safe_log2(d) * safe_log2(safe_log2(k))));
  return blowup * safe_log(k) * (safe_log(n) + safe_log(k)) * (n / k + d);
}

std::int32_t best_ell(double n, double d, double k, std::int32_t max_ell) {
  BFDN_REQUIRE(max_ell >= 1, "max_ell >= 1");
  std::int32_t best = 1;
  double best_value = guarantee_bfdn_ell(n, d, k, 1);
  for (std::int32_t ell = 2; ell <= max_ell; ++ell) {
    const double value = guarantee_bfdn_ell(n, d, k, ell);
    if (value < best_value) {
      best = ell;
      best_value = value;
    }
  }
  return best;
}

std::string fig1_winner(double n, double d, double k, std::int32_t max_ell) {
  const double cte = guarantee_cte(n, d, k);
  const double yostar = guarantee_yostar(n, d, k);
  const double bfdn = guarantee_bfdn(n, d, k);
  const std::int32_t ell = best_ell(n, d, k, max_ell);
  const double bfdn_ell = guarantee_bfdn_ell(n, d, k, ell);

  const double best = std::min({cte, yostar, bfdn, bfdn_ell});
  if (best == bfdn) return "BFDN";
  if (best == bfdn_ell) return ell == 1 ? "BFDN" : "BFDN_l";
  if (best == cte) return "CTE";
  return "Yo*";
}

bool bfdn_beats_cte_rule(double n, double d, double k) {
  const double lg = safe_log(k);
  return d * d * lg * lg <= n;
}

bool bfdn_beats_yostar_rule(double n, double d, double k) {
  return k * d * d <= n / k;
}

bool bfdn_ell_beats_cte_rule(double n, double d, double k,
                             std::int32_t ell) {
  BFDN_REQUIRE(ell >= 1, "ell >= 1");
  const double l = static_cast<double>(ell);
  const double lg = safe_log(k);
  return d < std::pow(n, l / (l + 1.0)) / (k * lg * lg);
}

}  // namespace bfdn
