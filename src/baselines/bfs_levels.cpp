#include "baselines/bfs_levels.h"

#include <algorithm>

#include "support/check.h"

namespace bfdn {

BfsLevelsAlgorithm::BfsLevelsAlgorithm(std::int32_t num_robots)
    : num_robots_(num_robots),
      phases_(static_cast<std::size_t>(num_robots), Phase::kIdle),
      targets_(static_cast<std::size_t>(num_robots), kInvalidNode) {
  BFDN_REQUIRE(num_robots >= 1, "need at least one robot");
}

void BfsLevelsAlgorithm::begin(const ExplorationView&) {
  std::fill(phases_.begin(), phases_.end(), Phase::kIdle);
  std::fill(targets_.begin(), targets_.end(), kInvalidNode);
}

void BfsLevelsAlgorithm::select_moves(const ExplorationView& view,
                                      MoveSelector& selector) {
  // The working level is stable for the whole selection phase (no
  // commit happens inside select_moves), so fetch it once per round.
  const bool complete = view.exploration_complete();
  const std::vector<NodeId>& level =
      complete ? view.open_nodes_at_depth(0)
               : view.open_nodes_at_depth(view.min_open_depth());
  for (std::int32_t i = 0; i < num_robots_; ++i) {
    if (!view.can_move(i)) continue;
    const std::size_t idx = static_cast<std::size_t>(i);
    const NodeId pos = view.robot_pos(i);

    if (phases_[idx] == Phase::kHome && pos == view.root()) {
      phases_[idx] = Phase::kIdle;
      targets_[idx] = kInvalidNode;
    }

    if (phases_[idx] == Phase::kIdle) {
      if (complete) continue;  // stay at the root
      // Assign an open node at the working (minimum open) depth with
      // the fewest robots already heading for it; ties break towards
      // the smallest node id (the bucket is unsorted).
      BFDN_CHECK(!level.empty(), "open depth with no open node");
      NodeId best = kInvalidNode;
      std::int32_t best_load = 0;
      for (const NodeId candidate : level) {
        std::int32_t load = 0;
        for (std::int32_t j = 0; j < num_robots_; ++j) {
          if (targets_[static_cast<std::size_t>(j)] == candidate) ++load;
        }
        if (best == kInvalidNode || load < best_load ||
            (load == best_load && candidate < best)) {
          best = candidate;
          best_load = load;
        }
      }
      targets_[idx] = best;
      phases_[idx] = Phase::kOutbound;
    }

    if (phases_[idx] == Phase::kOutbound) {
      if (pos == targets_[idx]) {
        phases_[idx] = Phase::kProbe;
      } else {
        selector.move_down(
            i, view.ancestor_at_depth(targets_[idx], view.depth(pos) + 1));
        continue;
      }
    }

    if (phases_[idx] == Phase::kProbe) {
      // One discovery, then straight home (also home if other waves
      // finished this node first).
      phases_[idx] = Phase::kHome;
      if (selector.try_take_dangling(i) != kInvalidNode) continue;
      selector.move_up(i);
      continue;
    }

    // Phase::kHome, above the root.
    selector.move_up(i);
  }
}

double bfs_levels_cost_model(std::int64_t n, std::int32_t depth,
                             std::int32_t k) {
  return static_cast<double>(depth) * static_cast<double>(depth) +
         static_cast<double>(n) * static_cast<double>(depth) /
             static_cast<double>(k);
}

}  // namespace bfdn
