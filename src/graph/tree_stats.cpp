#include "graph/tree_stats.h"

#include <algorithm>

#include "support/check.h"
#include "support/strings.h"

namespace bfdn {

TreeStats compute_tree_stats(const Tree& tree) {
  TreeStats stats;
  stats.num_nodes = tree.num_nodes();
  stats.depth = tree.depth();
  stats.max_degree = tree.max_degree();
  stats.level_widths.assign(static_cast<std::size_t>(tree.depth()) + 1, 0);

  std::int64_t internal = 0;
  std::int64_t children_total = 0;
  for (NodeId v = 0; v < tree.num_nodes(); ++v) {
    ++stats.level_widths[static_cast<std::size_t>(tree.depth(v))];
    stats.total_path_length += tree.depth(v);
    const std::int32_t c = tree.num_children(v);
    if (c == 0) {
      ++stats.num_leaves;
    } else {
      ++internal;
      children_total += c;
    }
  }
  stats.max_width = *std::max_element(stats.level_widths.begin(),
                                      stats.level_widths.end());
  stats.average_depth = static_cast<double>(stats.total_path_length) /
                        static_cast<double>(stats.num_nodes);
  stats.average_branching =
      internal == 0 ? 0.0
                    : static_cast<double>(children_total) /
                          static_cast<double>(internal);
  return stats;
}

std::int64_t bfs_wave_count(const TreeStats& stats, const Tree& tree,
                            std::int32_t k) {
  BFDN_REQUIRE(k >= 1, "k >= 1");
  std::vector<std::int64_t> open_width(stats.level_widths.size(), 0);
  for (NodeId v = 0; v < tree.num_nodes(); ++v) {
    if (tree.num_children(v) > 0) {
      ++open_width[static_cast<std::size_t>(tree.depth(v))];
    }
  }
  std::int64_t waves = 0;
  for (const std::int64_t width : open_width) {
    waves += (width + k - 1) / k;
  }
  return waves;
}

std::string tree_stats_to_string(const TreeStats& stats) {
  return str_format(
      "n=%lld D=%d Delta=%d leaves=%lld max_width=%lld avg_depth=%.1f "
      "avg_branching=%.2f",
      static_cast<long long>(stats.num_nodes), stats.depth,
      stats.max_degree, static_cast<long long>(stats.num_leaves),
      static_cast<long long>(stats.max_width), stats.average_depth,
      stats.average_branching);
}

}  // namespace bfdn
