// Graphviz DOT export for trees, graphs and exploration snapshots, so
// runs can be inspected visually (dot -Tsvg ...). The exploration
// overload colours explored nodes, marks dangling edges and labels the
// robots sitting on each node.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/tree.h"

namespace bfdn {

struct DotOptions {
  /// Node label: id only, or id plus depth.
  bool show_depth = true;
  /// Graph name used in the DOT header.
  std::string name = "bfdn";
};

/// Rooted tree as a directed DOT graph (edges parent -> child).
std::string tree_to_dot(const Tree& tree, const DotOptions& options = {});

/// Undirected graph as DOT, origin marked with a double circle.
std::string graph_to_dot(const Graph& graph,
                         const DotOptions& options = {});

/// Exploration snapshot: `explored[v]` marks discovered nodes (drawn
/// solid; undiscovered nodes dashed), and each robot id is listed on
/// the node it occupies.
std::string exploration_to_dot(const Tree& tree,
                               const std::vector<char>& explored,
                               const std::vector<NodeId>& robot_positions,
                               const DotOptions& options = {});

}  // namespace bfdn
