#include "graph/grid_world.h"

#include <cmath>
#include <cstdlib>
#include <deque>
#include <sstream>

#include "support/check.h"

namespace bfdn {

GridWorld::GridWorld(std::int32_t width, std::int32_t height,
                     std::vector<Rect> obstacles)
    : width_(width), height_(height), obstacles_(std::move(obstacles)) {
  BFDN_REQUIRE(width_ >= 1 && height_ >= 1, "grid must be non-empty");
  for (const Rect& r : obstacles_) {
    BFDN_REQUIRE(r.x0 <= r.x1 && r.y0 <= r.y1, "malformed rectangle");
  }
  BFDN_REQUIRE(!blocked(0, 0), "origin cell is blocked");

  const std::size_t cells =
      static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
  cell_to_node_.assign(cells, kInvalidNode);
  auto cell_index = [&](std::int32_t x, std::int32_t y) {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  };

  // BFS over free cells from the origin; assign node ids in visit order
  // so node 0 is the origin.
  std::deque<std::pair<std::int32_t, std::int32_t>> queue{{0, 0}};
  cell_to_node_[cell_index(0, 0)] = 0;
  node_to_cell_.emplace_back(0, 0);
  const std::int32_t dx[4] = {1, -1, 0, 0};
  const std::int32_t dy[4] = {0, 0, 1, -1};
  while (!queue.empty()) {
    const auto [x, y] = queue.front();
    queue.pop_front();
    for (int dir = 0; dir < 4; ++dir) {
      const std::int32_t nx = x + dx[dir];
      const std::int32_t ny = y + dy[dir];
      if (nx < 0 || nx >= width_ || ny < 0 || ny >= height_) continue;
      if (blocked(nx, ny)) continue;
      if (cell_to_node_[cell_index(nx, ny)] != kInvalidNode) continue;
      cell_to_node_[cell_index(nx, ny)] =
          static_cast<NodeId>(node_to_cell_.size());
      node_to_cell_.emplace_back(nx, ny);
      queue.emplace_back(nx, ny);
    }
  }

  // Edges among reachable cells (right and up neighbours to avoid dupes).
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v < static_cast<NodeId>(node_to_cell_.size()); ++v) {
    const auto [x, y] = node_to_cell_[static_cast<std::size_t>(v)];
    if (x + 1 < width_) {
      const NodeId w = cell_to_node_[cell_index(x + 1, y)];
      if (w != kInvalidNode) edges.emplace_back(v, w);
    }
    if (y + 1 < height_) {
      const NodeId w = cell_to_node_[cell_index(x, y + 1)];
      if (w != kInvalidNode) edges.emplace_back(v, w);
    }
  }
  graph_ = Graph::from_edges(static_cast<std::int64_t>(node_to_cell_.size()),
                             edges);
}

GridWorld GridWorld::random(std::int32_t width, std::int32_t height,
                            std::int32_t num_rects, std::int32_t max_side,
                            Rng& rng) {
  BFDN_REQUIRE(width >= 1 && height >= 1, "grid must be non-empty");
  BFDN_REQUIRE(num_rects >= 0 && max_side >= 1, "bad obstacle parameters");
  std::vector<Rect> rects;
  std::int32_t placed = 0;
  std::int32_t attempts = 0;
  while (placed < num_rects && attempts < num_rects * 64 + 64) {
    ++attempts;
    Rect r;
    r.x0 = static_cast<std::int32_t>(rng.next_int(0, width - 1));
    r.y0 = static_cast<std::int32_t>(rng.next_int(0, height - 1));
    r.x1 = std::min<std::int32_t>(
        width - 1,
        r.x0 + static_cast<std::int32_t>(rng.next_int(0, max_side - 1)));
    r.y1 = std::min<std::int32_t>(
        height - 1,
        r.y0 + static_cast<std::int32_t>(rng.next_int(0, max_side - 1)));
    if (r.contains(0, 0)) continue;
    rects.push_back(r);
    ++placed;
  }
  return GridWorld(width, height, std::move(rects));
}

bool GridWorld::blocked(std::int32_t x, std::int32_t y) const {
  for (const Rect& r : obstacles_) {
    if (r.contains(x, y)) return true;
  }
  return false;
}

std::int64_t GridWorld::num_reachable_cells() const {
  return static_cast<std::int64_t>(node_to_cell_.size());
}

std::pair<std::int32_t, std::int32_t> GridWorld::cell_of(NodeId v) const {
  BFDN_REQUIRE(v >= 0 &&
                   static_cast<std::size_t>(v) < node_to_cell_.size(),
               "node id out of range");
  return node_to_cell_[static_cast<std::size_t>(v)];
}

NodeId GridWorld::cell_node(std::int32_t x, std::int32_t y) const {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) return kInvalidNode;
  return cell_to_node_[static_cast<std::size_t>(y) *
                           static_cast<std::size_t>(width_) +
                       static_cast<std::size_t>(x)];
}

bool GridWorld::distances_are_manhattan() const {
  for (NodeId v = 0; v < static_cast<NodeId>(node_to_cell_.size()); ++v) {
    const auto [x, y] = node_to_cell_[static_cast<std::size_t>(v)];
    if (graph_.distance(v) != x + y) return false;
  }
  return true;
}

GridWorld make_rooms_world(std::int32_t rooms_x, std::int32_t rooms_y,
                           std::int32_t room, Rng& rng) {
  BFDN_REQUIRE(rooms_x >= 1 && rooms_y >= 1 && room >= 1,
               "need at least one 1x1 room");
  // Layout: room cells plus 1-cell walls between rooms.
  const std::int32_t width = rooms_x * (room + 1) - 1;
  const std::int32_t height = rooms_y * (room + 1) - 1;
  std::vector<Rect> walls;
  // Vertical walls at x = room, 2*room+1, ... with one door per
  // room-row segment.
  for (std::int32_t wx = 1; wx < rooms_x; ++wx) {
    const std::int32_t x = wx * (room + 1) - 1;
    for (std::int32_t ry = 0; ry < rooms_y; ++ry) {
      const std::int32_t y0 = ry * (room + 1);
      const std::int32_t y1 = y0 + room - 1;
      const auto door =
          y0 + static_cast<std::int32_t>(rng.next_below(
                   static_cast<std::uint64_t>(room)));
      if (door > y0) walls.push_back(Rect{x, y0, x, door - 1});
      if (door < y1) walls.push_back(Rect{x, door + 1, x, y1});
      // The wall cell aligned with the horizontal wall row stays solid.
      if (ry + 1 < rooms_y) walls.push_back(Rect{x, y1 + 1, x, y1 + 1});
    }
  }
  // Horizontal walls, same construction.
  for (std::int32_t wy = 1; wy < rooms_y; ++wy) {
    const std::int32_t y = wy * (room + 1) - 1;
    for (std::int32_t rx = 0; rx < rooms_x; ++rx) {
      const std::int32_t x0 = rx * (room + 1);
      const std::int32_t x1 = x0 + room - 1;
      const auto door =
          x0 + static_cast<std::int32_t>(rng.next_below(
                   static_cast<std::uint64_t>(room)));
      if (door > x0) walls.push_back(Rect{x0, y, door - 1, y});
      if (door < x1) walls.push_back(Rect{door + 1, y, x1, y});
    }
  }
  return GridWorld(width, height, std::move(walls));
}

GridWorld make_serpentine_world(std::int32_t width, std::int32_t rows) {
  BFDN_REQUIRE(width >= 2 && rows >= 1, "need width >= 2, rows >= 1");
  // Corridor rows at even y; wall rows at odd y with one end gap that
  // alternates sides.
  const std::int32_t height = 2 * rows - 1;
  std::vector<Rect> walls;
  for (std::int32_t wall = 0; wall + 1 < rows; ++wall) {
    const std::int32_t y = 2 * wall + 1;
    if (wall % 2 == 0) {
      walls.push_back(Rect{0, y, width - 2, y});  // gap on the right
    } else {
      walls.push_back(Rect{1, y, width - 1, y});  // gap on the left
    }
  }
  return GridWorld(width, height, std::move(walls));
}

std::string GridWorld::render() const {
  std::ostringstream oss;
  for (std::int32_t y = height_ - 1; y >= 0; --y) {
    for (std::int32_t x = 0; x < width_; ++x) {
      if (x == 0 && y == 0) {
        oss << 'O';
      } else if (blocked(x, y)) {
        oss << '#';
      } else if (cell_node(x, y) == kInvalidNode) {
        oss << ' ';
      } else {
        oss << '.';
      }
    }
    oss << '\n';
  }
  return oss.str();
}

}  // namespace bfdn
