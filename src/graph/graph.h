// General undirected graph with port numbering, used by the non-tree
// exploration variant of Section 4.3.
//
// Each node sees its incident edges through local port numbers
// 0..degree-1 (the standard port-numbering model). Edges have global ids
// so the simulator can track traversal/closing status per edge.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graph/tree.h"  // NodeId

namespace bfdn {

using EdgeId = std::int64_t;
inline constexpr EdgeId kInvalidEdge = -1;

class Graph {
 public:
  /// Empty placeholder (0 nodes); only valid as an assignment target.
  Graph() = default;

  /// Builds from an edge list over nodes 0..n-1; node 0 is the origin.
  /// Rejects self-loops and duplicate edges. The graph must be connected
  /// (every node reachable from the origin).
  static Graph from_edges(std::int64_t n,
                          const std::vector<std::pair<NodeId, NodeId>>& edges);

  std::int64_t num_nodes() const {
    return static_cast<std::int64_t>(adj_offsets_.size()) - 1;
  }
  std::int64_t num_edges() const {
    return static_cast<std::int64_t>(edge_endpoints_.size());
  }
  NodeId origin() const { return 0; }

  std::int32_t degree(NodeId v) const;
  std::int32_t max_degree() const { return max_degree_; }

  /// Neighbour reached from v through local port p (0 <= p < degree(v)).
  NodeId neighbor(NodeId v, std::int32_t port) const;
  /// Global id of the edge behind port p of v.
  EdgeId edge_at(NodeId v, std::int32_t port) const;
  /// Endpoints of an edge (unordered, as given at construction).
  std::pair<NodeId, NodeId> endpoints(EdgeId e) const;
  /// The endpoint of e that is not v; requires v to be an endpoint.
  NodeId other_endpoint(EdgeId e, NodeId v) const;

  /// BFS distance from the origin to every node.
  const std::vector<std::int32_t>& distances_from_origin() const {
    return dist_;
  }
  std::int32_t distance(NodeId v) const;
  /// Radius: max over nodes of distance to the origin (the paper's D).
  std::int32_t radius() const { return radius_; }

  std::string summary() const;

 private:
  // CSR adjacency: for node v, ports index into
  // adj_data_[adj_offsets_[v] .. adj_offsets_[v+1]).
  struct HalfEdge {
    NodeId to;
    EdgeId edge;
  };
  std::vector<std::int64_t> adj_offsets_;
  std::vector<HalfEdge> adj_data_;
  std::vector<std::pair<NodeId, NodeId>> edge_endpoints_;
  std::vector<std::int32_t> dist_;
  std::int32_t max_degree_ = 0;
  std::int32_t radius_ = 0;
};

}  // namespace bfdn
