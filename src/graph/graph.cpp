#include "graph/graph.h"

#include <algorithm>
#include <deque>
#include <set>

#include "support/check.h"
#include "support/strings.h"

namespace bfdn {

Graph Graph::from_edges(
    std::int64_t n, const std::vector<std::pair<NodeId, NodeId>>& edges) {
  BFDN_REQUIRE(n >= 1, "graph needs >= 1 node");
  Graph g;
  g.edge_endpoints_.reserve(edges.size());
  std::vector<std::int32_t> deg(static_cast<std::size_t>(n), 0);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const auto& [a, b] : edges) {
    BFDN_REQUIRE(a >= 0 && a < n && b >= 0 && b < n, "edge endpoint range");
    BFDN_REQUIRE(a != b, "self-loop");
    const auto key = std::minmax(a, b);
    BFDN_REQUIRE(seen.insert({key.first, key.second}).second,
                 "duplicate edge");
    g.edge_endpoints_.emplace_back(a, b);
    ++deg[static_cast<std::size_t>(a)];
    ++deg[static_cast<std::size_t>(b)];
  }
  g.adj_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (std::int64_t v = 0; v < n; ++v) {
    g.adj_offsets_[static_cast<std::size_t>(v) + 1] =
        g.adj_offsets_[static_cast<std::size_t>(v)] +
        deg[static_cast<std::size_t>(v)];
  }
  g.adj_data_.resize(edges.size() * 2);
  {
    std::vector<std::int64_t> cursor(g.adj_offsets_.begin(),
                                     g.adj_offsets_.end() - 1);
    for (EdgeId e = 0; e < static_cast<EdgeId>(edges.size()); ++e) {
      const auto [a, b] = g.edge_endpoints_[static_cast<std::size_t>(e)];
      g.adj_data_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(a)]++)] = HalfEdge{b, e};
      g.adj_data_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(b)]++)] = HalfEdge{a, e};
    }
  }
  g.max_degree_ = deg.empty() ? 0 : *std::max_element(deg.begin(), deg.end());

  // BFS from the origin: distances + connectivity check.
  g.dist_.assign(static_cast<std::size_t>(n), -1);
  g.dist_[0] = 0;
  std::deque<NodeId> queue{0};
  std::int64_t reached = 1;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    g.radius_ = std::max(g.radius_, g.dist_[static_cast<std::size_t>(v)]);
    for (std::int32_t p = 0; p < g.degree(v); ++p) {
      const NodeId w = g.neighbor(v, p);
      if (g.dist_[static_cast<std::size_t>(w)] < 0) {
        g.dist_[static_cast<std::size_t>(w)] =
            g.dist_[static_cast<std::size_t>(v)] + 1;
        queue.push_back(w);
        ++reached;
      }
    }
  }
  BFDN_REQUIRE(reached == n, "graph must be connected from the origin");
  return g;
}

std::int32_t Graph::degree(NodeId v) const {
  BFDN_REQUIRE(v >= 0 && v < num_nodes(), "node id out of range");
  const auto idx = static_cast<std::size_t>(v);
  return static_cast<std::int32_t>(adj_offsets_[idx + 1] -
                                   adj_offsets_[idx]);
}

NodeId Graph::neighbor(NodeId v, std::int32_t port) const {
  BFDN_REQUIRE(port >= 0 && port < degree(v), "port out of range");
  return adj_data_[static_cast<std::size_t>(
                       adj_offsets_[static_cast<std::size_t>(v)] + port)]
      .to;
}

EdgeId Graph::edge_at(NodeId v, std::int32_t port) const {
  BFDN_REQUIRE(port >= 0 && port < degree(v), "port out of range");
  return adj_data_[static_cast<std::size_t>(
                       adj_offsets_[static_cast<std::size_t>(v)] + port)]
      .edge;
}

std::pair<NodeId, NodeId> Graph::endpoints(EdgeId e) const {
  BFDN_REQUIRE(e >= 0 && e < num_edges(), "edge id out of range");
  return edge_endpoints_[static_cast<std::size_t>(e)];
}

NodeId Graph::other_endpoint(EdgeId e, NodeId v) const {
  const auto [a, b] = endpoints(e);
  BFDN_REQUIRE(v == a || v == b, "v is not an endpoint of e");
  return v == a ? b : a;
}

std::int32_t Graph::distance(NodeId v) const {
  BFDN_REQUIRE(v >= 0 && v < num_nodes(), "node id out of range");
  return dist_[static_cast<std::size_t>(v)];
}

std::string Graph::summary() const {
  return str_format("Graph(n=%lld, m=%lld, D=%d, Delta=%d)",
                    static_cast<long long>(num_nodes()),
                    static_cast<long long>(num_edges()), radius(),
                    max_degree());
}

}  // namespace bfdn
