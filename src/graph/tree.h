// Rooted tree representation used as the (hidden) ground truth of every
// exploration experiment.
//
// Nodes are dense integer ids 0..n-1; node 0 is always the root. The
// children of every node are stored contiguously (CSR layout) so that
// per-round simulator hot loops touch contiguous memory. Depths and
// subtree sizes are precomputed at construction — the tree is immutable
// once built.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace bfdn {

using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

class Tree {
 public:
  /// Builds a tree from a parent array: parents[0] must be kInvalidNode
  /// (node 0 is the root); parents[v] < v is NOT required, but the parent
  /// relation must be acyclic and connected. Throws CheckError otherwise.
  static Tree from_parents(std::vector<NodeId> parents);

  std::int64_t num_nodes() const {
    return static_cast<std::int64_t>(parents_.size());
  }
  std::int64_t num_edges() const { return num_nodes() - 1; }
  NodeId root() const { return 0; }

  NodeId parent(NodeId v) const { return parents_[check_node(v)]; }
  std::span<const NodeId> children(NodeId v) const;
  std::int32_t num_children(NodeId v) const;

  /// Distance from the root (delta(v) in the paper).
  std::int32_t depth(NodeId v) const { return depths_[check_node(v)]; }
  /// Depth D of the tree: max over nodes of depth(v).
  std::int32_t depth() const { return tree_depth_; }

  /// Degree in the undirected sense (children + parent edge if any).
  std::int32_t degree(NodeId v) const;
  /// Maximum degree Delta over all nodes.
  std::int32_t max_degree() const { return max_degree_; }

  /// Number of nodes in the subtree rooted at v (T(v) in the paper).
  std::int64_t subtree_size(NodeId v) const {
    return subtree_sizes_[check_node(v)];
  }

  /// True iff a == b or a is a proper ancestor of b. O(1): preorder
  /// interval containment against the precomputed DFS numbering.
  bool is_ancestor_or_self(NodeId a, NodeId b) const {
    const std::int64_t ia = preorder_index_[check_node(a)];
    const std::int64_t ib = preorder_index_[check_node(b)];
    return ia <= ib && ib < ia + subtree_sizes_[static_cast<std::size_t>(a)];
  }

  /// Position of v in a depth-first preorder traversal (children in
  /// child order). T(v) occupies the contiguous index interval
  /// [preorder_index(v), preorder_index(v) + subtree_size(v)).
  std::int64_t preorder_index(NodeId v) const {
    return preorder_index_[check_node(v)];
  }

  /// Nodes of the path root -> v, inclusive (P_T[v] reversed).
  std::vector<NodeId> path_from_root(NodeId v) const;

  /// Sanity string "Tree(n=..., D=..., Delta=...)" for logging.
  std::string summary() const;

 private:
  Tree() = default;
  std::size_t check_node(NodeId v) const;

  std::vector<NodeId> parents_;
  std::vector<std::int32_t> depths_;
  std::vector<std::int64_t> subtree_sizes_;
  std::vector<std::int64_t> preorder_index_;
  // CSR children: children of v are child_data_[child_offsets_[v] ..
  // child_offsets_[v+1]).
  std::vector<std::int64_t> child_offsets_;
  std::vector<NodeId> child_data_;
  std::int32_t tree_depth_ = 0;
  std::int32_t max_degree_ = 0;
};

/// Incremental construction helper: create the root, then attach children.
class TreeBuilder {
 public:
  TreeBuilder();

  /// Adds a node whose parent is `parent`; returns the new node's id.
  NodeId add_child(NodeId parent);

  std::int64_t num_nodes() const {
    return static_cast<std::int64_t>(parents_.size());
  }

  /// Finalizes into an immutable Tree. The builder may be reused after.
  Tree build() const;

 private:
  std::vector<NodeId> parents_;
};

}  // namespace bfdn
