// Tree and workload generators.
//
// All generators are deterministic given their Rng. Families are chosen
// to cover the regimes of Figure 1 and the stress cases of the analysis:
// shallow/bushy (stars, b-ary), deep/thin (paths, spiders, combs),
// balanced random, and the adversarial constructions used in the
// collaborative-exploration literature.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/tree.h"
#include "support/rng.h"

namespace bfdn {

/// Path with n nodes (depth n-1). Requires n >= 1.
Tree make_path(std::int64_t n);

/// Star: root with n-1 leaves (depth 1). Requires n >= 1.
Tree make_star(std::int64_t n);

/// Complete b-ary tree of the given depth. Requires branching >= 1.
Tree make_complete_bary(std::int32_t branching, std::int32_t depth);

/// Spider: `legs` paths of length `leg_length` glued at the root.
Tree make_spider(std::int32_t legs, std::int32_t leg_length);

/// Caterpillar: spine path of `spine` nodes, each spine node carrying
/// `legs_per_node` leaf children.
Tree make_caterpillar(std::int32_t spine, std::int32_t legs_per_node);

/// Comb: spine path of `spine` nodes, each spine node the root of a
/// downward "tooth" path of `tooth_length` nodes.
Tree make_comb(std::int32_t spine, std::int32_t tooth_length);

/// Broom: handle path of `handle` nodes ending in `bristles` leaves.
Tree make_broom(std::int32_t handle, std::int32_t bristles);

/// Random recursive tree: node i attaches to a uniform node < i.
/// Expected depth Theta(log n).
Tree make_random_recursive(std::int64_t n, Rng& rng);

/// Random tree with maximum number of children per node; attachment
/// uniform among nodes that still have a free child slot.
Tree make_random_bounded_degree(std::int64_t n, std::int32_t max_children,
                                Rng& rng);

/// Random tree with exactly n nodes and depth exactly target_depth:
/// a path of length target_depth plus uniform attachment of the
/// remaining nodes at depths < target_depth. Used for the measured
/// Figure-1 map, which sweeps (n, D) directly.
/// Requires n >= target_depth + 1 and target_depth >= 1 (or n == 1 and
/// target_depth == 0).
Tree make_tree_with_depth(std::int64_t n, std::int32_t target_depth,
                          Rng& rng);

/// The hard instance for CTE in the spirit of Higashikawa et al. [11]:
/// `phases` stacked complete binary gadgets of depth ceil(log2 k), where
/// below each gadget exactly one (random) leaf continues to the next
/// phase. n ~= 2k * phases, depth ~= phases * (log2 k + 1).
Tree make_cte_hard_tree(std::int32_t k, std::int32_t phases, Rng& rng);

/// Size-conditioned Galton-Watson-style tree: grows a random tree by
/// repeatedly giving a uniformly random leaf between 1 and max_children
/// children, until n nodes exist. Produces irregular shapes with both
/// deep and bushy regions.
Tree make_random_leafy(std::int64_t n, std::int32_t max_children, Rng& rng);

/// Uniformly random *full binary* tree with `internal` internal nodes
/// (every node has 0 or 2 children; 2*internal + 1 nodes total), via
/// Rémy's algorithm. Expected depth Theta(sqrt(internal)).
Tree make_remy_binary(std::int32_t internal, Rng& rng);

/// Double broom: bristles at the root, a long handle, bristles at the
/// bottom — the classic shape where load balancing must hand work over
/// from the shallow brush to the deep one.
Tree make_double_broom(std::int32_t top_bristles, std::int32_t handle,
                       std::int32_t bottom_bristles);

/// Lopsided binary tree: at each level one child continues the full
/// remaining depth while the other roots a complete binary subtree of
/// logarithmic size. Deep with bushy decorations all along the spine.
Tree make_lopsided(std::int32_t depth);

/// Builds a tree from the CLI / serving-protocol family vocabulary:
/// random | path | star | binary | spider | caterpillar | comb | broom
/// | cte-hard | fixed-depth. Parameter use matches `bfdn generate`:
/// `nodes` where the family is sized by node count, `depth` for
/// binary/comb/broom/fixed-depth, `arms` for legs / teeth / branching,
/// `seed` for the randomized families. A served run and a CLI run with
/// the same five values see bit-identical trees (tests/service_test).
/// Throws CheckError on an unknown family name.
Tree make_family_tree(const std::string& family, std::int64_t nodes,
                      std::int32_t depth, std::int32_t arms,
                      std::uint64_t seed);

/// Named standard families used by test/bench sweeps.
struct NamedTree {
  std::string name;
  Tree tree;
};

/// A diverse zoo of trees of roughly `scale` nodes (>= 1), deterministic
/// in `seed`; used by property tests and bound-validation benches.
std::vector<NamedTree> make_tree_zoo(std::int64_t scale, std::uint64_t seed);

}  // namespace bfdn
