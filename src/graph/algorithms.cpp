#include "graph/algorithms.h"

#include <algorithm>

#include "support/check.h"

namespace bfdn {

LcaIndex::LcaIndex(const Tree& tree) : tree_(tree) {
  const auto n = static_cast<std::size_t>(tree.num_nodes());
  levels_ = 1;
  while ((std::int64_t{1} << levels_) < tree.num_nodes()) ++levels_;
  up_.assign(static_cast<std::size_t>(levels_),
             std::vector<NodeId>(n, kInvalidNode));
  for (std::size_t v = 0; v < n; ++v) {
    up_[0][v] = tree.parent(static_cast<NodeId>(v));
  }
  for (std::int32_t j = 1; j < levels_; ++j) {
    for (std::size_t v = 0; v < n; ++v) {
      const NodeId mid = up_[static_cast<std::size_t>(j - 1)][v];
      up_[static_cast<std::size_t>(j)][v] =
          mid == kInvalidNode
              ? kInvalidNode
              : up_[static_cast<std::size_t>(j - 1)]
                   [static_cast<std::size_t>(mid)];
    }
  }
}

NodeId LcaIndex::ancestor(NodeId v, std::int32_t k) const {
  BFDN_REQUIRE(k >= 0 && k <= tree_.depth(v), "k-th ancestor above root");
  for (std::int32_t j = 0; k != 0; ++j, k >>= 1) {
    if (k & 1) v = up_[static_cast<std::size_t>(j)][static_cast<std::size_t>(v)];
  }
  return v;
}

NodeId LcaIndex::lca(NodeId a, NodeId b) const {
  if (tree_.depth(a) < tree_.depth(b)) std::swap(a, b);
  a = ancestor(a, tree_.depth(a) - tree_.depth(b));
  if (a == b) return a;
  for (std::int32_t j = levels_ - 1; j >= 0; --j) {
    const NodeId ua = up_[static_cast<std::size_t>(j)][static_cast<std::size_t>(a)];
    const NodeId ub = up_[static_cast<std::size_t>(j)][static_cast<std::size_t>(b)];
    if (ua != ub) {
      a = ua;
      b = ub;
    }
  }
  return tree_.parent(a);
}

std::int32_t LcaIndex::distance(NodeId a, NodeId b) const {
  const NodeId c = lca(a, b);
  return tree_.depth(a) + tree_.depth(b) - 2 * tree_.depth(c);
}

std::vector<NodeId> euler_tour(const Tree& tree) {
  std::vector<NodeId> tour;
  tour.reserve(static_cast<std::size_t>(2 * tree.num_edges()));
  // Iterative DFS; stack entries are (node, next-child index).
  std::vector<std::pair<NodeId, std::int32_t>> stack{{tree.root(), 0}};
  while (!stack.empty()) {
    auto& [v, next] = stack.back();
    const auto kids = tree.children(v);
    if (next < static_cast<std::int32_t>(kids.size())) {
      const NodeId c = kids[static_cast<std::size_t>(next++)];
      tour.push_back(c);  // move down into c
      stack.emplace_back(c, 0);
    } else {
      stack.pop_back();
      if (!stack.empty()) tour.push_back(stack.back().first);  // move up
    }
  }
  BFDN_CHECK(static_cast<std::int64_t>(tour.size()) == 2 * tree.num_edges(),
             "euler tour length");
  return tour;
}

std::vector<NodeId> preorder(const Tree& tree) {
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(tree.num_nodes()));
  std::vector<NodeId> stack{tree.root()};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    order.push_back(v);
    const auto kids = tree.children(v);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return order;
}

}  // namespace bfdn
