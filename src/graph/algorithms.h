// Classic tree algorithms shared by the simulator, the baselines and the
// recursive framework: LCA (binary lifting), Euler tours / DFS traversal
// sequences, and pairwise tree distances.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/tree.h"

namespace bfdn {

/// Lowest-common-ancestor queries via binary lifting.
/// Preprocessing O(n log n); queries O(log n).
class LcaIndex {
 public:
  explicit LcaIndex(const Tree& tree);

  NodeId lca(NodeId a, NodeId b) const;
  /// Number of edges on the path a -> b.
  std::int32_t distance(NodeId a, NodeId b) const;
  /// k-th ancestor of v (0 = v itself); requires k <= depth(v).
  NodeId ancestor(NodeId v, std::int32_t k) const;

 private:
  const Tree& tree_;
  std::int32_t levels_;
  // up_[j][v] = 2^j-th ancestor of v (kInvalidNode above the root).
  std::vector<std::vector<NodeId>> up_;
};

/// The edge sequence of a depth-first traversal starting and ending at
/// the root: each entry is the node arrived at after one move. Length is
/// exactly 2(n-1); children visited in stored order.
std::vector<NodeId> euler_tour(const Tree& tree);

/// Nodes in DFS preorder (children in stored order).
std::vector<NodeId> preorder(const Tree& tree);

}  // namespace bfdn
