// Shape statistics for trees: level widths, leaf counts, branching
// profile — used by the CLI's `info`, by benches that bucket instances
// by shape, and by the BFS-levels cost analysis (whose wave count is
// sum of ceil(width_d / k)).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/tree.h"

namespace bfdn {

struct TreeStats {
  std::int64_t num_nodes = 0;
  std::int32_t depth = 0;
  std::int32_t max_degree = 0;
  std::int64_t num_leaves = 0;
  /// width[d] = number of nodes at depth d (size depth + 1).
  std::vector<std::int64_t> level_widths;
  std::int64_t max_width = 0;
  double average_depth = 0;       // mean node depth
  double average_branching = 0;   // mean children among internal nodes
  /// Sum over nodes of depth(v): the total BF travel if every node had
  /// to be fetched from the root individually.
  std::int64_t total_path_length = 0;
};

TreeStats compute_tree_stats(const Tree& tree);

/// Waves needed by BFS-levels with k robots: sum_d ceil(width_open_d/k)
/// where width_open_d counts depth-d nodes with children (the nodes
/// whose dangling edges must be probed). A lower-bound flavoured count.
std::int64_t bfs_wave_count(const TreeStats& stats, const Tree& tree,
                            std::int32_t k);

/// One-line human summary.
std::string tree_stats_to_string(const TreeStats& stats);

}  // namespace bfdn
