#include "graph/dot.h"

#include <map>
#include <sstream>

#include "support/check.h"

namespace bfdn {
namespace {

std::string node_label(const Tree& tree, NodeId v,
                       const DotOptions& options) {
  std::ostringstream oss;
  oss << v;
  if (options.show_depth) oss << "\\nd=" << tree.depth(v);
  return oss.str();
}

}  // namespace

std::string tree_to_dot(const Tree& tree, const DotOptions& options) {
  std::ostringstream oss;
  oss << "digraph " << options.name << " {\n"
      << "  rankdir=TB;\n  node [shape=circle, fontsize=10];\n";
  oss << "  0 [shape=doublecircle, label=\""
      << node_label(tree, tree.root(), options) << "\"];\n";
  for (NodeId v = 1; v < tree.num_nodes(); ++v) {
    oss << "  " << v << " [label=\"" << node_label(tree, v, options)
        << "\"];\n";
  }
  for (NodeId v = 1; v < tree.num_nodes(); ++v) {
    oss << "  " << tree.parent(v) << " -> " << v << ";\n";
  }
  oss << "}\n";
  return oss.str();
}

std::string graph_to_dot(const Graph& graph, const DotOptions& options) {
  std::ostringstream oss;
  oss << "graph " << options.name << " {\n"
      << "  node [shape=circle, fontsize=10];\n"
      << "  0 [shape=doublecircle];\n";
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const auto [a, b] = graph.endpoints(e);
    oss << "  " << a << " -- " << b << ";\n";
  }
  oss << "}\n";
  return oss.str();
}

std::string exploration_to_dot(const Tree& tree,
                               const std::vector<char>& explored,
                               const std::vector<NodeId>& robot_positions,
                               const DotOptions& options) {
  BFDN_REQUIRE(static_cast<std::int64_t>(explored.size()) ==
                   tree.num_nodes(),
               "explored mask size mismatch");
  std::map<NodeId, std::vector<std::size_t>> robots_at;
  for (std::size_t i = 0; i < robot_positions.size(); ++i) {
    robots_at[robot_positions[i]].push_back(i);
  }
  std::ostringstream oss;
  oss << "digraph " << options.name << " {\n"
      << "  rankdir=TB;\n  node [shape=circle, fontsize=10];\n";
  for (NodeId v = 0; v < tree.num_nodes(); ++v) {
    oss << "  " << v << " [label=\"" << node_label(tree, v, options);
    if (const auto it = robots_at.find(v); it != robots_at.end()) {
      oss << "\\nR:";
      for (std::size_t r : it->second) oss << ' ' << r;
    }
    oss << "\"";
    if (v == tree.root()) oss << ", shape=doublecircle";
    if (explored[static_cast<std::size_t>(v)]) {
      oss << ", style=filled, fillcolor=lightgray";
    } else {
      oss << ", style=dashed";
    }
    oss << "];\n";
  }
  for (NodeId v = 1; v < tree.num_nodes(); ++v) {
    const bool discovered = explored[static_cast<std::size_t>(
        tree.parent(v))];
    const bool dangling =
        discovered && !explored[static_cast<std::size_t>(v)];
    oss << "  " << tree.parent(v) << " -> " << v;
    if (dangling) {
      oss << " [style=dashed, label=\"?\"]";
    } else if (!discovered) {
      oss << " [style=dotted, color=gray]";
    }
    oss << ";\n";
  }
  oss << "}\n";
  return oss.str();
}

}  // namespace bfdn
