#include "graph/generators.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "support/check.h"

namespace bfdn {

Tree make_path(std::int64_t n) {
  BFDN_REQUIRE(n >= 1, "path needs >= 1 node");
  TreeBuilder b;
  NodeId tail = 0;
  for (std::int64_t i = 1; i < n; ++i) tail = b.add_child(tail);
  return b.build();
}

Tree make_star(std::int64_t n) {
  BFDN_REQUIRE(n >= 1, "star needs >= 1 node");
  TreeBuilder b;
  for (std::int64_t i = 1; i < n; ++i) b.add_child(0);
  return b.build();
}

Tree make_complete_bary(std::int32_t branching, std::int32_t depth) {
  BFDN_REQUIRE(branching >= 1, "branching >= 1");
  BFDN_REQUIRE(depth >= 0, "depth >= 0");
  TreeBuilder b;
  std::vector<NodeId> level{0};
  for (std::int32_t d = 0; d < depth; ++d) {
    std::vector<NodeId> next;
    next.reserve(level.size() * static_cast<std::size_t>(branching));
    for (NodeId v : level) {
      for (std::int32_t c = 0; c < branching; ++c) {
        next.push_back(b.add_child(v));
      }
    }
    level = std::move(next);
  }
  return b.build();
}

Tree make_spider(std::int32_t legs, std::int32_t leg_length) {
  BFDN_REQUIRE(legs >= 0 && leg_length >= 0, "non-negative spider");
  TreeBuilder b;
  for (std::int32_t leg = 0; leg < legs; ++leg) {
    NodeId tail = 0;
    for (std::int32_t i = 0; i < leg_length; ++i) tail = b.add_child(tail);
  }
  return b.build();
}

Tree make_caterpillar(std::int32_t spine, std::int32_t legs_per_node) {
  BFDN_REQUIRE(spine >= 1 && legs_per_node >= 0, "bad caterpillar");
  TreeBuilder b;
  NodeId tail = 0;
  for (std::int32_t i = 0; i < legs_per_node; ++i) b.add_child(tail);
  for (std::int32_t s = 1; s < spine; ++s) {
    tail = b.add_child(tail);
    for (std::int32_t i = 0; i < legs_per_node; ++i) b.add_child(tail);
  }
  return b.build();
}

Tree make_comb(std::int32_t spine, std::int32_t tooth_length) {
  BFDN_REQUIRE(spine >= 1 && tooth_length >= 0, "bad comb");
  TreeBuilder b;
  NodeId tail = 0;
  auto add_tooth = [&](NodeId at) {
    NodeId t = at;
    for (std::int32_t i = 0; i < tooth_length; ++i) t = b.add_child(t);
  };
  add_tooth(tail);
  for (std::int32_t s = 1; s < spine; ++s) {
    tail = b.add_child(tail);
    add_tooth(tail);
  }
  return b.build();
}

Tree make_broom(std::int32_t handle, std::int32_t bristles) {
  BFDN_REQUIRE(handle >= 0 && bristles >= 0, "bad broom");
  TreeBuilder b;
  NodeId tail = 0;
  for (std::int32_t i = 0; i < handle; ++i) tail = b.add_child(tail);
  for (std::int32_t i = 0; i < bristles; ++i) b.add_child(tail);
  return b.build();
}

Tree make_random_recursive(std::int64_t n, Rng& rng) {
  BFDN_REQUIRE(n >= 1, "need >= 1 node");
  TreeBuilder b;
  for (std::int64_t i = 1; i < n; ++i) {
    b.add_child(static_cast<NodeId>(
        rng.next_below(static_cast<std::uint64_t>(i))));
  }
  return b.build();
}

Tree make_random_bounded_degree(std::int64_t n, std::int32_t max_children,
                                Rng& rng) {
  BFDN_REQUIRE(n >= 1, "need >= 1 node");
  BFDN_REQUIRE(max_children >= 1, "max_children >= 1");
  TreeBuilder b;
  std::vector<NodeId> open{0};                 // nodes with a free slot
  std::vector<std::int32_t> used(1, 0);        // children used per node
  for (std::int64_t i = 1; i < n; ++i) {
    BFDN_CHECK(!open.empty(), "no attachment slot left");
    const std::size_t pick =
        static_cast<std::size_t>(rng.next_below(open.size()));
    const NodeId parent = open[pick];
    const NodeId child = b.add_child(parent);
    used.push_back(0);
    if (++used[static_cast<std::size_t>(parent)] >= max_children) {
      open[pick] = open.back();
      open.pop_back();
    }
    open.push_back(child);
  }
  return b.build();
}

Tree make_tree_with_depth(std::int64_t n, std::int32_t target_depth,
                          Rng& rng) {
  BFDN_REQUIRE(target_depth >= 0, "depth >= 0");
  if (target_depth == 0) {
    BFDN_REQUIRE(n == 1, "depth 0 forces n == 1");
    return make_path(1);
  }
  BFDN_REQUIRE(n >= target_depth + 1, "need n >= D + 1");
  TreeBuilder b;
  // Spine realizing the exact depth. Remember depth of each node so we
  // can attach the rest strictly above the bottom level.
  std::vector<std::int32_t> depth_of{0};
  NodeId tail = 0;
  for (std::int32_t d = 1; d <= target_depth; ++d) {
    tail = b.add_child(tail);
    depth_of.push_back(d);
  }
  std::vector<NodeId> eligible;  // nodes at depth < target_depth
  for (NodeId v = 0; v < target_depth; ++v) eligible.push_back(v);
  for (std::int64_t i = target_depth + 1; i < n; ++i) {
    const NodeId parent = rng.pick(eligible);
    const NodeId child = b.add_child(parent);
    const std::int32_t d = depth_of[static_cast<std::size_t>(parent)] + 1;
    depth_of.push_back(d);
    if (d < target_depth) eligible.push_back(child);
  }
  return b.build();
}

Tree make_cte_hard_tree(std::int32_t k, std::int32_t phases, Rng& rng) {
  BFDN_REQUIRE(k >= 2 && phases >= 1, "need k >= 2, phases >= 1");
  const auto gadget_depth = static_cast<std::int32_t>(
      std::ceil(std::log2(static_cast<double>(k))));
  TreeBuilder b;
  NodeId hub = 0;
  for (std::int32_t phase = 0; phase < phases; ++phase) {
    // Complete binary gadget below the hub.
    std::vector<NodeId> level{hub};
    for (std::int32_t d = 0; d < gadget_depth; ++d) {
      std::vector<NodeId> next;
      for (NodeId v : level) {
        next.push_back(b.add_child(v));
        next.push_back(b.add_child(v));
      }
      level = std::move(next);
    }
    // One random leaf continues into the next phase.
    hub = b.add_child(rng.pick(level));
  }
  return b.build();
}

Tree make_random_leafy(std::int64_t n, std::int32_t max_children, Rng& rng) {
  BFDN_REQUIRE(n >= 1, "need >= 1 node");
  BFDN_REQUIRE(max_children >= 1, "max_children >= 1");
  TreeBuilder b;
  std::vector<NodeId> leaves{0};
  while (b.num_nodes() < n) {
    const std::size_t pick =
        static_cast<std::size_t>(rng.next_below(leaves.size()));
    const NodeId parent = leaves[pick];
    leaves[pick] = leaves.back();
    leaves.pop_back();
    const std::int64_t budget = n - b.num_nodes();
    const std::int64_t want =
        rng.next_int(1, std::min<std::int64_t>(max_children, budget));
    for (std::int64_t c = 0; c < want; ++c) {
      leaves.push_back(b.add_child(parent));
    }
  }
  return b.build();
}

Tree make_remy_binary(std::int32_t internal, Rng& rng) {
  BFDN_REQUIRE(internal >= 0, "internal >= 0");
  // Rémy's algorithm over explicit parent/children arrays (ids are
  // remapped at the end because the root moves during splicing).
  std::vector<NodeId> parent{kInvalidNode};
  std::vector<std::array<NodeId, 2>> kids{{kInvalidNode, kInvalidNode}};
  auto add_node = [&]() {
    parent.push_back(kInvalidNode);
    kids.push_back({kInvalidNode, kInvalidNode});
    return static_cast<NodeId>(parent.size() - 1);
  };
  for (std::int32_t step = 0; step < internal; ++step) {
    const auto x = static_cast<NodeId>(rng.next_below(parent.size()));
    const NodeId y = add_node();
    const NodeId leaf = add_node();
    const NodeId up = parent[static_cast<std::size_t>(x)];
    parent[static_cast<std::size_t>(y)] = up;
    if (up != kInvalidNode) {
      auto& slots = kids[static_cast<std::size_t>(up)];
      if (slots[0] == x) {
        slots[0] = y;
      } else {
        BFDN_CHECK(slots[1] == x, "splice: child slot not found");
        slots[1] = y;
      }
    }
    const bool new_leaf_left = rng.next_bool();
    kids[static_cast<std::size_t>(y)] =
        new_leaf_left ? std::array<NodeId, 2>{leaf, x}
                      : std::array<NodeId, 2>{x, leaf};
    parent[static_cast<std::size_t>(x)] = y;
    parent[static_cast<std::size_t>(leaf)] = y;
  }
  // Remap so the (possibly moved) root gets id 0, children follow in
  // BFS order.
  NodeId root = kInvalidNode;
  for (std::size_t v = 0; v < parent.size(); ++v) {
    if (parent[v] == kInvalidNode) {
      BFDN_CHECK(root == kInvalidNode, "two roots after splicing");
      root = static_cast<NodeId>(v);
    }
  }
  std::vector<NodeId> remap(parent.size(), kInvalidNode);
  std::vector<NodeId> order{root};
  remap[static_cast<std::size_t>(root)] = 0;
  std::vector<NodeId> new_parents{kInvalidNode};
  for (std::size_t head = 0; head < order.size(); ++head) {
    const NodeId v = order[head];
    for (const NodeId c : kids[static_cast<std::size_t>(v)]) {
      if (c == kInvalidNode) continue;
      remap[static_cast<std::size_t>(c)] =
          static_cast<NodeId>(order.size());
      new_parents.push_back(remap[static_cast<std::size_t>(v)]);
      order.push_back(c);
    }
  }
  return Tree::from_parents(std::move(new_parents));
}

Tree make_double_broom(std::int32_t top_bristles, std::int32_t handle,
                       std::int32_t bottom_bristles) {
  BFDN_REQUIRE(top_bristles >= 0 && handle >= 0 && bottom_bristles >= 0,
               "non-negative double broom");
  TreeBuilder b;
  for (std::int32_t i = 0; i < top_bristles; ++i) b.add_child(0);
  NodeId tail = 0;
  for (std::int32_t i = 0; i < handle; ++i) tail = b.add_child(tail);
  for (std::int32_t i = 0; i < bottom_bristles; ++i) b.add_child(tail);
  return b.build();
}

Tree make_lopsided(std::int32_t depth) {
  BFDN_REQUIRE(depth >= 0, "depth >= 0");
  TreeBuilder b;
  NodeId spine = 0;
  for (std::int32_t level = 0; level < depth; ++level) {
    // Bushy decoration: complete binary subtree of logarithmic depth,
    // clipped so it never exceeds the total depth.
    const auto remaining = depth - level;
    auto bush_depth = static_cast<std::int32_t>(
        std::floor(std::log2(static_cast<double>(remaining) + 1.0)));
    bush_depth = std::min(bush_depth, remaining);
    if (bush_depth > 0) {
      std::vector<NodeId> frontier{b.add_child(spine)};
      for (std::int32_t d = 1; d < bush_depth; ++d) {
        std::vector<NodeId> next;
        for (const NodeId v : frontier) {
          next.push_back(b.add_child(v));
          next.push_back(b.add_child(v));
        }
        frontier = std::move(next);
      }
    }
    spine = b.add_child(spine);
  }
  return b.build();
}

std::vector<NamedTree> make_tree_zoo(std::int64_t scale,
                                     std::uint64_t seed) {
  BFDN_REQUIRE(scale >= 8, "zoo needs scale >= 8");
  Rng rng(seed);
  std::vector<NamedTree> zoo;
  zoo.push_back({"path", make_path(scale)});
  zoo.push_back({"star", make_star(scale)});
  {
    // Binary tree with about `scale` nodes.
    const auto d = static_cast<std::int32_t>(
        std::floor(std::log2(static_cast<double>(scale + 1))) - 1);
    zoo.push_back({"binary", make_complete_bary(2, std::max(d, 1))});
  }
  {
    const auto legs = static_cast<std::int32_t>(
        std::max<std::int64_t>(2, std::llround(std::sqrt(
                                      static_cast<double>(scale)))));
    const std::int32_t leg_len =
        static_cast<std::int32_t>(std::max<std::int64_t>(
            1, (scale - 1) / legs));
    zoo.push_back({"spider", make_spider(legs, leg_len)});
    zoo.push_back({"comb", make_comb(legs, leg_len)});
  }
  zoo.push_back({"caterpillar",
                 make_caterpillar(
                     static_cast<std::int32_t>(std::max<std::int64_t>(
                         1, scale / 4)),
                     3)});
  zoo.push_back({"broom",
                 make_broom(static_cast<std::int32_t>(scale / 2),
                            static_cast<std::int32_t>(scale -
                                                      scale / 2 - 1))});
  {
    Rng child = rng.split();
    zoo.push_back({"random_recursive",
                   make_random_recursive(scale, child)});
  }
  {
    Rng child = rng.split();
    zoo.push_back({"random_ternary",
                   make_random_bounded_degree(scale, 3, child)});
  }
  {
    Rng child = rng.split();
    zoo.push_back({"random_leafy", make_random_leafy(scale, 5, child)});
  }
  {
    Rng child = rng.split();
    const auto d = static_cast<std::int32_t>(
        std::max<std::int64_t>(2, scale / 8));
    zoo.push_back(
        {"fixed_depth", make_tree_with_depth(scale, d, child)});
  }
  {
    Rng child = rng.split();
    zoo.push_back({"cte_hard", make_cte_hard_tree(
                                   8,
                                   static_cast<std::int32_t>(
                                       std::max<std::int64_t>(
                                           1, scale / 32)),
                                   child)});
  }
  {
    Rng child = rng.split();
    zoo.push_back({"remy_binary",
                   make_remy_binary(
                       static_cast<std::int32_t>(
                           std::max<std::int64_t>(1, scale / 2)),
                       child)});
  }
  {
    const auto third = static_cast<std::int32_t>(
        std::max<std::int64_t>(1, scale / 3));
    zoo.push_back({"double_broom",
                   make_double_broom(third, third, third)});
  }
  {
    // Lopsided trees grow ~2 nodes per level plus bushes; pick a depth
    // that lands near `scale` nodes.
    const auto d = static_cast<std::int32_t>(
        std::max<std::int64_t>(2, scale / 5));
    zoo.push_back({"lopsided", make_lopsided(d)});
  }
  return zoo;
}

Tree make_family_tree(const std::string& family, std::int64_t nodes,
                      std::int32_t depth, std::int32_t arms,
                      std::uint64_t seed) {
  Rng rng(seed);
  if (family == "path") return make_path(nodes);
  if (family == "star") return make_star(nodes);
  if (family == "binary") return make_complete_bary(2, depth);
  if (family == "spider") {
    return make_spider(arms, static_cast<std::int32_t>(
                                 std::max<std::int64_t>(1, nodes / arms)));
  }
  if (family == "caterpillar") {
    return make_caterpillar(
        static_cast<std::int32_t>(
            std::max<std::int64_t>(1, nodes / (arms + 1))),
        arms);
  }
  if (family == "comb") return make_comb(arms, depth);
  if (family == "broom") {
    return make_broom(depth,
                      static_cast<std::int32_t>(std::max<std::int64_t>(
                          1, nodes - depth - 1)));
  }
  if (family == "cte-hard") return make_cte_hard_tree(arms, depth, rng);
  if (family == "fixed-depth") return make_tree_with_depth(nodes, depth, rng);
  if (family == "random") return make_random_leafy(nodes, 5, rng);
  BFDN_REQUIRE(false, "unknown --family " + family);
  return make_path(1);
}

}  // namespace bfdn
