// Grid graphs with rectangular obstacles — the concrete non-tree setting
// the paper points at (Section 4.3, citing Ortolf–Schindelhauer [12]).
//
// Cells of a width x height grid; a set of axis-aligned rectangles is
// blocked. The free cells reachable from the origin cell (0, 0) form the
// exploration graph (4-neighbourhood). GridWorld converts itself to a
// Graph whose node 0 is the origin.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "support/rng.h"

namespace bfdn {

/// Inclusive cell-coordinate rectangle [x0, x1] x [y0, y1].
struct Rect {
  std::int32_t x0 = 0;
  std::int32_t y0 = 0;
  std::int32_t x1 = 0;
  std::int32_t y1 = 0;

  bool contains(std::int32_t x, std::int32_t y) const {
    return x >= x0 && x <= x1 && y >= y0 && y <= y1;
  }
};

class GridWorld {
 public:
  /// Throws if the origin cell (0,0) is blocked or out of range.
  GridWorld(std::int32_t width, std::int32_t height,
            std::vector<Rect> obstacles);

  /// Random world: `num_rects` rectangles with sides in [1, max_side],
  /// re-sampled if they would block the origin.
  static GridWorld random(std::int32_t width, std::int32_t height,
                          std::int32_t num_rects, std::int32_t max_side,
                          Rng& rng);

  std::int32_t width() const { return width_; }
  std::int32_t height() const { return height_; }
  bool blocked(std::int32_t x, std::int32_t y) const;

  /// Number of free cells reachable from the origin.
  std::int64_t num_reachable_cells() const;

  /// Exploration graph over reachable free cells. node 0 = origin.
  const Graph& graph() const { return graph_; }

  /// Maps graph node id -> (x, y) cell. Inverse of cell_node().
  std::pair<std::int32_t, std::int32_t> cell_of(NodeId v) const;
  /// Node id of cell (x, y), or kInvalidNode if blocked/unreachable.
  NodeId cell_node(std::int32_t x, std::int32_t y) const;

  /// True iff BFS distance == Manhattan distance for every reachable
  /// cell (the special case where the paper's distance assumption is the
  /// closed-form i + j).
  bool distances_are_manhattan() const;

  /// ASCII rendering: '#' blocked, '.' free-reachable, ' ' unreachable,
  /// 'O' origin. Row y printed top-down from y = height-1.
  std::string render() const;

 private:
  std::int32_t width_;
  std::int32_t height_;
  std::vector<Rect> obstacles_;
  std::vector<NodeId> cell_to_node_;  // width*height, kInvalidNode if none
  std::vector<std::pair<std::int32_t, std::int32_t>> node_to_cell_;
  Graph graph_;
};

/// Office floor: a grid partitioned into rooms of size room x room by
/// 1-cell walls, each wall pierced by a single door. Exercises the
/// graph explorer on high-diameter, low-connectivity worlds.
GridWorld make_rooms_world(std::int32_t rooms_x, std::int32_t rooms_y,
                           std::int32_t room, Rng& rng);

/// Serpentine: full-width walls every second row with alternating end
/// gaps, forcing a single snake-shaped corridor — the maximum-radius
/// grid world (radius ~ width * height / 2).
GridWorld make_serpentine_world(std::int32_t width, std::int32_t rows);

}  // namespace bfdn
