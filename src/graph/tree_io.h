// Plain-text serialization of trees, so experiment instances can be
// stored, shared and replayed.
//
// Format ("bfdn-tree v1"): a header line, then one line per node in id
// order holding the parent id (-1 for the root). Comments start with
// '#'; blank lines are ignored.
#pragma once

#include <string>

#include "graph/tree.h"

namespace bfdn {

/// Serializes a tree (self-describing, round-trips via parse_tree).
std::string tree_to_text(const Tree& tree);

/// Parses the textual format; throws CheckError on malformed input.
Tree parse_tree(const std::string& text);

/// Convenience file wrappers; throw CheckError on I/O failure.
void save_tree(const Tree& tree, const std::string& path);
Tree load_tree(const std::string& path);

}  // namespace bfdn
