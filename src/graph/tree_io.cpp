#include "graph/tree_io.h"

#include <fstream>
#include <sstream>

#include "support/check.h"

namespace bfdn {

namespace {
constexpr const char* kHeader = "bfdn-tree v1";
}  // namespace

std::string tree_to_text(const Tree& tree) {
  std::ostringstream oss;
  oss << kHeader << '\n';
  oss << "# n=" << tree.num_nodes() << " D=" << tree.depth()
      << " Delta=" << tree.max_degree() << '\n';
  for (NodeId v = 0; v < tree.num_nodes(); ++v) {
    oss << tree.parent(v) << '\n';
  }
  return oss.str();
}

Tree parse_tree(const std::string& text) {
  std::istringstream iss(text);
  std::string line;
  bool header_seen = false;
  std::vector<NodeId> parents;
  while (std::getline(iss, line)) {
    // Trim trailing carriage return (tolerate CRLF files).
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    if (!header_seen) {
      BFDN_REQUIRE(line == kHeader,
                   "bad header, expected '" + std::string(kHeader) + "'");
      header_seen = true;
      continue;
    }
    std::size_t consumed = 0;
    int value = 0;
    try {
      value = std::stoi(line, &consumed);
    } catch (const std::exception&) {
      BFDN_REQUIRE(false, "bad parent id line: " + line);
    }
    BFDN_REQUIRE(consumed == line.size(), "trailing junk in line: " + line);
    parents.push_back(static_cast<NodeId>(value));
  }
  BFDN_REQUIRE(header_seen, "missing header");
  return Tree::from_parents(std::move(parents));
}

void save_tree(const Tree& tree, const std::string& path) {
  std::ofstream out(path);
  BFDN_REQUIRE(out.good(), "cannot open for writing: " + path);
  out << tree_to_text(tree);
  BFDN_REQUIRE(out.good(), "write failed: " + path);
}

Tree load_tree(const std::string& path) {
  std::ifstream in(path);
  BFDN_REQUIRE(in.good(), "cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_tree(buffer.str());
}

}  // namespace bfdn
