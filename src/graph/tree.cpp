#include "graph/tree.h"

#include <algorithm>
#include <numeric>

#include "support/check.h"
#include "support/strings.h"

namespace bfdn {

Tree Tree::from_parents(std::vector<NodeId> parents) {
  BFDN_REQUIRE(!parents.empty(), "tree needs at least the root");
  BFDN_REQUIRE(parents[0] == kInvalidNode, "node 0 must be the root");
  const auto n = static_cast<std::int64_t>(parents.size());
  BFDN_REQUIRE(n <= (std::int64_t{1} << 31) - 1, "too many nodes");

  Tree t;
  t.parents_ = std::move(parents);

  // Count children and build CSR offsets.
  std::vector<std::int32_t> child_counts(static_cast<std::size_t>(n), 0);
  for (std::int64_t v = 1; v < n; ++v) {
    const NodeId p = t.parents_[static_cast<std::size_t>(v)];
    BFDN_REQUIRE(p >= 0 && p < n, "parent id out of range");
    BFDN_REQUIRE(p != v, "self-parent");
    ++child_counts[static_cast<std::size_t>(p)];
  }
  t.child_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (std::int64_t v = 0; v < n; ++v) {
    t.child_offsets_[static_cast<std::size_t>(v) + 1] =
        t.child_offsets_[static_cast<std::size_t>(v)] +
        child_counts[static_cast<std::size_t>(v)];
  }
  t.child_data_.assign(static_cast<std::size_t>(n - 1), kInvalidNode);
  {
    std::vector<std::int64_t> cursor(t.child_offsets_.begin(),
                                     t.child_offsets_.end() - 1);
    for (std::int64_t v = 1; v < n; ++v) {
      const NodeId p = t.parents_[static_cast<std::size_t>(v)];
      t.child_data_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(p)]++)] = static_cast<NodeId>(v);
    }
  }

  // Depths and connectivity via BFS from the root; a cycle or a node
  // unreachable from the root leaves depth unassigned.
  t.depths_.assign(static_cast<std::size_t>(n), -1);
  t.depths_[0] = 0;
  std::vector<NodeId> frontier{0};
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!frontier.empty()) {
    std::vector<NodeId> next;
    for (NodeId v : frontier) {
      order.push_back(v);
      for (NodeId c : t.children(v)) {
        t.depths_[static_cast<std::size_t>(c)] =
            t.depths_[static_cast<std::size_t>(v)] + 1;
        next.push_back(c);
      }
    }
    frontier = std::move(next);
  }
  BFDN_REQUIRE(static_cast<std::int64_t>(order.size()) == n,
               "parent array is not a connected tree");
  t.tree_depth_ = *std::max_element(t.depths_.begin(), t.depths_.end());

  // Subtree sizes in reverse BFS order (children before parents).
  t.subtree_sizes_.assign(static_cast<std::size_t>(n), 1);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    if (v != 0) {
      t.subtree_sizes_[static_cast<std::size_t>(
          t.parents_[static_cast<std::size_t>(v)])] +=
          t.subtree_sizes_[static_cast<std::size_t>(v)];
    }
  }

  // Preorder numbering (iterative DFS, children in child order); with
  // subtree sizes this answers ancestor queries in O(1).
  t.preorder_index_.assign(static_cast<std::size_t>(n), 0);
  {
    std::vector<NodeId> dfs{0};
    std::int64_t clock = 0;
    while (!dfs.empty()) {
      const NodeId v = dfs.back();
      dfs.pop_back();
      t.preorder_index_[static_cast<std::size_t>(v)] = clock++;
      const auto kids = t.children(v);
      for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
        dfs.push_back(*it);
      }
    }
  }

  t.max_degree_ = 0;
  for (std::int64_t v = 0; v < n; ++v) {
    t.max_degree_ =
        std::max(t.max_degree_, t.degree(static_cast<NodeId>(v)));
  }
  return t;
}

std::size_t Tree::check_node(NodeId v) const {
  BFDN_REQUIRE(v >= 0 && static_cast<std::size_t>(v) < parents_.size(),
               "node id out of range");
  return static_cast<std::size_t>(v);
}

std::span<const NodeId> Tree::children(NodeId v) const {
  const std::size_t idx = check_node(v);
  const auto begin = static_cast<std::size_t>(child_offsets_[idx]);
  const auto end = static_cast<std::size_t>(child_offsets_[idx + 1]);
  return {child_data_.data() + begin, end - begin};
}

std::int32_t Tree::num_children(NodeId v) const {
  const std::size_t idx = check_node(v);
  return static_cast<std::int32_t>(child_offsets_[idx + 1] -
                                   child_offsets_[idx]);
}

std::int32_t Tree::degree(NodeId v) const {
  return num_children(v) + (v == root() ? 0 : 1);
}

std::vector<NodeId> Tree::path_from_root(NodeId v) const {
  std::vector<NodeId> path;
  for (NodeId cur = v; cur != kInvalidNode; cur = parent(cur)) {
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::string Tree::summary() const {
  return str_format("Tree(n=%lld, D=%d, Delta=%d)",
                    static_cast<long long>(num_nodes()), depth(),
                    max_degree());
}

TreeBuilder::TreeBuilder() { parents_.push_back(kInvalidNode); }

NodeId TreeBuilder::add_child(NodeId parent) {
  BFDN_REQUIRE(parent >= 0 &&
                   static_cast<std::size_t>(parent) < parents_.size(),
               "parent id out of range");
  parents_.push_back(parent);
  return static_cast<NodeId>(parents_.size() - 1);
}

Tree TreeBuilder::build() const { return Tree::from_parents(parents_); }

}  // namespace bfdn
