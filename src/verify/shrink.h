// Counterexample minimizer for oracle failures.
//
// Given an instance (tree, config) on which a specific oracle check
// fails, `shrink` greedily searches for a smaller instance that still
// fails the *same* check, alternating four reduction passes until none
// of them makes progress or the probe budget runs out:
//
//  * subtree drops — remove a whole subtree, largest first;
//  * leaf pruning — ddmin-style batch removal of leaves (halving batch
//    sizes down to single leaves);
//  * hoisting — reattach a node (with its subtree) to its grandparent,
//    shortening the tree;
//  * robot halving — reduce k (halving, then decrements).
//
// Every reduction is accepted only if the candidate instance still
// fails with the original OracleCheck id, so the minimized instance is
// a genuine reproduction of the original failure, not a different bug.
// The search is deterministic: identical inputs give identical minima.
#pragma once

#include <cstdint>

#include "graph/tree.h"
#include "verify/oracle.h"

namespace bfdn {

struct ShrinkOptions {
  /// Maximum number of oracle evaluations spent on the search.
  std::int32_t max_probes = 2000;
};

struct ShrinkResult {
  Tree tree;               ///< minimized failing tree
  OracleConfig config;     ///< original config with the minimized k
  OracleCheck check = OracleCheck::kBfdnRun;  ///< the preserved failure
  std::int32_t accepted_reductions = 0;
  std::int32_t probes = 0;  ///< oracle evaluations spent
};

/// Minimizes (tree, config) while `check` keeps failing. Requires that
/// the check fails on the input instance (throws CheckError otherwise).
ShrinkResult shrink(const Tree& tree, const OracleConfig& config,
                    OracleCheck check, const ShrinkOptions& options = {});

}  // namespace bfdn
