#include "verify/shrink.h"

#include <algorithm>
#include <numeric>
#include <utility>
#include <vector>

#include "support/check.h"

namespace bfdn {
namespace {

/// Restricts the oracle to the models the failing check actually
/// exercises, so shrink probes stay cheap.
OracleConfig probe_config(const OracleConfig& config, OracleCheck check) {
  OracleConfig probe = config;
  probe.run_write_read =
      config.run_write_read && check == OracleCheck::kWriteRead;
  probe.run_ell = config.run_ell && check == OracleCheck::kEllTheorem10;
  probe.run_graph = config.run_graph && check == OracleCheck::kGraphOnTree;
  // kEngineInvariant can originate in any model, so keep them all.
  if (check == OracleCheck::kEngineInvariant) {
    probe.run_write_read = config.run_write_read;
    probe.run_ell = config.run_ell;
    probe.run_graph = config.run_graph;
  }
  // Only async-equivalence (and the anywhere-originating invariant
  // check) need the exotic async leg; everything else probes cheaper
  // without it. The dedicated async_pass later simplifies the spec for
  // the checks that keep it.
  if (check != OracleCheck::kAsyncEquivalence &&
      check != OracleCheck::kEngineInvariant) {
    probe.async = AsyncSpec{};
  }
  // Likewise the batched-campaign leg: only its own check (and the
  // anywhere-originating invariant check) keeps it; batch_pass later
  // narrows the width for the checks that do.
  if (check != OracleCheck::kBatchEquivalence &&
      check != OracleCheck::kEngineInvariant) {
    probe.batch_width = 0;
  }
  return probe;
}

/// Rebuilds the tree keeping exactly the nodes with keep[v] != 0. The
/// kept set must contain the root and be closed under parents. Ids are
/// compacted preserving relative order.
Tree restrict_tree(const Tree& tree, const std::vector<char>& keep) {
  const auto n = static_cast<std::size_t>(tree.num_nodes());
  std::vector<NodeId> new_id(n, kInvalidNode);
  NodeId next = 0;
  // Parents must be numbered before children for the order-preserving
  // compaction to produce valid parent references; iterating ids in
  // increasing order is not enough (parents[v] < v is not guaranteed),
  // so number along a BFS from the root.
  std::vector<NodeId> queue;
  queue.push_back(tree.root());
  new_id[static_cast<std::size_t>(tree.root())] = next++;
  std::vector<NodeId> parents;
  parents.push_back(kInvalidNode);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    for (const NodeId c : tree.children(u)) {
      if (!keep[static_cast<std::size_t>(c)]) continue;
      new_id[static_cast<std::size_t>(c)] = next++;
      parents.push_back(new_id[static_cast<std::size_t>(u)]);
      queue.push_back(c);
    }
  }
  return Tree::from_parents(std::move(parents));
}

/// Drops the whole subtree rooted at v.
Tree drop_subtree(const Tree& tree, NodeId v) {
  std::vector<char> keep(static_cast<std::size_t>(tree.num_nodes()), 1);
  std::vector<NodeId> stack{v};
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    keep[static_cast<std::size_t>(u)] = 0;
    for (const NodeId c : tree.children(u)) stack.push_back(c);
  }
  return restrict_tree(tree, keep);
}

/// Reattaches v (with its subtree) to its grandparent.
Tree hoist_node(const Tree& tree, NodeId v) {
  const NodeId grandparent = tree.parent(tree.parent(v));
  std::vector<NodeId> parents(static_cast<std::size_t>(tree.num_nodes()));
  parents[0] = kInvalidNode;
  for (NodeId u = 1; u < tree.num_nodes(); ++u) {
    parents[static_cast<std::size_t>(u)] = tree.parent(u);
  }
  parents[static_cast<std::size_t>(v)] = grandparent;
  return Tree::from_parents(std::move(parents));
}

class Shrinker {
 public:
  Shrinker(const Tree& tree, const OracleConfig& config, OracleCheck check,
           const ShrinkOptions& options)
      : result_{tree, probe_config(config, check), check, 0, 0},
        options_(options) {}

  ShrinkResult run() {
    BFDN_REQUIRE(still_fails(result_.tree, result_.config),
                 "shrink: instance does not fail the given check");
    bool progress = true;
    while (progress && result_.probes < options_.max_probes) {
      progress = false;
      progress |= subtree_pass();
      progress |= leaf_pass();
      progress |= hoist_pass();
      progress |= robot_pass();
      progress |= async_pass();
      progress |= batch_pass();
    }
    return std::move(result_);
  }

 private:
  bool still_fails(const Tree& tree, const OracleConfig& config) {
    ++result_.probes;
    return run_oracle(tree, config).failed(result_.check);
  }

  bool accept(Tree candidate) {
    if (result_.probes >= options_.max_probes) return false;
    if (!still_fails(candidate, result_.config)) return false;
    result_.tree = std::move(candidate);
    ++result_.accepted_reductions;
    return true;
  }

  /// Tries dropping whole subtrees, largest first.
  bool subtree_pass() {
    bool progress = false;
    bool reduced = true;
    while (reduced && result_.probes < options_.max_probes) {
      reduced = false;
      const Tree& tree = result_.tree;
      std::vector<NodeId> order;
      for (NodeId v = 1; v < tree.num_nodes(); ++v) order.push_back(v);
      std::sort(order.begin(), order.end(), [&tree](NodeId a, NodeId b) {
        if (tree.subtree_size(a) != tree.subtree_size(b)) {
          return tree.subtree_size(a) > tree.subtree_size(b);
        }
        return a < b;
      });
      for (const NodeId v : order) {
        if (result_.probes >= options_.max_probes) break;
        if (accept(drop_subtree(result_.tree, v))) {
          reduced = true;
          break;  // node ids changed; rebuild the candidate order
        }
      }
      progress |= reduced;
    }
    return progress;
  }

  /// ddmin over the current leaves: batches of half the leaves, then
  /// quarters, ... down to single leaves.
  bool leaf_pass() {
    bool progress = false;
    bool reduced = true;
    while (reduced && result_.probes < options_.max_probes) {
      reduced = false;
      const Tree& tree = result_.tree;
      std::vector<NodeId> leaves;
      for (NodeId v = 1; v < tree.num_nodes(); ++v) {
        if (tree.num_children(v) == 0) leaves.push_back(v);
      }
      if (leaves.empty()) break;
      for (std::size_t batch = leaves.size(); batch >= 1; batch /= 2) {
        bool hit = false;
        for (std::size_t start = 0;
             start < leaves.size() && result_.probes < options_.max_probes;
             start += batch) {
          std::vector<char> keep(
              static_cast<std::size_t>(tree.num_nodes()), 1);
          const std::size_t end = std::min(start + batch, leaves.size());
          if (end - start == leaves.size() &&
              tree.num_nodes() - static_cast<std::int64_t>(leaves.size()) <
                  1) {
            continue;  // never delete every node
          }
          for (std::size_t i = start; i < end; ++i) {
            keep[static_cast<std::size_t>(leaves[i])] = 0;
          }
          if (accept(restrict_tree(tree, keep))) {
            hit = true;
            break;  // leaves list is stale now
          }
        }
        if (hit) {
          reduced = true;
          break;
        }
        if (batch == 1) break;
      }
      progress |= reduced;
    }
    return progress;
  }

  /// Tries flattening: move depth>=2 nodes up to their grandparent.
  bool hoist_pass() {
    bool progress = false;
    bool reduced = true;
    while (reduced && result_.probes < options_.max_probes) {
      reduced = false;
      const Tree& tree = result_.tree;
      for (NodeId v = 1;
           v < tree.num_nodes() && result_.probes < options_.max_probes;
           ++v) {
        if (tree.depth(v) < 2) continue;
        if (accept(hoist_node(result_.tree, v))) {
          reduced = true;
          break;
        }
      }
      progress |= reduced;
    }
    return progress;
  }

  /// Halves k while the failure persists, then tries single decrements.
  bool robot_pass() {
    bool progress = false;
    while (result_.config.k > 1 && result_.probes < options_.max_probes) {
      OracleConfig candidate = result_.config;
      candidate.k = result_.config.k / 2;
      if (still_fails(result_.tree, candidate)) {
        result_.config = candidate;
        ++result_.accepted_reductions;
        progress = true;
        continue;
      }
      candidate.k = result_.config.k - 1;
      if (candidate.k >= 1 && candidate.k != result_.config.k / 2 &&
          still_fails(result_.tree, candidate)) {
        result_.config = candidate;
        ++result_.accepted_reductions;
        progress = true;
        continue;
      }
      break;
    }
    return progress;
  }

  /// Simplifies the async scheduler spec while the failure persists:
  /// drop it entirely, else reduce an exotic kind to round-robin (the
  /// sync-equivalent schedule), else floor the exotic parameters.
  bool async_pass() {
    if (result_.config.async.kind == AsyncKind::kNone) return false;
    bool progress = false;
    const auto try_spec = [this, &progress](const AsyncSpec& spec) {
      if (result_.probes >= options_.max_probes) return;
      OracleConfig candidate = result_.config;
      candidate.async = spec;
      if (still_fails(result_.tree, candidate)) {
        result_.config = candidate;
        ++result_.accepted_reductions;
        progress = true;
      }
    };
    try_spec(AsyncSpec{});
    if (result_.config.async.kind != AsyncKind::kNone &&
        result_.config.async.kind != AsyncKind::kRoundRobin) {
      AsyncSpec round_robin;
      round_robin.kind = AsyncKind::kRoundRobin;
      try_spec(round_robin);
    }
    const AsyncSpec& current = result_.config.async;
    if (current.kind == AsyncKind::kFixedRate ||
        current.kind == AsyncKind::kLaggard ||
        current.kind == AsyncKind::kRandom) {
      AsyncSpec floored = current;
      floored.num_slow = 1;
      floored.period = 2;
      floored.max_delay = 1;
      if (floored.num_slow != current.num_slow ||
          floored.period != current.period ||
          floored.max_delay != current.max_delay) {
        try_spec(floored);
      }
    }
    return progress;
  }

  /// Narrows the batched-campaign differential toward the smallest
  /// batch that still diverges (halving, then decrements). Width 2 is
  /// the floor: one member below the oracle skips the leg entirely.
  bool batch_pass() {
    bool progress = false;
    while (result_.config.batch_width > 2 &&
           result_.probes < options_.max_probes) {
      OracleConfig candidate = result_.config;
      candidate.batch_width =
          std::max<std::int32_t>(2, result_.config.batch_width / 2);
      if (still_fails(result_.tree, candidate)) {
        result_.config = candidate;
        ++result_.accepted_reductions;
        progress = true;
        continue;
      }
      candidate.batch_width = result_.config.batch_width - 1;
      if (candidate.batch_width >= 2 &&
          candidate.batch_width !=
              std::max<std::int32_t>(2, result_.config.batch_width / 2) &&
          still_fails(result_.tree, candidate)) {
        result_.config = candidate;
        ++result_.accepted_reductions;
        progress = true;
        continue;
      }
      break;
    }
    return progress;
  }

  ShrinkResult result_;
  ShrinkOptions options_;
};

}  // namespace

ShrinkResult shrink(const Tree& tree, const OracleConfig& config,
                    OracleCheck check, const ShrinkOptions& options) {
  return Shrinker(tree, config, check, options).run();
}

}  // namespace bfdn
