#include "verify/spec.h"

#include "baselines/bfs_levels.h"
#include "baselines/cte.h"
#include "recursive/bfdn_ell.h"
#include "support/check.h"
#include "support/strings.h"

namespace bfdn {

std::unique_ptr<FiniteSchedule> ScheduleSpec::make(std::int32_t k) const {
  switch (kind) {
    case ScheduleKind::kNone:
      return nullptr;
    case ScheduleKind::kFull:
      return make_full_schedule(horizon, k);
    case ScheduleKind::kRoundRobin:
      return make_round_robin_schedule(horizon, k);
    case ScheduleKind::kRandom:
      return make_random_schedule(horizon, k, p, seed);
    case ScheduleKind::kBurst:
      return make_burst_schedule(horizon, k, period);
    case ScheduleKind::kRollingOutage:
      return make_rolling_outage_schedule(horizon, k, period);
  }
  BFDN_CHECK(false, "unreachable schedule kind");
  return nullptr;
}

std::string ScheduleSpec::label() const {
  switch (kind) {
    case ScheduleKind::kNone:
      return "none";
    case ScheduleKind::kFull:
      return str_format("full(h=%lld)", static_cast<long long>(horizon));
    case ScheduleKind::kRoundRobin:
      return str_format("round-robin(h=%lld)",
                        static_cast<long long>(horizon));
    case ScheduleKind::kRandom:
      return str_format("random(h=%lld, p=%.3f, seed=%llu)",
                        static_cast<long long>(horizon), p,
                        static_cast<unsigned long long>(seed));
    case ScheduleKind::kBurst:
      return str_format("burst(h=%lld, burst=%lld)",
                        static_cast<long long>(horizon),
                        static_cast<long long>(period));
    case ScheduleKind::kRollingOutage:
      return str_format("rolling(h=%lld, period=%lld)",
                        static_cast<long long>(horizon),
                        static_cast<long long>(period));
  }
  return "?";
}

std::unique_ptr<AsyncScheduler> AsyncSpec::make(std::int32_t k) const {
  switch (kind) {
    case AsyncKind::kNone:
      return nullptr;
    case AsyncKind::kRoundRobin:
      return std::make_unique<RoundRobinScheduler>();
    case AsyncKind::kFixedRate:
      return std::make_unique<FixedRateScheduler>(
          k, period, std::min(num_slow, k));
    case AsyncKind::kLaggard:
      return std::make_unique<LaggardScheduler>(k, period,
                                                std::min(num_slow, k));
    case AsyncKind::kRandom:
      return std::make_unique<RandomScheduler>(seed, max_delay);
  }
  BFDN_CHECK(false, "unreachable async kind");
  return nullptr;
}

std::int64_t AsyncSpec::slowdown() const {
  switch (kind) {
    case AsyncKind::kNone:
    case AsyncKind::kRoundRobin:
      return 1;
    case AsyncKind::kFixedRate:
      return period;
    case AsyncKind::kLaggard:
      // A laggard activated right before its stalled window waits
      // period steps for the window plus its own next turn.
      return 2 * period;
    case AsyncKind::kRandom:
      return max_delay + 1;
  }
  return 1;
}

std::string AsyncSpec::label() const {
  switch (kind) {
    case AsyncKind::kNone:
      return "none";
    case AsyncKind::kRoundRobin:
      return "round-robin";
    case AsyncKind::kFixedRate:
      return str_format("fixed-rate(period=%lld, slow=%d)",
                        static_cast<long long>(period), num_slow);
    case AsyncKind::kLaggard:
      return str_format("laggard(period=%lld, slow=%d)",
                        static_cast<long long>(period), num_slow);
    case AsyncKind::kRandom:
      return str_format("random(seed=%llu, delay=%lld)",
                        static_cast<unsigned long long>(seed),
                        static_cast<long long>(max_delay));
  }
  return "?";
}

std::string AlgoSpec::label() const {
  switch (kind) {
    case AlgoKind::kBfdn: {
      BfdnAlgorithm probe(k, options);
      return str_format("%s/k%d", probe.name().c_str(), k);
    }
    case AlgoKind::kBfdnEll:
      return str_format("bfdn-ell%d/k%d", ell, k);
    case AlgoKind::kBfsLevels:
      return str_format("bfs-levels/k%d", k);
    case AlgoKind::kCte:
      return str_format("cte/k%d", k);
    case AlgoKind::kWriteRead:
      return str_format("writeread/k%d", k);
    case AlgoKind::kGraphBfdn:
      return str_format("graph-bfdn/k%d", k);
  }
  return "?";
}

std::unique_ptr<Algorithm> make_algorithm(const AlgoSpec& spec,
                                          const Tree& tree) {
  BFDN_REQUIRE(spec.engine_based(),
               "make_algorithm: kind has its own driver");
  switch (spec.kind) {
    case AlgoKind::kBfdn:
      return std::make_unique<BfdnAlgorithm>(spec.k, spec.options);
    case AlgoKind::kBfdnEll:
      return std::make_unique<BfdnEllAlgorithm>(spec.k, spec.ell);
    case AlgoKind::kBfsLevels:
      return std::make_unique<BfsLevelsAlgorithm>(spec.k);
    case AlgoKind::kCte:
      return std::make_unique<CteAlgorithm>(tree, spec.k);
    default:
      break;
  }
  BFDN_CHECK(false, "unreachable algo kind");
  return nullptr;
}

}  // namespace bfdn
