#include "verify/spec.h"

#include "baselines/bfs_levels.h"
#include "baselines/cte.h"
#include "recursive/bfdn_ell.h"
#include "support/check.h"
#include "support/strings.h"

namespace bfdn {

std::unique_ptr<FiniteSchedule> ScheduleSpec::make(std::int32_t k) const {
  switch (kind) {
    case ScheduleKind::kNone:
      return nullptr;
    case ScheduleKind::kFull:
      return make_full_schedule(horizon, k);
    case ScheduleKind::kRoundRobin:
      return make_round_robin_schedule(horizon, k);
    case ScheduleKind::kRandom:
      return make_random_schedule(horizon, k, p, seed);
    case ScheduleKind::kBurst:
      return make_burst_schedule(horizon, k, period);
    case ScheduleKind::kRollingOutage:
      return make_rolling_outage_schedule(horizon, k, period);
  }
  BFDN_CHECK(false, "unreachable schedule kind");
  return nullptr;
}

std::string ScheduleSpec::label() const {
  switch (kind) {
    case ScheduleKind::kNone:
      return "none";
    case ScheduleKind::kFull:
      return str_format("full(h=%lld)", static_cast<long long>(horizon));
    case ScheduleKind::kRoundRobin:
      return str_format("round-robin(h=%lld)",
                        static_cast<long long>(horizon));
    case ScheduleKind::kRandom:
      return str_format("random(h=%lld, p=%.3f, seed=%llu)",
                        static_cast<long long>(horizon), p,
                        static_cast<unsigned long long>(seed));
    case ScheduleKind::kBurst:
      return str_format("burst(h=%lld, burst=%lld)",
                        static_cast<long long>(horizon),
                        static_cast<long long>(period));
    case ScheduleKind::kRollingOutage:
      return str_format("rolling(h=%lld, period=%lld)",
                        static_cast<long long>(horizon),
                        static_cast<long long>(period));
  }
  return "?";
}

std::string AlgoSpec::label() const {
  switch (kind) {
    case AlgoKind::kBfdn: {
      BfdnAlgorithm probe(k, options);
      return str_format("%s/k%d", probe.name().c_str(), k);
    }
    case AlgoKind::kBfdnEll:
      return str_format("bfdn-ell%d/k%d", ell, k);
    case AlgoKind::kBfsLevels:
      return str_format("bfs-levels/k%d", k);
    case AlgoKind::kCte:
      return str_format("cte/k%d", k);
    case AlgoKind::kWriteRead:
      return str_format("writeread/k%d", k);
    case AlgoKind::kGraphBfdn:
      return str_format("graph-bfdn/k%d", k);
  }
  return "?";
}

std::unique_ptr<Algorithm> make_algorithm(const AlgoSpec& spec,
                                          const Tree& tree) {
  BFDN_REQUIRE(spec.engine_based(),
               "make_algorithm: kind has its own driver");
  switch (spec.kind) {
    case AlgoKind::kBfdn:
      return std::make_unique<BfdnAlgorithm>(spec.k, spec.options);
    case AlgoKind::kBfdnEll:
      return std::make_unique<BfdnEllAlgorithm>(spec.k, spec.ell);
    case AlgoKind::kBfsLevels:
      return std::make_unique<BfsLevelsAlgorithm>(spec.k);
    case AlgoKind::kCte:
      return std::make_unique<CteAlgorithm>(tree, spec.k);
    default:
      break;
  }
  BFDN_CHECK(false, "unreachable algo kind");
  return nullptr;
}

}  // namespace bfdn
