// Differential oracle: runs the model variants the paper proves
// equivalent-or-bounded on one instance and cross-checks everything the
// theory implies.
//
// Checks, per instance (a tree and a robot count):
//  * BFDN (Algorithm 1, least-loaded) completes, returns every robot to
//    the root, produces exactly 2(n-1) edge events, and stays within the
//    Theorem 1 round bound; the engine's Claim 2/4 invariant checkers
//    are forced on for the whole run.
//  * The per-depth anchor-switch histogram respects Lemma 2's
//    k(min{log k, log Delta} + 3) at every depth (log k branch only
//    under break-downs, Proposition 7).
//  * Incremental-counter BFDN and reference-load BFDN (n_v recomputed
//    from all anchors at every query, BfdnOptions::reference_loads)
//    produce bit-identical executions — every round hash, every
//    reanchor. This is the check that catches counter-maintenance bugs
//    such as the fault_load_leak injection.
//  * The fast-forward engine reproduces the stepped engine exactly:
//    rounds, final-state digest, edge events, idle accounting, per-robot
//    move counts, the reanchor and Lemma-2 switch histograms and the
//    depth-completion timeline (skipped under break-down schedules,
//    where fast-forward disables itself).
//  * Write-read BFDN (Section 4.1) completes within the same Theorem 1
//    bound (Proposition 6) and within its memory allowance.
//  * BFDN_l completes within the Theorem 10 bound.
//  * Graph-BFDN run on the tree-as-graph behaves exactly like tree
//    exploration (Section 4.3 degenerates on trees): no edge is ever
//    closed, the BFS tree is the tree itself, and rounds respect the
//    Proposition 9 bound.
//  * The per-robot-clock engine under the round-robin scheduler
//    reproduces the synchronous execution bit-identically — the same
//    per-round state hashes, final digest, Lemma 2 histograms and every
//    other RunResult field — in both its stepped and plan-batched
//    sub-modes; and for an exotic AsyncSpec (heterogeneous rates,
//    laggards, random gaps) the two sub-modes agree with each other and
//    the run still completes with 2(n-1) edge events and all robots
//    home (skipped under break-down schedules, which are mutually
//    exclusive with async scheduling).
//  * Under a break-down schedule (Section 4.2): if the run ended
//    incomplete, the adversary must not have granted an average allowed
//    distance of 2n/k + D^2(log k + 3) (Proposition 7 contrapositive).
//  * Every member of a batched campaign (sim/batch_executor) reproduces
//    its solo engine run bit-exactly — full RunResult, final-state
//    digest, and (through the stepped-fallback member that carries an
//    observer) the per-round hash sequence — including members that the
//    executor coalesced as seed-blind twins, each of which is compared
//    against its own independently executed solo run (skipped under
//    break-down schedules, whose members the executor rejects).
//
// Any CheckError thrown by an engine invariant is converted into an
// oracle failure rather than propagating.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/tree.h"
#include "verify/spec.h"

namespace bfdn {

enum class OracleCheck : std::uint8_t {
  kBfdnRun = 0,          // completes / all home / 2(n-1) edge events
  kTheorem1Bound = 1,    // rounds <= 2n/k + D^2(min{log k,log D}+3)
  kLemma2PerDepth = 2,   // per-depth anchor switches <= k(...+3)
  kLoadCounters = 3,     // incremental == reference-load execution
  kWriteRead = 4,        // Prop. 6 bound + memory allowance
  kEllTheorem10 = 5,     // BFDN_l within Theorem 10 bound
  kGraphOnTree = 6,      // Section 4.3 degenerates to tree BFDN
  kBreakdown = 7,        // Prop. 7 work accounting under schedules
  kEngineInvariant = 8,  // a BFDN_CHECK fired inside a run
  kFastForward = 9,      // fast-forward == stepped engine, field by field
  kAsyncEquivalence = 10,  // round-robin async == sync, bit by bit
  kBatchEquivalence = 11,  // batched campaign member == its solo run
};

const char* oracle_check_name(OracleCheck check);

struct OracleConfig {
  std::int32_t k = 4;
  /// Break-down schedule applied to the primary BFDN runs (kNone = the
  /// plain Section 2 setting). Bound checks that do not hold under
  /// break-downs are adjusted per Proposition 7.
  ScheduleSpec schedule;
  /// Exotic per-robot-clock schedule to exercise on top of the always-on
  /// round-robin equivalence leg (kNone / kRoundRobin add nothing).
  /// Mutually exclusive with `schedule`; ignored under break-downs.
  AsyncSpec async;
  /// Options for the primary BFDN runs. The bound checks assume the
  /// paper's algorithm (least-loaded, no depth cap, no shortcut) and
  /// are skipped for other policies. Fault-injection knobs ride here.
  BfdnOptions bfdn;
  /// Which secondary models to run (all on by default; the fuzzer may
  /// skip some for speed on large instances).
  bool run_write_read = true;
  bool run_ell = true;
  std::int32_t ell = 1;
  bool run_graph = true;
  std::int64_t max_rounds = 0;
  /// Width of the batched-campaign differential (kBatchEquivalence):
  /// the oracle builds a batch of this many member variants of the
  /// primary run (seed sweep; odd members switch to the seed-consuming
  /// random reanchor policy) and compares every member against its own
  /// solo execution. 0 or 1 skips the check; the fuzzer samples widths
  /// via --batch-p / --batch-width.
  std::int32_t batch_width = 0;
};

struct OracleFailure {
  OracleCheck check = OracleCheck::kBfdnRun;
  std::string detail;
};

struct OracleReport {
  std::vector<OracleFailure> failures;
  std::int64_t bfdn_rounds = 0;
  bool ok() const { return failures.empty(); }
  /// True iff some failure has the given check id.
  bool failed(OracleCheck check) const;
  std::string summary() const;
};

/// Runs every applicable check on (tree, config).
OracleReport run_oracle(const Tree& tree, const OracleConfig& config);

}  // namespace bfdn
