// Serializable instance specifications for the verification harness.
//
// A spec names everything needed to re-run a simulation bit-exactly:
// which algorithm (and its options), how many robots, and — for the
// break-down setting of Section 4.2 — which adversarial schedule. Specs
// are plain data so they can be written into trace files (trace.h) and
// fuzz-artifact recipes and reconstructed offline.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "adversarial/async_scheduler.h"
#include "adversarial/schedules.h"
#include "core/bfdn.h"
#include "graph/tree.h"
#include "sim/engine.h"

namespace bfdn {

/// Which simulation an instance runs. The first four run through the
/// synchronous engine (run_exploration); kWriteRead and kGraphBfdn have
/// their own drivers and are traced through per-round robot positions.
enum class AlgoKind : std::uint8_t {
  kBfdn = 0,
  kBfdnEll = 1,
  kBfsLevels = 2,
  kCte = 3,
  kWriteRead = 4,
  kGraphBfdn = 5,
};

/// Adversarial break-down schedule family (src/adversarial). kNone is
/// the plain complete-communication setting.
enum class ScheduleKind : std::uint8_t {
  kNone = 0,
  kFull = 1,
  kRoundRobin = 2,
  kRandom = 3,
  kBurst = 4,
  kRollingOutage = 5,
};

struct ScheduleSpec {
  ScheduleKind kind = ScheduleKind::kNone;
  std::int64_t horizon = 0;
  double p = 0.5;           // kRandom: per-(t, i) allow probability
  std::uint64_t seed = 1;   // kRandom
  std::int64_t period = 1;  // kBurst: burst length; kRollingOutage: shift

  /// Instantiates the schedule (nullptr for kNone). Deterministic: two
  /// instances from the same spec produce identical allow decisions.
  std::unique_ptr<FiniteSchedule> make(std::int32_t k) const;

  std::string label() const;
};

/// Per-robot-clock scheduler family (src/adversarial/async_scheduler).
/// kNone is the synchronous model; mutually exclusive with a break-down
/// ScheduleSpec — the two adversaries control different things (speeds
/// vs. permitted moves) and the engine rejects the combination.
enum class AsyncKind : std::uint8_t {
  kNone = 0,
  kRoundRobin = 1,
  kFixedRate = 2,
  kLaggard = 3,
  kRandom = 4,
};

struct AsyncSpec {
  AsyncKind kind = AsyncKind::kNone;
  std::uint64_t seed = 1;      // kRandom
  std::int64_t max_delay = 3;  // kRandom: gap in [1, max_delay + 1]
  std::int64_t period = 2;     // kFixedRate: speed ratio; kLaggard: window
  std::int32_t num_slow = 1;   // kFixedRate / kLaggard

  /// Instantiates the scheduler (nullptr for kNone). Deterministic:
  /// activation times are pure functions of the spec.
  std::unique_ptr<AsyncScheduler> make(std::int32_t k) const;

  /// For slow schedulers the default 3Dn round limit no longer covers
  /// a full exploration; this is the factor by which callers should
  /// scale it (worst-case activation gap of the slowest robot).
  std::int64_t slowdown() const;

  std::string label() const;
};

struct AlgoSpec {
  AlgoKind kind = AlgoKind::kBfdn;
  std::int32_t k = 1;
  /// kBfdn: full option block (policy, seed, depth cap, shortcut, and
  /// the verification knobs reference_loads / fault_load_leak).
  BfdnOptions options;
  /// kBfdnEll: recursion depth.
  std::int32_t ell = 1;

  std::string label() const;

  /// True for kinds driven by run_exploration (ExplorationState hashes);
  /// false for the position-traced drivers (kWriteRead, kGraphBfdn).
  bool engine_based() const {
    return kind != AlgoKind::kWriteRead && kind != AlgoKind::kGraphBfdn;
  }
};

/// Instantiates an engine-based algorithm (requires engine_based()).
/// CTE needs the ground-truth tree at construction, hence the argument.
std::unique_ptr<Algorithm> make_algorithm(const AlgoSpec& spec,
                                          const Tree& tree);

}  // namespace bfdn
