#include "verify/trace.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "distributed/writeread.h"
#include "graph/graph.h"
#include "graphexp/graph_bfdn.h"
#include "support/check.h"
#include "support/rng.h"
#include "support/strings.h"

namespace bfdn {
namespace {

constexpr char kMagic[8] = {'B', 'F', 'D', 'N', 'T', 'R', 'C', '2'};

// --- little-endian fixed-width primitives ----------------------------

void put_bytes(std::ostream& out, const void* data, std::size_t size) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(size));
}

void put_u64(std::ostream& out, std::uint64_t v) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  }
  put_bytes(out, bytes, 8);
}

void put_u32(std::ostream& out, std::uint32_t v) {
  unsigned char bytes[4];
  for (int i = 0; i < 4; ++i) {
    bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  }
  put_bytes(out, bytes, 4);
}

void put_u8(std::ostream& out, std::uint8_t v) { put_bytes(out, &v, 1); }

void put_i64(std::ostream& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_i32(std::ostream& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_f64(std::ostream& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void get_bytes(std::istream& in, void* data, std::size_t size) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  BFDN_CHECK(in.good(), "trace file truncated or unreadable");
}

std::uint64_t get_u64(std::istream& in) {
  unsigned char bytes[8];
  get_bytes(in, bytes, 8);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | bytes[i];
  return v;
}

std::uint32_t get_u32(std::istream& in) {
  unsigned char bytes[4];
  get_bytes(in, bytes, 4);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | bytes[i];
  return v;
}

std::uint8_t get_u8(std::istream& in) {
  std::uint8_t v = 0;
  get_bytes(in, &v, 1);
  return v;
}

std::int64_t get_i64(std::istream& in) {
  return static_cast<std::int64_t>(get_u64(in));
}

std::int32_t get_i32(std::istream& in) {
  return static_cast<std::int32_t>(get_u32(in));
}

double get_f64(std::istream& in) {
  const std::uint64_t bits = get_u64(in);
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Digest of a per-round robot-position vector, for the drivers that do
/// not expose an ExplorationState (write-read, graph BFDN).
std::uint64_t positions_hash(const std::vector<NodeId>& positions) {
  std::uint64_t h = 0x42464450u;  // distinct start from state_hash
  for (const NodeId pos : positions) {
    std::uint64_t mixed =
        h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(pos));
    h = splitmix64(mixed);
  }
  return h;
}

/// RoundObserver that appends ExplorationState digests.
class HashingObserver : public RoundObserver {
 public:
  explicit HashingObserver(std::vector<std::uint64_t>& out) : out_(out) {}
  void on_round(std::int64_t /*round*/,
                const ExplorationState& state) override {
    out_.push_back(state.state_hash());
  }

 private:
  std::vector<std::uint64_t>& out_;
};

/// The tree as a port-numbered Graph (edges (parent(v), v)), for the
/// kGraphBfdn driver.
Graph tree_as_graph(const Tree& tree) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(tree.num_edges()));
  for (NodeId v = 1; v < tree.num_nodes(); ++v) {
    edges.emplace_back(tree.parent(v), v);
  }
  return Graph::from_edges(tree.num_nodes(), edges);
}

}  // namespace

TraceData run_traced(const Tree& tree, const AlgoSpec& algo,
                     const ScheduleSpec& schedule,
                     std::int64_t max_rounds, const AsyncSpec& async) {
  BFDN_REQUIRE(async.kind == AsyncKind::kNone ||
                   (algo.engine_based() &&
                    schedule.kind == ScheduleKind::kNone),
               "async specs apply to engine-based runs without break-down "
               "schedules");
  TraceData data;
  data.algo = algo;
  data.schedule = schedule;
  data.async = async;
  data.max_rounds = max_rounds;
  data.parents.reserve(static_cast<std::size_t>(tree.num_nodes()));
  for (NodeId v = 0; v < tree.num_nodes(); ++v) {
    data.parents.push_back(v == tree.root() ? kInvalidNode : tree.parent(v));
  }

  if (algo.engine_based()) {
    const std::unique_ptr<Algorithm> algorithm = make_algorithm(algo, tree);
    const std::unique_ptr<FiniteSchedule> sched = schedule.make(algo.k);
    const std::unique_ptr<AsyncScheduler> async_sched = async.make(algo.k);
    HashingObserver observer(data.round_hashes);
    RunConfig config;
    config.num_robots = algo.k;
    config.max_rounds = max_rounds;
    if (max_rounds == 0 && async.slowdown() > 1) {
      // Slow schedulers stretch the makespan beyond the engine's
      // default limit; scale it deterministically so replay agrees.
      config.max_rounds = default_round_limit(tree) * async.slowdown();
    }
    config.schedule = sched.get();
    config.async = async_sched.get();
    config.observer = &observer;
    const RunResult result = run_exploration(tree, *algorithm, config);
    data.rounds = result.rounds;
    data.edge_events = result.edge_events;
    data.total_reanchors = result.total_reanchors;
    data.complete = result.complete;
    data.all_at_root = result.all_at_root;
    return data;
  }

  BFDN_REQUIRE(schedule.kind == ScheduleKind::kNone,
               "break-down schedules only apply to engine-based runs");
  std::vector<std::vector<NodeId>> positions;
  if (algo.kind == AlgoKind::kWriteRead) {
    const WriteReadResult result =
        run_write_read_bfdn(tree, algo.k, max_rounds, &positions);
    data.rounds = result.rounds;
    data.edge_events = result.max_robot_memory_bits;
    data.total_reanchors = result.total_reanchors;
    data.complete = result.complete;
    data.all_at_root = result.all_at_root;
  } else {
    const Graph graph = tree_as_graph(tree);
    const GraphExplorationResult result =
        run_graph_bfdn(graph, algo.k, max_rounds, &positions);
    data.rounds = result.rounds;
    data.edge_events = result.backtrack_moves;
    data.total_reanchors = result.total_reanchors;
    data.complete = result.complete;
    data.all_at_root = result.all_at_origin;
  }
  data.round_hashes.reserve(positions.size());
  for (const auto& round_positions : positions) {
    data.round_hashes.push_back(positions_hash(round_positions));
  }
  return data;
}

void write_trace(const TraceData& data, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  BFDN_REQUIRE(out.good(), "cannot open trace file for writing: " + path);

  put_bytes(out, kMagic, sizeof(kMagic));
  put_u32(out, kTraceFormatVersion);

  // Algorithm spec.
  put_u8(out, static_cast<std::uint8_t>(data.algo.kind));
  put_i32(out, data.algo.k);
  put_u8(out, static_cast<std::uint8_t>(data.algo.options.policy));
  put_u64(out, data.algo.options.seed);
  put_i32(out, data.algo.options.depth_cap);
  put_u8(out, data.algo.options.shortcut_reanchor ? 1 : 0);
  put_u8(out, data.algo.options.reference_loads ? 1 : 0);
  put_u8(out, data.algo.options.fault_load_leak ? 1 : 0);
  put_i32(out, data.algo.ell);

  // Schedule spec.
  put_u8(out, static_cast<std::uint8_t>(data.schedule.kind));
  put_i64(out, data.schedule.horizon);
  put_f64(out, data.schedule.p);
  put_u64(out, data.schedule.seed);
  put_i64(out, data.schedule.period);

  // Async (per-robot-clock) spec — new in version 2.
  put_u8(out, static_cast<std::uint8_t>(data.async.kind));
  put_u64(out, data.async.seed);
  put_i64(out, data.async.max_delay);
  put_i64(out, data.async.period);
  put_i32(out, data.async.num_slow);

  // Run config.
  put_i64(out, data.max_rounds);
  put_u8(out, data.check_invariants ? 1 : 0);

  // Ground-truth tree.
  put_i64(out, static_cast<std::int64_t>(data.parents.size()));
  for (const NodeId parent : data.parents) put_i32(out, parent);

  // Per-round state digests.
  put_i64(out, static_cast<std::int64_t>(data.round_hashes.size()));
  for (const std::uint64_t h : data.round_hashes) put_u64(out, h);

  // Summary footer.
  put_i64(out, data.rounds);
  put_i64(out, data.edge_events);
  put_i64(out, data.total_reanchors);
  put_u8(out, data.complete ? 1 : 0);
  put_u8(out, data.all_at_root ? 1 : 0);

  out.flush();
  BFDN_CHECK(out.good(), "trace write failed: " + path);
}

TraceData read_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  BFDN_REQUIRE(in.good(), "cannot open trace file: " + path);

  char magic[8];
  get_bytes(in, magic, sizeof(magic));
  BFDN_CHECK(std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
             "not a BFDN trace file: " + path);
  const std::uint32_t version = get_u32(in);
  BFDN_CHECK(version == kTraceFormatVersion,
             str_format("unsupported trace version %u", version));

  TraceData data;
  const std::uint8_t kind = get_u8(in);
  BFDN_CHECK(kind <= static_cast<std::uint8_t>(AlgoKind::kGraphBfdn),
             "trace names an unknown algorithm kind");
  data.algo.kind = static_cast<AlgoKind>(kind);
  data.algo.k = get_i32(in);
  BFDN_CHECK(data.algo.k >= 1, "trace has a non-positive robot count");
  const std::uint8_t policy = get_u8(in);
  BFDN_CHECK(policy <= static_cast<std::uint8_t>(ReanchorPolicy::kMostLoaded),
             "trace names an unknown reanchor policy");
  data.algo.options.policy = static_cast<ReanchorPolicy>(policy);
  data.algo.options.seed = get_u64(in);
  data.algo.options.depth_cap = get_i32(in);
  data.algo.options.shortcut_reanchor = get_u8(in) != 0;
  data.algo.options.reference_loads = get_u8(in) != 0;
  data.algo.options.fault_load_leak = get_u8(in) != 0;
  data.algo.ell = get_i32(in);
  BFDN_CHECK(data.algo.ell >= 1, "trace has a non-positive ell");

  const std::uint8_t sched = get_u8(in);
  BFDN_CHECK(
      sched <= static_cast<std::uint8_t>(ScheduleKind::kRollingOutage),
      "trace names an unknown schedule kind");
  data.schedule.kind = static_cast<ScheduleKind>(sched);
  data.schedule.horizon = get_i64(in);
  data.schedule.p = get_f64(in);
  data.schedule.seed = get_u64(in);
  data.schedule.period = get_i64(in);

  const std::uint8_t async_kind = get_u8(in);
  BFDN_CHECK(async_kind <= static_cast<std::uint8_t>(AsyncKind::kRandom),
             "trace names an unknown async scheduler kind");
  data.async.kind = static_cast<AsyncKind>(async_kind);
  data.async.seed = get_u64(in);
  data.async.max_delay = get_i64(in);
  data.async.period = get_i64(in);
  data.async.num_slow = get_i32(in);
  BFDN_CHECK(data.async.max_delay >= 0 && data.async.period >= 1 &&
                 data.async.num_slow >= 0,
             "trace has an implausible async spec");

  data.max_rounds = get_i64(in);
  data.check_invariants = get_u8(in) != 0;

  const std::int64_t n = get_i64(in);
  BFDN_CHECK(n >= 1 && n <= (std::int64_t{1} << 31),
             "trace has an implausible node count");
  data.parents.reserve(static_cast<std::size_t>(n));
  for (std::int64_t v = 0; v < n; ++v) data.parents.push_back(get_i32(in));

  const std::int64_t num_hashes = get_i64(in);
  BFDN_CHECK(num_hashes >= 0 && num_hashes <= (std::int64_t{1} << 40),
             "trace has an implausible round count");
  data.round_hashes.reserve(static_cast<std::size_t>(num_hashes));
  for (std::int64_t r = 0; r < num_hashes; ++r) {
    data.round_hashes.push_back(get_u64(in));
  }

  data.rounds = get_i64(in);
  data.edge_events = get_i64(in);
  data.total_reanchors = get_i64(in);
  data.complete = get_u8(in) != 0;
  data.all_at_root = get_u8(in) != 0;
  return data;
}

TraceData record_trace(const Tree& tree, const AlgoSpec& algo,
                       const std::string& path,
                       const ScheduleSpec& schedule,
                       std::int64_t max_rounds, const AsyncSpec& async) {
  TraceData data = run_traced(tree, algo, schedule, max_rounds, async);
  write_trace(data, path);
  return data;
}

ReplayReport replay_trace(const TraceData& recorded) {
  ReplayReport report;
  report.recorded = recorded;
  const Tree tree = recorded.rebuild_tree();
  report.replayed = run_traced(tree, recorded.algo, recorded.schedule,
                               recorded.max_rounds, recorded.async);

  const auto& want = recorded.round_hashes;
  const auto& got = report.replayed.round_hashes;
  const std::size_t common = std::min(want.size(), got.size());
  for (std::size_t r = 0; r < common; ++r) {
    if (want[r] != got[r]) {
      report.first_divergence = static_cast<std::int64_t>(r) + 1;
      report.detail = str_format(
          "state hash diverges at round %lld: recorded %016llx, replayed "
          "%016llx",
          static_cast<long long>(report.first_divergence),
          static_cast<unsigned long long>(want[r]),
          static_cast<unsigned long long>(got[r]));
      return report;
    }
  }
  if (want.size() != got.size()) {
    report.first_divergence = static_cast<std::int64_t>(common) + 1;
    report.detail = str_format(
        "round count diverges: recorded %zu rounds, replayed %zu",
        want.size(), got.size());
    return report;
  }
  if (recorded.rounds != report.replayed.rounds ||
      recorded.edge_events != report.replayed.edge_events ||
      recorded.total_reanchors != report.replayed.total_reanchors ||
      recorded.complete != report.replayed.complete ||
      recorded.all_at_root != report.replayed.all_at_root) {
    report.first_divergence = recorded.rounds;
    report.detail = "summary footer diverges despite identical hashes";
    return report;
  }
  report.ok = true;
  return report;
}

ReplayReport replay_trace(const std::string& path) {
  return replay_trace(read_trace(path));
}

}  // namespace bfdn
