#include "verify/fuzz.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>

#include "graph/generators.h"
#include "graph/tree_io.h"
#include "support/check.h"
#include "support/strings.h"
#include "support/thread_pool.h"
#include "verify/trace.h"

namespace bfdn {
namespace {

/// Per-case generator, independent of every other case so a failing
/// case index reproduces without replaying its predecessors.
Rng case_rng(std::uint64_t seed, std::int32_t case_index) {
  std::uint64_t state =
      seed + 0x9E3779B97F4A7C15ULL *
                 (static_cast<std::uint64_t>(case_index) + 1);
  return Rng(splitmix64(state));
}

struct SampledTree {
  Tree tree;
  std::string recipe;
};

SampledTree sample_tree(Rng& rng, std::int64_t max_nodes) {
  const std::int64_t n = rng.next_int(2, std::max<std::int64_t>(2, max_nodes));
  switch (rng.next_below(15)) {
    case 0:
      return {make_path(n), str_format("path(n=%lld)",
                                       static_cast<long long>(n))};
    case 1:
      return {make_star(n), str_format("star(n=%lld)",
                                       static_cast<long long>(n))};
    case 2: {
      const auto b = static_cast<std::int32_t>(rng.next_int(2, 5));
      // Largest depth whose complete b-ary tree still fits in n nodes.
      std::int32_t depth = 1;
      std::int64_t size = 1 + b;
      while (size + (size - 1) * (b - 1) + b <= n && depth < 20) {
        size += (size * (b - 1) + 1);
        ++depth;
      }
      return {make_complete_bary(b, depth),
              str_format("bary(b=%d,depth=%d)", b, depth)};
    }
    case 3: {
      const auto legs = static_cast<std::int32_t>(rng.next_int(
          2, std::max<std::int64_t>(2, std::min<std::int64_t>(12, n - 1))));
      const auto len = static_cast<std::int32_t>(
          std::max<std::int64_t>(1, (n - 1) / legs));
      return {make_spider(legs, len),
              str_format("spider(legs=%d,len=%d)", legs, len)};
    }
    case 4: {
      const auto legs = static_cast<std::int32_t>(rng.next_int(1, 4));
      const auto spine = static_cast<std::int32_t>(
          std::max<std::int64_t>(1, n / (1 + legs)));
      return {make_caterpillar(spine, legs),
              str_format("caterpillar(spine=%d,legs=%d)", spine, legs)};
    }
    case 5: {
      const auto tooth = static_cast<std::int32_t>(rng.next_int(1, 5));
      const auto spine = static_cast<std::int32_t>(
          std::max<std::int64_t>(1, n / (1 + tooth)));
      return {make_comb(spine, tooth),
              str_format("comb(spine=%d,tooth=%d)", spine, tooth)};
    }
    case 6: {
      const auto handle =
          static_cast<std::int32_t>(rng.next_int(1, n - 1));
      const auto bristles = static_cast<std::int32_t>(n - handle);
      return {make_broom(handle, bristles),
              str_format("broom(handle=%d,bristles=%d)", handle, bristles)};
    }
    case 7:
      return {make_random_recursive(n, rng),
              str_format("random-recursive(n=%lld)",
                         static_cast<long long>(n))};
    case 8: {
      const auto maxc = static_cast<std::int32_t>(rng.next_int(2, 4));
      return {make_random_bounded_degree(n, maxc, rng),
              str_format("bounded-degree(n=%lld,maxc=%d)",
                         static_cast<long long>(n), maxc)};
    }
    case 9: {
      const auto depth =
          static_cast<std::int32_t>(rng.next_int(1, n - 1));
      return {make_tree_with_depth(n, depth, rng),
              str_format("with-depth(n=%lld,depth=%d)",
                         static_cast<long long>(n), depth)};
    }
    case 10: {
      const auto kg = static_cast<std::int32_t>(rng.next_int(2, 8));
      const auto phases = static_cast<std::int32_t>(rng.next_int(1, 3));
      return {make_cte_hard_tree(kg, phases, rng),
              str_format("cte-hard(k=%d,phases=%d)", kg, phases)};
    }
    case 11: {
      const auto maxc = static_cast<std::int32_t>(rng.next_int(2, 5));
      return {make_random_leafy(n, maxc, rng),
              str_format("leafy(n=%lld,maxc=%d)",
                         static_cast<long long>(n), maxc)};
    }
    case 12: {
      const auto internal = static_cast<std::int32_t>(
          std::max<std::int64_t>(1, (n - 1) / 2));
      return {make_remy_binary(internal, rng),
              str_format("remy(internal=%d)", internal)};
    }
    case 13: {
      const auto handle = static_cast<std::int32_t>(
          std::max<std::int64_t>(1, n / 2));
      const auto top = static_cast<std::int32_t>(
          std::max<std::int64_t>(1, (n - handle) / 2));
      const auto bottom = static_cast<std::int32_t>(
          std::max<std::int64_t>(1, n - handle - top));
      return {make_double_broom(top, handle, bottom),
              str_format("double-broom(top=%d,handle=%d,bottom=%d)", top,
                         handle, bottom)};
    }
    default: {
      const auto depth = static_cast<std::int32_t>(rng.next_int(2, 14));
      return {make_lopsided(depth), str_format("lopsided(depth=%d)", depth)};
    }
  }
}

ScheduleSpec sample_schedule(Rng& rng, const Tree& tree, std::int32_t k) {
  ScheduleSpec spec;
  const std::int64_t n = tree.num_nodes();
  // Horizon around the Theorem 1 scale: sometimes starving (incomplete
  // runs exercise the Proposition 7 contrapositive), sometimes ample.
  spec.horizon = rng.next_int(n, 8 * n + 64 * tree.depth() + 256);
  switch (rng.next_below(5)) {
    case 0: spec.kind = ScheduleKind::kFull; break;
    case 1: spec.kind = ScheduleKind::kRoundRobin; break;
    case 2:
      spec.kind = ScheduleKind::kRandom;
      spec.p = 0.2 + 0.7 * rng.next_double();
      spec.seed = rng();
      break;
    case 3:
      spec.kind = ScheduleKind::kBurst;
      spec.period = rng.next_int(1, 2 * k + 4);
      break;
    default:
      spec.kind = ScheduleKind::kRollingOutage;
      spec.period = rng.next_int(1, 2 * k + 4);
      break;
  }
  return spec;
}

AsyncSpec sample_async(Rng& rng, std::int32_t k) {
  AsyncSpec spec;
  // Exotic kinds only: round-robin is exercised by every case through
  // the always-on kAsyncEquivalence leg, so sampling it here would be
  // redundant coverage.
  switch (rng.next_below(3)) {
    case 0: spec.kind = AsyncKind::kFixedRate; break;
    case 1: spec.kind = AsyncKind::kLaggard; break;
    default: spec.kind = AsyncKind::kRandom; break;
  }
  spec.seed = rng();
  spec.period = rng.next_int(2, 5);
  spec.max_delay = rng.next_int(1, 4);
  spec.num_slow = static_cast<std::int32_t>(
      rng.next_int(1, std::max<std::int32_t>(1, k)));
  return spec;
}

}  // namespace

Tree build_fuzz_case(const FuzzOptions& options, std::int32_t case_index,
                     std::string* recipe_out, OracleConfig* config_out) {
  Rng rng = case_rng(options.seed, case_index);
  SampledTree sampled = sample_tree(rng, options.max_nodes);

  static constexpr std::int32_t kRobotChoices[] = {1, 2, 3, 4, 6, 8, 12, 16};
  OracleConfig config;
  config.k = kRobotChoices[rng.next_below(8)];
  config.bfdn.fault_load_leak = options.inject_load_leak;
  std::string schedule_label = "none";
  if (rng.next_bool(options.schedule_p)) {
    config.schedule = sample_schedule(rng, sampled.tree, config.k);
    schedule_label = config.schedule.label();
  } else if (rng.next_bool(options.async_p)) {
    // Async and break-down schedules are mutually exclusive, so the
    // async draw only happens on the no-schedule branch. That also
    // keeps the rng draw sequence of schedule-carrying cases identical
    // to the pre-async fuzzer: a given (seed, index) keeps sampling
    // the same tree, k, and schedule as before.
    config.async = sample_async(rng, config.k);
  }
  // The batch draws come last and are always consumed, so turning the
  // knobs on or off never changes which tree, k, schedule or async
  // spec a given (seed, index) samples.
  const bool want_batch = rng.next_bool(options.batch_p);
  const std::int64_t width_draw = rng.next_int(
      2, std::max<std::int64_t>(2, options.batch_width));
  if (want_batch && options.batch_width >= 2 &&
      config.schedule.kind == ScheduleKind::kNone) {
    config.batch_width = static_cast<std::int32_t>(width_draw);
  }

  if (recipe_out != nullptr) {
    *recipe_out = str_format(
        "case=%d seed=%llu family=%s n=%lld D=%d Delta=%d k=%d "
        "schedule=%s async=%s batch=%d fault=%s",
        case_index, static_cast<unsigned long long>(options.seed),
        sampled.recipe.c_str(),
        static_cast<long long>(sampled.tree.num_nodes()),
        sampled.tree.depth(), sampled.tree.max_degree(), config.k,
        schedule_label.c_str(), config.async.label().c_str(),
        config.batch_width, options.inject_load_leak ? "load-leak" : "none");
  }
  if (config_out != nullptr) *config_out = config;
  return std::move(sampled.tree);
}

namespace {

/// A failure observed during evaluation, before shrinking. Shrinking
/// and artifact writing happen after the scan so the parallel path can
/// pick the lowest index deterministically first.
struct RawFailure {
  std::int32_t index = 0;
  std::string recipe;
  OracleCheck check = OracleCheck::kBfdnRun;
  std::string detail;
};

/// Rebuilds a failing case (pure in (seed, index)), shrinks it and
/// writes the artifacts. Shared by the sequential and parallel paths.
FuzzCounterexample finalize_counterexample(const FuzzOptions& options,
                                           const RawFailure& raw) {
  OracleConfig config;
  const Tree tree = build_fuzz_case(options, raw.index, nullptr, &config);
  // Aggregate-initialized because ShrinkResult (holding a Tree) has no
  // default construction.
  FuzzCounterexample cex{raw.index,        raw.recipe,
                         raw.check,        raw.detail,
                         tree.num_nodes(), shrink(tree, config, raw.check),
                         "",               ""};

  if (!options.artifact_dir.empty()) {
    const std::string stem =
        options.artifact_dir + "/case-" + std::to_string(raw.index);
    // Trace of the shrunk instance's primary BFDN run: replayable
    // bit-exact reproduction of the minimized failure.
    AlgoSpec algo;
    algo.kind = AlgoKind::kBfdn;
    algo.k = cex.shrunk.config.k;
    algo.options = cex.shrunk.config.bfdn;
    cex.trace_path = stem + ".trace";
    record_trace(cex.shrunk.tree, algo, cex.trace_path,
                 cex.shrunk.config.schedule, 0, cex.shrunk.config.async);
    cex.recipe_path = stem + ".txt";
    const std::string body = str_format(
        "# bfdn_fuzz counterexample\n# %s\n# check=%s\n# %s\n"
        "# shrunk: n=%lld k=%d (%d reductions, %d probes)\n%s",
        raw.recipe.c_str(), oracle_check_name(cex.check),
        cex.detail.c_str(),
        static_cast<long long>(cex.shrunk.tree.num_nodes()),
        cex.shrunk.config.k, cex.shrunk.accepted_reductions,
        cex.shrunk.probes, tree_to_text(cex.shrunk.tree).c_str());
    std::ofstream out(cex.recipe_path);
    BFDN_REQUIRE(out.good(), "cannot open fuzz recipe file");
    out << body;
  }
  return cex;
}

}  // namespace

FuzzReport run_fuzz(const FuzzOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed_s = [&start] {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  FuzzReport report;
  if (!options.artifact_dir.empty()) {
    std::filesystem::create_directories(options.artifact_dir);
  }

  std::vector<RawFailure> raw_failures;

  if (options.jobs <= 1) {
    for (std::int32_t index = 0;; ++index) {
      if (options.max_cases > 0 && index >= options.max_cases) break;
      if (index > 0 && elapsed_s() >= options.budget_s) break;

      std::string recipe;
      OracleConfig config;
      const Tree tree = build_fuzz_case(options, index, &recipe, &config);
      const OracleReport oracle = run_oracle(tree, config);
      ++report.cases_run;
      if (options.verbose) {
        std::fprintf(stderr, "[fuzz] %s rounds=%lld %s\n", recipe.c_str(),
                     static_cast<long long>(oracle.bfdn_rounds),
                     oracle.ok() ? "ok" : oracle.summary().c_str());
      }
      if (oracle.ok()) continue;
      raw_failures.push_back({index, std::move(recipe),
                              oracle.failures.front().check,
                              oracle.summary()});
      if (options.stop_on_failure) break;
    }
  } else {
    // Parallel scan. Workers claim ascending indices under the lock and
    // evaluate them outside it. Under stop_on_failure no index above
    // the current minimum failing index is claimed once one is known,
    // but already-claimed lower indices always finish — so the minimum
    // over raw_failures equals the index the sequential scan stops at.
    ThreadPool pool(options.jobs);
    Mutex mutex;
    std::int32_t next_index = 0;
    std::int32_t lowest_failure = std::numeric_limits<std::int32_t>::max();
    const auto worker = [&] {
      for (;;) {
        std::int32_t index;
        {
          MutexLock lock(mutex);
          if (options.max_cases > 0 && next_index >= options.max_cases) {
            return;
          }
          if (next_index > 0 && elapsed_s() >= options.budget_s) return;
          if (options.stop_on_failure && next_index > lowest_failure) {
            return;
          }
          index = next_index++;
        }
        std::string recipe;
        OracleConfig config;
        const Tree tree = build_fuzz_case(options, index, &recipe, &config);
        const OracleReport oracle = run_oracle(tree, config);
        {
          MutexLock lock(mutex);
          ++report.cases_run;
          if (options.verbose) {
            std::fprintf(stderr, "[fuzz] %s rounds=%lld %s\n",
                         recipe.c_str(),
                         static_cast<long long>(oracle.bfdn_rounds),
                         oracle.ok() ? "ok" : oracle.summary().c_str());
          }
          if (!oracle.ok()) {
            lowest_failure = std::min(lowest_failure, index);
            raw_failures.push_back({index, std::move(recipe),
                                    oracle.failures.front().check,
                                    oracle.summary()});
          }
        }
      }
    };
    for (std::int32_t j = 0; j < options.jobs; ++j) pool.submit(worker);
    pool.wait_idle();
    std::sort(raw_failures.begin(), raw_failures.end(),
              [](const RawFailure& a, const RawFailure& b) {
                return a.index < b.index;
              });
    if (options.stop_on_failure && raw_failures.size() > 1) {
      raw_failures.resize(1);
    }
  }

  for (const RawFailure& raw : raw_failures) {
    report.counterexamples.push_back(finalize_counterexample(options, raw));
  }
  return report;
}

}  // namespace bfdn
