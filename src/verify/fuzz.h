// Seed-driven differential fuzzer.
//
// Samples instances — a tree family with its parameters (n, D, Delta),
// a robot count k, and optionally a break-down schedule — from a single
// 64-bit seed, runs the differential oracle (oracle.h) on each, and
// shrinks any failure (shrink.h) to a minimal counterexample. When an
// artifact directory is configured, each counterexample is persisted as
// a replayable trace file plus a textual recipe (the sampled family and
// parameters, and the shrunk tree in tree_io format).
//
// The wall-clock budget only bounds *how many* cases run; the case
// sequence itself is a pure function of the seed, so any failure found
// on one machine is reproducible on another by case index.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/tree.h"
#include "verify/oracle.h"
#include "verify/shrink.h"

namespace bfdn {

struct FuzzOptions {
  std::uint64_t seed = 1;
  /// Wall-clock budget in seconds; at least one case always runs.
  double budget_s = 10.0;
  /// Hard cap on cases (0 = unlimited within the budget).
  std::int32_t max_cases = 0;
  /// Upper bound on sampled tree sizes.
  std::int64_t max_nodes = 400;
  /// Sampling probability of attaching a break-down schedule to a case.
  double schedule_p = 0.3;
  /// Sampling probability of attaching an async (per-robot-clock)
  /// scheduler to a case that drew no break-down schedule (the two are
  /// mutually exclusive). Every async case runs the
  /// kAsyncEquivalence exotic leg on top of the always-on round-robin
  /// one.
  double async_p = 0.3;
  /// Sampling probability of attaching a batched-campaign differential
  /// (OracleCheck::kBatchEquivalence) to a case: the oracle then runs a
  /// BatchExecutor of width uniform in [2, batch_width] and compares
  /// every member to its own solo run. Break-down cases skip the leg
  /// (the executor rejects schedule members) but still consume the
  /// sampling draws, so every other parameter of a (seed, index) case
  /// is unchanged by these knobs.
  double batch_p = 0.25;
  /// Largest sampled batch width (< 2 disables the leg entirely).
  std::int32_t batch_width = 4;
  /// Inject the fault_load_leak counter bug into every case (harness
  /// self-test: the oracle must then find counterexamples).
  bool inject_load_leak = false;
  /// Where to write counterexample artifacts ("" = keep in memory only).
  std::string artifact_dir;
  /// Stop at the first counterexample instead of fuzzing on.
  bool stop_on_failure = true;
  bool verbose = false;
  /// Worker threads evaluating cases (<= 1 = single-threaded; 0 is
  /// treated as 1). Cases are pure functions of (seed, index), so the
  /// parallel run finds and shrinks the same lowest-index failure as
  /// the single-threaded one: indices are claimed in ascending order,
  /// every index below a failure is still evaluated, and only then is
  /// the minimum shrunk. cases_run may exceed the single-threaded count
  /// under stop_on_failure (in-flight higher indices still finish).
  std::int32_t jobs = 1;
};

struct FuzzCounterexample {
  std::int32_t case_index = 0;
  std::string recipe;   ///< sampled family/parameters, human-readable
  OracleCheck check = OracleCheck::kBfdnRun;
  std::string detail;   ///< oracle failure summary on the original
  std::int64_t original_nodes = 0;
  ShrinkResult shrunk;  ///< minimized instance (tree + config)
  std::string trace_path;   ///< written artifact paths ("" if not
  std::string recipe_path;  ///< persisted)
};

struct FuzzReport {
  std::int32_t cases_run = 0;
  std::vector<FuzzCounterexample> counterexamples;
  bool ok() const { return counterexamples.empty(); }
};

/// Runs the fuzzer; deterministic in options.seed up to how many cases
/// the budget admits.
FuzzReport run_fuzz(const FuzzOptions& options);

/// Builds the instance for one (options.seed, case_index) pair without
/// running the oracle — the reproduction entry point for a recipe
/// artifact. `recipe_out`/`config_out` may be null.
Tree build_fuzz_case(const FuzzOptions& options, std::int32_t case_index,
                     std::string* recipe_out, OracleConfig* config_out);

}  // namespace bfdn
