// Versioned binary trace format with engine-level record and replay.
//
// A trace file is a complete, self-contained reproduction artifact: it
// embeds the ground-truth tree (parent array), the full instance spec
// (algorithm, options, robots, break-down schedule) and one 64-bit
// state digest per executed round. Replaying re-runs the simulation
// from the spec and asserts the engine reproduces the identical hash
// sequence — any divergence (a changed SELECT decision, a reordered
// MOVE, a state-representation bug) is reported with the first round at
// which the executions split.
//
// Layout (little-endian, fixed-width; see docs/VERIFY.md):
//   magic "BFDNTRC2" | u32 version | algo spec | schedule spec |
//   async spec | run config | tree (n + parents) | round hashes |
//   summary footer.
// Version 2 added the async (per-robot-clock scheduler) spec; version-1
// files are rejected rather than silently reinterpreted.
//
// Engine-based instances (BFDN, BFDN_l, baselines) hash the observable
// ExplorationState after every round; the write-read and graph drivers
// are hashed through their per-round robot-position traces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/tree.h"
#include "verify/spec.h"

namespace bfdn {

inline constexpr std::uint32_t kTraceFormatVersion = 2;

/// In-memory image of a trace file.
struct TraceData {
  AlgoSpec algo;
  ScheduleSpec schedule;
  /// Per-robot-clock scheduler (kNone = synchronous). Engine-based
  /// kinds only; mutually exclusive with a break-down schedule.
  AsyncSpec async;
  std::int64_t max_rounds = 0;  // 0 = engine default
  bool check_invariants = false;
  std::vector<NodeId> parents;  // ground-truth tree, parent array

  std::vector<std::uint64_t> round_hashes;  // one per executed round

  // Summary footer (engine outcome, for quick inspection and as a
  // second-layer replay check).
  std::int64_t rounds = 0;
  std::int64_t edge_events = 0;
  std::int64_t total_reanchors = 0;
  bool complete = false;
  bool all_at_root = false;

  Tree rebuild_tree() const { return Tree::from_parents(parents); }
};

/// Runs the instance described by (tree, algo, schedule), hashing the
/// state after every round. Does not touch the filesystem.
TraceData run_traced(const Tree& tree, const AlgoSpec& algo,
                     const ScheduleSpec& schedule = {},
                     std::int64_t max_rounds = 0,
                     const AsyncSpec& async = {});

/// Binary serialization; throws CheckError on I/O failure or (for read)
/// malformed input.
void write_trace(const TraceData& data, const std::string& path);
TraceData read_trace(const std::string& path);

/// Record = run + write: executes the instance and persists the trace.
TraceData record_trace(const Tree& tree, const AlgoSpec& algo,
                       const std::string& path,
                       const ScheduleSpec& schedule = {},
                       std::int64_t max_rounds = 0,
                       const AsyncSpec& async = {});

struct ReplayReport {
  bool ok = false;
  /// First round (1-based) whose hash differs, -1 if none. A length
  /// mismatch with an identical common prefix reports the first round
  /// past the shorter run.
  std::int64_t first_divergence = -1;
  std::string detail;
  TraceData recorded;  // as read from the file
  TraceData replayed;  // as re-executed
};

/// Re-runs the instance a trace describes and checks bit-exact
/// agreement of the per-round hash sequence and the summary footer.
ReplayReport replay_trace(const std::string& path);

/// Same, against an already-loaded trace.
ReplayReport replay_trace(const TraceData& recorded);

}  // namespace bfdn
