#include "verify/oracle.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "adversarial/async_scheduler.h"
#include "adversarial/schedules.h"
#include "core/bfdn.h"
#include "distributed/writeread.h"
#include "graph/graph.h"
#include "graphexp/graph_bfdn.h"
#include "recursive/bfdn_ell.h"
#include "sim/batch_executor.h"
#include "support/check.h"
#include "support/strings.h"
#include "verify/trace.h"

namespace bfdn {

const char* oracle_check_name(OracleCheck check) {
  switch (check) {
    case OracleCheck::kBfdnRun: return "bfdn-run";
    case OracleCheck::kTheorem1Bound: return "theorem1-bound";
    case OracleCheck::kLemma2PerDepth: return "lemma2-per-depth";
    case OracleCheck::kLoadCounters: return "load-counters";
    case OracleCheck::kWriteRead: return "write-read";
    case OracleCheck::kEllTheorem10: return "ell-theorem10";
    case OracleCheck::kGraphOnTree: return "graph-on-tree";
    case OracleCheck::kBreakdown: return "breakdown";
    case OracleCheck::kEngineInvariant: return "engine-invariant";
    case OracleCheck::kFastForward: return "fast-forward";
    case OracleCheck::kAsyncEquivalence: return "async-equivalence";
    case OracleCheck::kBatchEquivalence: return "batch-equivalence";
  }
  return "?";
}

bool OracleReport::failed(OracleCheck check) const {
  for (const OracleFailure& failure : failures) {
    if (failure.check == check) return true;
  }
  return false;
}

std::string OracleReport::summary() const {
  if (failures.empty()) return "ok";
  std::string out;
  for (const OracleFailure& failure : failures) {
    if (!out.empty()) out += "; ";
    out += oracle_check_name(failure.check);
    out += ": ";
    out += failure.detail;
  }
  return out;
}

namespace {

/// Collects per-round state hashes (the comparison key of the
/// incremental-vs-reference differential).
class CollectingObserver : public RoundObserver {
 public:
  explicit CollectingObserver(std::vector<std::uint64_t>& out)
      : out_(out) {}
  void on_round(std::int64_t /*round*/,
                const ExplorationState& state) override {
    out_.push_back(state.state_hash());
  }

 private:
  std::vector<std::uint64_t>& out_;
};

struct BfdnRunOutcome {
  RunResult result;
  std::vector<std::uint64_t> hashes;
  double average_allowed = -1;  // schedule runs only
  bool threw = false;
  std::string error;
};

BfdnRunOutcome run_bfdn(const Tree& tree, const OracleConfig& config,
                        bool reference_loads) {
  BfdnRunOutcome outcome;
  BfdnOptions options = config.bfdn;
  options.reference_loads = reference_loads;
  if (reference_loads) {
    // The reference path never reads the incremental counters, so the
    // injected counter faults must not perturb it either.
    options.fault_load_leak = false;
  }
  BfdnAlgorithm algorithm(config.k, options);
  const std::unique_ptr<FiniteSchedule> schedule =
      config.schedule.make(config.k);
  CollectingObserver observer(outcome.hashes);
  RunConfig run_config;
  run_config.num_robots = config.k;
  run_config.max_rounds = config.max_rounds;
  run_config.schedule = schedule.get();
  run_config.check_invariants = true;
  run_config.observer = &observer;
  try {
    outcome.result = run_exploration(tree, algorithm, run_config);
  } catch (const CheckError& error) {
    outcome.threw = true;
    outcome.error = error.what();
  }
  if (schedule != nullptr) {
    outcome.average_allowed = schedule->average_allowed();
  }
  return outcome;
}

/// Observer that records nothing; its presence forces the stepped
/// engine paths (sync loop, async stepped sub-mode) without otherwise
/// perturbing the run.
class NullObserver : public RoundObserver {
 public:
  void on_round(std::int64_t, const ExplorationState&) override {}
};

/// Field-by-field RunResult comparison shared by the fast-forward and
/// async-equivalence differentials: `candidate` (named `candidate_name`
/// in failure details) must reproduce the stepped reference `st`
/// exactly.
void compare_run_results(const RunResult& candidate, const RunResult& st,
                         const char* candidate_name, OracleCheck check,
                         OracleReport& report) {
  const auto fail = [&report, check](std::string detail) {
    report.failures.push_back({check, std::move(detail)});
  };
  const auto mismatch = [&fail, candidate_name](const char* what,
                                                long long a, long long b) {
    fail(str_format("%s: %s %lld != stepped %lld", what, candidate_name, a,
                    b));
  };
  if (candidate.rounds != st.rounds) {
    mismatch("rounds", candidate.rounds, st.rounds);
  } else if (candidate.final_state_hash != st.final_state_hash) {
    fail(str_format("%s: final state hashes diverge at equal round counts",
                    candidate_name));
  }
  if (candidate.complete != st.complete) {
    mismatch("complete", candidate.complete, st.complete);
  }
  if (candidate.all_at_root != st.all_at_root) {
    mismatch("all_at_root", candidate.all_at_root, st.all_at_root);
  }
  if (candidate.hit_round_limit != st.hit_round_limit) {
    mismatch("hit_round_limit", candidate.hit_round_limit,
             st.hit_round_limit);
  }
  if (candidate.edge_events != st.edge_events) {
    mismatch("edge_events", candidate.edge_events, st.edge_events);
  }
  if (candidate.rounds_with_idle != st.rounds_with_idle) {
    mismatch("rounds_with_idle", candidate.rounds_with_idle,
             st.rounds_with_idle);
  }
  if (candidate.idle_robot_rounds != st.idle_robot_rounds) {
    mismatch("idle_robot_rounds", candidate.idle_robot_rounds,
             st.idle_robot_rounds);
  }
  if (candidate.total_activations != st.total_activations) {
    mismatch("total_activations", candidate.total_activations,
             st.total_activations);
  }
  if (candidate.robot_moves != st.robot_moves) {
    fail(str_format("%s: per-robot move counts diverge", candidate_name));
  }
  if (candidate.total_reanchors != st.total_reanchors) {
    mismatch("total_reanchors", candidate.total_reanchors,
             st.total_reanchors);
  }
  if (candidate.total_reanchor_switches != st.total_reanchor_switches) {
    mismatch("total_reanchor_switches", candidate.total_reanchor_switches,
             st.total_reanchor_switches);
  }
  if (candidate.reanchors_by_depth.buckets() !=
      st.reanchors_by_depth.buckets()) {
    fail(str_format("%s: reanchor histograms diverge: {%s} vs {%s}",
                    candidate_name,
                    candidate.reanchors_by_depth.to_string().c_str(),
                    st.reanchors_by_depth.to_string().c_str()));
  }
  if (candidate.reanchor_switches_by_depth.buckets() !=
      st.reanchor_switches_by_depth.buckets()) {
    fail(str_format(
        "%s: Lemma 2 switch histograms diverge: {%s} vs {%s}",
        candidate_name,
        candidate.reanchor_switches_by_depth.to_string().c_str(),
        st.reanchor_switches_by_depth.to_string().c_str()));
  }
  if (candidate.depth_completed_round != st.depth_completed_round) {
    fail(str_format("%s: depth completion timelines diverge",
                    candidate_name));
  }
}

/// The tree as a port-numbered graph for the Section 4.3 driver.
Graph tree_as_graph(const Tree& tree) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(tree.num_edges()));
  for (NodeId v = 1; v < tree.num_nodes(); ++v) {
    edges.emplace_back(tree.parent(v), v);
  }
  return Graph::from_edges(tree.num_nodes(), edges);
}

}  // namespace

OracleReport run_oracle(const Tree& tree, const OracleConfig& config) {
  BFDN_REQUIRE(config.k >= 1, "oracle needs at least one robot");
  OracleReport report;
  const auto fail = [&report](OracleCheck check, std::string detail) {
    report.failures.push_back({check, std::move(detail)});
  };

  const std::int64_t n = tree.num_nodes();
  const std::int32_t depth = tree.depth();
  const std::int32_t delta = tree.max_degree();
  const std::int32_t k = config.k;
  const bool breakdown = config.schedule.kind != ScheduleKind::kNone;
  // The bound checks cover the paper's algorithm only; ablation options
  // (other policies, depth caps, shortcut) void the guarantees.
  const bool paper_bfdn =
      config.bfdn.policy == ReanchorPolicy::kLeastLoaded &&
      config.bfdn.depth_cap < 0 && !config.bfdn.shortcut_reanchor;

  // --- primary BFDN run (invariants forced on) -----------------------
  const BfdnRunOutcome primary = run_bfdn(tree, config, false);
  if (primary.threw) {
    fail(OracleCheck::kEngineInvariant, primary.error);
    return report;  // state after a failed invariant is unusable
  }
  report.bfdn_rounds = primary.result.rounds;

  if (!breakdown) {
    if (!primary.result.complete || !primary.result.all_at_root) {
      fail(OracleCheck::kBfdnRun,
           str_format("complete=%d all_at_root=%d hit_limit=%d",
                      primary.result.complete ? 1 : 0,
                      primary.result.all_at_root ? 1 : 0,
                      primary.result.hit_round_limit ? 1 : 0));
    } else if (primary.result.edge_events != 2 * (n - 1)) {
      fail(OracleCheck::kBfdnRun,
           str_format("edge events %lld != 2(n-1) = %lld",
                      static_cast<long long>(primary.result.edge_events),
                      static_cast<long long>(2 * (n - 1))));
    }
    if (paper_bfdn && primary.result.complete) {
      const double bound = theorem1_bound(n, depth, delta, k);
      if (static_cast<double>(primary.result.rounds) > bound) {
        fail(OracleCheck::kTheorem1Bound,
             str_format("rounds %lld > bound %.2f (n=%lld D=%d Delta=%d "
                        "k=%d)",
                        static_cast<long long>(primary.result.rounds),
                        bound, static_cast<long long>(n), depth, delta, k));
      }
    }
  } else {
    // Section 4.2: exploration may legitimately end incomplete, but
    // only if the adversary withheld the Proposition 7 work budget.
    if (!primary.result.complete && !primary.result.hit_round_limit) {
      const double needed = proposition7_bound(n, depth, k);
      if (primary.average_allowed >= needed) {
        fail(OracleCheck::kBreakdown,
             str_format("incomplete although A(M) = %.2f >= %.2f",
                        primary.average_allowed, needed));
      }
    }
  }

  // --- Lemma 2, per depth, on anchor switches ------------------------
  if (paper_bfdn) {
    // Under break-downs the adversary can pile every robot onto one
    // anchor, so only the log k branch survives (Proposition 7).
    const double per_depth_bound =
        breakdown ? static_cast<double>(k) *
                        (std::log(static_cast<double>(k)) + 3.0)
                  : lemma2_bound(k, delta);
    for (const auto& [bucket_depth, count] :
         primary.result.reanchor_switches_by_depth.buckets()) {
      if (static_cast<double>(count) > per_depth_bound) {
        fail(OracleCheck::kLemma2PerDepth,
             str_format("depth %lld: %llu anchor switches > bound %.2f",
                        static_cast<long long>(bucket_depth),
                        static_cast<unsigned long long>(count),
                        per_depth_bound));
        break;
      }
    }
  }

  // --- incremental vs reference load counters (differential) ---------
  {
    const BfdnRunOutcome reference = run_bfdn(tree, config, true);
    if (reference.threw) {
      fail(OracleCheck::kEngineInvariant, reference.error);
    } else if (primary.hashes != reference.hashes) {
      const std::size_t common =
          std::min(primary.hashes.size(), reference.hashes.size());
      std::size_t r = 0;
      while (r < common && primary.hashes[r] == reference.hashes[r]) ++r;
      fail(OracleCheck::kLoadCounters,
           str_format("incremental and reference-load runs diverge at "
                      "round %zu (%zu vs %zu rounds total)",
                      r + 1, primary.hashes.size(),
                      reference.hashes.size()));
    } else if (primary.result.total_reanchors !=
               reference.result.total_reanchors) {
      fail(OracleCheck::kLoadCounters,
           str_format("reanchor totals diverge: %lld vs %lld",
                      static_cast<long long>(
                          primary.result.total_reanchors),
                      static_cast<long long>(
                          reference.result.total_reanchors)));
    }
  }

  // --- fast-forward vs stepped engine (differential) ------------------
  // The primary run above is stepped (its observer forces the stepped
  // loop); re-running with fast-forward enabled and no hooks must
  // reproduce every field of its RunResult. Skipped under break-down
  // schedules, where fast-forward disables itself and the comparison
  // would be vacuous.
  if (!breakdown) {
    BfdnAlgorithm algorithm(k, config.bfdn);
    RunConfig run_config;
    run_config.num_robots = k;
    run_config.max_rounds = config.max_rounds;
    run_config.fast_forward = true;
    try {
      const RunResult ff = run_exploration(tree, algorithm, run_config);
      compare_run_results(ff, primary.result, "fast-forward",
                          OracleCheck::kFastForward, report);
    } catch (const CheckError& error) {
      fail(OracleCheck::kEngineInvariant, error.what());
    }
  }

  // --- per-robot clocks: async == sync (differential) -----------------
  // The round-robin scheduler is the degenerate point of the async
  // model, and the engine promises it reproduces the synchronous run
  // bit-identically in both sub-modes: the stepped one (observer forces
  // it; compared hash-by-hash against the primary run) and the
  // plan-batched one (no hooks). An exotic AsyncSpec additionally pits
  // the two sub-modes against each other and requires the run to still
  // finish the job. Skipped under break-downs, which are mutually
  // exclusive with async scheduling.
  if (!breakdown) {
    RoundRobinScheduler round_robin;
    {
      BfdnAlgorithm algorithm(k, config.bfdn);
      std::vector<std::uint64_t> hashes;
      CollectingObserver observer(hashes);
      RunConfig run_config;
      run_config.num_robots = k;
      run_config.max_rounds = config.max_rounds;
      run_config.async = &round_robin;
      run_config.check_invariants = true;
      run_config.observer = &observer;
      try {
        const RunResult rr = run_exploration(tree, algorithm, run_config);
        if (hashes != primary.hashes) {
          const std::size_t common =
              std::min(hashes.size(), primary.hashes.size());
          std::size_t r = 0;
          while (r < common && hashes[r] == primary.hashes[r]) ++r;
          fail(OracleCheck::kAsyncEquivalence,
               str_format("round-robin async and sync hash sequences "
                          "diverge at round %zu (%zu vs %zu rounds total)",
                          r + 1, hashes.size(), primary.hashes.size()));
        }
        compare_run_results(rr, primary.result, "round-robin async",
                            OracleCheck::kAsyncEquivalence, report);
      } catch (const CheckError& error) {
        fail(OracleCheck::kEngineInvariant, error.what());
      }
    }
    {
      BfdnAlgorithm algorithm(k, config.bfdn);
      RunConfig run_config;
      run_config.num_robots = k;
      run_config.max_rounds = config.max_rounds;
      run_config.async = &round_robin;
      try {
        const RunResult rr = run_exploration(tree, algorithm, run_config);
        compare_run_results(rr, primary.result, "batched round-robin async",
                            OracleCheck::kAsyncEquivalence, report);
      } catch (const CheckError& error) {
        fail(OracleCheck::kEngineInvariant, error.what());
      }
    }
    if (config.async.kind != AsyncKind::kNone &&
        config.async.kind != AsyncKind::kRoundRobin) {
      const std::unique_ptr<AsyncScheduler> scheduler =
          config.async.make(k);
      // Slow schedulers stretch the makespan by up to the worst
      // activation gap; scale the round limit so a healthy run is never
      // misread as a timeout.
      const std::int64_t limit =
          (config.max_rounds > 0 ? config.max_rounds
                                 : default_round_limit(tree)) *
          config.async.slowdown();
      try {
        NullObserver null_observer;
        BfdnAlgorithm stepped_algorithm(k, config.bfdn);
        RunConfig stepped_config;
        stepped_config.num_robots = k;
        stepped_config.max_rounds = limit;
        stepped_config.async = scheduler.get();
        stepped_config.observer = &null_observer;
        const RunResult stepped =
            run_exploration(tree, stepped_algorithm, stepped_config);

        BfdnAlgorithm batched_algorithm(k, config.bfdn);
        RunConfig batched_config;
        batched_config.num_robots = k;
        batched_config.max_rounds = limit;
        batched_config.async = scheduler.get();
        const RunResult batched =
            run_exploration(tree, batched_algorithm, batched_config);

        compare_run_results(batched, stepped, "batched async",
                            OracleCheck::kAsyncEquivalence, report);
        if (!stepped.complete || !stepped.all_at_root) {
          fail(OracleCheck::kAsyncEquivalence,
               str_format("%s: complete=%d all_at_root=%d hit_limit=%d",
                          config.async.label().c_str(),
                          stepped.complete ? 1 : 0,
                          stepped.all_at_root ? 1 : 0,
                          stepped.hit_round_limit ? 1 : 0));
        } else if (stepped.edge_events != 2 * (n - 1)) {
          fail(OracleCheck::kAsyncEquivalence,
               str_format("%s: edge events %lld != 2(n-1) = %lld",
                          config.async.label().c_str(),
                          static_cast<long long>(stepped.edge_events),
                          static_cast<long long>(2 * (n - 1))));
        }
      } catch (const CheckError& error) {
        fail(OracleCheck::kEngineInvariant, error.what());
      }
    }
  }

  // The secondary models run the plain Section 2 setting; under a
  // break-down schedule their agreements are not claimed by the paper.
  if (breakdown) return report;

  // --- batched campaign members == solo runs (differential) -----------
  // A BatchExecutor interleaves its member runs over the shared tree;
  // the contract is that every member — fast-forwarded, coalesced as a
  // seed-blind twin, or riding the stepped fallback — is bit-identical
  // to running it alone through run_exploration. Member i sweeps the
  // axes a campaign sweeps: the algorithm seed always, and (odd
  // members) the random reanchor policy, the one policy that actually
  // consumes the seed. Even members keep the configured policy and are
  // tagged coalescible whenever that policy is seed-blind, so the
  // replication path is exercised against members that each still get
  // their own independently executed solo reference. The comparison
  // stops at the lowest-index diverging member (the shrinker minimizes
  // toward that pair).
  if (config.batch_width >= 2) {
    RunConfig member_config;
    member_config.num_robots = k;
    member_config.max_rounds = config.max_rounds;
    std::vector<BfdnOptions> member_options;
    member_options.reserve(static_cast<std::size_t>(config.batch_width));
    BatchExecutor batch(tree);
    for (std::int32_t i = 0; i < config.batch_width; ++i) {
      BfdnOptions options = config.bfdn;
      options.seed = config.bfdn.seed + static_cast<std::uint64_t>(i);
      if (i % 2 == 1) options.policy = ReanchorPolicy::kRandom;
      std::string key;
      if (options.policy != ReanchorPolicy::kRandom) {
        key = str_format("seed-blind policy=%d cap=%d shortcut=%d",
                         static_cast<int>(options.policy),
                         options.depth_cap,
                         options.shortcut_reanchor ? 1 : 0);
      }
      batch.add_member(std::make_unique<BfdnAlgorithm>(k, options),
                       member_config, std::move(key));
      member_options.push_back(options);
    }
    try {
      const std::vector<RunResult> batched = batch.run();
      for (std::int32_t i = 0; i < config.batch_width; ++i) {
        BfdnAlgorithm solo(k, member_options[static_cast<std::size_t>(i)]);
        const RunResult expected =
            run_exploration(tree, solo, member_config);
        const std::string name = str_format("batch member %d", i);
        compare_run_results(batched[static_cast<std::size_t>(i)], expected,
                            name.c_str(), OracleCheck::kBatchEquivalence,
                            report);
        if (report.failed(OracleCheck::kBatchEquivalence)) break;
      }
    } catch (const CheckError& error) {
      fail(OracleCheck::kEngineInvariant, error.what());
    }

    // Per-round hash sequence: a member carrying an observer rides the
    // executor's documented stepped fallback; its hash stream and its
    // RunResult must reproduce the primary stepped run exactly.
    if (!report.failed(OracleCheck::kBatchEquivalence)) {
      try {
        std::vector<std::uint64_t> hashes;
        CollectingObserver observer(hashes);
        RunConfig hook_config = member_config;
        hook_config.check_invariants = true;
        hook_config.observer = &observer;
        BatchExecutor hook_batch(tree);
        hook_batch.add_member(
            std::make_unique<BfdnAlgorithm>(k, config.bfdn), hook_config);
        const RunResult hooked = hook_batch.run().front();
        if (hashes != primary.hashes) {
          const std::size_t common =
              std::min(hashes.size(), primary.hashes.size());
          std::size_t r = 0;
          while (r < common && hashes[r] == primary.hashes[r]) ++r;
          fail(OracleCheck::kBatchEquivalence,
               str_format("observed batch member and solo hash sequences "
                          "diverge at round %zu (%zu vs %zu rounds total)",
                          r + 1, hashes.size(), primary.hashes.size()));
        }
        compare_run_results(hooked, primary.result, "observed batch member",
                            OracleCheck::kBatchEquivalence, report);
      } catch (const CheckError& error) {
        fail(OracleCheck::kEngineInvariant, error.what());
      }
    }
  }

  // --- write-read BFDN (Proposition 6) -------------------------------
  if (config.run_write_read && paper_bfdn) {
    try {
      const WriteReadResult wr =
          run_write_read_bfdn(tree, k, config.max_rounds);
      const double bound = theorem1_bound(n, depth, delta, k);
      if (!wr.complete || !wr.all_at_root) {
        fail(OracleCheck::kWriteRead,
             str_format("complete=%d all_at_root=%d", wr.complete ? 1 : 0,
                        wr.all_at_root ? 1 : 0));
      } else if (static_cast<double>(wr.rounds) > bound) {
        fail(OracleCheck::kWriteRead,
             str_format("rounds %lld > Prop.6 bound %.2f",
                        static_cast<long long>(wr.rounds), bound));
      } else if (wr.max_robot_memory_bits > wr.memory_allowance_bits) {
        fail(OracleCheck::kWriteRead,
             str_format("memory %lld bits > allowance %lld",
                        static_cast<long long>(wr.max_robot_memory_bits),
                        static_cast<long long>(wr.memory_allowance_bits)));
      }
    } catch (const CheckError& error) {
      fail(OracleCheck::kEngineInvariant, error.what());
    }
  }

  // --- recursive BFDN_l (Theorem 10) ---------------------------------
  if (config.run_ell) {
    try {
      BfdnEllAlgorithm algorithm(k, config.ell);
      RunConfig run_config;
      run_config.num_robots = k;
      run_config.max_rounds = config.max_rounds;
      const RunResult result = run_exploration(tree, algorithm, run_config);
      const double bound =
          theorem10_bound(n, depth, delta, k, config.ell);
      if (!result.complete) {
        fail(OracleCheck::kEllTheorem10,
             str_format("ell=%d incomplete (hit_limit=%d)", config.ell,
                        result.hit_round_limit ? 1 : 0));
      } else if (static_cast<double>(result.rounds) > bound) {
        fail(OracleCheck::kEllTheorem10,
             str_format("ell=%d rounds %lld > Theorem 10 bound %.2f",
                        config.ell, static_cast<long long>(result.rounds),
                        bound));
      }
    } catch (const CheckError& error) {
      fail(OracleCheck::kEngineInvariant, error.what());
    }
  }

  // --- graph BFDN on the tree-as-graph (Section 4.3) -----------------
  if (config.run_graph && n >= 2) {
    try {
      const Graph graph = tree_as_graph(tree);
      const GraphExplorationResult gr =
          run_graph_bfdn(graph, k, config.max_rounds);
      if (!gr.complete || !gr.all_at_origin) {
        fail(OracleCheck::kGraphOnTree,
             str_format("complete=%d all_at_origin=%d",
                        gr.complete ? 1 : 0, gr.all_at_origin ? 1 : 0));
      } else if (gr.closed_edges != 0 || gr.tree_edges != n - 1) {
        // On a tree every dangling edge leads to an unexplored,
        // strictly-farther node, so the closing rule must never fire.
        fail(OracleCheck::kGraphOnTree,
             str_format("closed %lld edges, %lld tree edges (expected 0 "
                        "and %lld)",
                        static_cast<long long>(gr.closed_edges),
                        static_cast<long long>(gr.tree_edges),
                        static_cast<long long>(n - 1)));
      } else {
        const double bound =
            proposition9_bound(graph.num_edges(), graph.radius(),
                               graph.max_degree(), k);
        if (static_cast<double>(gr.rounds) > bound) {
          fail(OracleCheck::kGraphOnTree,
               str_format("rounds %lld > Prop.9 bound %.2f",
                          static_cast<long long>(gr.rounds), bound));
        }
      }
    } catch (const CheckError& error) {
      fail(OracleCheck::kEngineInvariant, error.what());
    }
  }

  return report;
}

}  // namespace bfdn
