// bfdn_lint — repo-aware static analysis gate (see docs/LINT.md).
//
// Runs the lint engine (src/lint) over the source tree with the rules
// in scripts/lint_rules.json: architecture-layer include DAG,
// determinism bans (wall clock, rand(), random_device), iteration over
// unordered containers in state-hashed paths, and trace-format version
// hygiene. Prints one "file:line: [rule] message" per finding and exits
// non-zero when any rule fires, so CI and scripts/check.sh --lint-only
// can use it directly as a gate.
//
// --write-trace-baseline re-records the serialization-struct
// fingerprint (and format version) in the rules file; run it in the
// same commit that bumps kTraceFormatVersion.
//
// --only=<rules> restricts the printed findings to a comma-separated
// list of rule ids; the alias "locks" expands to the whole
// lock-discipline family (scripts/check.sh --locks-only uses this).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "lint/lint.h"
#include "support/check.h"
#include "support/cli.h"

namespace bfdn {
namespace {

std::vector<std::string> expand_only(const std::string& spec) {
  std::vector<std::string> rules;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string name = spec.substr(start, end - start);
    if (name == "locks") {
      // Family alias: the four lock-discipline rule ids.
      rules.insert(rules.end(), {"lock-order", "lock-annotation",
                                 "cv-notify-unlocked",
                                 "cv-wait-no-predicate"});
    } else if (!name.empty()) {
      rules.push_back(name);
    }
    start = end + 1;
  }
  return rules;
}

void filter_report(lint::Report* report,
                   const std::vector<std::string>& rules) {
  const auto keep_rule = [&rules](const std::string& rule) {
    return std::find(rules.begin(), rules.end(), rule) != rules.end();
  };
  std::erase_if(report->findings, [&](const lint::Finding& finding) {
    return !keep_rule(finding.rule);
  });
  // Keep the suppressions the retained rules honor: exact ids, the
  // blanket "*", and — when any lock-discipline rule is retained — the
  // "locks" family alias.
  const bool lock_family =
      std::any_of(rules.begin(), rules.end(), [](const std::string& rule) {
        return rule.rfind("lock-", 0) == 0 || rule.rfind("cv-", 0) == 0;
      });
  std::erase_if(report->suppressions, [&](const lint::Suppression& s) {
    if (s.check == "*") return false;
    if (lock_family && s.check == "locks") return false;
    return !keep_rule(s.check);
  });
}

int run(int argc, const char* const* argv) {
  CliParser cli("bfdn_lint",
                "static determinism/layering gate over the source tree");
  cli.add_string("root", ".", "repository root to scan");
  cli.add_string("rules", "", "rules file (default <root>/scripts/"
                              "lint_rules.json)");
  cli.add_bool("write-trace-baseline", false,
               "re-record the trace-struct fingerprint in the rules "
               "file and exit");
  cli.add_string("only", "", "comma-separated rule ids to report "
                             "(\"locks\" = the lock-discipline family)");
  cli.add_bool("quiet", false, "suppress the summary line on success");
  if (!cli.parse(argc, argv)) return 0;

  const std::string root = cli.get_string("root");
  std::string rules_path = cli.get_string("rules");
  if (rules_path.empty()) rules_path = root + "/scripts/lint_rules.json";
  lint::Config config = lint::load_config(rules_path);

  if (cli.get_bool("write-trace-baseline")) {
    config.trace.fingerprint =
        lint::compute_trace_fingerprint(root, config);
    config.trace.version = lint::compute_trace_version(root, config);
    std::ofstream out(rules_path, std::ios::binary | std::ios::trunc);
    BFDN_REQUIRE(out.good(), "cannot write " + rules_path);
    out << lint::config_to_json(config);
    std::printf("bfdn_lint: baseline written to %s (version %s, "
                "fingerprint %llu)\n",
                rules_path.c_str(), config.trace.version.c_str(),
                static_cast<unsigned long long>(config.trace.fingerprint));
    return 0;
  }

  lint::Report report = lint::run_lint(root, config);
  const std::string only = cli.get_string("only");
  if (!only.empty()) filter_report(&report, expand_only(only));
  const std::string formatted = lint::format_report(report);
  if (!report.clean() || !cli.get_bool("quiet")) {
    std::fputs(formatted.c_str(), report.clean() ? stdout : stderr);
  }
  return report.clean() ? 0 : 1;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) {
  try {
    return bfdn::run(argc, argv);
  } catch (const bfdn::CheckError& error) {
    std::fprintf(stderr, "bfdn_lint: %s\n", error.what());
    return 2;
  }
}
