// bfdn_lint — repo-aware static analysis gate (see docs/LINT.md).
//
// Runs the lint engine (src/lint) over the source tree with the rules
// in scripts/lint_rules.json: architecture-layer include DAG,
// determinism bans (wall clock, rand(), random_device), iteration over
// unordered containers in state-hashed paths, and trace-format version
// hygiene. Prints one "file:line: [rule] message" per finding and exits
// non-zero when any rule fires, so CI and scripts/check.sh --lint-only
// can use it directly as a gate.
//
// --write-trace-baseline re-records the serialization-struct
// fingerprint (and format version) in the rules file; run it in the
// same commit that bumps kTraceFormatVersion.
#include <cstdio>
#include <fstream>

#include "lint/lint.h"
#include "support/check.h"
#include "support/cli.h"

namespace bfdn {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("bfdn_lint",
                "static determinism/layering gate over the source tree");
  cli.add_string("root", ".", "repository root to scan");
  cli.add_string("rules", "", "rules file (default <root>/scripts/"
                              "lint_rules.json)");
  cli.add_bool("write-trace-baseline", false,
               "re-record the trace-struct fingerprint in the rules "
               "file and exit");
  cli.add_bool("quiet", false, "suppress the summary line on success");
  if (!cli.parse(argc, argv)) return 0;

  const std::string root = cli.get_string("root");
  std::string rules_path = cli.get_string("rules");
  if (rules_path.empty()) rules_path = root + "/scripts/lint_rules.json";
  lint::Config config = lint::load_config(rules_path);

  if (cli.get_bool("write-trace-baseline")) {
    config.trace.fingerprint =
        lint::compute_trace_fingerprint(root, config);
    config.trace.version = lint::compute_trace_version(root, config);
    std::ofstream out(rules_path, std::ios::binary | std::ios::trunc);
    BFDN_REQUIRE(out.good(), "cannot write " + rules_path);
    out << lint::config_to_json(config);
    std::printf("bfdn_lint: baseline written to %s (version %s, "
                "fingerprint %llu)\n",
                rules_path.c_str(), config.trace.version.c_str(),
                static_cast<unsigned long long>(config.trace.fingerprint));
    return 0;
  }

  const lint::Report report = lint::run_lint(root, config);
  const std::string formatted = lint::format_report(report);
  if (!report.clean() || !cli.get_bool("quiet")) {
    std::fputs(formatted.c_str(), report.clean() ? stdout : stderr);
  }
  return report.clean() ? 0 : 1;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) {
  try {
    return bfdn::run(argc, argv);
  } catch (const bfdn::CheckError& error) {
    std::fprintf(stderr, "bfdn_lint: %s\n", error.what());
    return 2;
  }
}
