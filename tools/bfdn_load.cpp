// bfdn_load — load generator for the bfdn_serve exploration service.
//
// Two measured phases over `--connections` concurrent client
// connections:
//   cold: unique requests (fresh recipe seeds) — every one simulates;
//   warm: a configurable mix of Zipf-distributed draws over a hot set
//         of already-served recipes (cache hits) and fresh uniques.
// Prints a BENCH-style JSON summary (committed as BENCH_service.json)
// with cold/warm throughput, client-observed latency percentiles
// (p50/p95/p99 per phase), the measured hit rate, and the server's
// own stats object. Exits non-zero on any protocol error, on a
// served-twice request whose result bytes differ (determinism cross-
// check), or when --require-hit-rate is not met — so CI can use a
// single invocation as the service smoke.
//
// --restart-phase appends a third measured phase for the durable
// result store: after warm, --restart-cmd is run (a shell command
// that typically SIGTERMs the server and relaunches it over the same
// --store-dir), the new port is polled from --restart-port-file, and
// the warm Zipf mix is replayed against the restarted server
// ("rewarm"). With a store, the rewarm first pass hits recovered
// segments; --require-hit-rate then gates that phase, and the hot-set
// result hashes pinned in the cold phase cross-check determinism
// across the restart.
//
// --router points the same mixes at a bfdn_route front end instead of
// a single shard: the summary then carries a "router" block (per-shard
// forward shares and cache hit rates, balance factor versus the ideal
// 1/N split, replica/reroute counters) and --require-balance gates the
// measured imbalance. --probe sends one raw request line and prints
// the raw response — the fleet smoke's shard/ship/peer_stats probe.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>
#include <vector>

#include "service/client.h"
#include "support/check.h"
#include "support/cli.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/strings.h"

namespace bfdn {
namespace {

struct PlannedRequest {
  ServiceRequest request;
  /// Index into the hot set, or -1 for a cold unique.
  std::int32_t hot_index = -1;
};

struct WorkerTally {
  std::int64_t ok = 0;
  std::int64_t cached = 0;
  std::int64_t errors = 0;
  std::int64_t retries = 0;
  std::int64_t hash_mismatches = 0;
  /// Client-observed per-request wall time (submit to response,
  /// including retry loops), successful requests only.
  std::vector<double> latency_ms;
};

/// The request mix vocabulary: deterministic in (sequence index), with
/// enough shape variety to exercise batching (paired recipe seeds) and
/// different k.
ServiceRequest make_unique_request(std::int64_t index, std::int64_t nodes) {
  static constexpr const char* kMixFamilies[] = {"fixed-depth", "random",
                                                 "caterpillar", "spider"};
  ServiceRequest request;
  request.id = str_format("u%lld", static_cast<long long>(index));
  // Consecutive pairs share a recipe (same tree, different k): unique
  // fingerprints for the cache, identical shapes for the batcher.
  const std::int64_t recipe_index = index / 2;
  request.recipe.family = kMixFamilies[recipe_index % 4];
  request.recipe.nodes = nodes;
  request.recipe.depth = static_cast<std::int32_t>(
      std::max<std::int64_t>(4, std::min<std::int64_t>(40, nodes / 16)));
  request.recipe.arms = request.recipe.family == std::string("spider")
                            ? 8
                            : 3;
  request.recipe.seed = static_cast<std::uint64_t>(1000 + recipe_index);
  request.algo.kind = AlgoKind::kBfdn;
  request.algo.k = index % 2 == 0 ? 8 : 16;
  // Every fourth request runs under a per-robot-clock scheduler so the
  // async axis is part of the served mix (cache keys, batching, and the
  // determinism cross-check all cover it).
  if (index % 4 == 3) {
    request.async.kind = AsyncKind::kFixedRate;
    request.async.period = 2;
    request.async.num_slow = 2;
  }
  return request;
}

double run_phase(std::uint16_t port, std::int32_t connections,
                 const std::vector<PlannedRequest>& plan,
                 std::vector<std::string>& hot_hashes, WorkerTally& tally,
                 std::string* first_error) {
  std::vector<WorkerTally> tallies(
      static_cast<std::size_t>(connections));
  std::vector<std::string> errors(static_cast<std::size_t>(connections));
  // First writer wins per hot index; all workers then compare against
  // it. Slots are pre-sized, distinct indices never race, and identical
  // results make double-writes benign.
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (std::int32_t w = 0; w < connections; ++w) {
    workers.emplace_back([&, w] {
      WorkerTally& mine = tallies[static_cast<std::size_t>(w)];
      try {
        ServiceClient client(port);
        for (std::size_t i = static_cast<std::size_t>(w); i < plan.size();
             i += static_cast<std::size_t>(connections)) {
          const PlannedRequest& planned = plan[i];
          const auto sent = std::chrono::steady_clock::now();
          JsonValue response =
              client.run(planned.request, 500, &mine.retries);
          const double millis =
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - sent)
                  .count();
          if (response.get_string("status", "") != "ok") {
            ++mine.errors;
            if (errors[static_cast<std::size_t>(w)].empty()) {
              errors[static_cast<std::size_t>(w)] =
                  response.get_string("error", "non-ok response");
            }
            continue;
          }
          ++mine.ok;
          mine.latency_ms.push_back(millis);
          if (response.get_bool("cached", false)) ++mine.cached;
          if (planned.hot_index >= 0) {
            const std::string hash = response.at("result").get_string(
                "final_state_hash", "");
            std::string& slot =
                hot_hashes[static_cast<std::size_t>(planned.hot_index)];
            if (slot.empty()) {
              slot = hash;
            } else if (slot != hash) {
              ++mine.hash_mismatches;
            }
          }
        }
      } catch (const CheckError& e) {
        ++mine.errors;
        if (errors[static_cast<std::size_t>(w)].empty()) {
          errors[static_cast<std::size_t>(w)] = e.what();
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
  for (std::int32_t w = 0; w < connections; ++w) {
    const WorkerTally& t = tallies[static_cast<std::size_t>(w)];
    tally.ok += t.ok;
    tally.cached += t.cached;
    tally.errors += t.errors;
    tally.retries += t.retries;
    tally.hash_mismatches += t.hash_mismatches;
    tally.latency_ms.insert(tally.latency_ms.end(),
                            t.latency_ms.begin(), t.latency_ms.end());
    if (first_error != nullptr && first_error->empty()) {
      *first_error = errors[static_cast<std::size_t>(w)];
    }
  }
  return wall_s;
}

/// Polls `path` until it holds a port number. The restart command is
/// responsible for (re)writing the file once its server listens
/// (bfdn_serve --port-file does this after binding).
std::uint16_t wait_for_port_file(const std::string& path,
                                 double timeout_s) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  while (std::chrono::steady_clock::now() < deadline) {
    std::ifstream in(path);
    long port = 0;
    if (in >> port && port > 0 && port < 65536) {
      return static_cast<std::uint16_t>(port);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  BFDN_REQUIRE(false, "restarted server's port file never appeared: " +
                          path);
  return 0;
}

/// Client-observed latency SLO block: p50/p95/p99 over one phase's
/// successful requests (support/stats.h percentile, linear
/// interpolation on the sorted sample).
void write_latency(JsonWriter& w, const WorkerTally& tally) {
  if (tally.latency_ms.empty()) return;  // phase fully rejected
  w.key("latency_ms").begin_object();
  w.kv("p50", percentile(tally.latency_ms, 0.50), 3);
  w.kv("p95", percentile(tally.latency_ms, 0.95), 3);
  w.kv("p99", percentile(tally.latency_ms, 0.99), 3);
  w.end_object();
}

int run(int argc, const char* const* argv) {
  CliParser cli("bfdn_load",
                "replay request mixes against a running bfdn_serve");
  cli.add_int("port", 7431, "server port");
  cli.add_int("connections", 4, "concurrent client connections");
  cli.add_int("cold", 64, "cold-phase unique requests");
  cli.add_int("requests", 400, "warm-phase requests");
  cli.add_int("hot-set", 16, "recipes in the warm hot set");
  cli.add_double("hot-fraction", 0.9,
                 "warm-phase probability of drawing from the hot set");
  cli.add_double("zipf-s", 1.1, "Zipf exponent over hot-set ranks");
  cli.add_int("nodes", 2000, "tree size of generated requests");
  cli.add_int("seed", 1, "mix-sampling seed");
  cli.add_double("require-hit-rate", -1.0,
                 "exit 1 unless the warm-phase hit rate reaches this "
                 "(with --restart-phase: the rewarm-phase hit rate)");
  cli.add_bool("restart-phase", false,
               "after warm, run --restart-cmd and replay the warm mix "
               "against the restarted server (rewarm phase)");
  cli.add_string("restart-cmd", "",
                 "shell command that restarts the server (required with "
                 "--restart-phase)");
  cli.add_string("restart-port-file", "",
                 "poll this file for the restarted server's port "
                 "(empty = reuse --port)");
  cli.add_bool("router", false,
               "the target is a bfdn_route front end: report per-shard "
               "balance and hit rates in a 'router' block");
  cli.add_double("require-balance", -1.0,
                 "exit 1 when the busiest shard's forwarded share "
                 "exceeds this multiple of the ideal 1/N (router mode)");
  cli.add_string("probe", "",
                 "send this one raw request line, print the raw "
                 "response, exit (0 = got a response)");
  if (!cli.parse(argc, argv)) return 0;

  const auto port = static_cast<std::uint16_t>(cli.get_int("port"));

  const std::string probe = cli.get_string("probe");
  if (!probe.empty()) {
    Socket socket = connect_local(port, /*recv_timeout_ms=*/30000);
    BFDN_REQUIRE(socket.send_all(probe + "\n"), "probe send failed");
    const auto response = socket.recv_line();
    if (!response.has_value()) {
      std::fprintf(stderr, "bfdn_load: no response to probe\n");
      return 3;
    }
    std::printf("%s\n", response->c_str());
    return 0;
  }
  const auto connections = static_cast<std::int32_t>(
      std::max<std::int64_t>(1, cli.get_int("connections")));
  const std::int64_t cold_n = std::max<std::int64_t>(1,
                                                     cli.get_int("cold"));
  const std::int64_t warm_n =
      std::max<std::int64_t>(1, cli.get_int("requests"));
  const std::int64_t hot_set = std::min<std::int64_t>(
      cold_n, std::max<std::int64_t>(1, cli.get_int("hot-set")));
  const double hot_fraction = cli.get_double("hot-fraction");
  const std::int64_t nodes = cli.get_int("nodes");

  // Cold phase: unique requests, all simulate.
  std::vector<PlannedRequest> cold_plan;
  for (std::int64_t i = 0; i < cold_n; ++i) {
    PlannedRequest planned;
    planned.request = make_unique_request(i, nodes);
    // The first hot_set cold requests double as the warm hot set, so
    // their results are pinned for the determinism cross-check.
    if (i < hot_set) planned.hot_index = static_cast<std::int32_t>(i);
    cold_plan.push_back(std::move(planned));
  }
  std::vector<std::string> hot_hashes(static_cast<std::size_t>(hot_set));
  WorkerTally cold_tally;
  std::string first_error;
  const double cold_wall_s = run_phase(port, connections, cold_plan,
                                       hot_hashes, cold_tally,
                                       &first_error);

  // Warm phase: Zipf over the hot set vs fresh uniques.
  std::vector<double> zipf(static_cast<std::size_t>(hot_set));
  for (std::int64_t r = 0; r < hot_set; ++r) {
    zipf[static_cast<std::size_t>(r)] =
        1.0 / std::pow(static_cast<double>(r + 1),
                       cli.get_double("zipf-s"));
  }
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  std::vector<PlannedRequest> warm_plan;
  std::int64_t next_unique = cold_n;
  for (std::int64_t i = 0; i < warm_n; ++i) {
    PlannedRequest planned;
    if (rng.next_bool(hot_fraction)) {
      const auto rank = static_cast<std::int64_t>(rng.next_weighted(zipf));
      planned.request = make_unique_request(rank, nodes);
      planned.request.id = str_format("w%lld", static_cast<long long>(i));
      planned.hot_index = static_cast<std::int32_t>(rank);
    } else {
      planned.request = make_unique_request(next_unique++, nodes);
    }
    warm_plan.push_back(std::move(planned));
  }
  WorkerTally warm_tally;
  const double warm_wall_s = run_phase(port, connections, warm_plan,
                                       hot_hashes, warm_tally,
                                       &first_error);

  // Restart phase: bounce the server, then replay the warm Zipf mix
  // against the recovered store. The hot-set hashes pinned in the cold
  // phase carry across the restart, so a recovered result that drifted
  // from the original bytes counts as a hash mismatch.
  const bool restart_phase = cli.get_bool("restart-phase");
  std::uint16_t final_port = port;
  WorkerTally rewarm_tally;
  double rewarm_wall_s = 0;
  if (restart_phase) {
    const std::string restart_cmd = cli.get_string("restart-cmd");
    BFDN_REQUIRE(!restart_cmd.empty(),
                 "--restart-phase needs --restart-cmd");
    const std::string restart_port_file =
        cli.get_string("restart-port-file");
    if (!restart_port_file.empty()) {
      std::remove(restart_port_file.c_str());  // never read a stale port
    }
    const int rc = std::system(restart_cmd.c_str());
    BFDN_REQUIRE(rc == 0, str_format("--restart-cmd exited with %d", rc));
    if (!restart_port_file.empty()) {
      final_port = wait_for_port_file(restart_port_file,
                                      /*timeout_s=*/30.0);
    }
    std::vector<PlannedRequest> rewarm_plan = warm_plan;
    for (std::size_t i = 0; i < rewarm_plan.size(); ++i) {
      rewarm_plan[i].request.id =
          str_format("r%llu", static_cast<unsigned long long>(i));
    }
    rewarm_wall_s = run_phase(final_port, connections, rewarm_plan,
                              hot_hashes, rewarm_tally, &first_error);
  }

  // Server-side view: cache ratios and batching counters (single
  // shard), or per-shard balance and hit rates (router mode).
  const bool router_mode = cli.get_bool("router");
  double server_hit_rate = 0;
  std::int64_t server_evictions = 0;
  std::int64_t server_batched = 0;
  std::int64_t server_trees_built = 0;
  std::int64_t server_completed = 0;
  std::int64_t server_store_segments = 0;
  std::int64_t server_store_recovered = 0;
  std::int64_t server_store_hits = 0;
  bool have_store_stats = false;
  bool have_server_stats = false;

  struct PeerReport {
    std::int64_t peer = 0;
    std::int64_t port = 0;
    std::int64_t forwarded = 0;
    double hit_rate = 0;
    bool reachable = false;
  };
  std::vector<PeerReport> peer_reports;
  double balance = 0;
  std::int64_t replica_routed = 0;
  std::int64_t reroutes = 0;
  std::int64_t hot_keys = 0;
  bool have_router_stats = false;

  try {
    ServiceClient client(final_port);
    const JsonValue response = client.stats();
    if (response.has("stats")) {
      const JsonValue& stats = response.at("stats");
      if (stats.has("cache")) {
        server_hit_rate = stats.at("cache").get_double("hit_rate", 0);
        server_evictions = stats.at("cache").get_int("evictions", 0);
        server_store_hits = stats.at("cache").get_int("store_hits", 0);
      }
      if (stats.has("jobs")) {
        server_batched = stats.at("jobs").get_int("batched", 0);
        server_trees_built = stats.at("jobs").get_int("trees_built", 0);
        server_completed = stats.at("jobs").get_int("completed", 0);
      }
      if (stats.has("store")) {
        server_store_segments = stats.at("store").get_int("segments", 0);
        server_store_recovered =
            stats.at("store").get_int("recovered_records", 0);
        have_store_stats = true;
      }
      if (router_mode && stats.has("routing") && stats.has("cluster")) {
        replica_routed = stats.at("routing").get_int("replica_routed", 0);
        reroutes = stats.at("routing").get_int("reroutes", 0);
        hot_keys = stats.at("routing").get_int("hot_keys", 0);
        const JsonValue& peers = stats.at("cluster").at("peers");
        std::int64_t total_forwarded = 0;
        std::int64_t max_forwarded = 0;
        for (std::size_t i = 0; i < peers.size(); ++i) {
          PeerReport report;
          report.peer = peers.at(i).get_int("peer", 0);
          report.port = peers.at(i).get_int("port", 0);
          report.forwarded = peers.at(i).get_int("forwarded", 0);
          total_forwarded += report.forwarded;
          max_forwarded = std::max(max_forwarded, report.forwarded);
          peer_reports.push_back(report);
        }
        if (!peer_reports.empty() && total_forwarded > 0) {
          // Busiest shard's share versus the ideal 1/N split; 1.0 is a
          // perfectly even fleet.
          balance = static_cast<double>(max_forwarded) *
                    static_cast<double>(peer_reports.size()) /
                    static_cast<double>(total_forwarded);
        }
        // Per-shard cache view via the router's stats fan-out.
        const JsonValue fleet = client.call("{\"type\":\"peer_stats\"}");
        if (fleet.has("peers")) {
          const JsonValue& entries = fleet.at("peers");
          for (std::size_t i = 0;
               i < entries.size() && i < peer_reports.size(); ++i) {
            const JsonValue& entry = entries.at(i);
            if (entry.has("stats") && entry.at("stats").is_object() &&
                entry.at("stats").has("cache")) {
              peer_reports[i].hit_rate =
                  entry.at("stats").at("cache").get_double("hit_rate", 0);
              peer_reports[i].reachable = true;
            }
          }
        }
        have_router_stats = true;
      }
      have_server_stats = !router_mode;
    }
  } catch (const CheckError&) {
    have_server_stats = false;
    have_router_stats = false;
  }

  const double cold_rps =
      cold_wall_s > 0 ? static_cast<double>(cold_n) / cold_wall_s : 0;
  const double warm_rps =
      warm_wall_s > 0 ? static_cast<double>(warm_n) / warm_wall_s : 0;
  const double hit_rate =
      warm_tally.ok > 0 ? static_cast<double>(warm_tally.cached) /
                              static_cast<double>(warm_tally.ok)
                        : 0;
  const double rewarm_rps =
      rewarm_wall_s > 0 ? static_cast<double>(warm_n) / rewarm_wall_s : 0;
  const double rewarm_hit_rate =
      rewarm_tally.ok > 0 ? static_cast<double>(rewarm_tally.cached) /
                                static_cast<double>(rewarm_tally.ok)
                          : 0;
  const std::int64_t protocol_errors =
      cold_tally.errors + warm_tally.errors + rewarm_tally.errors +
      cold_tally.hash_mismatches + warm_tally.hash_mismatches +
      rewarm_tally.hash_mismatches;

  JsonWriter w(/*pretty=*/true);
  w.begin_object();
  w.kv("bench", "service");
  w.kv("connections", connections);
  w.kv("nodes", nodes);
  w.key("cold").begin_object();
  w.kv("requests", cold_n);
  w.kv("wall_s", cold_wall_s, 4);
  w.kv("requests_per_sec", cold_rps, 1);
  w.kv("retries", cold_tally.retries);
  write_latency(w, cold_tally);
  w.end_object();
  w.key("warm").begin_object();
  w.kv("requests", warm_n);
  w.kv("wall_s", warm_wall_s, 4);
  w.kv("requests_per_sec", warm_rps, 1);
  w.kv("retries", warm_tally.retries);
  w.kv("cache_hits", warm_tally.cached);
  w.kv("hit_rate", hit_rate, 4);
  write_latency(w, warm_tally);
  w.end_object();
  if (restart_phase) {
    w.key("rewarm").begin_object();
    w.kv("requests", warm_n);
    w.kv("wall_s", rewarm_wall_s, 4);
    w.kv("requests_per_sec", rewarm_rps, 1);
    w.kv("retries", rewarm_tally.retries);
    w.kv("cache_hits", rewarm_tally.cached);
    w.kv("hit_rate", rewarm_hit_rate, 4);
    write_latency(w, rewarm_tally);
    w.end_object();
  }
  w.kv("warm_over_cold_speedup", cold_rps > 0 ? warm_rps / cold_rps : 0,
       2);
  if (restart_phase) {
    w.kv("rewarm_over_cold_speedup",
         cold_rps > 0 ? rewarm_rps / cold_rps : 0, 2);
  }
  w.kv("protocol_errors", protocol_errors);
  if (have_server_stats) {
    w.key("server").begin_object();
    w.kv("cache_hit_rate", server_hit_rate, 4);
    w.kv("cache_evictions", server_evictions);
    w.kv("jobs_completed", server_completed);
    w.kv("jobs_batched", server_batched);
    w.kv("trees_built", server_trees_built);
    if (have_store_stats) {
      w.kv("store_hits", server_store_hits);
      w.kv("store_segments", server_store_segments);
      w.kv("store_recovered_records", server_store_recovered);
    }
    w.end_object();
  }
  if (have_router_stats) {
    w.key("router").begin_object();
    w.kv("shards", static_cast<std::int64_t>(peer_reports.size()));
    w.kv("balance", balance, 3);
    w.kv("replica_routed", replica_routed);
    w.kv("reroutes", reroutes);
    w.kv("hot_keys", hot_keys);
    w.key("per_shard").begin_array();
    for (const PeerReport& report : peer_reports) {
      w.begin_object();
      w.kv("peer", report.peer);
      w.kv("port", report.port);
      w.kv("forwarded", report.forwarded);
      if (report.reachable) w.kv("hit_rate", report.hit_rate, 4);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  std::printf("%s\n", w.str().c_str());

  if (protocol_errors > 0) {
    std::fprintf(stderr, "bfdn_load: %lld protocol errors (first: %s)\n",
                 static_cast<long long>(protocol_errors),
                 first_error.c_str());
    return 1;
  }
  const double required = cli.get_double("require-hit-rate");
  const double gated_rate = restart_phase ? rewarm_hit_rate : hit_rate;
  if (required >= 0 && gated_rate < required) {
    std::fprintf(stderr,
                 "bfdn_load: %s hit rate %.4f below required %.4f\n",
                 restart_phase ? "rewarm" : "warm", gated_rate, required);
    return 1;
  }
  const double required_balance = cli.get_double("require-balance");
  if (required_balance >= 0) {
    if (!have_router_stats) {
      std::fprintf(stderr,
                   "bfdn_load: --require-balance needs --router and a "
                   "reachable router\n");
      return 1;
    }
    if (balance > required_balance) {
      std::fprintf(stderr,
                   "bfdn_load: shard balance %.3f exceeds required "
                   "%.3f (busiest shard's share vs ideal 1/N)\n",
                   balance, required_balance);
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) {
  try {
    return bfdn::run(argc, argv);
  } catch (const bfdn::CheckError& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
