// bfdn_serve — the exploration-as-a-service daemon.
//
// Listens on a loopback TCP port for line-delimited JSON run requests
// (docs/SERVICE.md), schedules them over a thread pool behind a bounded
// admission queue, and serves repeated requests from a
// content-addressed result cache. SIGTERM / SIGINT trigger a graceful
// drain: stop accepting, finish every admitted job, answer the
// in-flight responses, flush a final stats document to stdout, exit 0.
//
// With --store-dir the result cache is backed by the durable segment
// store (src/store): a restart over the same directory recovers every
// persisted result and serves it byte-identical without recomputing.
//
// As a member of a sharded fleet (behind bfdn_route), --peers names
// every shard's port and --peer-id this shard's index into that list;
// both only feed the ship_segment admin path and the stats cluster
// block — shards hold no ring and accept any request routed to them.
//
//   bfdn_serve --port=7431 --threads=8 --queue=64 --cache=1024
//   bfdn_serve --port=0 --port-file=serve.port   # ephemeral port
//   bfdn_serve --store-dir=/var/bfdn/store --store-segment-mb=64
//   bfdn_serve --port=7431 --peer-id=0 --peers=7431,7432
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <thread>

#include "cluster/peers.h"
#include "service/server.h"
#include "support/check.h"
#include "support/cli.h"

namespace bfdn {
namespace {

// Signal handlers may only touch lock-free atomics; the main loop polls.
volatile std::sig_atomic_t g_drain_requested = 0;

extern "C" void handle_signal(int) { g_drain_requested = 1; }

int run(int argc, const char* const* argv) {
  CliParser cli("bfdn_serve", "serve exploration runs over loopback TCP");
  cli.add_int("port", 7431, "listen port (0 = ephemeral)");
  cli.add_int("threads", 0, "scheduler worker threads (0 = hardware)");
  cli.add_int("queue", 64, "admission queue depth (backpressure bound)");
  cli.add_int("cache", 1024, "result cache capacity in entries (0 = off)");
  cli.add_int("retry-after-ms", 20,
              "suggested client back-off in backpressure rejections");
  cli.add_int("max-nodes", 1000000, "largest admissible request tree");
  cli.add_string("port-file", "",
                 "write the bound port here once listening (for scripts "
                 "using --port=0)");
  cli.add_string("store-dir", "",
                 "durable result store directory (empty = memory only)");
  cli.add_int("store-segment-mb", 64,
              "store segment rotation size in MiB");
  cli.add_int("store-flush-ms", 25,
              "store group-commit age trigger in milliseconds");
  cli.add_bool("no-store", false,
               "ignore --store-dir and run memory-only");
  cli.add_string("peers", "",
                 "fleet port list 'p0,p1,...' (empty = standalone)");
  cli.add_int("peer-id", -1,
              "this shard's index into --peers");
  if (!cli.parse(argc, argv)) return 0;

  ServerOptions options;
  options.port = static_cast<std::uint16_t>(cli.get_int("port"));
  options.threads = static_cast<std::int32_t>(cli.get_int("threads"));
  options.queue_capacity =
      static_cast<std::int32_t>(cli.get_int("queue"));
  options.cache_capacity =
      static_cast<std::size_t>(cli.get_int("cache"));
  options.retry_after_ms =
      static_cast<std::int32_t>(cli.get_int("retry-after-ms"));
  options.max_nodes = cli.get_int("max-nodes");
  if (!cli.get_bool("no-store")) {
    options.store_dir = cli.get_string("store-dir");
  }
  options.store_segment_bytes =
      static_cast<std::size_t>(cli.get_int("store-segment-mb")) << 20;
  options.store_flush_ms =
      static_cast<std::int32_t>(cli.get_int("store-flush-ms"));
  const std::string peers_spec = cli.get_string("peers");
  if (!peers_spec.empty()) {
    options.peers = parse_peer_ports(peers_spec);
    options.peer_id = static_cast<std::int32_t>(cli.get_int("peer-id"));
    BFDN_REQUIRE(options.peer_id >= 0 &&
                     options.peer_id < static_cast<std::int32_t>(
                                           options.peers.size()),
                 "--peer-id must index into --peers");
    BFDN_REQUIRE(options.port ==
                     options.peers[static_cast<std::size_t>(
                         options.peer_id)],
                 "--port must equal --peers[--peer-id] "
                 "(peer identity is the port)");
  }

  ServiceServer server(options);
  server.start();

  const std::string port_file = cli.get_string("port-file");
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    BFDN_REQUIRE(out.good(), "cannot open --port-file " + port_file);
    out << server.port() << "\n";
  }
  std::fprintf(stdout, "bfdn_serve listening on 127.0.0.1:%u\n",
               server.port());
  std::fflush(stdout);

  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);
  while (g_drain_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::fprintf(stderr, "bfdn_serve: drain requested, finishing "
                       "in-flight jobs\n");
  server.drain();
  // Final stats flush: one JSON document, same shape as the protocol's
  // stats response payload.
  std::fprintf(stdout, "%s\n", server.stats_json().c_str());
  std::fflush(stdout);
  return 0;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) {
  try {
    return bfdn::run(argc, argv);
  } catch (const bfdn::CheckError& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
