// Differential fuzzer driver: samples instances, runs the verification
// oracle, shrinks and persists any counterexample. Exit status 0 means
// no counterexample was found; 1 means at least one was (artifacts in
// --out-dir); 2 means bad usage.
#include <cstdio>
#include <exception>

#include "support/check.h"
#include "support/cli.h"
#include "verify/fuzz.h"

int main(int argc, char** argv) {
  using namespace bfdn;
  CliParser cli("bfdn_fuzz",
                "Seed-driven differential fuzzer for the BFDN simulator "
                "(see docs/VERIFY.md)");
  cli.add_int("seed", 1, "base seed; the case sequence is a function of it");
  cli.add_double("budget-s", 10.0, "wall-clock budget in seconds");
  cli.add_int("cases", 0, "max cases (0 = unlimited within the budget)");
  cli.add_int("max-nodes", 400, "max sampled tree size");
  cli.add_double("schedule-p", 0.3,
                 "probability of attaching a break-down schedule");
  cli.add_double("async-p", 0.3,
                 "probability of attaching an exotic async scheduler to "
                 "a case without a break-down schedule");
  cli.add_double("batch-p", 0.25,
                 "probability of adding the batched-campaign "
                 "differential (batch members vs their solo runs)");
  cli.add_int("batch-width", 4,
              "largest sampled batch width (< 2 disables batching)");
  cli.add_string("out-dir", "", "artifact directory for counterexamples");
  cli.add_bool("fault", false,
               "inject the load-leak counter bug (harness self-test; the "
               "fuzzer is then expected to fail)");
  cli.add_bool("keep-going", false, "do not stop at the first failure");
  cli.add_bool("verbose", false, "log every case");
  cli.add_int("jobs", 1,
              "worker threads; cases shard across them and the lowest-"
              "index failure is reported either way");

  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "bfdn_fuzz: %s\n%s", error.what(),
                 cli.help_text().c_str());
    return 2;
  }

  FuzzOptions options;
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  options.budget_s = cli.get_double("budget-s");
  options.max_cases = static_cast<std::int32_t>(cli.get_int("cases"));
  options.max_nodes = cli.get_int("max-nodes");
  options.schedule_p = cli.get_double("schedule-p");
  options.async_p = cli.get_double("async-p");
  options.batch_p = cli.get_double("batch-p");
  options.batch_width = static_cast<std::int32_t>(cli.get_int("batch-width"));
  options.artifact_dir = cli.get_string("out-dir");
  options.inject_load_leak = cli.get_bool("fault");
  options.stop_on_failure = !cli.get_bool("keep-going");
  options.verbose = cli.get_bool("verbose");
  options.jobs = static_cast<std::int32_t>(cli.get_int("jobs"));

  try {
    const FuzzReport report = run_fuzz(options);
    if (report.ok()) {
      std::printf("bfdn_fuzz: %d cases, no counterexample (seed=%llu)\n",
                  report.cases_run,
                  static_cast<unsigned long long>(options.seed));
      return 0;
    }
    for (const FuzzCounterexample& cex : report.counterexamples) {
      std::printf(
          "bfdn_fuzz: COUNTEREXAMPLE %s\n  %s\n  shrunk to n=%lld k=%d "
          "(%d reductions)\n",
          cex.recipe.c_str(), cex.detail.c_str(),
          static_cast<long long>(cex.shrunk.tree.num_nodes()),
          cex.shrunk.config.k, cex.shrunk.accepted_reductions);
      if (!cex.trace_path.empty()) {
        std::printf("  artifacts: %s, %s\n", cex.trace_path.c_str(),
                    cex.recipe_path.c_str());
      }
    }
    std::printf("bfdn_fuzz: %d cases, %zu counterexample(s)\n",
                report.cases_run, report.counterexamples.size());
    return 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "bfdn_fuzz: fatal: %s\n", error.what());
    return 2;
  }
}
