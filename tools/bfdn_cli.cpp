// bfdn — command-line front end for the library.
//
// Subcommands:
//   bfdn generate --family <name> [shape flags] --out tree.txt
//   bfdn info     --tree tree.txt
//   bfdn explore  --tree tree.txt --algo bfdn --k 8 [--movie] [--dot]
//   bfdn game     --k 64 --delta 64 [--adversary greedy]
//
// `explore` accepts a generated family instead of a file via the same
// shape flags as `generate`. Every command prints to stdout and exits
// non-zero on failure, so the tool composes in shell pipelines.
#include <cstdio>
#include <cstring>
#include <memory>

#include "baselines/cte.h"
#include "baselines/depth_next_only.h"
#include "baselines/offline.h"
#include "core/bfdn.h"
#include "distributed/writeread.h"
#include "game/urn_game.h"
#include "graph/dot.h"
#include "graph/generators.h"
#include "graph/tree_io.h"
#include "graph/tree_stats.h"
#include "recursive/bfdn_ell.h"
#include "sim/engine.h"
#include "sim/render.h"
#include "support/check.h"
#include "support/cli.h"

namespace bfdn {
namespace {

void add_shape_flags(CliParser& cli) {
  cli.add_string("family",
                 "random", "tree family: random | path | star | binary | "
                           "spider | caterpillar | comb | broom | "
                           "cte-hard | fixed-depth");
  cli.add_int("nodes", 500, "node count (where the family allows)");
  cli.add_int("depth", 12, "depth parameter (where the family uses one)");
  cli.add_int("arms", 8, "legs / teeth / branching where applicable");
  cli.add_int("seed", 1, "generation seed");
}

Tree generate_tree(const CliParser& cli) {
  // Shared with the serving protocol (src/service): `bfdn_serve` builds
  // trees from the same vocabulary, so served runs diff cleanly against
  // CLI runs.
  return make_family_tree(
      cli.get_string("family"), cli.get_int("nodes"),
      static_cast<std::int32_t>(cli.get_int("depth")),
      static_cast<std::int32_t>(cli.get_int("arms")),
      static_cast<std::uint64_t>(cli.get_int("seed")));
}

Tree obtain_tree(const CliParser& cli) {
  const std::string path = cli.get_string("tree");
  if (!path.empty()) return load_tree(path);
  return generate_tree(cli);
}

int cmd_generate(int argc, const char* const* argv) {
  CliParser cli("bfdn generate", "generate a tree instance file");
  add_shape_flags(cli);
  cli.add_string("out", "", "output path (default: stdout)");
  if (!cli.parse(argc, argv)) return 0;
  const Tree tree = generate_tree(cli);
  const std::string out = cli.get_string("out");
  if (out.empty()) {
    std::fputs(tree_to_text(tree).c_str(), stdout);
  } else {
    save_tree(tree, out);
    std::fprintf(stderr, "wrote %s: %s\n", out.c_str(),
                 tree.summary().c_str());
  }
  return 0;
}

int cmd_info(int argc, const char* const* argv) {
  CliParser cli("bfdn info", "describe a tree instance");
  cli.add_string("tree", "", "tree file (empty: generate)");
  add_shape_flags(cli);
  cli.add_bool("ascii", false, "print the tree as ASCII art");
  if (!cli.parse(argc, argv)) return 0;
  const Tree tree = obtain_tree(cli);
  const TreeStats stats = compute_tree_stats(tree);
  std::printf("%s\n", tree_stats_to_string(stats).c_str());
  std::printf("level widths:");
  for (const std::int64_t width : stats.level_widths) {
    std::printf(" %lld", static_cast<long long>(width));
  }
  std::printf("\n");
  const OfflineSplitPlan plan = offline_dfs_split(tree, 8);
  std::printf("offline DFS-split (k=8): %lld rounds; BFS-levels waves "
              "(k=8): %lld\n",
              static_cast<long long>(plan.rounds),
              static_cast<long long>(bfs_wave_count(stats, tree, 8)));
  if (cli.get_bool("ascii")) {
    std::fputs(render_tree_ascii(tree, {}).c_str(), stdout);
  }
  return 0;
}

int cmd_explore(int argc, const char* const* argv) {
  CliParser cli("bfdn explore", "run a collaborative exploration");
  cli.add_string("tree", "", "tree file (empty: generate via shape flags)");
  add_shape_flags(cli);
  cli.add_string("algo", "bfdn",
                 "bfdn | bfdn-shortcut | cte | dn | ell2 | ell3 | "
                 "writeread");
  cli.add_int("k", 8, "team size");
  cli.add_bool("movie", false, "print a round-by-round ASCII movie");
  cli.add_bool("dot", false, "print the explored tree as Graphviz DOT");
  cli.add_bool("check", false, "enable per-round invariant checking");
  if (!cli.parse(argc, argv)) return 0;

  const Tree tree = obtain_tree(cli);
  const auto k = static_cast<std::int32_t>(cli.get_int("k"));
  const std::string algo_name = cli.get_string("algo");

  if (algo_name == "writeread") {
    const WriteReadResult wr = run_write_read_bfdn(tree, k);
    std::printf("%s k=%d write-read: %lld rounds, complete=%s, "
                "memory %lld/%lld bits\n",
                tree.summary().c_str(), k,
                static_cast<long long>(wr.rounds),
                wr.complete ? "yes" : "no",
                static_cast<long long>(wr.max_robot_memory_bits),
                static_cast<long long>(wr.memory_allowance_bits));
    return wr.complete ? 0 : 1;
  }

  std::unique_ptr<Algorithm> algorithm;
  if (algo_name == "bfdn") {
    algorithm = std::make_unique<BfdnAlgorithm>(k);
  } else if (algo_name == "bfdn-shortcut") {
    BfdnOptions options;
    options.shortcut_reanchor = true;
    algorithm = std::make_unique<BfdnAlgorithm>(k, options);
  } else if (algo_name == "cte") {
    algorithm = std::make_unique<CteAlgorithm>(tree, k);
  } else if (algo_name == "dn") {
    algorithm = std::make_unique<DepthNextOnlyAlgorithm>(k);
  } else if (algo_name == "ell2") {
    algorithm = std::make_unique<BfdnEllAlgorithm>(k, 2);
  } else if (algo_name == "ell3") {
    algorithm = std::make_unique<BfdnEllAlgorithm>(k, 3);
  } else {
    std::fprintf(stderr, "unknown --algo %s\n", algo_name.c_str());
    return 2;
  }

  std::vector<TraceFrame> trace;
  RunConfig config;
  config.num_robots = k;
  config.check_invariants = cli.get_bool("check");
  if (cli.get_bool("movie")) config.trace = &trace;
  const RunResult result = run_exploration(tree, *algorithm, config);

  if (cli.get_bool("movie")) {
    for (const TraceFrame& frame : trace) {
      std::fputs(render_trace_frame(tree, frame).c_str(), stdout);
      std::fputc('\n', stdout);
    }
  }
  std::printf("%s  algo=%s k=%d\n", tree.summary().c_str(),
              algorithm->name().c_str(), k);
  std::printf("rounds=%lld complete=%s at_root=%s bound=%.0f\n",
              static_cast<long long>(result.rounds),
              result.complete ? "yes" : "no",
              result.all_at_root ? "yes" : "no",
              theorem1_bound(tree.num_nodes(), tree.depth(),
                             tree.max_degree(), k));
  // Digest of the final exploration state (PR3); lets a served run
  // (tools/bfdn_serve) be diffed against this CLI from the shell.
  std::printf("final_state_hash=%016llx\n",
              static_cast<unsigned long long>(result.final_state_hash));
  if (cli.get_bool("dot")) {
    std::vector<char> explored(
        static_cast<std::size_t>(tree.num_nodes()), 1);
    const std::vector<NodeId> home(static_cast<std::size_t>(k),
                                   tree.root());
    std::fputs(exploration_to_dot(tree, explored, home).c_str(), stdout);
  }
  return result.complete ? 0 : 1;
}

int cmd_game(int argc, const char* const* argv) {
  CliParser cli("bfdn game", "play the Section 3 urn game");
  cli.add_int("k", 64, "urns/balls");
  cli.add_int("delta", 64, "stop threshold Delta");
  cli.add_string("adversary", "greedy",
                 "greedy | eager | round-robin | random");
  cli.add_string("player", "least-loaded",
                 "least-loaded | random | most-loaded");
  cli.add_int("seed", 1, "seed for the random strategies");
  if (!cli.parse(argc, argv)) return 0;
  const auto k = static_cast<std::int32_t>(cli.get_int("k"));
  const auto delta = static_cast<std::int32_t>(cli.get_int("delta"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::unique_ptr<PlayerStrategy> player;
  const std::string player_name = cli.get_string("player");
  if (player_name == "least-loaded") player = make_least_loaded_player();
  if (player_name == "random") player = make_random_player(seed);
  if (player_name == "most-loaded") player = make_most_loaded_player();
  BFDN_REQUIRE(player != nullptr, "unknown --player " + player_name);

  std::unique_ptr<AdversaryStrategy> adversary;
  const std::string adversary_name = cli.get_string("adversary");
  if (adversary_name == "greedy") adversary = make_greedy_adversary();
  if (adversary_name == "eager") adversary = make_eager_adversary();
  if (adversary_name == "round-robin") {
    adversary = make_round_robin_adversary();
  }
  if (adversary_name == "random") adversary = make_random_adversary(seed);
  BFDN_REQUIRE(adversary != nullptr,
               "unknown --adversary " + adversary_name);

  const GameResult result =
      play_game(UrnBoard(k, delta), *player, *adversary);
  std::printf("k=%d delta=%d player=%s adversary=%s\n", k, delta,
              player->name().c_str(), adversary->name().c_str());
  std::printf("steps=%lld (Theorem 3 bound for least-loaded: %.0f)\n",
              static_cast<long long>(result.steps),
              theorem3_bound(k, delta));
  return 0;
}

int dispatch(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "help") == 0) {
    std::fputs(
        "bfdn <command> [flags]\n"
        "  generate  create a tree instance file\n"
        "  info      describe a tree instance\n"
        "  explore   run a collaborative exploration\n"
        "  game      play the Section 3 urn game\n"
        "Run 'bfdn <command> --help' for per-command flags.\n",
        argc < 2 ? stderr : stdout);
    return argc < 2 ? 2 : 0;
  }
  const std::string command = argv[1];
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  try {
    if (command == "generate") return cmd_generate(sub_argc, sub_argv);
    if (command == "info") return cmd_info(sub_argc, sub_argv);
    if (command == "explore") return cmd_explore(sub_argc, sub_argv);
    if (command == "game") return cmd_game(sub_argc, sub_argv);
  } catch (const CheckError& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 2;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) { return bfdn::dispatch(argc, argv); }
