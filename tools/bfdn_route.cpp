// bfdn_route — consistent-hash routing front end of a sharded fleet.
//
// Listens on a loopback TCP port for the same line-delimited JSON
// protocol bfdn_serve speaks, fingerprints each run request, and
// forwards it to the owning shard from --peers over pooled connections,
// splicing the shard's response bytes back verbatim (routed == solo,
// byte for byte). Campaigns are expanded here and fanned out member by
// member; hot keys (the Zipf head) are replicated across --replicas
// ring owners. `shard` requests answer routing introspection,
// `peer_stats` fans a stats probe across the fleet, and `ship_segment`
// with from/to orchestrates shard-to-shard cache shipping.
//
//   bfdn_route --port=7430 --peers=7431,7432
//   bfdn_route --port=0 --port-file=route.port --peers=7431,7432
//   bfdn_route --peers=7431,7432 --replicas=2 --hot-threshold=8
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <thread>

#include "cluster/peers.h"
#include "cluster/router.h"
#include "support/check.h"
#include "support/cli.h"

namespace bfdn {
namespace {

// Signal handlers may only touch lock-free atomics; the main loop polls.
volatile std::sig_atomic_t g_drain_requested = 0;

extern "C" void handle_signal(int) { g_drain_requested = 1; }

int run(int argc, const char* const* argv) {
  CliParser cli("bfdn_route",
                "route exploration requests across a shard fleet");
  cli.add_int("port", 7430, "listen port (0 = ephemeral)");
  cli.add_string("peers", "", "shard port list 'p0,p1,...' (required)");
  cli.add_int("vnodes", 64, "ring points per shard");
  cli.add_int("replicas", 2,
              "distinct owners a hot key is spread over (1 = off)");
  cli.add_int("hot-threshold", 8,
              "request count at which a key counts hot");
  cli.add_int("hot-capacity", 4096,
              "keys the hot tracker remembers (LRU beyond)");
  cli.add_int("retry-after-ms", 20,
              "suggested client back-off when a shard is unreachable");
  cli.add_int("forward-timeout-ms", 30000,
              "receive timeout on shard connections");
  cli.add_int("fanout-threads", 0,
              "campaign fan-out workers (0 = hardware)");
  cli.add_string("port-file", "",
                 "write the bound port here once listening (for scripts "
                 "using --port=0)");
  if (!cli.parse(argc, argv)) return 0;

  RouterOptions options;
  options.port = static_cast<std::uint16_t>(cli.get_int("port"));
  const std::string peers_spec = cli.get_string("peers");
  BFDN_REQUIRE(!peers_spec.empty(), "--peers is required");
  options.peers = parse_peer_ports(peers_spec);
  options.vnodes = static_cast<std::int32_t>(cli.get_int("vnodes"));
  options.replicas = static_cast<std::int32_t>(cli.get_int("replicas"));
  options.hot_threshold = cli.get_int("hot-threshold");
  options.hot_capacity =
      static_cast<std::size_t>(cli.get_int("hot-capacity"));
  options.retry_after_ms =
      static_cast<std::int32_t>(cli.get_int("retry-after-ms"));
  options.forward_timeout_ms =
      static_cast<std::int32_t>(cli.get_int("forward-timeout-ms"));
  options.fanout_threads =
      static_cast<std::int32_t>(cli.get_int("fanout-threads"));

  RouterServer router(options);
  router.start();

  const std::string port_file = cli.get_string("port-file");
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    BFDN_REQUIRE(out.good(), "cannot open --port-file " + port_file);
    out << router.port() << "\n";
  }
  std::fprintf(stdout,
               "bfdn_route listening on 127.0.0.1:%u (fleet of %zu)\n",
               router.port(), options.peers.size());
  std::fflush(stdout);

  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);
  while (g_drain_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::fprintf(stderr, "bfdn_route: drain requested, releasing "
                       "connections\n");
  router.drain();
  std::fprintf(stdout, "%s\n", router.stats_json().c_str());
  std::fflush(stdout);
  return 0;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) {
  try {
    return bfdn::run(argc, argv);
  } catch (const bfdn::CheckError& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
