// Tests for the balls-in-urns game (Section 3): board mechanics, the
// Theorem 3 bound for the least-loaded player against an adversary zoo,
// the exact value function R(N, u) and Lemma 4's structure, and the
// resource-allocation corollary.
#include <gtest/gtest.h>

#include <cmath>

#include "game/allocation.h"
#include "game/dp.h"
#include "game/minimax.h"
#include "game/urn_game.h"
#include "support/check.h"

namespace bfdn {
namespace {

TEST(UrnBoardTest, StandardStart) {
  const UrnBoard board(5, 3);
  EXPECT_EQ(board.k(), 5);
  EXPECT_EQ(board.delta(), 3);
  for (std::int32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(board.load(i), 1);
    EXPECT_FALSE(board.chosen_before(i));
  }
  EXPECT_EQ(board.balls_in_unchosen(), 5);
  EXPECT_EQ(board.num_unchosen(), 5);
  EXPECT_FALSE(board.finished());
}

TEST(UrnBoardTest, ApplyMovesBallAndMarksChosen) {
  UrnBoard board(4, 2);
  board.apply(0, 2);
  EXPECT_EQ(board.load(0), 0);
  EXPECT_EQ(board.load(2), 2);
  EXPECT_TRUE(board.chosen_before(0));
  EXPECT_FALSE(board.chosen_before(2));
  EXPECT_EQ(board.steps(), 1);
  EXPECT_EQ(board.num_unchosen(), 3);
}

TEST(UrnBoardTest, CannotTakeFromEmptyUrn) {
  UrnBoard board(3, 2);
  board.apply(0, 1);
  EXPECT_THROW(board.apply(0, 2), CheckError);
}

TEST(UrnBoardTest, FinishWhenUnchosenReachDelta) {
  UrnBoard board(3, 2);
  // Move balls from 0 and 1 into 2: urn 2 unchosen with 3 >= delta.
  board.apply(0, 2);
  EXPECT_FALSE(board.finished());
  board.apply(1, 2);
  EXPECT_TRUE(board.finished());
}

TEST(UrnBoardTest, DeltaGreaterThanKMeansAllChosen) {
  UrnBoard board(2, 100);
  board.apply(0, 1);
  EXPECT_FALSE(board.finished());
  board.apply(1, 0);
  EXPECT_TRUE(board.finished());
}

TEST(UrnBoardTest, Lemma2StartShape) {
  const UrnBoard board = UrnBoard::lemma2_start(8, 4, 3);
  EXPECT_EQ(board.num_unchosen(), 3);
  EXPECT_EQ(board.balls_in_unchosen(), 3);
  EXPECT_EQ(board.load(3), 5);  // the pre-chosen reservoir urn
  EXPECT_TRUE(board.chosen_before(3));
}

TEST(UrnBoardTest, Lemma2StartRejectsBadU) {
  EXPECT_THROW(UrnBoard::lemma2_start(4, 2, 4), CheckError);
  EXPECT_THROW(UrnBoard::lemma2_start(4, 2, -1), CheckError);
}

// ---------------------------------------------------------------------
// Theorem 3: least-loaded player vs adversary zoo, many (k, Delta).
// ---------------------------------------------------------------------

struct GameParam {
  std::int32_t k;
  std::int32_t delta;
};

class Theorem3Test : public ::testing::TestWithParam<GameParam> {};

TEST_P(Theorem3Test, LeastLoadedBeatsBoundAgainstAllAdversaries) {
  const auto [k, delta] = GetParam();
  const double bound = theorem3_bound(k, delta);
  std::vector<std::unique_ptr<AdversaryStrategy>> adversaries;
  adversaries.push_back(make_greedy_adversary());
  adversaries.push_back(make_eager_adversary());
  adversaries.push_back(make_round_robin_adversary());
  adversaries.push_back(make_random_adversary(1234));
  adversaries.push_back(make_random_adversary(5678));
  for (auto& adversary : adversaries) {
    auto player = make_least_loaded_player();
    const GameResult result =
        play_game(UrnBoard(k, delta), *player, *adversary);
    EXPECT_LE(static_cast<double>(result.steps), bound)
        << "adversary=" << adversary->name() << " k=" << k
        << " delta=" << delta;
  }
}

TEST_P(Theorem3Test, Lemma2InitialConditionAlsoBounded) {
  const auto [k, delta] = GetParam();
  // Modified start of Section 3.2 with the +3 slack of Lemma 2.
  const double bound =
      static_cast<double>(k) *
      (std::min(std::log(static_cast<double>(k)),
                std::log(static_cast<double>(delta))) +
       3.0);
  for (std::int32_t u : {0, k / 2, k - 1}) {
    auto player = make_least_loaded_player();
    auto adversary = make_greedy_adversary();
    const GameResult result = play_game(
        UrnBoard::lemma2_start(k, delta, u), *player, *adversary);
    EXPECT_LE(static_cast<double>(result.steps), bound)
        << "k=" << k << " delta=" << delta << " u=" << u;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Theorem3Test,
    ::testing::Values(GameParam{2, 2}, GameParam{4, 2}, GameParam{4, 16},
                      GameParam{8, 3}, GameParam{16, 16}, GameParam{16, 200},
                      GameParam{64, 8}, GameParam{64, 64},
                      GameParam{128, 1000}, GameParam{256, 4}),
    [](const ::testing::TestParamInfo<GameParam>& param_info) {
      return "k" + std::to_string(param_info.param.k) + "_d" +
             std::to_string(param_info.param.delta);
    });

TEST(GameAblationTest, MostLoadedPlayerIsWorseAgainstGreedy) {
  const std::int32_t k = 64;
  const std::int32_t delta = 64;
  auto good_player = make_least_loaded_player();
  auto bad_player = make_most_loaded_player();
  auto adv1 = make_greedy_adversary();
  auto adv2 = make_greedy_adversary();
  const auto good = play_game(UrnBoard(k, delta), *good_player, *adv1);
  const auto bad = play_game(UrnBoard(k, delta), *bad_player, *adv2);
  EXPECT_GT(bad.steps, good.steps);
}

// ---------------------------------------------------------------------
// Exact DP (Lemma 4 / Theorem 3 tightness).
// ---------------------------------------------------------------------

class RTableTest : public ::testing::TestWithParam<GameParam> {};

TEST_P(RTableTest, Lemma4StructureHolds) {
  const auto [k, delta] = GetParam();
  const RTable table(k, delta);
  EXPECT_TRUE(table.monotone_in_n());
  EXPECT_TRUE(table.option_a_dominates());
}

TEST_P(RTableTest, OptimumWithinTheorem3Bound) {
  const auto [k, delta] = GetParam();
  const RTable table(k, delta);
  EXPECT_LE(static_cast<double>(table.optimal_game_length()),
            theorem3_bound(k, delta));
}

TEST_P(RTableTest, GreedyAchievesDpOptimumExactly) {
  // The proof of Theorem 3 (Lemma 4) shows the adversary's optimal
  // policy is exactly greedy: re-choose chosen urns while a ball lies
  // outside U_t, else drain the fullest unchosen urn. The simulated
  // greedy adversary must therefore realize R(k, k) to the step.
  const auto [k, delta] = GetParam();
  const RTable table(k, delta);
  auto player = make_least_loaded_player();
  auto adversary = make_greedy_adversary();
  const GameResult sim = play_game(UrnBoard(k, delta), *player, *adversary);
  EXPECT_EQ(sim.steps, table.optimal_game_length());
}

INSTANTIATE_TEST_SUITE_P(
    SmallGrid, RTableTest,
    ::testing::Values(GameParam{2, 2}, GameParam{3, 2}, GameParam{4, 3},
                      GameParam{6, 2}, GameParam{8, 8}, GameParam{12, 5},
                      GameParam{16, 3}, GameParam{24, 24}),
    [](const ::testing::TestParamInfo<GameParam>& param_info) {
      return "k" + std::to_string(param_info.param.k) + "_d" +
             std::to_string(param_info.param.delta);
    });

TEST(RTableTest, GreedyTrajectoryTracksValueFunctionExactly) {
  // Along an optimal-play trajectory, the number of remaining steps
  // after each of player B's moves must equal R(N_t, u_t) — the value
  // function is tight at every prefix, not just at the start.
  const std::int32_t k = 12;
  const std::int32_t delta = 6;
  const RTable table(k, delta);
  auto player = make_least_loaded_player();
  auto adversary = make_greedy_adversary();

  // Re-play the game manually so we can inspect the board mid-run.
  UrnBoard board(k, delta);
  std::vector<std::pair<std::int32_t, std::int32_t>> states;  // (N, u)
  states.emplace_back(board.balls_in_unchosen(), board.num_unchosen());
  while (!board.finished()) {
    const std::int32_t from = adversary->choose_source(board);
    ASSERT_GE(from, 0);
    const std::int32_t to = player->choose_destination(board, from);
    board.apply(from, to);
    states.emplace_back(board.balls_in_unchosen(), board.num_unchosen());
  }
  const auto total = static_cast<std::int64_t>(states.size()) - 1;
  EXPECT_EQ(total, table.optimal_game_length());
  for (std::size_t i = 0; i < states.size(); ++i) {
    const auto [n, u] = states[i];
    EXPECT_EQ(table.r(n, u), total - static_cast<std::int64_t>(i))
        << "prefix " << i;
  }
}

TEST(RTableTest, TerminalConfigurationsAreZero) {
  const RTable table(6, 3);
  // Delta*u - N <= 0 -> 0 steps left.
  EXPECT_EQ(table.r(6, 2), 0);   // 3*2 - 6 = 0
  EXPECT_EQ(table.r(6, 1), 0);   // 3 - 6 < 0
  EXPECT_EQ(table.r(0, 0), 0);
}

// ---------------------------------------------------------------------
// Full minimax (both sides optimal): the least-loaded player strategy
// is not merely within the bound — it achieves the game's exact value.
// ---------------------------------------------------------------------

TEST(MinimaxTest, LeastLoadedPlayerIsMinimaxOptimal) {
  for (std::int32_t k = 1; k <= 7; ++k) {
    for (std::int32_t delta : {2, 3, k}) {
      if (delta < 1) continue;
      const RTable table(k, delta);
      EXPECT_EQ(minimax_game_length(k, delta),
                table.optimal_game_length())
          << "k=" << k << " delta=" << delta;
    }
  }
}

TEST(MinimaxTest, TinyGamesByHand) {
  // k = 1, delta = 1: the single urn already holds 1 >= delta... but it
  // is unchosen with load 1, so the game is over before any move.
  EXPECT_EQ(minimax_game_length(1, 1), 0);
  // k = 2, delta = 2: adversary takes from one urn, player must stack
  // the other to 2 -> finished in exactly 1 step under optimal play.
  EXPECT_EQ(minimax_game_length(2, 2), 1);
}

TEST(MinimaxTest, ValueWithinTheorem3Bound) {
  for (std::int32_t k = 2; k <= 7; ++k) {
    EXPECT_LE(static_cast<double>(minimax_game_length(k, k)),
              theorem3_bound(k, k))
        << "k=" << k;
  }
}

TEST(MinimaxTest, ValueGrowsWithDelta) {
  const std::int64_t small = minimax_game_length(6, 2);
  const std::int64_t large = minimax_game_length(6, 6);
  EXPECT_LE(small, large);
}

// ---------------------------------------------------------------------
// Resource allocation (Section 1 corollary).
// ---------------------------------------------------------------------

TEST(AllocationTest, UniformTasksNeedFewSwitches) {
  const std::vector<std::int64_t> work(16, 100);
  const auto result =
      simulate_allocation(work, ReassignRule::kLeastCrowded);
  // All tasks end simultaneously: no mid-run switches are useful.
  EXPECT_LE(result.switches, allocation_switch_bound(16));
  EXPECT_EQ(result.rounds, 100);
}

TEST(AllocationTest, SwitchBoundHoldsOnSkewedWorkloads) {
  Rng rng(5);
  for (int rep = 0; rep < 10; ++rep) {
    std::vector<std::int64_t> work;
    for (int t = 0; t < 32; ++t) {
      // Heavy-tailed lengths exercise many reassignment waves.
      const std::int64_t base = static_cast<std::int64_t>(rng.next_below(8));
      work.push_back(1 + base * base * base);
    }
    const auto result =
        simulate_allocation(work, ReassignRule::kLeastCrowded, 7);
    EXPECT_LE(static_cast<double>(result.switches),
              allocation_switch_bound(32))
        << "rep=" << rep;
  }
}

TEST(AllocationTest, ZeroLengthTasksHandled) {
  const std::vector<std::int64_t> work{0, 0, 5, 0};
  const auto result =
      simulate_allocation(work, ReassignRule::kLeastCrowded);
  EXPECT_EQ(result.rounds, 2);  // 4 workers, 5 units, ceil(5/4) = 2
}

TEST(AllocationTest, MakespanIsWorkOverWorkersRounded) {
  // One huge task: all workers converge onto it.
  std::vector<std::int64_t> work(8, 0);
  work[3] = 800;
  const auto result =
      simulate_allocation(work, ReassignRule::kLeastCrowded);
  EXPECT_EQ(result.rounds, 100);
  EXPECT_LE(result.switches, 8);
}

TEST(AllocationTest, AllRulesFinishAllWork) {
  Rng rng(11);
  std::vector<std::int64_t> work;
  for (int t = 0; t < 16; ++t) {
    work.push_back(static_cast<std::int64_t>(rng.next_below(50)));
  }
  for (ReassignRule rule :
       {ReassignRule::kLeastCrowded, ReassignRule::kRandom,
        ReassignRule::kFirstUnfinished, ReassignRule::kMostCrowded}) {
    const auto result = simulate_allocation(work, rule, 3);
    EXPECT_GE(result.rounds, 1) << reassign_rule_name(rule);
    // Lower bound: rounds >= total/k.
    EXPECT_GE(result.rounds * 16, result.total_work)
        << reassign_rule_name(rule);
  }
}

TEST(AllocationTest, LeastCrowdedBeatsMostCrowdedOnSkew) {
  std::vector<std::int64_t> work(16, 10);
  work[0] = 1000;
  const auto good =
      simulate_allocation(work, ReassignRule::kLeastCrowded);
  const auto bad = simulate_allocation(work, ReassignRule::kMostCrowded);
  EXPECT_LE(good.rounds, bad.rounds);
}

}  // namespace
}  // namespace bfdn
