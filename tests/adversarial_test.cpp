// Tests for the break-down setting of Section 4.2 (Proposition 7): the
// BFDN variant that iterates only over movable robots must visit every
// edge once the adversary has granted enough average distance A(M).
#include <gtest/gtest.h>

#include <cmath>

#include "adversarial/reactive.h"
#include "adversarial/schedules.h"
#include "core/bfdn.h"
#include "graph/generators.h"
#include "sim/engine.h"

namespace bfdn {
namespace {

/// Horizon generous enough that every schedule's A(M) clears the
/// Proposition 7 threshold for this tree.
std::int64_t generous_horizon(const Tree& tree, std::int32_t k,
                              double allowed_fraction) {
  const double bound =
      proposition7_bound(tree.num_nodes(), tree.depth(), k);
  return static_cast<std::int64_t>(bound / allowed_fraction) + 64;
}

RunResult run_with_schedule(const Tree& tree, std::int32_t k,
                            BreakdownSchedule& schedule) {
  BfdnAlgorithm algo(k);
  RunConfig config;
  config.num_robots = k;
  config.schedule = &schedule;
  config.max_rounds = std::numeric_limits<std::int64_t>::max() / 4;
  return run_exploration(tree, algo, config);
}

TEST(ScheduleTest, FullScheduleGrantsEverything) {
  auto schedule = make_full_schedule(10, 4);
  for (std::int64_t t = 0; t < 10; ++t) {
    for (std::int32_t i = 0; i < 4; ++i) {
      EXPECT_TRUE(schedule->allowed(t, i));
    }
  }
  EXPECT_FALSE(schedule->allowed(10, 0));
  EXPECT_TRUE(schedule->exhausted(10));
  EXPECT_EQ(schedule->granted_moves(), 40);
  EXPECT_DOUBLE_EQ(schedule->average_allowed(), 10.0);
}

TEST(ScheduleTest, RoundRobinGrantsOnePerRound) {
  auto schedule = make_round_robin_schedule(8, 4);
  for (std::int64_t t = 0; t < 8; ++t) {
    std::int32_t granted = 0;
    for (std::int32_t i = 0; i < 4; ++i) {
      granted += schedule->allowed(t, i);
    }
    EXPECT_EQ(granted, 1);
  }
}

TEST(ScheduleTest, RandomScheduleIsDeterministicPerCell) {
  auto a = make_random_schedule(100, 4, 0.5, 9);
  auto b = make_random_schedule(100, 4, 0.5, 9);
  for (std::int64_t t = 0; t < 100; ++t) {
    for (std::int32_t i = 0; i < 4; ++i) {
      EXPECT_EQ(a->allowed(t, i), b->allowed(t, i));
    }
  }
}

TEST(ScheduleTest, BurstAlternates) {
  auto schedule = make_burst_schedule(20, 2, 3);
  EXPECT_TRUE(schedule->allowed(0, 0));
  EXPECT_TRUE(schedule->allowed(2, 0));
  EXPECT_FALSE(schedule->allowed(3, 0));
  EXPECT_FALSE(schedule->allowed(5, 0));
  EXPECT_TRUE(schedule->allowed(6, 0));
}

TEST(ScheduleTest, RollingOutageBlocksHalf) {
  auto schedule = make_rolling_outage_schedule(10, 8, 2);
  std::int32_t granted = 0;
  for (std::int32_t i = 0; i < 8; ++i) granted += schedule->allowed(0, i);
  EXPECT_EQ(granted, 4);
}

// ---------------------------------------------------------------------
// Proposition 7 end-to-end.
// ---------------------------------------------------------------------

TEST(Proposition7Test, FullScheduleBehavesLikePlainBfdn) {
  const Tree tree = make_comb(10, 10);
  const std::int32_t k = 8;
  auto schedule =
      make_full_schedule(generous_horizon(tree, k, 1.0), k);
  const RunResult result = run_with_schedule(tree, k, *schedule);
  EXPECT_TRUE(result.complete);
}

TEST(Proposition7Test, AllSchedulesEventuallyVisitEverything) {
  Rng rng(88);
  const Tree tree = make_tree_with_depth(300, 9, rng);
  const std::int32_t k = 6;
  std::vector<std::unique_ptr<FiniteSchedule>> schedules;
  schedules.push_back(
      make_round_robin_schedule(generous_horizon(tree, k, 1.0 / k), k));
  schedules.push_back(make_random_schedule(
      generous_horizon(tree, k, 0.25), k, 0.4, 123));
  schedules.push_back(
      make_burst_schedule(generous_horizon(tree, k, 0.4), k, 7));
  schedules.push_back(make_rolling_outage_schedule(
      generous_horizon(tree, k, 0.4), k, 5));
  for (auto& schedule : schedules) {
    const RunResult result = run_with_schedule(tree, k, *schedule);
    EXPECT_TRUE(result.complete) << schedule->name();
  }
}

TEST(Proposition7Test, WorkConsumedStaysWithinGrantedBudget) {
  // Robots can never move more than the adversary allowed.
  const Tree tree = make_broom(20, 40);
  const std::int32_t k = 5;
  auto schedule = make_random_schedule(
      generous_horizon(tree, k, 0.3), k, 0.5, 321);
  const RunResult result = run_with_schedule(tree, k, *schedule);
  ASSERT_TRUE(result.complete);
  std::int64_t moves = 0;
  for (auto m : result.robot_moves) moves += m;
  EXPECT_LE(moves, schedule->granted_moves());
}

TEST(Proposition7Test, CompletionBeforeAverageBoundExhausted) {
  // The contrapositive reading of Proposition 7: by the time A(M)
  // reaches the bound, exploration is done. We measure the A(M) actually
  // consumed at completion and check it is below the bound.
  for (const auto& [name, tree] : make_tree_zoo(150, 909)) {
    const std::int32_t k = 6;
    auto schedule = make_random_schedule(
        generous_horizon(tree, k, 0.2), k, 0.6, 55);
    const RunResult result = run_with_schedule(tree, k, *schedule);
    ASSERT_TRUE(result.complete) << name;
    EXPECT_LE(schedule->average_allowed(),
              proposition7_bound(tree.num_nodes(), tree.depth(), k))
        << name;
  }
}

TEST(Proposition7Test, TooShortHorizonLeavesTreeUnexplored) {
  const Tree tree = make_path(200);
  const std::int32_t k = 3;
  auto schedule = make_full_schedule(50, k);  // path needs ~200 rounds
  const RunResult result = run_with_schedule(tree, k, *schedule);
  EXPECT_FALSE(result.complete);
}

// ---------------------------------------------------------------------
// Remark 8: reactive adversaries (observe selections, then block).
// ---------------------------------------------------------------------

RunResult run_reactive(const Tree& tree, std::int32_t k,
                       ReactiveAdversary& adversary) {
  BfdnAlgorithm algo(k);
  RunConfig config;
  config.num_robots = k;
  config.reactive = &adversary;
  return run_exploration(tree, algo, config);
}

TEST(ReactiveAdversaryTest, ZeroBudgetStillCompletes) {
  Rng rng(5);
  const Tree tree = make_tree_with_depth(400, 10, rng);
  const std::int32_t k = 6;
  auto blocker = make_discovery_blocker(0);
  const RunResult blocked = run_reactive(tree, k, *blocker);
  EXPECT_TRUE(blocked.complete);
  EXPECT_EQ(blocked.reactive_blocks, 0);
  // Reactive mode stops at completion (no return leg), so every edge
  // was discovered but up-legs may be missing.
  EXPECT_GE(blocked.edge_events, tree.num_nodes() - 1);
  EXPECT_LE(blocked.edge_events, 2 * (tree.num_nodes() - 1));
}

TEST(ReactiveAdversaryTest, DiscoveryBlockerDelaysButCannotStop) {
  Rng rng(6);
  const Tree tree = make_tree_with_depth(400, 10, rng);
  const std::int32_t k = 6;
  auto blocker = make_discovery_blocker(500);
  const RunResult result = run_reactive(tree, k, *blocker);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(blocker->blocks_spent(), 500);  // it spends everything
  // Each block wastes at most one robot-round; progress resumes after.
  auto unblocked = make_discovery_blocker(0);
  const RunResult baseline = run_reactive(tree, k, *unblocked);
  EXPECT_GE(result.rounds, baseline.rounds);
}

TEST(ReactiveAdversaryTest, BlockingTrailingRobotsBarelyHurts) {
  // Robots 6 and 7 select LAST each round, so they rarely hold frontier
  // reservations; freezing them leaves the others fully productive.
  const Tree tree = make_comb(12, 12);
  const std::int32_t k = 8;
  auto blocker = make_targeted_blocker(100000, {6, 7});
  const RunResult result = run_reactive(tree, k, *blocker);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.robot_moves[6] + result.robot_moves[7], 0);
  // The remaining six robots explore the 156-node comb in normal time.
  EXPECT_LE(result.rounds, 1000);
}

TEST(ReactiveAdversaryTest, FrontierHoardingStarvationIsReal) {
  // The flip side — and the point of Remark 8: robots 0 and 1 select
  // FIRST, so each round they reserve the (two) shallowest dangling
  // edges; the adversary then freezes exactly them. The reservations
  // are cancelled too late for anyone else to take the edges, so the
  // whole team is starved for ~budget/2 rounds. Section 4.2's oblivious
  // model excludes this by keeping blocked robots out of the selection
  // loop; a selection-observing adversary brings it back.
  const Tree tree = make_comb(12, 12);
  const std::int32_t k = 8;
  const std::int64_t budget = 2000;
  auto blocker = make_targeted_blocker(budget, {0, 1});
  const RunResult result = run_reactive(tree, k, *blocker);
  EXPECT_TRUE(result.complete);          // budget finiteness saves us
  EXPECT_GE(result.rounds, budget / 2);  // but the stall really happens
}

TEST(ReactiveAdversaryTest, RandomBlockerZoo) {
  for (const auto& [name, tree] : make_tree_zoo(120, 33)) {
    auto blocker = make_random_blocker(300, 0.3, 11);
    const RunResult result = run_reactive(tree, 5, *blocker);
    EXPECT_TRUE(result.complete) << name;
    EXPECT_LE(result.reactive_blocks, 300) << name;
  }
}

TEST(ReactiveAdversaryTest, CancelledReservationIsRetakeable) {
  // A path has one dangling edge at a time; the discovery blocker
  // cancels its reservation repeatedly. The edge must return to the
  // pool each time and be explored once the budget runs dry.
  const Tree tree = make_path(6);
  auto blocker = make_discovery_blocker(7);
  const RunResult result = run_reactive(tree, 2, *blocker);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(blocker->blocks_spent(), 7);
  // Every one of the 5 edges was discovered (traversed downward).
  EXPECT_GE(result.edge_events, tree.num_nodes() - 1);
}

TEST(ReactiveAdversaryTest, BlockedReserverWithJoinerKeepsReservation) {
  // Group-moving algorithm + reactive block of the reserver: the
  // joiner still crosses the edge, so the reservation must be consumed
  // by its commit, not released. (Regression test for the
  // release-while-joined engine bug.)
  class Caravan : public Algorithm {
   public:
    std::string name() const override { return "caravan"; }
    void select_moves(const ExplorationView& view,
                      MoveSelector& sel) override {
      // Robot 0 reserves whenever it can; a co-located robot 1 joins
      // that very edge (the regression: robot 0 then gets blocked, and
      // the reservation must survive for robot 1's commit). When the
      // pair is split up, robot 1 explores depth-next on its own.
      NodeId token = kInvalidNode;
      if (view.has_unreserved_dangling(view.robot_pos(0))) {
        token = sel.try_take_dangling(0);
      }
      if (token != kInvalidNode &&
          view.robot_pos(1) == view.robot_pos(0)) {
        sel.join_dangling(1, token);
        return;
      }
      if (sel.try_take_dangling(1) == kInvalidNode) {
        sel.move_up(1);  // ⊥ at the root
      }
    }
  };
  const Tree tree = make_path(6);
  Caravan algo;
  auto blocker = make_targeted_blocker(100, {0});  // always block robot 0
  RunConfig config;
  config.num_robots = 2;
  config.reactive = blocker.get();
  const RunResult result = run_exploration(tree, algo, config);
  // Robot 1 (the joiner) explores the whole path alone while robot 0
  // stays frozen at the root.
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.robot_moves[0], 0);
  EXPECT_GE(result.robot_moves[1], tree.num_nodes() - 1);
}

TEST(Proposition7Test, BlockedAnchorForcesLogKBranch) {
  // Sanity on the bound helper: Proposition 7 uses log(k), never
  // log(Delta).
  EXPECT_NEAR(proposition7_bound(100, 5, 8),
              25.0 + 25.0 * (std::log(8.0) + 3.0), 1e-9);
}

}  // namespace
}  // namespace bfdn
