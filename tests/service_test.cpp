// Tests for the exploration service (src/service): protocol round
// trips, content-addressed cache semantics, scheduler admission
// control, and the end-to-end contract — a served run is bit-identical
// to the same run through the engine directly.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/cache.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/scheduler.h"
#include "service/server.h"
#include "sim/engine.h"
#include "support/check.h"
#include "support/socket.h"
#include "support/strings.h"
#include "verify/spec.h"

namespace bfdn {
namespace {

// Positional ServerOptions literals predate the store fields; build
// options by assignment so new trailing members keep their defaults.
ServerOptions server_options(std::int32_t threads, std::int32_t queue,
                             std::size_t cache,
                             std::int32_t retry_after_ms = 20,
                             std::int64_t max_nodes = 1000000) {
  ServerOptions options;
  options.threads = threads;
  options.queue_capacity = queue;
  options.cache_capacity = cache;
  options.retry_after_ms = retry_after_ms;
  options.max_nodes = max_nodes;
  return options;
}

ServiceRequest golden_request() {
  ServiceRequest request;
  request.id = "g";
  request.recipe.family = "comb";
  request.recipe.arms = 12;
  request.recipe.depth = 6;
  request.algo.kind = AlgoKind::kBfdn;
  request.algo.k = 4;
  return request;
}

/// A request whose run takes on the order of a second: a long path with
/// fast-forward off (implied by invariant checking), so the admission
/// window stays occupied long enough to observe backpressure and drain
/// behaviour deterministically.
ServiceRequest slow_request() {
  ServiceRequest request;
  request.id = "slow";
  request.recipe.family = "path";
  request.recipe.nodes = 12000;
  request.algo.kind = AlgoKind::kBfdn;
  request.algo.k = 2;
  request.check_invariants = true;
  return request;
}

// --- protocol ---

TEST(ServiceProtocolTest, SerializeParseRoundTrip) {
  ServiceRequest request;
  request.id = "req-1";
  request.recipe = TreeRecipe{"spider", 400, 9, 6, 77};
  request.algo.kind = AlgoKind::kBfdn;
  request.algo.k = 8;
  request.algo.options.shortcut_reanchor = true;
  request.algo.options.policy = ReanchorPolicy::kRandom;
  request.algo.options.seed = 123456789;
  request.algo.options.depth_cap = 5;
  request.schedule.kind = ScheduleKind::kBurst;
  request.schedule.horizon = 5000;
  request.schedule.period = 3;
  request.max_rounds = 9000;
  request.fast_forward = false;
  request.check_invariants = true;

  const std::string line = serialize_request(request);
  ServiceRequest parsed;
  std::string error;
  ASSERT_TRUE(parse_request(line, parsed, &error)) << error;
  EXPECT_EQ(serialize_request(parsed), line);
  EXPECT_EQ(canonical_request(parsed), canonical_request(request));
  EXPECT_EQ(request_fingerprint(parsed), request_fingerprint(request));
}

TEST(ServiceProtocolTest, AsyncSerializeParseRoundTrip) {
  ServiceRequest request;
  request.id = "req-async";
  request.recipe = TreeRecipe{"comb", 300, 8, 6, 11};
  request.algo.kind = AlgoKind::kBfdn;
  request.algo.k = 6;
  request.async.kind = AsyncKind::kLaggard;
  request.async.seed = 99;
  request.async.max_delay = 4;
  request.async.period = 3;
  request.async.num_slow = 2;

  const std::string line = serialize_request(request);
  ServiceRequest parsed;
  std::string error;
  ASSERT_TRUE(parse_request(line, parsed, &error)) << error;
  EXPECT_EQ(serialize_request(parsed), line);
  EXPECT_EQ(canonical_request(parsed), canonical_request(request));
  EXPECT_EQ(request_fingerprint(parsed), request_fingerprint(request));

  // The async axis is a semantic field: it must separate cache keys
  // from the synchronous request and from other async kinds.
  ServiceRequest other = request;
  other.async.kind = AsyncKind::kNone;
  EXPECT_NE(request_fingerprint(request), request_fingerprint(other));
  other = request;
  other.async.kind = AsyncKind::kFixedRate;
  EXPECT_NE(request_fingerprint(request), request_fingerprint(other));
}

TEST(ServiceProtocolTest, ParseRejectsAsyncCombinedWithSchedule) {
  ServiceRequest out;
  std::string error;
  EXPECT_FALSE(parse_request(
      "{\"type\":\"run\",\"schedule\":\"burst\",\"horizon\":100,"
      "\"async\":\"laggard\"}",
      out, &error));
  EXPECT_NE(error.find("mutually exclusive"), std::string::npos);
  EXPECT_FALSE(parse_request("{\"type\":\"run\",\"async\":\"warped\"}",
                             out, &error));
  EXPECT_NE(error.find("async"), std::string::npos);
  EXPECT_FALSE(parse_request(
      "{\"type\":\"run\",\"async\":\"fixed-rate\",\"async_period\":0}",
      out, &error));
}

TEST(ServiceProtocolTest, FingerprintIgnoresRequestId) {
  ServiceRequest a = golden_request();
  ServiceRequest b = golden_request();
  b.id = "entirely-different";
  EXPECT_EQ(request_fingerprint(a), request_fingerprint(b));
}

TEST(ServiceProtocolTest, FingerprintSeparatesSemanticFields) {
  const ServiceRequest base = golden_request();
  ServiceRequest other = base;
  other.algo.k = base.algo.k + 1;
  EXPECT_NE(request_fingerprint(base), request_fingerprint(other));
  other = base;
  other.recipe.seed += 1;
  EXPECT_NE(request_fingerprint(base), request_fingerprint(other));
  other = base;
  other.fast_forward = false;
  EXPECT_NE(request_fingerprint(base), request_fingerprint(other));
}

TEST(ServiceProtocolTest, ParseRejectsMalformedRequests) {
  ServiceRequest out;
  std::string error;
  EXPECT_FALSE(parse_request("not json", out, &error));
  EXPECT_FALSE(parse_request("{\"type\":\"run\",\"family\":\"lattice\"}",
                             out, &error));
  EXPECT_NE(error.find("family"), std::string::npos);
  EXPECT_FALSE(parse_request("{\"type\":\"run\",\"k\":0}", out, &error));
  EXPECT_FALSE(
      parse_request("{\"type\":\"run\",\"algo\":\"writeread\"}", out,
                    &error));
  EXPECT_FALSE(parse_request(
      "{\"type\":\"run\",\"schedule\":\"burst\"}", out, &error));
  EXPECT_NE(error.find("horizon"), std::string::npos);
}

TEST(ServiceProtocolTest, CampaignSerializeParseRoundTrip) {
  ServiceRequest request;
  request.type = RequestType::kCampaign;
  request.id = "camp-1";
  request.recipe = TreeRecipe{"comb", 400, 6, 10, 9};
  request.algo.kind = AlgoKind::kBfdn;
  request.algo.k = 4;
  request.campaign_ks = {2, 4, 8};
  request.campaign_seeds = {11, 12};

  const std::string line = serialize_request(request);
  ServiceRequest parsed;
  std::string error;
  ASSERT_TRUE(parse_request(line, parsed, &error)) << error;
  EXPECT_EQ(parsed.type, RequestType::kCampaign);
  EXPECT_EQ(parsed.campaign_ks, request.campaign_ks);
  EXPECT_EQ(parsed.campaign_seeds, request.campaign_seeds);
  EXPECT_EQ(serialize_request(parsed), line);

  // Expansion is the k-major cross product, and every member's
  // fingerprint is the fingerprint a direct solo request would get.
  const std::vector<ServiceRequest> members = expand_campaign(parsed);
  ASSERT_EQ(members.size(), 6u);
  std::size_t slot = 0;
  for (const std::int32_t k : request.campaign_ks) {
    for (const std::uint64_t seed : request.campaign_seeds) {
      ServiceRequest solo = request;
      solo.type = RequestType::kRun;
      solo.campaign_ks.clear();
      solo.campaign_seeds.clear();
      solo.algo.k = k;
      solo.algo.options.seed = seed;
      EXPECT_EQ(request_fingerprint(members[slot]),
                request_fingerprint(solo));
      ++slot;
    }
  }
}

TEST(ServiceProtocolTest, CampaignParseRejectsOversizedAndBadArrays) {
  ServiceRequest out;
  std::string error;
  // 9 x 9 = 81 members > the 64-member cap.
  EXPECT_FALSE(parse_request(
      "{\"type\":\"campaign\",\"ks\":[1,2,3,4,5,6,7,8,9],"
      "\"algo_seeds\":[1,2,3,4,5,6,7,8,9]}",
      out, &error));
  EXPECT_NE(error.find("members"), std::string::npos);
  EXPECT_FALSE(parse_request("{\"type\":\"campaign\",\"ks\":3}", out,
                             &error));
  EXPECT_NE(error.find("array"), std::string::npos);
  EXPECT_FALSE(parse_request("{\"type\":\"campaign\",\"ks\":[0]}", out,
                             &error));
}

TEST(ServiceProtocolTest, BatchCoalesceKeyTracksSeedConsumption) {
  ServiceRequest request = golden_request();
  // Least-loaded BFDN never consumes its seed: a seed sweep shares one
  // coalesce key.
  ServiceRequest other = request;
  other.algo.options.seed = request.algo.options.seed + 17;
  EXPECT_FALSE(batch_coalesce_key(request).empty());
  EXPECT_EQ(batch_coalesce_key(request), batch_coalesce_key(other));
  // ...but differing non-seed fields must separate keys.
  other = request;
  other.algo.k += 1;
  EXPECT_NE(batch_coalesce_key(request), batch_coalesce_key(other));
  // The random reanchor policy consumes the seed: never coalesced.
  ServiceRequest random_policy = request;
  random_policy.algo.options.policy = ReanchorPolicy::kRandom;
  EXPECT_TRUE(batch_coalesce_key(random_policy).empty());
}

// --- cache ---

TEST(ResultCacheTest, HitReturnsStoredBytesAndCounts) {
  ResultCache cache(4);
  EXPECT_FALSE(cache.get(1).has_value());
  cache.put(1, "{\"rounds\":7}");
  const auto hit = cache.get(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "{\"rounds\":7}");
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedFirst) {
  ResultCache cache(2);
  cache.put(1, "one");
  cache.put(2, "two");
  // Refresh key 1: key 2 becomes the LRU entry.
  ASSERT_TRUE(cache.get(1).has_value());
  cache.put(3, "three");
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_TRUE(cache.get(3).has_value());
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ResultCacheTest, DuplicatePutKeepsFirstValue) {
  ResultCache cache(2);
  cache.put(9, "original");
  cache.put(9, "imposter");
  EXPECT_EQ(*cache.get(9), "original");
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ResultCacheTest, ZeroCapacityDisablesCaching) {
  ResultCache cache(0);
  cache.put(1, "x");
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().evictions, 0);
}

// --- scheduler ---

TEST(SchedulerTest, RejectsWhenAdmissionWindowFull) {
  SchedulerOptions options;
  options.threads = 1;
  options.queue_capacity = 1;
  Scheduler scheduler(options);

  std::shared_ptr<Scheduler::Job> slow;
  ASSERT_EQ(scheduler.submit(slow_request(), &slow),
            Scheduler::Admit::kAdmitted);
  // The window is a bound on admitted-but-not-completed jobs, so the
  // very next submit must bounce regardless of worker progress.
  std::shared_ptr<Scheduler::Job> rejected;
  EXPECT_EQ(scheduler.submit(golden_request(), &rejected),
            Scheduler::Admit::kQueueFull);

  const JobOutcome& outcome = slow->wait();
  EXPECT_TRUE(outcome.ok) << outcome.payload;
  // Completion reopens the window (poll: the depth decrement races the
  // wait() wake-up by design).
  std::shared_ptr<Scheduler::Job> retried;
  Scheduler::Admit admit = Scheduler::Admit::kQueueFull;
  for (int i = 0; i < 200 && admit != Scheduler::Admit::kAdmitted; ++i) {
    admit = scheduler.submit(golden_request(), &retried);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(admit, Scheduler::Admit::kAdmitted);
  EXPECT_TRUE(retried->wait().ok);
  // At least the guaranteed rejection above; the reopen-poll may have
  // bounced a few more times before the depth decrement landed.
  EXPECT_GE(scheduler.stats().rejected_full, 1);
}

TEST(SchedulerTest, DrainCompletesEveryAdmittedJob) {
  SchedulerOptions options;
  options.threads = 2;
  options.queue_capacity = 16;
  Scheduler scheduler(options);

  std::vector<std::shared_ptr<Scheduler::Job>> jobs;
  for (int i = 0; i < 6; ++i) {
    ServiceRequest request = golden_request();
    request.recipe.seed = static_cast<std::uint64_t>(i + 1);
    std::shared_ptr<Scheduler::Job> job;
    ASSERT_EQ(scheduler.submit(request, &job),
              Scheduler::Admit::kAdmitted);
    jobs.push_back(std::move(job));
  }
  scheduler.drain();
  for (const auto& job : jobs) {
    EXPECT_TRUE(job->wait().ok) << job->wait().payload;
  }
  std::shared_ptr<Scheduler::Job> late;
  EXPECT_EQ(scheduler.submit(golden_request(), &late),
            Scheduler::Admit::kDraining);
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.admitted, 6);
  EXPECT_EQ(stats.completed, 6);
  EXPECT_EQ(stats.rejected_draining, 1);
}

TEST(SchedulerTest, BatchingDoesNotChangeResults) {
  // Identical-recipe jobs submitted back-to-back (the batcher shares
  // one tree build) against one job run alone: every outcome must be
  // byte-identical. Batching itself is opportunistic — the dispatcher
  // may wake between submits and dispatch singletons (common under a
  // sanitizer on one core) — so rounds repeat until a batch forms; the
  // byte-identity invariant is asserted on every round regardless.
  ServiceRequest request = golden_request();
  const Tree tree = request.recipe.build();
  const std::string direct = execute_run(request, tree);

  SchedulerOptions options;
  options.threads = 4;
  options.queue_capacity = 16;
  Scheduler scheduler(options);
  std::int64_t submitted = 0;
  for (int round = 0; round < 50; ++round) {
    std::vector<std::shared_ptr<Scheduler::Job>> jobs;
    for (int i = 0; i < 8; ++i) {
      std::shared_ptr<Scheduler::Job> job;
      ASSERT_EQ(scheduler.submit(request, &job),
                Scheduler::Admit::kAdmitted);
      jobs.push_back(std::move(job));
      ++submitted;
    }
    for (const auto& job : jobs) {
      const JobOutcome& outcome = job->wait();
      ASSERT_TRUE(outcome.ok) << outcome.payload;
      EXPECT_EQ(outcome.payload, direct);
    }
    if (scheduler.stats().batched_jobs > 0) break;
  }
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.completed, submitted);
  // At least one round grouped jobs over a shared tree build.
  EXPECT_GT(stats.batched_jobs, 0);
  EXPECT_LT(stats.trees_built, submitted);
}

// --- end to end ---

std::string hash_hex(std::uint64_t hash) {
  return str_format("%016llx", static_cast<unsigned long long>(hash));
}

TEST(ServiceEndToEndTest, GoldenGridMatchesDirectEngineRun) {
  ServiceServer server(
      server_options(/*threads=*/4, /*queue=*/32, /*cache=*/64));
  server.start();
  ServiceClient client(server.port());

  struct Cell {
    const char* family;
    std::int64_t nodes;
    std::int32_t depth;
    std::int32_t arms;
    AlgoKind algo;
    std::int32_t k;
    ScheduleKind schedule;
  };
  const std::vector<Cell> grid = {
      {"comb", 500, 6, 12, AlgoKind::kBfdn, 4, ScheduleKind::kNone},
      {"random", 400, 12, 8, AlgoKind::kBfdn, 8, ScheduleKind::kNone},
      {"spider", 300, 10, 6, AlgoKind::kBfdnEll, 6, ScheduleKind::kNone},
      {"binary", 500, 7, 2, AlgoKind::kBfsLevels, 8, ScheduleKind::kNone},
      {"cte-hard", 300, 5, 4, AlgoKind::kCte, 9, ScheduleKind::kNone},
      {"caterpillar", 350, 8, 3, AlgoKind::kBfdn, 6,
       ScheduleKind::kRoundRobin},
      {"broom", 260, 9, 5, AlgoKind::kBfdn, 5, ScheduleKind::kBurst},
  };

  for (const Cell& cell : grid) {
    ServiceRequest request;
    request.id = str_format("%s-k%d", cell.family, cell.k);
    request.recipe.family = cell.family;
    request.recipe.nodes = cell.nodes;
    request.recipe.depth = cell.depth;
    request.recipe.arms = cell.arms;
    request.recipe.seed = 5;
    request.algo.kind = cell.algo;
    request.algo.k = cell.k;
    if (cell.algo == AlgoKind::kBfdnEll) request.algo.ell = 2;
    request.schedule.kind = cell.schedule;
    if (cell.schedule != ScheduleKind::kNone) {
      request.schedule.horizon = 200000;
      request.schedule.period = 2;
    }

    // Direct run: same tree, same spec, straight through the engine.
    const Tree tree = request.recipe.build();
    const std::unique_ptr<Algorithm> algorithm =
        make_algorithm(request.algo, tree);
    RunConfig config;
    config.num_robots = request.algo.k;
    const std::unique_ptr<FiniteSchedule> schedule =
        request.schedule.make(request.algo.k);
    config.schedule = schedule.get();
    const RunResult direct = run_exploration(tree, *algorithm, config);

    const JsonValue response = client.run(request);
    ASSERT_EQ(response.get_string("status", ""), "ok")
        << request.id << ": "
        << response.get_string("error", "(no error field)");
    EXPECT_EQ(response.get_string("id", ""), request.id);
    const JsonValue& result = response.at("result");
    EXPECT_EQ(result.get_int("rounds", -1), direct.rounds) << request.id;
    EXPECT_EQ(result.get_bool("complete", false), direct.complete);
    EXPECT_EQ(result.get_string("final_state_hash", ""),
              hash_hex(direct.final_state_hash))
        << request.id;
  }
  server.drain();
}

TEST(ServiceEndToEndTest, AsyncRunsMatchDirectEngineRuns) {
  ServiceServer server(
      server_options(/*threads=*/4, /*queue=*/32, /*cache=*/64));
  server.start();
  ServiceClient client(server.port());

  struct Cell {
    const char* family;
    std::int32_t k;
    AsyncKind async;
  };
  const std::vector<Cell> grid = {
      {"comb", 4, AsyncKind::kRoundRobin},
      {"spider", 6, AsyncKind::kFixedRate},
      {"caterpillar", 8, AsyncKind::kLaggard},
      {"random", 8, AsyncKind::kRandom},
  };
  for (const Cell& cell : grid) {
    ServiceRequest request;
    request.id = str_format("async-%s-k%d", cell.family, cell.k);
    request.recipe.family = cell.family;
    request.recipe.nodes = 300;
    request.recipe.depth = 8;
    request.recipe.arms = 5;
    request.recipe.seed = 5;
    request.algo.kind = AlgoKind::kBfdn;
    request.algo.k = cell.k;
    request.async.kind = cell.async;
    request.async.seed = 13;
    request.async.period = 2;
    request.async.num_slow = 2;
    request.async.max_delay = 3;

    // Direct run: same tree, same spec, straight through the engine —
    // including execute_run's slow-scheduler round-budget scaling.
    const Tree tree = request.recipe.build();
    const std::unique_ptr<Algorithm> algorithm =
        make_algorithm(request.algo, tree);
    RunConfig config;
    config.num_robots = request.algo.k;
    const std::unique_ptr<AsyncScheduler> async =
        request.async.make(request.algo.k);
    config.async = async.get();
    if (request.async.slowdown() > 1) {
      config.max_rounds =
          default_round_limit(tree) * request.async.slowdown();
    }
    const RunResult direct = run_exploration(tree, *algorithm, config);

    const JsonValue response = client.run(request);
    ASSERT_EQ(response.get_string("status", ""), "ok")
        << request.id << ": "
        << response.get_string("error", "(no error field)");
    const JsonValue& result = response.at("result");
    EXPECT_EQ(result.get_int("rounds", -1), direct.rounds) << request.id;
    EXPECT_EQ(result.get_bool("complete", false), direct.complete);
    EXPECT_EQ(result.get_int("total_activations", -1),
              direct.total_activations)
        << request.id;
    EXPECT_EQ(result.get_string("final_state_hash", ""),
              hash_hex(direct.final_state_hash))
        << request.id;
  }
  server.drain();
}

TEST(ServiceEndToEndTest, AsyncCacheHitIsByteIdenticalToOriginalMiss) {
  ServiceServer server(server_options(2, 16, 16));
  server.start();

  ServiceRequest request = golden_request();
  request.async.kind = AsyncKind::kFixedRate;
  request.async.period = 2;
  request.async.num_slow = 1;

  Socket socket = connect_local(server.port(), /*recv_timeout_ms=*/30000);
  const std::string line = serialize_request(request) + "\n";
  ASSERT_TRUE(socket.send_all(line));
  const auto miss = socket.recv_line();
  ASSERT_TRUE(miss.has_value());
  ASSERT_TRUE(socket.send_all(line));
  const auto hit = socket.recv_line();
  ASSERT_TRUE(hit.has_value());

  EXPECT_NE(miss->find("\"cached\":false"), std::string::npos);
  EXPECT_NE(hit->find("\"cached\":true"), std::string::npos);
  std::string normalized = *hit;
  normalized.replace(normalized.find("\"cached\":true"),
                     std::string("\"cached\":true").size(),
                     "\"cached\":false");
  EXPECT_EQ(normalized, *miss);
  server.drain();
}

TEST(ServiceEndToEndTest, CacheHitIsByteIdenticalToOriginalMiss) {
  ServiceServer server(server_options(2, 16, 16));
  server.start();

  // Raw socket: the byte-level contract is on the wire, not on parsed
  // values.
  Socket socket = connect_local(server.port(), /*recv_timeout_ms=*/30000);
  const std::string line = serialize_request(golden_request()) + "\n";
  ASSERT_TRUE(socket.send_all(line));
  const auto miss = socket.recv_line();
  ASSERT_TRUE(miss.has_value());
  ASSERT_TRUE(socket.send_all(line));
  const auto hit = socket.recv_line();
  ASSERT_TRUE(hit.has_value());

  EXPECT_NE(miss->find("\"cached\":false"), std::string::npos);
  EXPECT_NE(hit->find("\"cached\":true"), std::string::npos);
  // Identical apart from the cached flag in the envelope.
  std::string normalized = *hit;
  normalized.replace(normalized.find("\"cached\":true"),
                     std::string("\"cached\":true").size(),
                     "\"cached\":false");
  EXPECT_EQ(normalized, *miss);

  EXPECT_EQ(server.cache_stats().hits, 1);
  EXPECT_EQ(server.cache_stats().misses, 1);
  // The hit never touched the scheduler.
  EXPECT_EQ(server.scheduler_stats().admitted, 1);
  server.drain();
}

TEST(ServiceEndToEndTest, ColdCacheAfterRestartReproducesResults) {
  const std::string line = serialize_request(golden_request()) + "\n";
  std::string first_response;
  {
    ServiceServer server(server_options(2, 16, 16));
    server.start();
    Socket socket = connect_local(server.port(), 30000);
    ASSERT_TRUE(socket.send_all(line));
    first_response = socket.recv_line().value();
    server.drain();
  }
  // Fresh server, cold cache: recomputes, and bytes match.
  ServiceServer server(server_options(2, 16, 16));
  server.start();
  Socket socket = connect_local(server.port(), 30000);
  ASSERT_TRUE(socket.send_all(line));
  const std::string second_response = socket.recv_line().value();
  EXPECT_NE(second_response.find("\"cached\":false"), std::string::npos);
  EXPECT_EQ(second_response, first_response);
  EXPECT_EQ(server.cache_stats().hits, 0);
  server.drain();
}

TEST(ServiceEndToEndTest, FullQueueReturnsRetryAfter) {
  // One worker, admission window of one, cache off: while the slow job
  // runs, any other request must bounce with a retry-after hint.
  ServiceServer server(server_options(1, 1, 0, 35));
  server.start();

  Socket slow_conn = connect_local(server.port(), 60000);
  ASSERT_TRUE(
      slow_conn.send_all(serialize_request(slow_request()) + "\n"));
  // Wait until the slow job occupies the window.
  for (int i = 0; i < 200 && server.scheduler_stats().admitted == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server.scheduler_stats().admitted, 1);

  ServiceClient bouncing(server.port());
  const JsonValue rejected =
      bouncing.call(serialize_request(golden_request()));
  ASSERT_EQ(rejected.get_string("status", ""), "retry");
  EXPECT_EQ(rejected.get_int("retry_after_ms", 0), 35);
  EXPECT_GE(rejected.get_int("queue_depth", 0), 1);

  // The slow job itself still answers.
  const auto slow_response = slow_conn.recv_line();
  ASSERT_TRUE(slow_response.has_value());
  EXPECT_NE(slow_response->find("\"status\":\"ok\""), std::string::npos);

  // ServiceClient::run turns retries into transparent re-sends.
  std::int64_t retries = 0;
  const JsonValue eventually = bouncing.run(golden_request(), 200,
                                            &retries);
  EXPECT_EQ(eventually.get_string("status", ""), "ok");
  server.drain();
}

TEST(ServiceEndToEndTest, DrainFinishesInFlightJobs) {
  ServiceServer server(server_options(1, 4, 16));
  server.start();

  Socket socket = connect_local(server.port(), 60000);
  ASSERT_TRUE(socket.send_all(serialize_request(slow_request()) + "\n"));
  for (int i = 0; i < 200 && server.scheduler_stats().admitted == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server.scheduler_stats().admitted, 1);

  // Drain while the job is in flight: it must complete and its response
  // must still be delivered before the connection is released.
  server.drain();
  EXPECT_EQ(server.scheduler_stats().completed, 1);
  const auto response = socket.recv_line();
  ASSERT_TRUE(response.has_value());
  EXPECT_NE(response->find("\"status\":\"ok\""), std::string::npos);

  // The listener is gone: new connections are refused.
  EXPECT_THROW(connect_local(server.port(), 1000), CheckError);
}

TEST(ServiceEndToEndTest, OversizedAndMalformedRequestsAreRejected) {
  ServiceServer server(server_options(2, 16, 16, 20,
                                      /*max_nodes=*/1000));
  server.start();
  ServiceClient client(server.port());

  ServiceRequest huge = golden_request();
  huge.recipe.family = "random";
  huge.recipe.nodes = 100000;
  const JsonValue refused = client.call(serialize_request(huge));
  EXPECT_EQ(refused.get_string("status", ""), "error");

  const JsonValue garbled = client.call("this is not json");
  EXPECT_EQ(garbled.get_string("status", ""), "error");
  EXPECT_EQ(server.protocol_errors(), 1);
  server.drain();
}

TEST(ServiceEndToEndTest, StatsRequestReportsQueueAndCache) {
  ServiceServer server(server_options(2, 7, 16));
  server.start();
  ServiceClient client(server.port());
  ASSERT_EQ(client.run(golden_request()).get_string("status", ""), "ok");
  ASSERT_EQ(client.run(golden_request()).get_string("status", ""), "ok");

  const JsonValue response = client.stats();
  ASSERT_EQ(response.get_string("status", ""), "ok");
  const JsonValue& stats = response.at("stats");
  EXPECT_EQ(stats.at("queue").get_int("capacity", -1), 7);
  EXPECT_EQ(stats.at("cache").get_int("hits", -1), 1);
  EXPECT_EQ(stats.at("cache").get_int("misses", -1), 1);
  EXPECT_EQ(stats.at("jobs").get_int("completed", -1), 1);
  EXPECT_GE(stats.at("latency_us").get_int("count", -1), 1);
  server.drain();
}

// --- campaigns ---

ServiceRequest campaign_request() {
  ServiceRequest request;
  request.type = RequestType::kCampaign;
  request.id = "camp";
  request.recipe.family = "comb";
  request.recipe.nodes = 500;
  request.recipe.arms = 12;
  request.recipe.depth = 6;
  request.algo.kind = AlgoKind::kBfdn;
  request.campaign_ks = {2, 4, 8};
  request.campaign_seeds = {1, 2};
  return request;
}

TEST(ServiceCampaignTest, MemberBytesMatchDirectSoloRuns) {
  ServiceServer server(server_options(2, 32, 64));
  server.start();

  const ServiceRequest request = campaign_request();
  const Tree tree = request.recipe.build();

  Socket socket = connect_local(server.port(), 60000);
  ASSERT_TRUE(socket.send_all(serialize_request(request) + "\n"));
  const auto line = socket.recv_line();
  ASSERT_TRUE(line.has_value());
  ASSERT_NE(line->find("\"status\":\"ok\""), std::string::npos) << *line;

  // Byte-level contract: every member's result object appears in the
  // campaign response exactly as execute_run emits it for the expanded
  // solo request — the same bytes a direct run request would serve.
  const std::vector<ServiceRequest> members = expand_campaign(request);
  ASSERT_EQ(members.size(), 6u);
  for (const ServiceRequest& member : members) {
    const std::string expected =
        "\"result\":" + execute_run(member, tree);
    EXPECT_NE(line->find(expected), std::string::npos)
        << "k=" << member.algo.k;
  }

  const JsonValue response = [&line] {
    JsonValue parsed;
    std::string error;
    BFDN_REQUIRE(json_parse(*line, parsed, &error), "bad response");
    return parsed;
  }();
  EXPECT_EQ(response.get_int("members_total", -1), 6);
  const JsonValue& member_array = response.at("members");
  ASSERT_EQ(member_array.size(), 6u);
  for (std::size_t i = 0; i < member_array.size(); ++i) {
    EXPECT_FALSE(member_array.at(i).get_bool("cached", true));
  }
  server.drain();
}

TEST(ServiceCampaignTest, CampaignWarmsPerMemberCacheBothWays) {
  ServiceServer server(server_options(2, 32, 64));
  server.start();
  ServiceClient client(server.port());

  const ServiceRequest request = campaign_request();
  const JsonValue first = client.call(serialize_request(request));
  ASSERT_EQ(first.get_string("status", ""), "ok");

  // Every member landed in the cache under its solo fingerprint: a
  // direct run request for any member is now a hit, byte-identical.
  const std::vector<ServiceRequest> members = expand_campaign(request);
  for (const ServiceRequest& member : members) {
    const JsonValue solo = client.run(member);
    ASSERT_EQ(solo.get_string("status", ""), "ok");
    EXPECT_TRUE(solo.get_bool("cached", false))
        << "k=" << member.algo.k;
  }
  EXPECT_EQ(server.scheduler_stats().admitted, 6);  // campaign only

  // And the reverse: re-running the campaign is all cache hits.
  const JsonValue second = client.call(serialize_request(request));
  ASSERT_EQ(second.get_string("status", ""), "ok");
  const JsonValue& member_array = second.at("members");
  for (std::size_t i = 0; i < member_array.size(); ++i) {
    EXPECT_TRUE(member_array.at(i).get_bool("cached", false));
  }
  EXPECT_EQ(server.scheduler_stats().admitted, 6);
  server.drain();
}

TEST(ServiceCampaignTest, StatsReportBatchedExecution) {
  ServiceServer server(server_options(2, 32, 64));
  server.start();
  ServiceClient client(server.port());

  // A seed sweep of least-loaded BFDN: members coalesce onto one run.
  ServiceRequest request = campaign_request();
  request.campaign_ks = {4};
  request.campaign_seeds = {1, 2, 3, 4, 5};
  ASSERT_EQ(client.call(serialize_request(request)).get_string("status",
                                                              ""),
            "ok");

  const JsonValue stats = client.stats().at("stats");
  EXPECT_GE(stats.at("jobs").get_int("batch_groups", -1), 1);
  EXPECT_GE(stats.at("jobs").get_int("batch_members", -1), 5);
  EXPECT_GE(stats.at("jobs").get_int("batch_coalesced", -1), 4);
  server.drain();
}

TEST(ServiceCampaignTest, OversizedCampaignTreeIsRejected) {
  ServiceServer server(server_options(2, 16, 16, 20,
                                      /*max_nodes=*/100));
  server.start();
  ServiceClient client(server.port());
  ServiceRequest request = campaign_request();
  request.recipe.nodes = 5000;
  const JsonValue refused = client.call(serialize_request(request));
  EXPECT_EQ(refused.get_string("status", ""), "error");
  server.drain();
}

}  // namespace
}  // namespace bfdn
