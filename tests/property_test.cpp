// Property-based sweeps: randomized trees driven by a seed parameter,
// checking cross-cutting invariants that every algorithm in the library
// must satisfy on the same instance.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/cte.h"
#include "baselines/depth_next_only.h"
#include "baselines/offline.h"
#include "core/bfdn.h"
#include "distributed/writeread.h"
#include "graph/generators.h"
#include "recursive/bfdn_ell.h"
#include "sim/engine.h"

namespace bfdn {
namespace {

class RandomTreePropertyTest : public ::testing::TestWithParam<int> {
 protected:
  Tree random_tree() const {
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
    // Mix shapes: depth between 2 and n/3, size 50..400.
    Rng sizes = rng.split();
    const std::int64_t n = 50 + static_cast<std::int64_t>(
                                    sizes.next_below(351));
    const auto depth = static_cast<std::int32_t>(
        2 + sizes.next_below(static_cast<std::uint64_t>(n / 3)));
    Rng shape = rng.split();
    return make_tree_with_depth(n, depth, shape);
  }
  std::int32_t random_k() const {
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
    return static_cast<std::int32_t>(1 + rng.next_below(40));
  }
};

TEST_P(RandomTreePropertyTest, AllAlgorithmsFullyExploreTheSameTree) {
  const Tree tree = random_tree();
  const std::int32_t k = random_k();
  RunConfig config;
  config.num_robots = k;

  BfdnAlgorithm bfdn_algo(k);
  const RunResult r1 = run_exploration(tree, bfdn_algo, config);
  CteAlgorithm cte_algo(tree, k);
  const RunResult r2 = run_exploration(tree, cte_algo, config);
  DepthNextOnlyAlgorithm dn_algo(k);
  const RunResult r3 = run_exploration(tree, dn_algo, config);
  BfdnEllAlgorithm ell_algo(k, 2);
  const RunResult r4 = run_exploration(tree, ell_algo, config);

  for (const RunResult* result : {&r1, &r2, &r3, &r4}) {
    EXPECT_TRUE(result->complete) << tree.summary() << " k=" << k;
    EXPECT_FALSE(result->hit_round_limit);
  }
  // Return-to-root algorithms end at home.
  EXPECT_TRUE(r1.all_at_root);
  EXPECT_TRUE(r2.all_at_root);
  EXPECT_TRUE(r3.all_at_root);
}

TEST_P(RandomTreePropertyTest, EdgeEventsAreExactlyTwicTheEdges) {
  const Tree tree = random_tree();
  const std::int32_t k = random_k();
  RunConfig config;
  config.num_robots = k;
  BfdnAlgorithm algo(k);
  const RunResult result = run_exploration(tree, algo, config);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.edge_events, 2 * (tree.num_nodes() - 1));
}

TEST_P(RandomTreePropertyTest, RoundsDominateOfflineLowerBound) {
  const Tree tree = random_tree();
  const std::int32_t k = random_k();
  RunConfig config;
  config.num_robots = k;
  BfdnAlgorithm algo(k);
  const RunResult result = run_exploration(tree, algo, config);
  ASSERT_TRUE(result.complete);
  // No online algorithm can beat the offline lower bound; equality is
  // possible, going below would indicate an engine accounting bug.
  EXPECT_GE(static_cast<double>(result.rounds) + 1e-9,
            offline_lower_bound(tree.num_nodes(), tree.depth(), k));
}

TEST_P(RandomTreePropertyTest, SumOfMovesAtLeastTwiceEdges) {
  const Tree tree = random_tree();
  const std::int32_t k = random_k();
  RunConfig config;
  config.num_robots = k;
  BfdnAlgorithm algo(k);
  const RunResult result = run_exploration(tree, algo, config);
  ASSERT_TRUE(result.complete);
  std::int64_t moves = 0;
  for (auto m : result.robot_moves) moves += m;
  // Every edge is crossed down and up at least once, and no robot makes
  // more moves than there were rounds.
  EXPECT_GE(moves, 2 * (tree.num_nodes() - 1));
  for (auto m : result.robot_moves) EXPECT_LE(m, result.rounds);
}

TEST_P(RandomTreePropertyTest, WriteReadAgreesWithTheoremBound) {
  const Tree tree = random_tree();
  const std::int32_t k = random_k();
  const WriteReadResult wr = run_write_read_bfdn(tree, k);
  EXPECT_TRUE(wr.complete);
  EXPECT_TRUE(wr.all_at_root);
  EXPECT_LE(static_cast<double>(wr.rounds),
            theorem1_bound(tree.num_nodes(), tree.depth(),
                           tree.max_degree(), k));
  EXPECT_LE(wr.max_robot_memory_bits, wr.memory_allowance_bits);
}

TEST_P(RandomTreePropertyTest, InvariantCheckedRunsPass) {
  const Tree tree = random_tree();
  const std::int32_t k = std::min(random_k(), 12);
  RunConfig config;
  config.num_robots = k;
  config.check_invariants = true;  // Claims 2 and 4 every round
  BfdnAlgorithm algo(k);
  const RunResult result = run_exploration(tree, algo, config);
  EXPECT_TRUE(result.complete);
}

TEST_P(RandomTreePropertyTest, DfsSplitSegmentsPartitionTheTour) {
  const Tree tree = random_tree();
  const std::int32_t k = random_k();
  const OfflineSplitPlan plan = offline_dfs_split(tree, k);
  std::int64_t total = 0;
  for (auto len : plan.segment_lengths) {
    EXPECT_GE(len, 0);
    total += len;
  }
  EXPECT_EQ(total, 2 * (tree.num_nodes() - 1));
  EXPECT_LE(static_cast<double>(plan.rounds),
            2.0 * (static_cast<double>(tree.num_nodes()) / k +
                   tree.depth()) +
                2.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreePropertyTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace bfdn
