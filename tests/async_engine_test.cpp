// Per-robot-clock (async) engine path.
//
// The event loop in run_async generalizes the synchronous engine: a
// pluggable AsyncScheduler decides when each robot activates, robots
// mid-transit replay their committed walk one step per activation, and
// an event time is counted as a round iff at least one robot moves at
// it. These tests pin the contract from docs/MODEL.md:
//
//  * round-robin activation reproduces the synchronous engine
//    bit-exactly (result fields AND the per-round hash sequence);
//  * heterogeneous-speed schedules are deterministic and still satisfy
//    the completion invariants (complete, all home, every edge twice);
//  * laggard starvation stretches the makespan but never livelocks;
//  * attaching an observer forces the stepped sub-mode, whose results
//    are identical to the batched one (mid-transit activations);
//  * lockstep-only algorithms under an async config are auto-driven by
//    the synchronous round-robin schedule.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "adversarial/async_scheduler.h"
#include "adversarial/schedules.h"
#include "baselines/cte.h"
#include "core/bfdn.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "support/check.h"
#include "support/rng.h"

namespace bfdn {
namespace {

struct AsyncCase {
  std::string name;
  Tree tree;
  std::int32_t k;
};

std::vector<AsyncCase> grid() {
  std::vector<AsyncCase> cases;
  cases.push_back({"comb10x5/k4", make_comb(10, 5), 4});
  cases.push_back({"star120/k8", make_star(120), 8});
  cases.push_back({"spider7x9/k6", make_spider(7, 9), 6});
  cases.push_back({"bary3d5/k12", make_complete_bary(3, 5), 12});
  cases.push_back({"path60/k3", make_path(60), 3});
  {
    Rng rng(42);
    cases.push_back({"rrt200/k8", make_random_recursive(200, rng), 8});
  }
  return cases;
}

RunResult run_with(const Tree& tree, std::int32_t k,
                   AsyncScheduler* async, RoundObserver* observer = nullptr,
                   bool check_invariants = false) {
  BfdnAlgorithm algorithm(k, BfdnOptions{});
  RunConfig config;
  config.num_robots = k;
  config.async = async;
  config.observer = observer;
  config.check_invariants = check_invariants;
  return run_exploration(tree, algorithm, config);
}

/// Collects the post-move state hash of every counted round.
class HashingObserver : public RoundObserver {
 public:
  void on_round(std::int64_t round, const ExplorationState& state) override {
    rounds.push_back(round);
    hashes.push_back(state.state_hash());
  }
  std::vector<std::int64_t> rounds;
  std::vector<std::uint64_t> hashes;
};

void expect_same_result(const RunResult& a, const RunResult& b,
                        const std::string& what) {
  EXPECT_EQ(a.rounds, b.rounds) << what;
  EXPECT_EQ(a.complete, b.complete) << what;
  EXPECT_EQ(a.all_at_root, b.all_at_root) << what;
  EXPECT_EQ(a.edge_events, b.edge_events) << what;
  EXPECT_EQ(a.rounds_with_idle, b.rounds_with_idle) << what;
  EXPECT_EQ(a.idle_robot_rounds, b.idle_robot_rounds) << what;
  EXPECT_EQ(a.total_activations, b.total_activations) << what;
  EXPECT_EQ(a.robot_moves, b.robot_moves) << what;
  EXPECT_EQ(a.total_reanchors, b.total_reanchors) << what;
  EXPECT_EQ(a.total_reanchor_switches, b.total_reanchor_switches) << what;
  EXPECT_EQ(a.reanchors_by_depth.buckets(), b.reanchors_by_depth.buckets())
      << what;
  EXPECT_EQ(a.depth_completed_round, b.depth_completed_round) << what;
  EXPECT_EQ(a.final_state_hash, b.final_state_hash) << what;
}

void expect_completion_invariants(const Tree& tree, const RunResult& r,
                                  const std::string& what) {
  EXPECT_TRUE(r.complete) << what;
  EXPECT_TRUE(r.all_at_root) << what;
  EXPECT_FALSE(r.hit_round_limit) << what;
  EXPECT_EQ(r.edge_events, 2 * (tree.num_nodes() - 1)) << what;
}

TEST(AsyncEngine, RoundRobinMatchesSyncBitExactly) {
  for (const AsyncCase& c : grid()) {
    SCOPED_TRACE(c.name);
    HashingObserver sync_observer;
    const RunResult sync =
        run_with(c.tree, c.k, nullptr, &sync_observer, true);

    RoundRobinScheduler round_robin;
    HashingObserver async_observer;
    const RunResult async =
        run_with(c.tree, c.k, &round_robin, &async_observer, true);

    expect_same_result(sync, async, c.name);
    EXPECT_EQ(sync_observer.rounds, async_observer.rounds) << c.name;
    EXPECT_EQ(sync_observer.hashes, async_observer.hashes) << c.name;
    // Round-robin means every robot activates at every counted round.
    EXPECT_EQ(async.total_activations, c.k * async.rounds) << c.name;
  }
}

TEST(AsyncEngine, HeterogeneousSchedulesAreDeterministic) {
  for (const AsyncCase& c : grid()) {
    SCOPED_TRACE(c.name);
    const auto run_twice = [&](auto make_schedule, const char* label) {
      auto first_schedule = make_schedule();
      const RunResult first = run_with(c.tree, c.k, &first_schedule);
      auto second_schedule = make_schedule();
      const RunResult second = run_with(c.tree, c.k, &second_schedule);
      expect_same_result(first, second, c.name + "/" + label);
      expect_completion_invariants(c.tree, first, c.name + "/" + label);
    };
    run_twice([&] { return FixedRateScheduler(c.k, 2, 1); }, "fixed-rate");
    run_twice([&] { return LaggardScheduler(c.k, 3, 1); }, "laggard");
    run_twice([&] { return RandomScheduler(17, 3); }, "random");
  }
}

TEST(AsyncEngine, RandomSeedSelectsTheInterleaving) {
  // Different seeds must be allowed to differ (they draw different
  // activation gaps) while each seed stays self-consistent; on the comb
  // the makespans actually do differ.
  const Tree tree = make_comb(10, 5);
  RandomScheduler a1(17, 4);
  RandomScheduler a2(17, 4);
  RandomScheduler b(23, 4);
  const RunResult first = run_with(tree, 4, &a1);
  const RunResult again = run_with(tree, 4, &a2);
  const RunResult other = run_with(tree, 4, &b);
  expect_same_result(first, again, "same seed");
  expect_completion_invariants(tree, other, "other seed");
  EXPECT_NE(first.final_state_hash ^ first.rounds,
            other.final_state_hash ^ other.rounds)
      << "seeds 17 and 23 happened to coincide; pick another pair";
}

TEST(AsyncEngine, LaggardStarvationStretchesButCompletes) {
  // Half the fleet activates only every other period-window. The run
  // must still terminate (no livelock on the stay-stability rule), the
  // laggards must genuinely activate less than the fast robots, and
  // the makespan cannot beat the synchronous one.
  const Tree tree = make_comb(10, 5);
  const std::int32_t k = 4;
  const RunResult sync = run_with(tree, k, nullptr);

  LaggardScheduler laggard(k, 5, 2);
  const RunResult async = run_with(tree, k, &laggard);
  expect_completion_invariants(tree, async, "laggard");
  EXPECT_GE(async.rounds, sync.rounds);
  // Activations are strictly fewer than full participation at every
  // counted event would give: laggards sleep through whole windows.
  EXPECT_LT(async.total_activations, k * async.rounds);
}

TEST(AsyncEngine, ObserverForcesSteppedFallbackWithIdenticalResults) {
  // Without hooks the event loop batch-replays committed walks between
  // activations; an observer needs per-event state and forces the
  // stepped sub-mode. Both must agree exactly — this is the mid-transit
  // activation contract (a robot activated inside a committed walk
  // executes exactly the next step of that walk).
  for (const AsyncCase& c : grid()) {
    SCOPED_TRACE(c.name);
    const auto schedules = [&]() {
      return std::vector<std::string>{"fixed-rate", "laggard", "random"};
    };
    for (const std::string& label : schedules()) {
      const auto make_schedule = [&]() -> std::unique_ptr<AsyncScheduler> {
        if (label == "fixed-rate") {
          return std::make_unique<FixedRateScheduler>(c.k, 3, 1);
        }
        if (label == "laggard") {
          return std::make_unique<LaggardScheduler>(c.k, 2, 1);
        }
        return std::make_unique<RandomScheduler>(5, 2);
      };
      auto batched_schedule = make_schedule();
      const RunResult batched =
          run_with(c.tree, c.k, batched_schedule.get());

      auto stepped_schedule = make_schedule();
      HashingObserver observer;
      const RunResult stepped =
          run_with(c.tree, c.k, stepped_schedule.get(), &observer);

      expect_same_result(batched, stepped, c.name + "/" + label);
      // One observation per counted event, the last at the makespan.
      ASSERT_FALSE(observer.rounds.empty()) << c.name << "/" << label;
      EXPECT_EQ(observer.rounds.back(), stepped.rounds)
          << c.name << "/" << label;
    }
  }
}

TEST(AsyncEngine, LockstepAlgorithmIsAutoDrivenSynchronously) {
  // CTE does not advertise async-safety, so an async config is driven
  // by the synchronous round-robin schedule: identical to a plain run.
  Rng rng(5);
  const Tree tree = make_cte_hard_tree(6, 2, rng);
  CteAlgorithm sync_algorithm(tree, 6);
  RunConfig config;
  config.num_robots = 6;
  const RunResult sync = run_exploration(tree, sync_algorithm, config);

  CteAlgorithm async_algorithm(tree, 6);
  LaggardScheduler laggard(6, 3, 2);
  config.async = &laggard;
  const RunResult async = run_exploration(tree, async_algorithm, config);
  expect_same_result(sync, async, "cte auto-driven");
  EXPECT_EQ(async_algorithm.activation_granularity(),
            ActivationGranularity::kLockstep);
}

TEST(AsyncEngine, BfdnAdvertisesAsyncSafety) {
  BfdnAlgorithm algorithm(4, BfdnOptions{});
  EXPECT_EQ(algorithm.activation_granularity(),
            ActivationGranularity::kAsyncSafe);
}

TEST(AsyncEngine, AsyncRejectsBreakdownSchedules) {
  const Tree tree = make_path(10);
  BfdnAlgorithm algorithm(2, BfdnOptions{});
  RoundRobinScheduler round_robin;
  RunConfig config;
  config.num_robots = 2;
  config.async = &round_robin;
  auto schedule = make_round_robin_schedule(100, 2);
  config.schedule = schedule.get();
  EXPECT_THROW(run_exploration(tree, algorithm, config), CheckError);
}

}  // namespace
}  // namespace bfdn
