// Concurrency stress for the service tier: many client threads
// hammering the scheduler's admit/dispatch path, the result cache's
// get/put/evict path, and a live server through a concurrent drain.
// This is the race-detection workload — it runs in the plain suites
// and, crucially, under the ThreadSanitizer build that scripts/check.sh
// and the CI `tsan` job drive (see docs/LINT.md). Assertions here are
// about accounting invariants (nothing admitted is lost, cached bytes
// are the deterministic ones); the interesting failures are the ones
// TSan reports.
#include <atomic>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/cache.h"
#include "service/client.h"
#include "service/scheduler.h"
#include "service/server.h"
#include "store/result_store.h"
#include "support/check.h"
#include "support/strings.h"
#include "support/thread_pool.h"

namespace bfdn {
namespace {

/// Tiny deterministic run request; `variant` selects among a few tree
/// shapes and k values so the dispatcher batches some groups and not
/// others.
ServiceRequest tiny_request(std::int64_t variant) {
  ServiceRequest request;
  request.id = str_format("s%lld", static_cast<long long>(variant));
  request.recipe.family = variant % 2 == 0 ? "fixed-depth" : "spider";
  request.recipe.nodes = 40;
  request.recipe.depth = 5;
  request.recipe.arms = 4;
  request.recipe.seed = static_cast<std::uint64_t>(7 + variant % 5);
  request.algo.kind = AlgoKind::kBfdn;
  request.algo.k = variant % 3 == 0 ? 4 : 8;
  // A third of the mix runs the per-robot-clock engine path so the
  // async event loop executes on the dispatcher's worker threads too.
  if (variant % 3 == 1) {
    request.async.kind =
        variant % 2 == 0 ? AsyncKind::kFixedRate : AsyncKind::kLaggard;
    request.async.period = 2;
    request.async.num_slow = 1;
  }
  return request;
}

TEST(SchedulerStress, ConcurrentSubmitWaitStatsDrain) {
  constexpr std::int32_t kProducers = 6;
  constexpr std::int32_t kPerProducer = 20;
  Scheduler scheduler({/*threads=*/4, /*queue_capacity=*/8});

  std::atomic<bool> polling{true};
  std::thread poller([&] {
    while (polling.load()) {
      (void)scheduler.stats();
      (void)scheduler.queue_depth();
      std::this_thread::yield();
    }
  });

  std::atomic<std::int64_t> completed_ok{0};
  std::vector<std::thread> producers;
  for (std::int32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::int32_t i = 0; i < kPerProducer; ++i) {
        const ServiceRequest request =
            tiny_request(p * kPerProducer + i);
        std::shared_ptr<Scheduler::Job> job;
        // Bounded backpressure retry: the 8-deep window is far smaller
        // than the offered load, so kQueueFull is the common case.
        for (std::int32_t attempt = 0; attempt < 10000; ++attempt) {
          if (scheduler.submit(request, &job) ==
              Scheduler::Admit::kAdmitted) {
            break;
          }
          job.reset();
          std::this_thread::yield();
        }
        ASSERT_NE(job, nullptr) << "submit never admitted";
        const JobOutcome& outcome = job->wait();
        EXPECT_TRUE(outcome.ok) << outcome.payload;
        ++completed_ok;
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  polling.store(false);
  poller.join();

  scheduler.drain();
  const Scheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.admitted, kProducers * kPerProducer);
  EXPECT_EQ(stats.completed, stats.admitted);
  EXPECT_EQ(completed_ok.load(), kProducers * kPerProducer);
  EXPECT_EQ(scheduler.queue_depth(), 0);

  // Post-drain submissions are rejected, never enqueued.
  std::shared_ptr<Scheduler::Job> late;
  EXPECT_EQ(scheduler.submit(tiny_request(0), &late),
            Scheduler::Admit::kDraining);
}

/// Campaign-shaped group whose members all share one tree recipe.
/// `with_async` flips the members onto the per-robot-clock engine path,
/// which makes them non-batchable: the dispatcher must then thread them
/// through the solo lane of a possibly mixed batched+solo group.
ServiceRequest storm_campaign(bool with_async) {
  ServiceRequest request;
  request.type = RequestType::kCampaign;
  request.id = with_async ? "storm-async" : "storm";
  request.recipe.family = "fixed-depth";
  request.recipe.nodes = 40;
  request.recipe.depth = 5;
  request.recipe.seed = 7;
  request.algo.kind = AlgoKind::kBfdn;
  request.campaign_ks = {4, 8};
  request.campaign_seeds = {1, 2, 3};
  if (with_async) {
    request.async.kind = AsyncKind::kFixedRate;
    request.async.period = 2;
  }
  return request;
}

TEST(SchedulerStress, CampaignStormKeepsAtomicityAndByteIdentity) {
  constexpr std::int32_t kProducers = 4;
  constexpr std::int32_t kCampaignsPerProducer = 6;
  // Capacity 8 fits one 6-member campaign but not two: concurrent
  // submit_all calls constantly collide, exercising the all-or-nothing
  // admission path (a half-admitted campaign would deadlock its
  // producer against its own backpressure).
  Scheduler scheduler({/*threads=*/4, /*queue_capacity=*/8});

  // Per-variant expected bytes, computed solo up front: the batched
  // path must reproduce them exactly.
  std::vector<std::vector<std::string>> expected(2);
  std::vector<std::vector<ServiceRequest>> members(2);
  for (std::size_t variant = 0; variant < 2; ++variant) {
    const ServiceRequest campaign = storm_campaign(variant == 1);
    const Tree tree = campaign.recipe.build();
    members[variant] = expand_campaign(campaign);
    for (const ServiceRequest& member : members[variant]) {
      expected[variant].push_back(execute_run(member, tree));
    }
  }

  std::atomic<std::int64_t> groups_ok{0};
  std::vector<std::thread> producers;
  for (std::int32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      // Even producers offer seed-sweep (batchable, coalescible)
      // members; odd producers offer async members that share the same
      // recipe label, so dispatcher groups mix both execution lanes.
      const std::size_t variant = static_cast<std::size_t>(p % 2);
      for (std::int32_t i = 0; i < kCampaignsPerProducer; ++i) {
        std::vector<std::shared_ptr<Scheduler::Job>> jobs;
        for (std::int32_t attempt = 0; attempt < 10000; ++attempt) {
          if (scheduler.submit_all(members[variant], &jobs) ==
              Scheduler::Admit::kAdmitted) {
            break;
          }
          jobs.clear();
          std::this_thread::yield();
        }
        ASSERT_FALSE(jobs.empty()) << "submit_all never admitted";
        ASSERT_EQ(jobs.size(), members[variant].size());
        for (std::size_t j = 0; j < jobs.size(); ++j) {
          const JobOutcome& outcome = jobs[j]->wait();
          EXPECT_TRUE(outcome.ok) << outcome.payload;
          EXPECT_EQ(outcome.payload, expected[variant][j])
              << "member " << j << " diverged from its solo bytes";
        }
        ++groups_ok;
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  scheduler.drain();

  EXPECT_EQ(groups_ok.load(), kProducers * kCampaignsPerProducer);
  const Scheduler::Stats stats = scheduler.stats();
  const std::int64_t total_members =
      kProducers * kCampaignsPerProducer * 6;
  EXPECT_EQ(stats.admitted, total_members);
  EXPECT_EQ(stats.completed, stats.admitted);
  EXPECT_EQ(scheduler.queue_depth(), 0);

  // Batchable members are enqueued together under one mutex hold and
  // drained wholesale, so every seed-sweep member goes through the
  // batch lane: 2 even producers x 6 campaigns x 6 members.
  EXPECT_EQ(stats.batch_members,
            (kProducers / 2) * kCampaignsPerProducer * 6);
  EXPECT_GE(stats.batch_groups, 1);
  // Each batch group carries at most two distinct coalesce keys
  // (k=4 and k=8 seed sweeps under the seed-blind least-loaded
  // policy); everything beyond that must have been coalesced.
  EXPECT_GE(stats.batch_coalesced,
            stats.batch_members - 2 * stats.batch_groups);
}

TEST(CacheStress, ConcurrentGetPutEvict) {
  constexpr std::int32_t kThreads = 4;
  constexpr std::int32_t kOps = 800;
  constexpr std::uint64_t kKeys = 32;
  ResultCache cache(/*capacity=*/8);  // constant eviction churn

  const auto value_of = [](std::uint64_t key) {
    return str_format("result-%llu", static_cast<unsigned long long>(key));
  };
  std::vector<std::thread> workers;
  for (std::int32_t w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (std::int32_t i = 0; i < kOps; ++i) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(w) * 13 +
             static_cast<std::uint64_t>(i) * 7) % kKeys;
        if (const auto hit = cache.get(key); hit.has_value()) {
          // Deterministic contract: a hit is byte-identical to what any
          // thread ever put under this key.
          EXPECT_EQ(*hit, value_of(key));
        } else {
          cache.put(key, value_of(key));
        }
        if (i % 64 == 0) (void)cache.stats();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  const ResultCache::Stats stats = cache.stats();
  EXPECT_LE(stats.entries, 8u);
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::int64_t>(kThreads) * kOps);
}

TEST(CacheStress, StoreAppendReadThroughStorm) {
  // The two-tier path under concurrency: worker threads put and get
  // through a tiny LRU whose misses read through to the durable store
  // while its group-commit flusher races them in the background. The
  // small capacity forces constant eviction, so most hits travel the
  // full disk path (pending buffer or segment read) — the workload the
  // TSan build watches for append/read-through races.
  constexpr std::int32_t kThreads = 4;
  constexpr std::int32_t kOps = 600;
  constexpr std::uint64_t kKeys = 48;
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "bfdn_storm")
          .string();
  std::filesystem::remove_all(dir);

  const auto value_of = [](std::uint64_t key) {
    return str_format("result-%llu", static_cast<unsigned long long>(key));
  };
  StoreOptions store_options;
  store_options.dir = dir;
  store_options.segment_bytes = 4096;  // rotation under load
  store_options.flush_bytes = 512;     // frequent group commits
  store_options.flush_interval_ms = 1;
  store_options.sync_on_flush = false;  // IO latency isn't the subject
  ResultStore store(store_options);
  ResultCache cache(/*capacity=*/8, &store);

  std::vector<std::thread> workers;
  for (std::int32_t w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (std::int32_t i = 0; i < kOps; ++i) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(w) * 13 +
             static_cast<std::uint64_t>(i) * 7) % kKeys;
        if (const auto hit = cache.get(key); hit.has_value()) {
          EXPECT_EQ(*hit, value_of(key));
        } else {
          cache.put(key, value_of(key));
        }
        if (i % 50 == 0) {
          std::vector<std::uint64_t> keys{key, (key + 1) % kKeys,
                                          (key + 2) % kKeys};
          std::vector<std::optional<std::string>> bulk;
          cache.get_many(keys, &bulk);
          for (std::size_t j = 0; j < keys.size(); ++j) {
            if (bulk[j].has_value()) {
              EXPECT_EQ(*bulk[j], value_of(keys[j]));
            }
          }
        }
        if (i % 64 == 0) (void)store.stats();
      }
    });
  }
  // One thread forces explicit flushes against the storm.
  std::thread flusher([&] {
    for (std::int32_t i = 0; i < 20; ++i) {
      store.flush();
      std::this_thread::yield();
    }
  });
  for (std::thread& worker : workers) worker.join();
  flusher.join();

  // Every key that was ever put is durable and byte-identical.
  store.flush();
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    const auto payload = store.get(key);
    ASSERT_TRUE(payload.has_value()) << key;
    EXPECT_EQ(*payload, value_of(key));
  }
  EXPECT_EQ(store.stats().pending_records, 0);
}

TEST(ThreadPoolStress, SubmitAndWaitFromManyThreads) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> counter{0};
  std::vector<std::thread> submitters;
  for (std::int32_t s = 0; s < 4; ++s) {
    submitters.emplace_back([&] {
      for (std::int32_t i = 0; i < 200; ++i) {
        pool.submit([&counter] { ++counter; });
        if (i % 50 == 0) pool.wait_idle();
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 4 * 200);
}

TEST(ServerStress, ClientsHammerThroughConcurrentDrain) {
  ServerOptions options;
  options.port = 0;
  options.threads = 4;
  options.queue_capacity = 4;  // force retry responses under load
  options.cache_capacity = 16;
  options.retry_after_ms = 1;
  ServiceServer server(options);
  server.start();
  const std::uint16_t port = server.port();

  constexpr std::int32_t kClients = 4;
  constexpr std::int32_t kRequests = 24;
  // First-writer-wins per variant; identical results make concurrent
  // double-writes benign (same bytes), mismatches are counted.
  std::vector<std::string> hashes(5);
  std::atomic<std::int64_t> ok{0};
  std::atomic<std::int64_t> mismatches{0};
  std::atomic<std::int64_t> rejected{0};
  std::mutex hash_mutex;

  std::vector<std::thread> clients;
  for (std::int32_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        ServiceClient client(port);
        for (std::int32_t i = 0; i < kRequests; ++i) {
          const std::int64_t variant = (c * kRequests + i) % 5;
          const JsonValue response =
              client.run(tiny_request(variant), /*max_attempts=*/500);
          if (response.get_string("status", "") != "ok") {
            ++rejected;  // drain landed first: "server is draining"
            continue;
          }
          ++ok;
          const std::string hash = response.at("result").get_string(
              "final_state_hash", "");
          std::lock_guard<std::mutex> lock(hash_mutex);
          std::string& slot = hashes[static_cast<std::size_t>(variant)];
          if (slot.empty()) {
            slot = hash;
          } else if (slot != hash) {
            ++mismatches;
          }
          if (i % 8 == 0) (void)client.stats();
        }
      } catch (const CheckError&) {
        // Connection torn down by the drain below; acceptable.
      }
    });
  }

  // Let the clients get going, then drain underneath them: admitted
  // jobs must still be answered, later ones rejected cleanly.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server.drain();
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(ok.load(), 0);
  const Scheduler::Stats jobs = server.scheduler_stats();
  EXPECT_EQ(jobs.completed, jobs.admitted);  // nothing admitted was lost
  EXPECT_EQ(server.protocol_errors(), 0);
}

}  // namespace
}  // namespace bfdn
