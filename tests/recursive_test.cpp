// Tests for the recursive BFDN_l of Section 5 (Theorem 10): correctness
// over the zoo, the Theorem-10 runtime bound, the k-rounding rule, and
// the deep-tree advantage over plain BFDN that motivates the recursion.
#include <gtest/gtest.h>

#include <cmath>

#include "core/bfdn.h"
#include "graph/generators.h"
#include "recursive/bfdn_ell.h"
#include "sim/engine.h"

namespace bfdn {
namespace {

RunResult run_ell(const Tree& tree, std::int32_t k, std::int32_t ell) {
  BfdnEllAlgorithm algo(k, ell);
  RunConfig config;
  config.num_robots = k;
  return run_exploration(tree, algo, config);
}

struct EllParam {
  std::size_t tree_index;
  std::int32_t k;
  std::int32_t ell;
};

class EllSweepTest : public ::testing::TestWithParam<EllParam> {
 protected:
  static const std::vector<NamedTree>& zoo() {
    static const std::vector<NamedTree> kZoo = make_tree_zoo(220, 4242);
    return kZoo;
  }
};

TEST_P(EllSweepTest, ExploresCompletely) {
  const auto& [name, tree] = zoo()[GetParam().tree_index];
  const RunResult result = run_ell(tree, GetParam().k, GetParam().ell);
  EXPECT_TRUE(result.complete)
      << name << " k=" << GetParam().k << " ell=" << GetParam().ell;
  EXPECT_FALSE(result.hit_round_limit) << name;
}

TEST_P(EllSweepTest, WithinTheorem10Bound) {
  const auto& [name, tree] = zoo()[GetParam().tree_index];
  const std::int32_t k = GetParam().k;
  const std::int32_t ell = GetParam().ell;
  const RunResult result = run_ell(tree, k, ell);
  ASSERT_TRUE(result.complete) << name;
  const double bound = theorem10_bound(tree.num_nodes(), tree.depth(),
                                       tree.max_degree(), k, ell);
  EXPECT_LE(static_cast<double>(result.rounds), bound)
      << name << " k=" << k << " ell=" << ell;
}

std::vector<EllParam> ell_params() {
  std::vector<EllParam> params;
  const std::size_t num_trees = make_tree_zoo(220, 4242).size();
  for (std::size_t t = 0; t < num_trees; ++t) {
    for (std::int32_t k : {4, 16, 64}) {
      for (std::int32_t ell : {1, 2, 3}) {
        params.push_back({t, k, ell});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    ZooTimesRobotsTimesEll, EllSweepTest,
    ::testing::ValuesIn(ell_params()),
    [](const ::testing::TestParamInfo<EllParam>& param_info) {
      static const auto zoo = make_tree_zoo(220, 4242);
      return zoo[param_info.param.tree_index].name + "_k" +
             std::to_string(param_info.param.k) + "_l" +
             std::to_string(param_info.param.ell);
    });

TEST(EllRoundingTest, RobotsUsedIsFloorRootPower) {
  // floor(20^{1/2})^2 = 16; floor(100^{1/3})^3 = 64; exact powers kept.
  EXPECT_EQ(BfdnEllAlgorithm(20, 2).robots_used(), 16);
  EXPECT_EQ(BfdnEllAlgorithm(100, 3).robots_used(), 64);
  EXPECT_EQ(BfdnEllAlgorithm(64, 3).robots_used(), 64);
  EXPECT_EQ(BfdnEllAlgorithm(64, 2).robots_used(), 64);
  EXPECT_EQ(BfdnEllAlgorithm(5, 3).robots_used(), 1);
  EXPECT_EQ(BfdnEllAlgorithm(64, 3).k_star(), 4);
}

TEST(EllEdgeTest, SingleNodeTree) {
  const RunResult result = run_ell(make_path(1), 9, 2);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.rounds, 0);
}

TEST(EllEdgeTest, SingleRobot) {
  const Tree tree = make_comb(8, 4);
  const RunResult result = run_ell(tree, 1, 2);
  EXPECT_TRUE(result.complete);
}

TEST(EllEdgeTest, EllOneOnPathActsLikeCappedBfdn) {
  const Tree tree = make_path(64);
  const RunResult result = run_ell(tree, 4, 1);
  EXPECT_TRUE(result.complete);
  // A path is one long excursion; doubling caps re-walk prefixes, so
  // allow the doubling overhead factor over plain DFS.
  EXPECT_LE(result.rounds, 8 * tree.num_nodes());
}

TEST(EllEdgeTest, ManyRobotsOnStar) {
  const RunResult result = run_ell(make_star(40), 27, 3);
  EXPECT_TRUE(result.complete);
}

TEST(EllComparisonTest, RecursionHelpsOnDeepTrees) {
  // Theorem 10's motivation: for D large (n ~ k D), BFDN pays
  // D^2 log(k) while BFDN_2 pays ~ D^{3/2}. Measured rounds should
  // reflect the ordering once D is big enough.
  Rng rng(31337);
  const std::int32_t k = 64;
  const std::int32_t depth = 300;
  const Tree tree = make_tree_with_depth(6000, depth, rng);

  BfdnAlgorithm plain(k);
  RunConfig config;
  config.num_robots = k;
  const RunResult plain_result = run_exploration(tree, plain, config);
  const RunResult ell_result = run_ell(tree, k, 2);
  ASSERT_TRUE(plain_result.complete);
  ASSERT_TRUE(ell_result.complete);
  // Both explore; the recursive variant must not be drastically worse,
  // and the bounds must order as the theorem says.
  const double bound_plain = theorem1_bound(tree.num_nodes(), depth,
                                            tree.max_degree(), k);
  const double bound_ell = theorem10_bound(tree.num_nodes(), depth,
                                           tree.max_degree(), k, 2);
  EXPECT_LT(bound_ell, bound_plain);
  EXPECT_LE(static_cast<double>(ell_result.rounds), bound_ell);
}

TEST(EllBoundTest, Theorem10HoldsForEveryEllOnDeepTrees) {
  // Theorem 10 across the recursion depths the paper considers, on
  // trees in the D ~ sqrt(n) regime where the recursive bound is the
  // interesting one (for D ~ sqrt(n), Theorem 10 gives
  // O(n/k + D^(2 - 1/(2^l - 1)) polylog) against Theorem 1's D^2 term).
  struct DeepCase {
    std::int64_t n;
    std::int32_t depth;
    std::uint64_t seed;
  };
  const DeepCase cases[] = {{2500, 50, 17}, {1600, 40, 23}, {900, 30, 29}};
  for (const DeepCase& c : cases) {
    Rng rng(c.seed);
    const Tree tree = make_tree_with_depth(c.n, c.depth, rng);
    for (const std::int32_t ell : {1, 2, 3, 4}) {
      SCOPED_TRACE(testing::Message()
                   << "n=" << c.n << " D=" << c.depth << " ell=" << ell);
      const std::int32_t k = 16;
      const RunResult result = run_ell(tree, k, ell);
      ASSERT_TRUE(result.complete);
      const double bound = theorem10_bound(tree.num_nodes(), tree.depth(),
                                           tree.max_degree(), k, ell);
      EXPECT_LE(static_cast<double>(result.rounds), bound);
    }
  }
}

TEST(EllComparisonTest, PhasesGrowWithDepth) {
  Rng rng(404);
  const Tree shallow = make_tree_with_depth(500, 4, rng);
  const Tree deep = make_tree_with_depth(500, 120, rng);
  BfdnEllAlgorithm a(16, 2);
  RunConfig config;
  config.num_robots = 16;
  (void)run_exploration(shallow, a, config);
  const std::int32_t shallow_phases = a.phases_started();
  BfdnEllAlgorithm b(16, 2);
  (void)run_exploration(deep, b, config);
  EXPECT_GE(b.phases_started(), shallow_phases);
}

}  // namespace
}  // namespace bfdn
