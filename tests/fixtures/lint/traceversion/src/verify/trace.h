#pragma once

#include <cstdint>

// Layout: magic "BFDNTRC1" | fields of TraceData.
inline constexpr std::uint32_t kTraceFormatVersion = 1;

struct TraceData {
  std::int64_t rounds = 0;
  bool complete = false;
};
