#pragma once

// NOLINT: blanket suppression without naming a check
inline int fine() { return 1; }
