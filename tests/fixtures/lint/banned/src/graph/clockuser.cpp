#include <chrono>
#include <cstdlib>

double now_s() {
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

int roll() { return rand() % 6; }
