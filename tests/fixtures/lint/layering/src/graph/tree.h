#pragma once

inline int tree_size() { return 3; }
