#pragma once

#include "graph/tree.h"

inline int bad() { return tree_size(); }
