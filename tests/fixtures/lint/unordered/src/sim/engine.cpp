#include "sim/engine.h"

std::int64_t Engine::lookup(std::int64_t v) const {
  const auto it = visits_.find(v);
  return it == visits_.end() ? 0 : it->second;
}

std::uint64_t Engine::hash_all() const {
  std::uint64_t h = 0;
  for (const auto& [node, count] : visits_) {
    h ^= static_cast<std::uint64_t>(node * 31 + count);
  }
  return h;
}

std::int64_t Engine::first_key() const {
  const auto it = visits_.begin();
  return it == visits_.end() ? -1 : it->first;
}
