#pragma once

#include <cstdint>
#include <unordered_map>

struct Engine {
  std::unordered_map<std::int64_t, std::int64_t> visits_;

  std::int64_t lookup(std::int64_t v) const;
  std::uint64_t hash_all() const;
  std::int64_t first_key() const;
};
