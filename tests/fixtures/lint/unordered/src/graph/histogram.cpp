#include <unordered_map>

// Not a hashed path: iterating here is legal (output order does not
// feed any state hash).
int sum_all(const std::unordered_map<int, int>& counts) {
  int total = 0;
  for (const auto& [k, v] : counts) total += v;
  return total;
}
