// Raw string literals are literals: determinism bans inside them are
// documentation, not calls.
#include <cstdlib>

const char* kShellSnippet = R"lint(seed with srand(7); then rand())lint";

const char* kDoc = R"(
  srand(42);
  rand();
)";

int noise() {
  return rand();
}
