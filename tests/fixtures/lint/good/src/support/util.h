#pragma once

inline int util_identity(int x) { return x; }
