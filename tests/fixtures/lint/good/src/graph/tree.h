#pragma once

#include "support/util.h"

inline int tree_size() { return util_identity(3); }

// A suppressed banned call: the report must count the suppression and
// emit no finding.
inline int seeded() {
  return rand();  // NOLINT(raw-rand): fixture exercises suppression accounting
}
