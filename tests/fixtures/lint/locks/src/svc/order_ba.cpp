#include "svc/pair.h"

void AB::lock_ba() {
  std::lock_guard<std::mutex> b(b_);
  std::lock_guard<std::mutex> a(a_);
}
