#pragma once

#include <mutex>

#define BFDN_GUARDED_BY(x)

class AB {
 public:
  void lock_ab();
  void lock_ba();

 private:
  std::mutex a_;
  std::mutex b_;
  int hits_ BFDN_GUARDED_BY(a_) = 0;
  int misses_ BFDN_GUARDED_BY(b_) = 0;
};
