#include "svc/notifier.h"

void Notifier::set() {
  {
    std::lock_guard<std::mutex> lock(m_);
    ready_ = true;
  }
  cv_.notify_one();
}

void Notifier::wait_set() {
  std::unique_lock<std::mutex> lock(m_);
  cv_.wait(lock);
}
