#include "svc/pair.h"

void AB::lock_ab() {
  std::lock_guard<std::mutex> a(a_);
  std::lock_guard<std::mutex> b(b_);
}
