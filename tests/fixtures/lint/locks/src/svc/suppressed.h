#pragma once

#include <mutex>

class Suppressed {
 public:
  void touch();

 private:
  std::mutex mutex_;  // NOLINT(locks): orders registration against teardown only
};
