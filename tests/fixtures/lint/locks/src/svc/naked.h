#pragma once

#include <mutex>

class Naked {
 public:
  int value() const;

 private:
  mutable std::mutex mutex_;
  int value_ = 0;
};
