#pragma once

#include <condition_variable>
#include <mutex>

#define BFDN_GUARDED_BY(x)

class Notifier {
 public:
  void set();
  void wait_set();

 private:
  std::mutex m_;
  std::condition_variable cv_;
  bool ready_ BFDN_GUARDED_BY(m_) = false;
};
