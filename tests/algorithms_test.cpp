#include <gtest/gtest.h>

#include <map>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "support/rng.h"

namespace bfdn {
namespace {

// Brute-force LCA by walking both paths from the root.
NodeId lca_brute(const Tree& t, NodeId a, NodeId b) {
  const auto pa = t.path_from_root(a);
  const auto pb = t.path_from_root(b);
  NodeId last = t.root();
  for (std::size_t i = 0; i < std::min(pa.size(), pb.size()); ++i) {
    if (pa[i] != pb[i]) break;
    last = pa[i];
  }
  return last;
}

TEST(LcaTest, MatchesBruteForceOnRandomTrees) {
  Rng rng(21);
  for (int rep = 0; rep < 5; ++rep) {
    Rng child = rng.split();
    const Tree t = make_random_recursive(150, child);
    const LcaIndex lca(t);
    for (int q = 0; q < 300; ++q) {
      const auto a = static_cast<NodeId>(rng.next_below(150));
      const auto b = static_cast<NodeId>(rng.next_below(150));
      EXPECT_EQ(lca.lca(a, b), lca_brute(t, a, b));
    }
  }
}

TEST(LcaTest, LcaOnPath) {
  const Tree t = make_path(20);
  const LcaIndex lca(t);
  EXPECT_EQ(lca.lca(5, 15), 5);
  EXPECT_EQ(lca.lca(19, 0), 0);
  EXPECT_EQ(lca.lca(7, 7), 7);
}

TEST(LcaTest, DistanceMatchesDepthArithmetic) {
  Rng rng(22);
  const Tree t = make_random_recursive(100, rng);
  const LcaIndex lca(t);
  for (int q = 0; q < 200; ++q) {
    const auto a = static_cast<NodeId>(rng.next_below(100));
    const auto b = static_cast<NodeId>(rng.next_below(100));
    const NodeId c = lca.lca(a, b);
    EXPECT_EQ(lca.distance(a, b),
              t.depth(a) + t.depth(b) - 2 * t.depth(c));
    EXPECT_EQ(lca.distance(a, a), 0);
  }
}

TEST(LcaTest, AncestorWalksUp) {
  const Tree t = make_path(16);
  const LcaIndex lca(t);
  EXPECT_EQ(lca.ancestor(15, 0), 15);
  EXPECT_EQ(lca.ancestor(15, 15), 0);
  EXPECT_EQ(lca.ancestor(10, 3), 7);
}

TEST(EulerTourTest, LengthAndEndpoints) {
  Rng rng(23);
  const Tree t = make_random_leafy(120, 4, rng);
  const auto tour = euler_tour(t);
  ASSERT_EQ(static_cast<std::int64_t>(tour.size()), 2 * t.num_edges());
  // Tour ends back at the root.
  EXPECT_EQ(tour.back(), t.root());
}

TEST(EulerTourTest, ConsecutiveStepsAreTreeEdges) {
  Rng rng(24);
  const Tree t = make_random_recursive(80, rng);
  const auto tour = euler_tour(t);
  NodeId prev = t.root();
  for (NodeId v : tour) {
    EXPECT_TRUE(t.parent(v) == prev || t.parent(prev) == v)
        << "non-edge step " << prev << " -> " << v;
    prev = v;
  }
}

TEST(EulerTourTest, VisitsEveryEdgeTwice) {
  const Tree t = make_comb(5, 3);
  const auto tour = euler_tour(t);
  std::map<NodeId, int> touched;  // child id -> traversals
  NodeId prev = t.root();
  for (NodeId v : tour) {
    touched[t.parent(v) == prev ? v : prev] += 1;
    prev = v;
  }
  for (NodeId v = 1; v < t.num_nodes(); ++v) {
    EXPECT_EQ(touched[v], 2) << "edge above node " << v;
  }
}

TEST(EulerTourTest, SingleNodeIsEmpty) {
  const Tree t = make_path(1);
  EXPECT_TRUE(euler_tour(t).empty());
}

TEST(PreorderTest, ParentsBeforeChildrenAndComplete) {
  Rng rng(25);
  const Tree t = make_random_bounded_degree(200, 3, rng);
  const auto order = preorder(t);
  ASSERT_EQ(static_cast<std::int64_t>(order.size()), t.num_nodes());
  std::vector<std::int64_t> position(200, -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[static_cast<std::size_t>(order[i])] =
        static_cast<std::int64_t>(i);
  }
  for (NodeId v = 1; v < 200; ++v) {
    EXPECT_LT(position[static_cast<std::size_t>(t.parent(v))],
              position[static_cast<std::size_t>(v)]);
  }
}

TEST(PreorderTest, SubtreeNodesAreContiguous) {
  const Tree t = make_complete_bary(2, 3);
  const auto order = preorder(t);
  std::vector<std::int64_t> pos(static_cast<std::size_t>(t.num_nodes()));
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<std::size_t>(order[i])] = static_cast<std::int64_t>(i);
  }
  for (NodeId v = 0; v < t.num_nodes(); ++v) {
    // All nodes within [pos[v], pos[v]+size) are descendants of v.
    const auto lo = pos[static_cast<std::size_t>(v)];
    const auto hi = lo + t.subtree_size(v);
    for (NodeId w = 0; w < t.num_nodes(); ++w) {
      const bool inside = pos[static_cast<std::size_t>(w)] >= lo &&
                          pos[static_cast<std::size_t>(w)] < hi;
      EXPECT_EQ(inside, t.is_ancestor_or_self(v, w));
    }
  }
}

}  // namespace
}  // namespace bfdn
