// Seed-stability pins for the deterministic RNG.
//
// Every reproducibility guarantee in this repository — golden traces,
// trace record/replay, fuzz case recipes — bottoms out in Rng producing
// the exact same stream for the same seed, forever. These tests pin the
// concrete xoshiro256**/splitmix64 output values so that any change to
// the generator (reseeding scheme, sampling helpers, split derivation)
// fails loudly instead of silently invalidating recorded artifacts.
#include <cstdint>

#include <gtest/gtest.h>

#include "support/rng.h"

namespace bfdn {
namespace {

TEST(RngStability, Splitmix64SequenceFromZero) {
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 16294208416658607535ULL);
  EXPECT_EQ(splitmix64(state), 7960286522194355700ULL);
  EXPECT_EQ(splitmix64(state), 487617019471545679ULL);
  EXPECT_EQ(splitmix64(state), 17909611376780542444ULL);
  // The state advances by the golden-ratio increment each call.
  EXPECT_EQ(state, 4 * 0x9E3779B97F4A7C15ULL);
}

TEST(RngStability, RawStreamSeed123) {
  Rng rng(123);
  EXPECT_EQ(rng(), 3628370374969813497ULL);
  EXPECT_EQ(rng(), 17885451940711451998ULL);
  EXPECT_EQ(rng(), 8622752019489400367ULL);
  EXPECT_EQ(rng(), 2342437615205057030ULL);
  EXPECT_EQ(rng(), 6230968350287952094ULL);
}

TEST(RngStability, NextBelowSeed123) {
  Rng rng(123);
  const std::uint64_t expected[] = {97, 98, 67, 30, 94, 54, 55, 5};
  for (const std::uint64_t want : expected) {
    EXPECT_EQ(rng.next_below(100), want);
  }
}

TEST(RngStability, NextIntSeed2026) {
  Rng rng(2026);
  const std::int64_t expected[] = {6, 5, 1, 1, 1, 5, 3, 6};
  for (const std::int64_t want : expected) {
    EXPECT_EQ(rng.next_int(1, 6), want);
  }
}

TEST(RngStability, NextDoubleSeed2026) {
  Rng rng(2026);
  // next_int above and next_double share the raw stream; fresh instance.
  EXPECT_DOUBLE_EQ(rng.next_double(), 0.57373150279326757);
  EXPECT_DOUBLE_EQ(rng.next_double(), 0.28367946027485791);
  EXPECT_DOUBLE_EQ(rng.next_double(), 0.8125094267576175);
}

TEST(RngStability, SplitIsStableAndAdvancesParentByOneDraw) {
  Rng rng(123);
  Rng child = rng.split();
  EXPECT_EQ(child(), 12641613012375098838ULL);
  EXPECT_EQ(child(), 8271591141034690101ULL);
  EXPECT_EQ(child(), 3662107051099224941ULL);
  EXPECT_EQ(child(), 12261756538261029231ULL);
  // split() consumes exactly one parent draw: the parent continues with
  // what would have been its second raw value.
  EXPECT_EQ(rng(), 17885451940711451998ULL);
}

TEST(RngStability, IdenticalSeedsIdenticalStreams) {
  Rng a(999);
  Rng b(999);
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(a(), b());
  }
}

}  // namespace
}  // namespace bfdn
