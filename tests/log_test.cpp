// Tests for the leveled logger (stderr side effects are not captured;
// these exercise the level gate and the API surface).
#include <gtest/gtest.h>

#include "support/log.h"

namespace bfdn {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kInfo); }
};

TEST_F(LogTest, LevelRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST_F(LogTest, DefaultIsInfo) {
  EXPECT_EQ(log_level(), LogLevel::kInfo);
}

TEST_F(LogTest, EmittingBelowThresholdIsSafe) {
  set_log_level(LogLevel::kError);
  // Filtered out — must not crash or allocate surprises.
  log_debug("invisible");
  log_info("invisible");
  log_warn("invisible");
  SUCCEED();
}

TEST_F(LogTest, EmittingAtThresholdIsSafe) {
  set_log_level(LogLevel::kError);
  log_error("visible (stderr)");
  SUCCEED();
}

}  // namespace
}  // namespace bfdn
