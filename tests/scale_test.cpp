// Scale sweeps: the same invariants at several orders of magnitude, to
// catch size-dependent bugs (overflow, O(n^2) blowups that would time
// out, frontier bookkeeping drift).
#include <gtest/gtest.h>

#include "core/bfdn.h"
#include "distributed/writeread.h"
#include "graph/generators.h"
#include "sim/engine.h"

namespace bfdn {
namespace {

class ScaleTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ScaleTest, BfdnMeetsBoundAtEveryScale) {
  const std::int64_t scale = GetParam();
  for (const auto& [name, tree] : make_tree_zoo(scale, 606)) {
    const std::int32_t k = 16;
    BfdnAlgorithm algo(k);
    RunConfig config;
    config.num_robots = k;
    const RunResult result = run_exploration(tree, algo, config);
    ASSERT_TRUE(result.complete) << name << " scale=" << scale;
    ASSERT_TRUE(result.all_at_root) << name << " scale=" << scale;
    EXPECT_LE(static_cast<double>(result.rounds),
              theorem1_bound(tree.num_nodes(), tree.depth(),
                             tree.max_degree(), k))
        << name << " scale=" << scale;
    EXPECT_EQ(result.edge_events, 2 * (tree.num_nodes() - 1))
        << name << " scale=" << scale;
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, ScaleTest,
                         ::testing::Values(std::int64_t{16},
                                           std::int64_t{64},
                                           std::int64_t{512},
                                           std::int64_t{4096}));

TEST(LargeScaleTest, TenThousandNodeTreeFast) {
  Rng rng(1);
  const Tree tree = make_tree_with_depth(20000, 30, rng);
  const std::int32_t k = 64;
  BfdnAlgorithm algo(k);
  RunConfig config;
  config.num_robots = k;
  const RunResult result = run_exploration(tree, algo, config);
  EXPECT_TRUE(result.complete);
  EXPECT_LE(static_cast<double>(result.rounds),
            theorem1_bound(tree.num_nodes(), tree.depth(),
                           tree.max_degree(), k));
}

TEST(LargeScaleTest, WriteReadAtTenThousandNodes) {
  Rng rng(2);
  const Tree tree = make_tree_with_depth(10000, 20, rng);
  const WriteReadResult result = run_write_read_bfdn(tree, 32);
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.all_at_root);
}

TEST(LargeScaleTest, DeepPathAtScale) {
  // 50k-node path with k robots: exactly one robot works; time is
  // 2(n-1) and the engine must not slow down superlinearly.
  const Tree tree = make_path(50000);
  BfdnAlgorithm algo(4);
  RunConfig config;
  config.num_robots = 4;
  const RunResult result = run_exploration(tree, algo, config);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.rounds, 2 * (tree.num_nodes() - 1));
}

}  // namespace
}  // namespace bfdn
