#include <gtest/gtest.h>

#include <cmath>

#include "baselines/depth_next_only.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "sim/exploration_state.h"
#include "support/check.h"

namespace bfdn {
namespace {

TEST(ExplorationStateTest, InitialStateExposesRootDangling) {
  const Tree t = make_star(5);
  ExplorationState s(t, 2);
  EXPECT_TRUE(s.is_explored(0));
  EXPECT_FALSE(s.is_explored(1));
  EXPECT_EQ(s.num_unexplored_child_edges(0), 4);
  EXPECT_EQ(s.num_unreserved_dangling(0), 4);
  EXPECT_FALSE(s.exploration_complete());
  EXPECT_EQ(s.min_open_depth(), 0);
  EXPECT_EQ(s.robot_pos(0), 0);
}

TEST(ExplorationStateTest, ReserveCommitLifecycle) {
  const Tree t = make_path(4);
  ExplorationState s(t, 1);
  const NodeId c = s.reserve_dangling(0);
  EXPECT_EQ(s.num_unreserved_dangling(0), 0);
  EXPECT_EQ(s.num_unexplored_child_edges(0), 1);  // reserved still counts
  s.commit_dangling(0, c);
  EXPECT_TRUE(s.is_explored(c));
  EXPECT_EQ(s.num_unexplored_child_edges(0), 0);
  EXPECT_EQ(s.min_open_depth(), 1);  // the new node has a dangling child
  EXPECT_EQ(s.num_explored_nodes(), 2);
}

TEST(ExplorationStateTest, ReleaseReturnsEdgeToPool) {
  const Tree t = make_star(3);
  ExplorationState s(t, 1);
  const NodeId c = s.reserve_dangling(0);
  s.release_dangling(0, c);
  EXPECT_EQ(s.num_unreserved_dangling(0), 2);
}

TEST(ExplorationStateTest, OpenNodesTrackDepths) {
  const Tree t = make_comb(3, 2);  // spine 0-1-2 with teeth
  ExplorationState s(t, 1);
  EXPECT_EQ(s.open_nodes_at_depth(0), (std::vector<NodeId>{0}));
  EXPECT_TRUE(s.open_nodes_at_depth(3).empty());
  EXPECT_EQ(s.num_open_nodes(), 1);
}

TEST(ExplorationStateTest, EdgeEventsCountBothDirectionsOnce) {
  const Tree t = make_path(3);
  ExplorationState s(t, 1);
  EXPECT_TRUE(s.record_traversal(1, true));
  EXPECT_FALSE(s.record_traversal(1, true));
  EXPECT_TRUE(s.record_traversal(1, false));
  EXPECT_EQ(s.edge_events(), 2);
}

TEST(ExplorationStateTest, ReserveOnEmptyPoolThrows) {
  const Tree t = make_path(2);
  ExplorationState s(t, 1);
  (void)s.reserve_dangling(0);
  EXPECT_THROW(s.reserve_dangling(0), CheckError);
}

TEST(EngineTest, SingleRobotDnIsOnlineDfs) {
  // One DN-only robot is exactly the online DFS of the introduction:
  // 2(n-1) rounds, back at the root.
  for (std::int64_t n : {2, 5, 17, 64}) {
    const Tree t = make_path(n);
    DepthNextOnlyAlgorithm algo(1);
    RunConfig config;
    config.num_robots = 1;
    const RunResult result = run_exploration(t, algo, config);
    EXPECT_TRUE(result.complete);
    EXPECT_TRUE(result.all_at_root);
    EXPECT_EQ(result.rounds, 2 * (n - 1));
    EXPECT_EQ(result.edge_events, 2 * (n - 1));
  }
}

TEST(EngineTest, SingleRobotDfsOnGeneralTrees) {
  const auto zoo = make_tree_zoo(128, 1234);
  for (const auto& [name, tree] : zoo) {
    DepthNextOnlyAlgorithm algo(1);
    RunConfig config;
    config.num_robots = 1;
    const RunResult result = run_exploration(tree, algo, config);
    EXPECT_TRUE(result.complete) << name;
    EXPECT_TRUE(result.all_at_root) << name;
    EXPECT_EQ(result.rounds, 2 * (tree.num_nodes() - 1)) << name;
  }
}

TEST(EngineTest, SingleNodeTreeTerminatesImmediately) {
  const Tree t = make_path(1);
  DepthNextOnlyAlgorithm algo(3);
  RunConfig config;
  config.num_robots = 3;
  const RunResult result = run_exploration(t, algo, config);
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.all_at_root);
  EXPECT_EQ(result.rounds, 0);
}

TEST(EngineTest, MultiRobotDnSwarmCompletes) {
  const auto zoo = make_tree_zoo(200, 99);
  for (const auto& [name, tree] : zoo) {
    for (std::int32_t k : {2, 4, 16}) {
      DepthNextOnlyAlgorithm algo(k);
      RunConfig config;
      config.num_robots = k;
      const RunResult result = run_exploration(tree, algo, config);
      EXPECT_TRUE(result.complete) << name << " k=" << k;
      EXPECT_TRUE(result.all_at_root) << name << " k=" << k;
      EXPECT_LE(result.rounds, 2 * (tree.num_nodes() - 1))
          << name << " k=" << k << ": swarm slower than one DFS robot";
    }
  }
}

TEST(EngineTest, RobotMovesSumMatchesWork) {
  const Tree t = make_star(9);
  DepthNextOnlyAlgorithm algo(4);
  RunConfig config;
  config.num_robots = 4;
  const RunResult result = run_exploration(t, algo, config);
  std::int64_t total = 0;
  for (auto m : result.robot_moves) total += m;
  EXPECT_EQ(total, 2 * (t.num_nodes() - 1));  // every edge down + up
}

TEST(EngineTest, TraceRecordsEveryRound) {
  const Tree t = make_path(6);
  DepthNextOnlyAlgorithm algo(2);
  std::vector<TraceFrame> trace;
  RunConfig config;
  config.num_robots = 2;
  config.trace = &trace;
  const RunResult result = run_exploration(t, algo, config);
  ASSERT_EQ(static_cast<std::int64_t>(trace.size()), result.rounds);
  EXPECT_EQ(trace.front().round, 1);
  for (const auto& frame : trace) {
    EXPECT_EQ(frame.positions.size(), 2u);
  }
  // Final frame: everyone home.
  for (NodeId pos : trace.back().positions) EXPECT_EQ(pos, 0);
}

TEST(EngineTest, MaxRoundsGuardTrips) {
  const Tree t = make_path(50);
  DepthNextOnlyAlgorithm algo(1);
  RunConfig config;
  config.num_robots = 1;
  config.max_rounds = 5;
  const RunResult result = run_exploration(t, algo, config);
  EXPECT_TRUE(result.hit_round_limit);
  EXPECT_FALSE(result.complete);
}

// A schedule blocking everyone from round `cutoff` on.
class CutoffSchedule : public BreakdownSchedule {
 public:
  explicit CutoffSchedule(std::int64_t cutoff) : cutoff_(cutoff) {}
  bool allowed(std::int64_t t, std::int32_t) override {
    return t < cutoff_;
  }
  bool exhausted(std::int64_t t) const override { return t >= cutoff_; }

 private:
  std::int64_t cutoff_;
};

TEST(EngineTest, ScheduleStopsRunWhenExhausted) {
  const Tree t = make_path(100);
  DepthNextOnlyAlgorithm algo(2);
  CutoffSchedule schedule(10);
  RunConfig config;
  config.num_robots = 2;
  config.schedule = &schedule;
  const RunResult result = run_exploration(t, algo, config);
  EXPECT_FALSE(result.complete);
  EXPECT_LE(result.rounds, 10);
}

TEST(EngineTest, SelectingForBlockedRobotThrows) {
  // An algorithm that ignores can_move must be rejected.
  class Disobedient : public Algorithm {
   public:
    std::string name() const override { return "disobedient"; }
    void select_moves(const ExplorationView& view,
                      MoveSelector& selector) override {
      for (std::int32_t i = 0; i < view.num_robots(); ++i) {
        (void)selector.try_take_dangling(i);  // no can_move check
      }
    }
  };
  class BlockAll : public BreakdownSchedule {
   public:
    bool allowed(std::int64_t, std::int32_t) override { return false; }
    bool exhausted(std::int64_t t) const override { return t > 0; }
  };
  const Tree t = make_star(4);
  Disobedient algo;
  BlockAll schedule;
  RunConfig config;
  config.num_robots = 2;
  config.schedule = &schedule;
  EXPECT_THROW(run_exploration(t, algo, config), CheckError);
}

TEST(BoundsTest, Theorem1AndLowerBoundFormulas) {
  // Spot values: n=1000, D=10, k=4, Delta large -> log(k) branch.
  const double bound = theorem1_bound(1000, 10, 1000, 4);
  EXPECT_NEAR(bound, 2.0 * 1000 / 4 + 100 * (std::log(4.0) + 3), 1e-9);
  // Delta smaller than k -> log(Delta) branch.
  const double bound2 = theorem1_bound(1000, 10, 2, 64);
  EXPECT_NEAR(bound2, 2.0 * 1000 / 64 + 100 * (std::log(2.0) + 3), 1e-9);
  EXPECT_DOUBLE_EQ(offline_lower_bound(100, 30, 2), 99.0);
  EXPECT_DOUBLE_EQ(offline_lower_bound(100, 80, 2), 160.0);
  // One robot: the bound equals the exact DFS cost 2(n-1).
  EXPECT_DOUBLE_EQ(offline_lower_bound(100, 10, 1), 198.0);
}

}  // namespace
}  // namespace bfdn
