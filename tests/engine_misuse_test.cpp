// Failure injection: algorithms that violate the model must be rejected
// by the engine with a CheckError, never silently accepted — a corrupted
// exploration state would invalidate every measured result.
#include <gtest/gtest.h>

#include <functional>

#include "graph/generators.h"
#include "sim/engine.h"
#include "support/check.h"

namespace bfdn {
namespace {

/// Adapter to write one-off misbehaving algorithms inline.
class LambdaAlgorithm : public Algorithm {
 public:
  using Fn = std::function<void(const ExplorationView&, MoveSelector&)>;
  explicit LambdaAlgorithm(Fn fn) : fn_(std::move(fn)) {}
  std::string name() const override { return "lambda"; }
  void select_moves(const ExplorationView& view,
                    MoveSelector& selector) override {
    fn_(view, selector);
  }

 private:
  Fn fn_;
};

RunConfig one_robot() {
  RunConfig config;
  config.num_robots = 1;
  return config;
}

TEST(EngineMisuseTest, DoubleSelectionRejected) {
  const Tree tree = make_star(4);
  LambdaAlgorithm algo([](const ExplorationView&, MoveSelector& sel) {
    sel.stay(0);
    sel.move_up(0);  // second selection for the same robot
  });
  EXPECT_THROW(run_exploration(tree, algo, one_robot()), CheckError);
}

TEST(EngineMisuseTest, MoveDownToUnexploredChildRejected) {
  const Tree tree = make_path(4);
  LambdaAlgorithm algo([](const ExplorationView&, MoveSelector& sel) {
    // Node 1 exists in the hidden tree but was never explored.
    sel.move_down(0, 1);
  });
  EXPECT_THROW(run_exploration(tree, algo, one_robot()), CheckError);
}

TEST(EngineMisuseTest, MoveDownToNonChildRejected) {
  const Tree tree = make_path(3);
  LambdaAlgorithm algo([](const ExplorationView& view, MoveSelector& sel) {
    if (view.robot_pos(0) == view.root()) {
      (void)sel.try_take_dangling(0);
      return;
    }
    sel.move_down(0, view.root());  // the root is nobody's child
  });
  EXPECT_THROW(run_exploration(tree, algo, one_robot()), CheckError);
}

TEST(EngineMisuseTest, OutOfRangeRobotIndexRejected) {
  const Tree tree = make_path(3);
  LambdaAlgorithm algo([](const ExplorationView&, MoveSelector& sel) {
    sel.stay(7);  // only robot 0 exists
  });
  EXPECT_THROW(run_exploration(tree, algo, one_robot()), CheckError);
}

TEST(EngineMisuseTest, JoinWithoutReservationRejected) {
  const Tree tree = make_star(4);
  LambdaAlgorithm algo([](const ExplorationView&, MoveSelector& sel) {
    sel.join_dangling(0, 1);  // nothing reserved this round
  });
  EXPECT_THROW(run_exploration(tree, algo, one_robot()), CheckError);
}

TEST(EngineMisuseTest, JoinFromDifferentNodeRejected) {
  const Tree tree = make_complete_bary(2, 2);
  RunConfig config;
  config.num_robots = 2;
  LambdaAlgorithm algo([](const ExplorationView& view, MoveSelector& sel) {
    // Robot 0 reserves at the root; robot 1, once elsewhere, tries to
    // join that token from a different node.
    const NodeId token = sel.try_take_dangling(0);
    if (token != kInvalidNode && view.robot_pos(1) != view.robot_pos(0)) {
      sel.join_dangling(1, token);
      return;
    }
    if (token == kInvalidNode) {
      sel.stay(0);
    }
    if (sel.try_take_dangling(1) == kInvalidNode) sel.move_up(1);
  });
  EXPECT_THROW(run_exploration(tree, algo, config), CheckError);
}

TEST(EngineMisuseTest, StallWithoutCompletionStopsCleanly) {
  // An algorithm that gives up mid-way: the engine terminates (do-while
  // semantics) and honestly reports the incomplete exploration.
  const Tree tree = make_path(10);
  std::int64_t budget = 3;
  LambdaAlgorithm algo(
      [&budget](const ExplorationView&, MoveSelector& sel) {
        if (budget-- > 0) (void)sel.try_take_dangling(0);
      });
  const RunResult result = run_exploration(tree, algo, one_robot());
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.rounds, 3);
}

TEST(EngineMisuseTest, ViewRejectsQueriesOnUnexploredNodes) {
  const Tree tree = make_path(4);
  LambdaAlgorithm algo([](const ExplorationView& view, MoveSelector& sel) {
    (void)sel;
    (void)view.depth(3);  // node 3 not explored yet
  });
  EXPECT_THROW(run_exploration(tree, algo, one_robot()), CheckError);
}

TEST(EngineMisuseTest, ZeroRobotsRejected) {
  const Tree tree = make_path(2);
  LambdaAlgorithm algo([](const ExplorationView&, MoveSelector&) {});
  RunConfig config;
  config.num_robots = 0;
  EXPECT_THROW(run_exploration(tree, algo, config), CheckError);
}

}  // namespace
}  // namespace bfdn
