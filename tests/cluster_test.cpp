// Tests for the sharded service fleet (src/cluster): consistent-ring
// placement properties, the router's byte-identity contract (a routed
// response equals the same request served solo, byte for byte — sync,
// async, and campaign), hot-key replication and dead-shard failover,
// and cross-shard segment shipping including torn/corrupt rejection.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/forward.h"
#include "cluster/peers.h"
#include "cluster/ring.h"
#include "cluster/router.h"
#include "service/protocol.h"
#include "service/server.h"
#include "store/segment.h"
#include "support/check.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/socket.h"
#include "support/strings.h"

namespace bfdn {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test store directory under gtest's temp root.
std::string test_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("bfdn_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<std::string> labels(std::size_t n) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(str_format("17%02zu", i));  // port-style labels
  }
  return out;
}

/// One raw protocol exchange over a fresh socket — the tests' view of
/// the wire, independent of ServiceClient's conveniences.
std::string raw_call(std::uint16_t port, const std::string& line) {
  Socket socket = connect_local(port, /*recv_timeout_ms=*/30000);
  EXPECT_TRUE(socket.send_all(line + "\n"));
  const auto response = socket.recv_line();
  EXPECT_TRUE(response.has_value());
  return response.value_or("");
}

ServiceRequest run_request(const std::string& id, std::uint64_t seed,
                           std::int32_t k = 4) {
  ServiceRequest request;
  request.id = id;
  request.recipe.family = "caterpillar";
  request.recipe.nodes = 300;
  request.recipe.depth = 8;
  request.recipe.arms = 3;
  request.recipe.seed = seed;
  request.algo.kind = AlgoKind::kBfdn;
  request.algo.k = k;
  return request;
}

/// A small fleet of in-process shards plus a router over them.
struct Fleet {
  std::vector<std::unique_ptr<ServiceServer>> shards;
  std::unique_ptr<RouterServer> router;

  explicit Fleet(std::size_t n, RouterOptions router_options = {},
                 ServerOptions shard_options = {}) {
    for (std::size_t i = 0; i < n; ++i) {
      ServerOptions options = shard_options;
      options.port = 0;
      shards.push_back(std::make_unique<ServiceServer>(options));
      shards.back()->start();
    }
    for (std::size_t i = 0; i < n; ++i) {
      router_options.peers.push_back(shards[i]->port());
    }
    router_options.port = 0;
    router = std::make_unique<RouterServer>(router_options);
    router->start();
  }
};

// --- consistent ring ---

TEST(ConsistentRingTest, DeterministicAcrossInstances) {
  const ConsistentRing a(labels(4), 64);
  const ConsistentRing b(labels(4), 64);
  std::uint64_t state = 7;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t key = splitmix64(state);
    EXPECT_EQ(a.owner(key), b.owner(key));
    EXPECT_EQ(a.owners(key, 2), b.owners(key, 2));
  }
}

TEST(ConsistentRingTest, PointPlacementIsStable) {
  // The placement hash is part of the fleet's on-the-wire contract
  // (two routers over the same peer list must agree); pin one value.
  EXPECT_EQ(ConsistentRing::point("1700", 0),
            ConsistentRing::point("1700", 0));
  EXPECT_NE(ConsistentRing::point("1700", 0),
            ConsistentRing::point("1700", 1));
  EXPECT_NE(ConsistentRing::point("1700", 0),
            ConsistentRing::point("1701", 0));
}

TEST(ConsistentRingTest, BalanceWithinSlack) {
  const std::size_t kPeers = 4;
  const std::int64_t kKeys = 20000;
  const ConsistentRing ring(labels(kPeers), 64);
  std::map<std::int32_t, std::int64_t> counts;
  std::uint64_t state = 99;
  for (std::int64_t i = 0; i < kKeys; ++i) {
    ++counts[ring.owner(splitmix64(state))];
  }
  EXPECT_EQ(counts.size(), kPeers);  // every peer owns something
  const double ideal = static_cast<double>(kKeys) / kPeers;
  for (const auto& [peer, count] : counts) {
    // 64 vnodes keeps arc-length variance small; 1.5x ideal is far
    // outside the expected envelope and still catches a broken hash.
    EXPECT_LT(static_cast<double>(count), ideal * 1.5)
        << "peer " << peer << " owns " << count;
    EXPECT_GT(static_cast<double>(count), ideal * 0.5)
        << "peer " << peer << " owns " << count;
  }
}

TEST(ConsistentRingTest, AddingPeerMovesOnlyKeysToNewPeer) {
  const ConsistentRing before(labels(3), 64);
  std::vector<std::string> grown = labels(3);
  grown.push_back("1800");
  const ConsistentRing after(grown, 64);
  std::uint64_t state = 5;
  std::int64_t moved = 0;
  const std::int64_t kKeys = 8000;
  for (std::int64_t i = 0; i < kKeys; ++i) {
    const std::uint64_t key = splitmix64(state);
    const std::int32_t old_owner = before.owner(key);
    const std::int32_t new_owner = after.owner(key);
    if (new_owner != old_owner) {
      // Consistent hashing's defining property: growth only moves keys
      // onto the new peer, never between surviving peers.
      EXPECT_EQ(new_owner, 3) << "key moved between surviving peers";
      ++moved;
    }
  }
  const double fraction =
      static_cast<double>(moved) / static_cast<double>(kKeys);
  EXPECT_GT(fraction, 0.10);  // the new peer took a real share...
  EXPECT_LT(fraction, 0.45);  // ...but nowhere near a full reshuffle
}

TEST(ConsistentRingTest, OwnersDistinctPrimaryFirst) {
  const ConsistentRing ring(labels(4), 32);
  std::uint64_t state = 13;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t key = splitmix64(state);
    const std::vector<std::int32_t> two = ring.owners(key, 2);
    ASSERT_EQ(two.size(), 2u);
    EXPECT_EQ(two[0], ring.owner(key));
    EXPECT_NE(two[0], two[1]);
    const std::vector<std::int32_t> all = ring.owners(key, 99);
    EXPECT_EQ(all.size(), 4u);
    EXPECT_EQ(std::set<std::int32_t>(all.begin(), all.end()).size(), 4u);
  }
}

// --- peer spec ---

TEST(PeerSpecTest, ParsesAndValidates) {
  const std::vector<std::uint16_t> ports = parse_peer_ports("7431,7432");
  ASSERT_EQ(ports.size(), 2u);
  EXPECT_EQ(ports[0], 7431);
  EXPECT_EQ(ports[1], 7432);
  EXPECT_THROW(parse_peer_ports(""), CheckError);
  EXPECT_THROW(parse_peer_ports("7431,"), CheckError);
  EXPECT_THROW(parse_peer_ports("7431,abc"), CheckError);
  EXPECT_THROW(parse_peer_ports("7431,99999"), CheckError);
  EXPECT_THROW(parse_peer_ports("7431,7431"), CheckError);
}

// --- routed == solo byte identity ---

TEST(RouterTest, RoutedEqualsSoloByteForByte) {
  ServiceServer solo(ServerOptions{});
  solo.start();
  RouterOptions router_options;
  router_options.hot_threshold = 1000;  // identity run stays replica-free
  Fleet fleet(2, router_options);

  // A grid over the servable axes: sync, shortcut, breakdown schedule,
  // async clocks, different k — cold first pass, cached second pass.
  std::vector<ServiceRequest> grid;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    grid.push_back(run_request(str_format("s%llu",
                                          (unsigned long long)seed),
                               seed, seed % 2 == 0 ? 4 : 8));
  }
  {
    ServiceRequest request = run_request("shortcut", 9);
    request.algo.options.shortcut_reanchor = true;
    grid.push_back(request);
  }
  {
    ServiceRequest request = run_request("sched", 10);
    request.schedule.kind = ScheduleKind::kRoundRobin;
    request.schedule.horizon = 64;
    grid.push_back(request);
  }
  {
    ServiceRequest request = run_request("async", 11);
    request.async.kind = AsyncKind::kFixedRate;
    request.async.period = 2;
    request.async.num_slow = 2;
    grid.push_back(request);
  }

  for (int pass = 0; pass < 2; ++pass) {
    for (const ServiceRequest& request : grid) {
      const std::string line = serialize_request(request);
      const std::string from_solo = raw_call(solo.port(), line);
      const std::string from_router =
          raw_call(fleet.router->port(), line);
      EXPECT_EQ(from_solo, from_router)
          << "pass " << pass << " id " << request.id;
      if (pass == 1) {
        EXPECT_NE(from_router.find("\"cached\":true"), std::string::npos);
      }
    }
  }
}

TEST(RouterTest, RoutedCampaignEqualsSoloCampaign) {
  ServiceServer solo(ServerOptions{});
  solo.start();
  Fleet fleet(2);

  ServiceRequest campaign = run_request("camp", 21);
  campaign.type = RequestType::kCampaign;
  campaign.campaign_ks = {2, 4, 8};
  campaign.campaign_seeds = {1, 2};
  const std::string line = serialize_request(campaign);

  // Cold and cached passes must both match byte for byte — member
  // order, cached flags, keys, and the spliced result objects.
  for (int pass = 0; pass < 2; ++pass) {
    const std::string from_solo = raw_call(solo.port(), line);
    const std::string from_router = raw_call(fleet.router->port(), line);
    EXPECT_EQ(from_solo, from_router) << "pass " << pass;
    EXPECT_NE(from_solo.find("\"members_total\":6"), std::string::npos);
  }

  // Member order is the expansion order (k-major, then seed): the
  // routed members' keys line up with expand_campaign's fingerprints.
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(raw_call(fleet.router->port(), line), doc,
                         &error))
      << error;
  const std::vector<ServiceRequest> members = expand_campaign(campaign);
  const JsonValue& slots = doc.at("members");
  ASSERT_EQ(slots.size(), members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    EXPECT_EQ(slots.at(i).get_string("key", ""),
              str_format("%016llx",
                         static_cast<unsigned long long>(
                             request_fingerprint(members[i]))));
  }
}

// --- routing introspection and stats ---

TEST(RouterTest, ShardRequestReportsOwners) {
  Fleet fleet(3);
  ServiceRequest request = run_request("probe", 5);
  request.type = RequestType::kShard;
  request.id = "probe";
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(raw_call(fleet.router->port(),
                                  serialize_request(request)),
                         doc, &error))
      << error;
  EXPECT_EQ(doc.get_string("status", ""), "ok");
  const JsonValue& owners = doc.at("owners");
  ASSERT_EQ(owners.size(), 1u);  // cold key: primary only
  EXPECT_GE(owners.at(0).as_int(), 0);
  EXPECT_LT(owners.at(0).as_int(), 3);

  // The fingerprint matches the run fingerprint (shard canonicalizes
  // like the run it describes).
  ServiceRequest as_run = request;
  as_run.type = RequestType::kRun;
  EXPECT_EQ(doc.get_string("key", ""),
            str_format("%016llx", static_cast<unsigned long long>(
                                      request_fingerprint(as_run))));

  // Shards themselves refuse routing questions (the ring lives in the
  // cluster layer, above the service).
  const std::string from_shard =
      raw_call(fleet.shards[0]->port(), serialize_request(request));
  EXPECT_NE(from_shard.find("\"status\":\"error\""), std::string::npos);
}

TEST(RouterTest, PeerStatsFansOut) {
  Fleet fleet(2);
  raw_call(fleet.router->port(),
           serialize_request(run_request("warm", 31)));
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(raw_call(fleet.router->port(),
                                  "{\"type\":\"peer_stats\"}"),
                         doc, &error))
      << error;
  EXPECT_EQ(doc.get_string("status", ""), "ok");
  const JsonValue& peers = doc.at("peers");
  ASSERT_EQ(peers.size(), 2u);
  for (std::size_t i = 0; i < peers.size(); ++i) {
    EXPECT_TRUE(peers.at(i).at("stats").is_object());
    // Every shard's stats carries the cluster identity block.
    EXPECT_TRUE(peers.at(i).at("stats").has("cluster"));
  }
}

// --- hot-key replication and failover ---

TEST(RouterTest, HotKeyReplicatesAndSurvivesShardDeath) {
  RouterOptions router_options;
  router_options.replicas = 2;
  router_options.hot_threshold = 3;
  router_options.forward_timeout_ms = 5000;
  Fleet fleet(3, router_options);

  const ServiceRequest request = run_request("hot", 41);
  const std::string line = serialize_request(request);
  std::string expected;
  for (int i = 0; i < 8; ++i) {
    const std::string response = raw_call(fleet.router->port(), line);
    if (expected.empty()) {
      expected = response;
    } else {
      // Replica-computed responses differ at most in the cached flag;
      // the result object itself is byte-identical (determinism).
      const std::size_t result_pos = response.find("\"result\":");
      ASSERT_NE(result_pos, std::string::npos);
      EXPECT_EQ(response.substr(result_pos),
                expected.substr(expected.find("\"result\":")));
    }
  }

  // The key is hot now: the shard request reports both replicas.
  ServiceRequest probe = request;
  probe.type = RequestType::kShard;
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(raw_call(fleet.router->port(),
                                  serialize_request(probe)),
                         doc, &error))
      << error;
  const JsonValue& owners = doc.at("owners");
  ASSERT_EQ(owners.size(), 2u);

  // Kill the primary replica; the hot key fails over to the survivor
  // and every subsequent request still answers ok.
  const auto primary = static_cast<std::size_t>(owners.at(0).as_int());
  fleet.shards[primary]->drain();
  for (int i = 0; i < 4; ++i) {
    const std::string response = raw_call(fleet.router->port(), line);
    EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos)
        << response;
    const std::size_t result_pos = response.find("\"result\":");
    ASSERT_NE(result_pos, std::string::npos);
    EXPECT_EQ(response.substr(result_pos),
              expected.substr(expected.find("\"result\":")));
  }

  // A cold key owned solely by the dead shard answers retry (the
  // protocol's backpressure envelope — clients resend later).
  bool saw_retry = false;
  for (std::uint64_t seed = 100; seed < 160 && !saw_retry; ++seed) {
    ServiceRequest cold = run_request("cold", seed);
    ServiceRequest cold_probe = cold;
    cold_probe.type = RequestType::kShard;
    JsonValue cold_doc;
    ASSERT_TRUE(json_parse(raw_call(fleet.router->port(),
                                    serialize_request(cold_probe)),
                           cold_doc, &error))
        << error;
    if (static_cast<std::size_t>(
            cold_doc.at("owners").at(0).as_int()) != primary) {
      continue;
    }
    const std::string response =
        raw_call(fleet.router->port(), serialize_request(cold));
    EXPECT_NE(response.find("\"status\":\"retry\""), std::string::npos)
        << response;
    saw_retry = true;
  }
  EXPECT_TRUE(saw_retry) << "no sampled key was owned by the dead shard";
}

// --- segment shipping ---

TEST(ClusterShipTest, ShipWarmsPeerMemoryToMemory) {
  Fleet fleet(2);
  // Warm shard 0 directly with a few runs.
  std::vector<std::string> lines;
  for (std::uint64_t seed = 50; seed < 54; ++seed) {
    lines.push_back(serialize_request(run_request("w", seed)));
    raw_call(fleet.shards[0]->port(), lines.back());
  }

  // Ship shard 0 -> shard 1 through the router's from/to form.
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(
      raw_call(fleet.router->port(),
               "{\"id\":\"ship\",\"type\":\"ship_segment\",\"from\":0,"
               "\"to\":1}"),
      doc, &error))
      << error;
  ASSERT_EQ(doc.get_string("status", ""), "ok") << doc.get_string(
      "error", "");
  const JsonValue& ship = doc.at("ship");
  EXPECT_EQ(ship.get_int("records", 0), 4);
  EXPECT_EQ(ship.at("fill").get_int("imported", 0), 4);
  EXPECT_EQ(ship.at("fill").get_int("corrupted_skipped", 0), 0);

  // The peer now serves every shipped run from cache, byte-identical
  // to the source shard's copy.
  for (const std::string& line : lines) {
    const std::string from_peer = raw_call(fleet.shards[1]->port(), line);
    EXPECT_NE(from_peer.find("\"cached\":true"), std::string::npos);
    const std::string from_source =
        raw_call(fleet.shards[0]->port(), line);
    EXPECT_EQ(from_peer, from_source);
  }

  // Re-shipping dedups: everything is a duplicate now.
  ASSERT_TRUE(json_parse(
      raw_call(fleet.router->port(),
               "{\"id\":\"ship2\",\"type\":\"ship_segment\",\"from\":0,"
               "\"to\":1}"),
      doc, &error))
      << error;
  EXPECT_EQ(doc.at("ship").at("fill").get_int("duplicates", 0), 4);
  EXPECT_EQ(doc.at("ship").at("fill").get_int("imported", 0), 0);
}

TEST(ClusterShipTest, ShipIntoStoreBackedPeerIsDurable) {
  ServerOptions source_options;
  ServerOptions sink_options;
  const std::string sink_dir = test_dir("ship_sink");
  sink_options.store_dir = sink_dir;
  sink_options.store_sync = false;

  ServiceServer source(source_options);
  source.start();
  const std::string line = serialize_request(run_request("d", 77));
  raw_call(source.port(), line);

  std::string expected;
  {
    ServiceServer sink(sink_options);
    sink.start();
    const std::string ship = raw_call(
        source.port(),
        str_format("{\"type\":\"ship_segment\",\"port\":%u}",
                   static_cast<unsigned>(sink.port())));
    EXPECT_NE(ship.find("\"imported\":1"), std::string::npos) << ship;
    expected = raw_call(sink.port(), line);
    EXPECT_NE(expected.find("\"cached\":true"), std::string::npos);
    sink.drain();
  }

  // The shipped record landed in a real segment file: a fresh server
  // over the same directory recovers it and serves identical bytes.
  ServiceServer reborn(sink_options);
  reborn.start();
  EXPECT_EQ(raw_call(reborn.port(), line), expected);
}

TEST(ClusterShipTest, FillRejectsCorruptAndTornRecords) {
  ServiceServer shard(ServerOptions{});
  shard.start();

  // Build an image by hand: one good record, one corrupt (payload bit
  // flipped after encoding), one torn (frame cut short).
  const std::string payload_a = "{\"v\":1}";
  const std::string payload_b = "{\"v\":2}";
  const std::string payload_c = "{\"v\":3}";
  std::string image(store::kSegmentMagic, store::kSegmentHeaderBytes);
  store::encode_record(0xa1, payload_a, &image);
  const std::size_t corrupt_at = image.size() + store::kRecordHeaderBytes;
  store::encode_record(0xb2, payload_b, &image);
  image[corrupt_at] ^= 0x40;  // flip a payload bit in record b
  store::encode_record(0xc3, payload_c, &image);
  image.resize(image.size() - 4);  // tear record c's tail off

  Socket socket = connect_local(shard.port(), 30000);
  ASSERT_TRUE(socket.send_all(
      str_format("{\"id\":\"f\",\"type\":\"segment_fill\",\"bytes\":%zu}"
                 "\n",
                 image.size())));
  ASSERT_TRUE(socket.send_all(image));
  const auto ack = socket.recv_line();
  ASSERT_TRUE(ack.has_value());
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(*ack, doc, &error)) << error;
  ASSERT_EQ(doc.get_string("status", ""), "ok");
  const JsonValue& fill = doc.at("fill");
  EXPECT_EQ(fill.get_int("imported", 0), 1);
  EXPECT_EQ(fill.get_int("corrupted_skipped", 0), 1);
  EXPECT_EQ(fill.get_int("torn_truncated", 0), 1);

  // Wrong magic is refused outright.
  Socket bad = connect_local(shard.port(), 30000);
  std::string junk = "XXXXXXXX";
  store::encode_record(0xd4, payload_a, &junk);
  ASSERT_TRUE(bad.send_all(
      str_format("{\"type\":\"segment_fill\",\"bytes\":%zu}\n",
                 junk.size())));
  ASSERT_TRUE(bad.send_all(junk));
  const auto refused = bad.recv_line();
  ASSERT_TRUE(refused.has_value());
  EXPECT_NE(refused->find("bad segment magic"), std::string::npos);
}

// --- concurrency storm (run under TSan via the tsan preset) ---

TEST(ClusterStormTest, ConcurrentForwardsReplicationAndShipping) {
  RouterOptions router_options;
  router_options.replicas = 2;
  router_options.hot_threshold = 2;
  Fleet fleet(3, router_options);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 24;
  std::vector<std::thread> clients;
  std::vector<std::int64_t> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&fleet, &failures, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string line;
        if (i % 3 == 0) {
          // Hot key shared by every thread → replication churn.
          line = serialize_request(run_request("hot", 7));
        } else if (i % 7 == 0) {
          line = "{\"type\":\"stats\"}";
        } else {
          line = serialize_request(run_request(
              "u", static_cast<std::uint64_t>(t * 1000 + i)));
        }
        const std::string response =
            raw_call(fleet.router->port(), line);
        if (response.find("\"status\":\"ok\"") == std::string::npos) {
          ++failures[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  // Concurrent cross-shard ships while the forwards are in flight.
  std::thread shipper([&fleet] {
    for (int i = 0; i < 6; ++i) {
      raw_call(fleet.router->port(),
               str_format("{\"type\":\"ship_segment\",\"from\":%d,"
                          "\"to\":%d}",
                          i % 3, (i + 1) % 3));
    }
  });
  for (std::thread& client : clients) client.join();
  shipper.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[static_cast<std::size_t>(t)], 0)
        << "thread " << t;
  }

  // The router counted replica routing, and the fleet stayed coherent.
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(raw_call(fleet.router->port(),
                                  "{\"type\":\"stats\"}"),
                         doc, &error))
      << error;
  const JsonValue& routing = doc.at("stats").at("routing");
  EXPECT_GT(routing.get_int("replica_routed", 0), 0);
  EXPECT_EQ(doc.at("stats").at("requests").get_int("protocol_errors", 0),
            0);
}

}  // namespace
}  // namespace bfdn
