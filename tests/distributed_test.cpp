// Tests for the write-read / restricted-memory model (Section 4.1):
// port numbering, the PARTITION discipline, Algorithm 2's planner, and
// Proposition 6's runtime and memory guarantees.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "distributed/ports.h"
#include "distributed/writeread.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "support/check.h"

namespace bfdn {
namespace {

TEST(PortedTreeTest, PortZeroLeadsToParent) {
  const Tree t = Tree::from_parents({kInvalidNode, 0, 0, 1});
  const PortedTree ports(t);
  EXPECT_EQ(ports.via_port(1, 0), 0);
  EXPECT_EQ(ports.via_port(3, 0), 1);
  EXPECT_EQ(ports.port_to_parent(3), 0);
}

TEST(PortedTreeTest, RootPortsAreChildren) {
  const Tree t = make_star(5);
  const PortedTree ports(t);
  EXPECT_EQ(ports.child_port_floor(0), 0);
  std::set<NodeId> reached;
  for (std::int32_t p = 0; p < ports.degree(0); ++p) {
    reached.insert(ports.via_port(0, p));
  }
  EXPECT_EQ(reached.size(), 4u);
}

TEST(PortedTreeTest, AddressRoundTrip) {
  Rng rng(42);
  const Tree t = make_random_leafy(120, 4, rng);
  const PortedTree ports(t);
  for (NodeId v = 0; v < t.num_nodes(); ++v) {
    const auto address = ports.address_of(v);
    EXPECT_EQ(static_cast<std::int32_t>(address.size()), t.depth(v));
    EXPECT_EQ(ports.resolve(address), v);
  }
}

TEST(PortedTreeTest, PortFromParentInverse) {
  Rng rng(43);
  const Tree t = make_random_bounded_degree(80, 5, rng);
  const PortedTree ports(t);
  for (NodeId v = 1; v < t.num_nodes(); ++v) {
    EXPECT_EQ(ports.via_port(t.parent(v), ports.port_from_parent(v)), v);
  }
}

TEST(PortedTreeTest, RejectsBadPorts) {
  const Tree t = make_path(3);
  const PortedTree ports(t);
  EXPECT_THROW(ports.via_port(0, 5), CheckError);
  EXPECT_THROW(ports.port_to_parent(0), CheckError);
}

// ---------------------------------------------------------------------
// Write-read BFDN end-to-end.
// ---------------------------------------------------------------------

struct WrParam {
  std::size_t tree_index;
  std::int32_t k;
};

class WriteReadSweepTest : public ::testing::TestWithParam<WrParam> {
 protected:
  static const std::vector<NamedTree>& zoo() {
    static const std::vector<NamedTree> kZoo = make_tree_zoo(250, 555);
    return kZoo;
  }
};

TEST_P(WriteReadSweepTest, ExploresReturnsAndMeetsProposition6Bound) {
  const auto& [name, tree] = zoo()[GetParam().tree_index];
  const std::int32_t k = GetParam().k;
  const WriteReadResult result = run_write_read_bfdn(tree, k);
  EXPECT_TRUE(result.complete) << name;
  EXPECT_TRUE(result.all_at_root) << name;
  EXPECT_FALSE(result.hit_round_limit) << name;
  const double bound = theorem1_bound(tree.num_nodes(), tree.depth(),
                                      tree.max_degree(), k);
  EXPECT_LE(static_cast<double>(result.rounds), bound) << name;
}

TEST_P(WriteReadSweepTest, RobotMemoryStaysWithinModelAllowance) {
  const auto& [name, tree] = zoo()[GetParam().tree_index];
  const WriteReadResult result = run_write_read_bfdn(tree, GetParam().k);
  EXPECT_LE(result.max_robot_memory_bits, result.memory_allowance_bits)
      << name;
}

std::vector<WrParam> wr_params() {
  std::vector<WrParam> params;
  const std::size_t num_trees = make_tree_zoo(250, 555).size();
  for (std::size_t t = 0; t < num_trees; ++t) {
    for (std::int32_t k : {1, 2, 7, 24}) params.push_back({t, k});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    ZooTimesRobots, WriteReadSweepTest, ::testing::ValuesIn(wr_params()),
    [](const ::testing::TestParamInfo<WrParam>& param_info) {
      static const auto zoo = make_tree_zoo(250, 555);
      return zoo[param_info.param.tree_index].name + "_k" +
             std::to_string(param_info.param.k);
    });

TEST(WriteReadTest, SingleNodeTree) {
  const WriteReadResult result = run_write_read_bfdn(make_path(1), 3);
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.all_at_root);
}

TEST(WriteReadTest, SingleRobotActsAsDfs) {
  const Tree tree = make_comb(6, 3);
  const WriteReadResult result = run_write_read_bfdn(tree, 1);
  EXPECT_TRUE(result.complete);
  // One robot, anchor = root: pure PARTITION-driven DFS, 2(n-1) moves,
  // plus the transition round in which it files its report.
  EXPECT_LE(result.rounds, 2 * (tree.num_nodes() - 1) + 2);
}

TEST(WriteReadTest, WorkingDepthNeverExceedsTreeDepth) {
  Rng rng(66);
  const Tree tree = make_tree_with_depth(400, 12, rng);
  const WriteReadResult result = run_write_read_bfdn(tree, 6);
  EXPECT_TRUE(result.complete);
  EXPECT_LE(result.final_working_depth, tree.depth());
}

TEST(WriteReadTest, PartitionHandsEachEdgeToOneRobot) {
  // The PARTITION discipline implies every edge's first downward
  // traversal is by exactly one robot: two robots may never move down
  // the same edge in the same round, nor re-descend a handed port.
  Rng rng(42);
  const Tree tree = make_tree_with_depth(200, 8, rng);
  const std::int32_t k = 7;
  std::vector<std::vector<NodeId>> trace;
  const WriteReadResult result =
      run_write_read_bfdn(tree, k, 0, &trace);
  ASSERT_TRUE(result.complete);

  std::vector<NodeId> prev(static_cast<std::size_t>(k), tree.root());
  std::vector<char> first_descent_seen(
      static_cast<std::size_t>(tree.num_nodes()), 0);
  for (const auto& positions : trace) {
    std::set<NodeId> descended_this_round;
    for (std::int32_t r = 0; r < k; ++r) {
      const NodeId now = positions[static_cast<std::size_t>(r)];
      const NodeId before = prev[static_cast<std::size_t>(r)];
      if (now != before && tree.parent(now) == before) {
        // Downward move through edge (before -> now).
        if (!first_descent_seen[static_cast<std::size_t>(now)]) {
          EXPECT_EQ(descended_this_round.count(now), 0u)
              << "two robots first-descended edge to " << now;
          descended_this_round.insert(now);
          first_descent_seen[static_cast<std::size_t>(now)] = 1;
        }
      }
      prev[static_cast<std::size_t>(r)] = now;
    }
  }
  for (NodeId v = 1; v < tree.num_nodes(); ++v) {
    EXPECT_TRUE(first_descent_seen[static_cast<std::size_t>(v)])
        << "edge above " << v << " never descended";
  }
}

TEST(WriteReadTest, RobotsOnlyMoveAlongTreeEdges) {
  const Tree tree = make_comb(6, 4);
  std::vector<std::vector<NodeId>> trace;
  const WriteReadResult result = run_write_read_bfdn(tree, 4, 0, &trace);
  ASSERT_TRUE(result.complete);
  std::vector<NodeId> prev(4, tree.root());
  for (const auto& positions : trace) {
    for (std::size_t r = 0; r < positions.size(); ++r) {
      const NodeId now = positions[r];
      const NodeId before = prev[r];
      EXPECT_TRUE(now == before || tree.parent(now) == before ||
                  tree.parent(before) == now)
          << "teleport " << before << " -> " << now;
      prev[r] = now;
    }
  }
}

TEST(WriteReadTest, ComparableToCompleteCommunicationBfdn) {
  // Proposition 6 promises the SAME bound as Theorem 1; measured rounds
  // of the two implementations should be in the same ballpark.
  Rng rng(77);
  const Tree tree = make_tree_with_depth(2000, 15, rng);
  const std::int32_t k = 12;
  const WriteReadResult wr = run_write_read_bfdn(tree, k);
  ASSERT_TRUE(wr.complete);
  const double bound = theorem1_bound(tree.num_nodes(), tree.depth(),
                                      tree.max_degree(), k);
  EXPECT_LE(static_cast<double>(wr.rounds), bound);
}

}  // namespace
}  // namespace bfdn
