// Record/replay tests for the versioned binary trace format (tentpole
// acceptance: recording any golden-trace cell and replaying it must
// reproduce the exact per-round state hashes).
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "support/check.h"
#include "verify/trace.h"

namespace bfdn {
namespace {

struct TraceCell {
  std::string name;
  Tree tree;
  AlgoSpec algo;
  ScheduleSpec schedule;
  AsyncSpec async;
};

AlgoSpec bfdn_spec(std::int32_t k, BfdnOptions options = BfdnOptions{}) {
  AlgoSpec spec;
  spec.kind = AlgoKind::kBfdn;
  spec.k = k;
  spec.options = options;
  return spec;
}

AlgoSpec kind_spec(AlgoKind kind, std::int32_t k, std::int32_t ell = 1) {
  AlgoSpec spec;
  spec.kind = kind;
  spec.k = k;
  spec.ell = ell;
  return spec;
}

/// The golden-trace grid, re-expressed as serializable specs — every
/// algorithm kind the trace format supports appears at least once.
std::vector<TraceCell> make_cells() {
  std::vector<TraceCell> cells;
  const auto add = [&cells](std::string name, Tree tree, AlgoSpec algo,
                            ScheduleSpec schedule = {},
                            AsyncSpec async = {}) {
    cells.push_back(
        {std::move(name), std::move(tree), algo, schedule, async});
  };

  add("comb12x6/bfdn-ll/k4", make_comb(12, 6), bfdn_spec(4));
  {
    BfdnOptions options;
    options.policy = ReanchorPolicy::kRandom;
    options.seed = 7;
    add("comb12x6/bfdn-random/k4", make_comb(12, 6), bfdn_spec(4, options));
  }
  {
    BfdnOptions options;
    options.shortcut_reanchor = true;
    add("comb12x6/bfdn-shortcut/k4", make_comb(12, 6),
        bfdn_spec(4, options));
  }
  add("bary3d6/bfdn-ll/k16", make_complete_bary(3, 6), bfdn_spec(16));
  {
    BfdnOptions options;
    options.policy = ReanchorPolicy::kFirstFit;
    add("bary3d6/bfdn-firstfit/k16", make_complete_bary(3, 6),
        bfdn_spec(16, options));
  }
  {
    BfdnOptions options;
    options.policy = ReanchorPolicy::kMostLoaded;
    add("caterpillar40x3/bfdn-ml/k8", make_caterpillar(40, 3),
        bfdn_spec(8, options));
  }
  add("star200/bfdn-ll/k8", make_star(200), bfdn_spec(8));
  add("spider9x15/bfdn-ll/k8", make_spider(9, 15), bfdn_spec(8));
  {
    Rng rng(42);
    add("rrt400/bfdn-ll/k8", make_random_recursive(400, rng), bfdn_spec(8));
  }
  {
    BfdnOptions options;
    options.depth_cap = 8;
    add("broom20-30-20/bfdn-cap8/k8", make_double_broom(20, 30, 20),
        bfdn_spec(8, options));
  }
  {
    Rng rng(5);
    add("ctehard8x3/cte/k8", make_cte_hard_tree(8, 3, rng),
        kind_spec(AlgoKind::kCte, 8));
  }
  add("broom20-30-20/bfs-levels/k8", make_double_broom(20, 30, 20),
      kind_spec(AlgoKind::kBfsLevels, 8));
  {
    Rng rng(9);
    add("remy300/bfdn-ell2/k16", make_remy_binary(300, rng),
        kind_spec(AlgoKind::kBfdnEll, 16, 2));
  }
  add("comb8x6/writeread/k6", make_comb(8, 6),
      kind_spec(AlgoKind::kWriteRead, 6));
  add("spider9x15/graph-bfdn/k6", make_spider(9, 15),
      kind_spec(AlgoKind::kGraphBfdn, 6));

  // Adversarial break-down engine path (Proposition 7).
  {
    ScheduleSpec schedule;
    schedule.kind = ScheduleKind::kRoundRobin;
    schedule.horizon = 4000;
    add("comb12x6/bfdn-ll/k4/round-robin", make_comb(12, 6), bfdn_spec(4),
        schedule);
  }
  {
    ScheduleSpec schedule;
    schedule.kind = ScheduleKind::kRandom;
    schedule.horizon = 4000;
    schedule.p = 0.6;
    schedule.seed = 5;
    add("spider9x15/bfdn-ll/k8/random", make_spider(9, 15), bfdn_spec(8),
        schedule);
  }

  // Per-robot-clock engine path: a trace frame per counted event.
  {
    AsyncSpec async = AsyncSpec{};
    async.kind = AsyncKind::kFixedRate;
    async.period = 2;
    async.num_slow = 2;
    add("comb12x6/bfdn-ll/k4/async-fixed", make_comb(12, 6), bfdn_spec(4),
        {}, async);
  }
  {
    AsyncSpec async = AsyncSpec{};
    async.kind = AsyncKind::kRandom;
    async.seed = 11;
    async.max_delay = 3;
    add("spider9x15/bfdn-ll/k8/async-random", make_spider(9, 15),
        bfdn_spec(8), {}, async);
  }
  return cells;
}

TEST(TraceReplay, GoldenCellsReplayBitExactly) {
  for (const TraceCell& cell : make_cells()) {
    SCOPED_TRACE(cell.name);
    const TraceData recorded =
        run_traced(cell.tree, cell.algo, cell.schedule, 0, cell.async);
    EXPECT_GT(recorded.round_hashes.size(), 0u);
    if (cell.async.kind == AsyncKind::kNone) {
      EXPECT_EQ(static_cast<std::int64_t>(recorded.round_hashes.size()),
                recorded.rounds);
    } else {
      // Async traces carry one frame per *counted event*; event times
      // may skip, so there can be fewer frames than the makespan.
      EXPECT_LE(static_cast<std::int64_t>(recorded.round_hashes.size()),
                recorded.rounds);
    }
    const ReplayReport report = replay_trace(recorded);
    EXPECT_TRUE(report.ok) << report.detail;
    EXPECT_EQ(report.first_divergence, -1);
  }
}

TEST(TraceReplay, FileRoundTripPreservesEveryField) {
  const std::string path = testing::TempDir() + "trace_roundtrip.bfdntrc";
  Rng rng(42);
  const Tree tree = make_random_recursive(400, rng);
  BfdnOptions options;
  options.policy = ReanchorPolicy::kRandom;
  options.seed = 7;
  ScheduleSpec schedule;
  schedule.kind = ScheduleKind::kBurst;
  schedule.horizon = 3000;
  schedule.period = 8;

  const TraceData written =
      record_trace(tree, bfdn_spec(8, options), path, schedule);
  const TraceData read = read_trace(path);

  EXPECT_EQ(read.algo.kind, written.algo.kind);
  EXPECT_EQ(read.algo.k, written.algo.k);
  EXPECT_EQ(read.algo.options.policy, written.algo.options.policy);
  EXPECT_EQ(read.algo.options.seed, written.algo.options.seed);
  EXPECT_EQ(read.algo.ell, written.algo.ell);
  EXPECT_EQ(read.schedule.kind, written.schedule.kind);
  EXPECT_EQ(read.schedule.horizon, written.schedule.horizon);
  EXPECT_EQ(read.schedule.period, written.schedule.period);
  EXPECT_EQ(read.parents, written.parents);
  EXPECT_EQ(read.round_hashes, written.round_hashes);
  EXPECT_EQ(read.rounds, written.rounds);
  EXPECT_EQ(read.edge_events, written.edge_events);
  EXPECT_EQ(read.total_reanchors, written.total_reanchors);
  EXPECT_EQ(read.complete, written.complete);
  EXPECT_EQ(read.all_at_root, written.all_at_root);

  const ReplayReport report = replay_trace(path);
  EXPECT_TRUE(report.ok) << report.detail;
}

TEST(TraceReplay, AsyncFileRoundTripPreservesTheAsyncSpec) {
  const std::string path = testing::TempDir() + "trace_async.bfdntrc";
  AsyncSpec async;
  async.kind = AsyncKind::kLaggard;
  async.seed = 21;
  async.max_delay = 5;
  async.period = 3;
  async.num_slow = 2;

  const TraceData written =
      record_trace(make_comb(10, 5), bfdn_spec(4), path, {}, 0, async);
  const TraceData read = read_trace(path);
  EXPECT_EQ(read.async.kind, written.async.kind);
  EXPECT_EQ(read.async.seed, written.async.seed);
  EXPECT_EQ(read.async.max_delay, written.async.max_delay);
  EXPECT_EQ(read.async.period, written.async.period);
  EXPECT_EQ(read.async.num_slow, written.async.num_slow);
  EXPECT_EQ(read.round_hashes, written.round_hashes);

  const ReplayReport report = replay_trace(path);
  EXPECT_TRUE(report.ok) << report.detail;
  std::remove(path.c_str());
}

TEST(TraceReplay, TamperedHashReportsFirstDivergentRound) {
  const Tree tree = make_spider(9, 15);
  TraceData recorded = run_traced(tree, bfdn_spec(8));
  ASSERT_GT(recorded.round_hashes.size(), 20u);
  recorded.round_hashes[17] ^= 1;  // flip one bit of round 18's digest
  const ReplayReport report = replay_trace(recorded);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.first_divergence, 18);
}

TEST(TraceReplay, TamperedFooterIsDetected) {
  const Tree tree = make_comb(12, 6);
  TraceData recorded = run_traced(tree, bfdn_spec(4));
  ++recorded.total_reanchors;
  const ReplayReport report = replay_trace(recorded);
  EXPECT_FALSE(report.ok);
}

TEST(TraceReplay, MalformedFilesThrow) {
  const std::string path = testing::TempDir() + "trace_malformed.bfdntrc";
  const Tree tree = make_star(20);
  record_trace(tree, bfdn_spec(2), path);

  // Corrupt the magic.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fputc('X', f);
    std::fclose(f);
    EXPECT_THROW((void)read_trace(path), CheckError);
  }
  // Rewrite, then truncate the file mid-stream.
  record_trace(tree, bfdn_spec(2), path);
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
    EXPECT_THROW((void)read_trace(path), CheckError);
  }
  EXPECT_THROW((void)read_trace(testing::TempDir() + "does_not_exist"),
               CheckError);
}

TEST(TraceReplay, StateHashSeparatesDifferentRuns) {
  // Two different instances must not (in practice) collide hash-wise on
  // their full sequences — a smoke check that the digest actually
  // depends on the evolving state.
  const TraceData a = run_traced(make_comb(12, 6), bfdn_spec(4));
  const TraceData b = run_traced(make_comb(12, 6), bfdn_spec(8));
  EXPECT_NE(a.round_hashes.front(), b.round_hashes.front());
}

}  // namespace
}  // namespace bfdn
