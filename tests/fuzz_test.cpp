// Fuzz-style stress tests: a randomized but legal algorithm drives the
// engine through unusual interleavings; relabeled isomorphic trees
// check that nothing depends on node-id coincidences.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/bfdn.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "support/rng.h"

namespace bfdn {
namespace {

/// Random legal moves with a mild bias towards dangling edges (pure
/// uniform random walks take forever on deep trees); robots never do
/// anything the model forbids, so the engine must accept every run and
/// the exploration must eventually complete.
class DrunkenSwarm : public Algorithm {
 public:
  DrunkenSwarm(std::int32_t num_robots, std::uint64_t seed)
      : num_robots_(num_robots), rng_(seed) {}
  std::string name() const override { return "drunken-swarm"; }

  void select_moves(const ExplorationView& view,
                    MoveSelector& selector) override {
    for (std::int32_t i = 0; i < num_robots_; ++i) {
      if (!view.can_move(i)) continue;
      const NodeId pos = view.robot_pos(i);
      // 70%: grab a dangling edge if there is one.
      if (rng_.next_bool(0.7) &&
          selector.try_take_dangling(i) != kInvalidNode) {
        continue;
      }
      // Robot 0 is the designated sweeper: it heads for the shallowest
      // open node (a purely random walk reaches deep frontiers only
      // exponentially slowly, and a full all-stay round is the engine's
      // legitimate termination signal). Everyone else wanders freely.
      if (i == 0) {
        if (selector.try_take_dangling(i) != kInvalidNode) continue;
        if (view.exploration_complete()) {
          if (pos == view.root()) {
            selector.stay(i);
          } else {
            selector.move_up(i);
          }
          continue;
        }
        const NodeId target =
            view.open_nodes_at_depth(view.min_open_depth()).front();
        if (view.is_ancestor_or_self(pos, target) && pos != target) {
          const std::vector<NodeId> path = view.path_from_root(target);
          selector.move_down(
              i, path[static_cast<std::size_t>(view.depth(pos)) + 1]);
        } else {
          selector.move_up(i);
        }
        continue;
      }
      const std::vector<NodeId> kids = view.explored_children(pos);
      const double coin = rng_.next_double();
      if (coin < 0.45 && !kids.empty()) {
        selector.move_down(i, rng_.pick(kids));
      } else if (coin < 0.95) {
        selector.move_up(i);  // stay at the root
      } else {
        selector.stay(i);
      }
    }
  }

 private:
  std::int32_t num_robots_;
  Rng rng_;
};

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, DrunkenSwarmNeverBreaksTheEngine) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  Rng tree_rng = rng.split();
  const std::int64_t n =
      30 + static_cast<std::int64_t>(tree_rng.next_below(200));
  const auto depth = static_cast<std::int32_t>(
      2 + tree_rng.next_below(static_cast<std::uint64_t>(
              std::max<std::int64_t>(2, n / 4))));
  Rng shape = rng.split();
  const Tree tree = make_tree_with_depth(n, depth, shape);
  const auto k =
      static_cast<std::int32_t>(1 + rng.next_below(9));
  DrunkenSwarm swarm(k, rng.split()());
  RunConfig config;
  config.num_robots = k;
  // The swarm has no termination discipline (the pacemaker wanders
  // forever), so the run always ends at the round budget; completion
  // must have happened well before it.
  config.max_rounds = 500 * (n + depth);
  const RunResult result = run_exploration(tree, swarm, config);
  EXPECT_TRUE(result.complete)
      << "n=" << n << " D=" << depth << " k=" << k;
  // Engine accounting stays coherent under arbitrary legal behaviour.
  EXPECT_LE(result.edge_events, 2 * (tree.num_nodes() - 1));
  std::int64_t moves = 0;
  for (const auto m : result.robot_moves) moves += m;
  EXPECT_GE(moves, tree.num_nodes() - 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 15));

/// Relabels a tree by a random permutation (root stays 0).
Tree relabel(const Tree& tree, Rng& rng) {
  const auto n = static_cast<std::size_t>(tree.num_nodes());
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  // Shuffle all but the root.
  for (std::size_t i = n - 1; i > 1; --i) {
    const std::size_t j =
        1 + static_cast<std::size_t>(rng.next_below(i));
    std::swap(perm[i], perm[j]);
  }
  std::vector<NodeId> parents(n, kInvalidNode);
  for (NodeId v = 1; v < tree.num_nodes(); ++v) {
    parents[static_cast<std::size_t>(perm[static_cast<std::size_t>(v)])] =
        perm[static_cast<std::size_t>(tree.parent(v))];
  }
  return Tree::from_parents(std::move(parents));
}

TEST(RelabelTest, IsomorphicTreesGiveSameShapeAndBounds) {
  Rng rng(2024);
  const Tree tree = make_tree_with_depth(400, 12, rng);
  Rng perm_rng = rng.split();
  const Tree twin = relabel(tree, perm_rng);
  EXPECT_EQ(twin.num_nodes(), tree.num_nodes());
  EXPECT_EQ(twin.depth(), tree.depth());
  EXPECT_EQ(twin.max_degree(), tree.max_degree());
  EXPECT_EQ(twin.subtree_size(0), tree.subtree_size(0));
}

TEST(RelabelTest, BfdnCompletesIdenticallyOnRelabeledTrees) {
  // Round counts may differ (tie-breaks see different ids), but
  // completion, bound compliance and total work must be label-free.
  Rng rng(4048);
  const Tree tree = make_tree_with_depth(600, 15, rng);
  Rng perm_rng = rng.split();
  const Tree twin = relabel(tree, perm_rng);
  const std::int32_t k = 8;
  for (const Tree* t : {&tree, &twin}) {
    BfdnAlgorithm algo(k);
    RunConfig config;
    config.num_robots = k;
    const RunResult result = run_exploration(*t, algo, config);
    EXPECT_TRUE(result.complete);
    EXPECT_EQ(result.edge_events, 2 * (t->num_nodes() - 1));
    EXPECT_LE(static_cast<double>(result.rounds),
              theorem1_bound(t->num_nodes(), t->depth(),
                             t->max_degree(), k));
  }
}

}  // namespace
}  // namespace bfdn
