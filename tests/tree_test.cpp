#include <gtest/gtest.h>

#include "graph/tree.h"
#include "support/check.h"

namespace bfdn {
namespace {

Tree small_tree() {
  // 0 -> {1, 2}; 1 -> {3, 4}; 4 -> {5}
  return Tree::from_parents({kInvalidNode, 0, 0, 1, 1, 4});
}

TEST(TreeTest, BasicShape) {
  const Tree t = small_tree();
  EXPECT_EQ(t.num_nodes(), 6);
  EXPECT_EQ(t.num_edges(), 5);
  EXPECT_EQ(t.root(), 0);
  EXPECT_EQ(t.depth(), 3);
}

TEST(TreeTest, ParentsAndChildren) {
  const Tree t = small_tree();
  EXPECT_EQ(t.parent(0), kInvalidNode);
  EXPECT_EQ(t.parent(3), 1);
  const auto kids = t.children(1);
  EXPECT_EQ(kids.size(), 2u);
  EXPECT_EQ(kids[0], 3);
  EXPECT_EQ(kids[1], 4);
  EXPECT_EQ(t.num_children(2), 0);
}

TEST(TreeTest, Depths) {
  const Tree t = small_tree();
  EXPECT_EQ(t.depth(0), 0);
  EXPECT_EQ(t.depth(2), 1);
  EXPECT_EQ(t.depth(5), 3);
}

TEST(TreeTest, DegreesAndMaxDegree) {
  const Tree t = small_tree();
  EXPECT_EQ(t.degree(0), 2);   // two children, no parent
  EXPECT_EQ(t.degree(1), 3);   // two children + parent
  EXPECT_EQ(t.degree(5), 1);   // leaf
  EXPECT_EQ(t.max_degree(), 3);
}

TEST(TreeTest, SubtreeSizes) {
  const Tree t = small_tree();
  EXPECT_EQ(t.subtree_size(0), 6);
  EXPECT_EQ(t.subtree_size(1), 4);
  EXPECT_EQ(t.subtree_size(4), 2);
  EXPECT_EQ(t.subtree_size(2), 1);
}

TEST(TreeTest, AncestorQueries) {
  const Tree t = small_tree();
  EXPECT_TRUE(t.is_ancestor_or_self(0, 5));
  EXPECT_TRUE(t.is_ancestor_or_self(1, 5));
  EXPECT_TRUE(t.is_ancestor_or_self(5, 5));
  EXPECT_FALSE(t.is_ancestor_or_self(2, 5));
  EXPECT_FALSE(t.is_ancestor_or_self(5, 1));
}

TEST(TreeTest, PathFromRoot) {
  const Tree t = small_tree();
  EXPECT_EQ(t.path_from_root(5), (std::vector<NodeId>{0, 1, 4, 5}));
  EXPECT_EQ(t.path_from_root(0), (std::vector<NodeId>{0}));
}

TEST(TreeTest, SingleNode) {
  const Tree t = Tree::from_parents({kInvalidNode});
  EXPECT_EQ(t.num_nodes(), 1);
  EXPECT_EQ(t.num_edges(), 0);
  EXPECT_EQ(t.depth(), 0);
  EXPECT_EQ(t.max_degree(), 0);
}

TEST(TreeTest, RejectsEmptyAndBadRoot) {
  EXPECT_THROW(Tree::from_parents({}), CheckError);
  EXPECT_THROW(Tree::from_parents({0}), CheckError);  // root self-parent
}

TEST(TreeTest, RejectsCycle) {
  // 1 and 2 point at each other; unreachable from root.
  EXPECT_THROW(Tree::from_parents({kInvalidNode, 2, 1}), CheckError);
}

TEST(TreeTest, RejectsOutOfRangeParent) {
  EXPECT_THROW(Tree::from_parents({kInvalidNode, 7}), CheckError);
}

TEST(TreeTest, AcceptsForwardParentReferences) {
  // Node 1's parent is node 2 (declared later) — still a valid tree.
  const Tree t = Tree::from_parents({kInvalidNode, 2, 0});
  EXPECT_EQ(t.depth(1), 2);
  EXPECT_EQ(t.depth(2), 1);
}

TEST(TreeTest, NodeRangeChecked) {
  const Tree t = small_tree();
  EXPECT_THROW(t.depth(99), CheckError);
  EXPECT_THROW(t.parent(-1), CheckError);
}

TEST(TreeBuilderTest, BuildsIncrementally) {
  TreeBuilder b;
  const NodeId a = b.add_child(0);
  const NodeId c = b.add_child(a);
  EXPECT_EQ(b.num_nodes(), 3);
  const Tree t = b.build();
  EXPECT_EQ(t.parent(c), a);
  EXPECT_EQ(t.depth(), 2);
}

TEST(TreeBuilderTest, RejectsUnknownParent) {
  TreeBuilder b;
  EXPECT_THROW(b.add_child(5), CheckError);
}

TEST(TreeTest, SummaryMentionsShape) {
  const std::string s = small_tree().summary();
  EXPECT_NE(s.find("n=6"), std::string::npos);
  EXPECT_NE(s.find("D=3"), std::string::npos);
}

}  // namespace
}  // namespace bfdn
