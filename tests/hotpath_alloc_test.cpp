// Verifies the engine round loop's allocation discipline: a BFDN run
// performs a bounded number of heap allocations (state construction,
// buffer warm-up, result histograms) that does NOT scale with the
// number of simulated rounds. A single stray per-round allocation in
// the engine, the selector, the state or BfdnAlgorithm multiplies by
// the round count and blows the ceiling by orders of magnitude.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "core/bfdn.h"
#include "graph/generators.h"
#include "sim/engine.h"

namespace {

// Thread-local so gtest internals on other threads (none expected) and
// static initialization cannot race the counter.
thread_local bool g_counting = false;
thread_local std::int64_t g_allocations = 0;

struct CountingScope {
  CountingScope() {
    g_allocations = 0;
    g_counting = true;
  }
  ~CountingScope() { g_counting = false; }
  std::int64_t count() const { return g_allocations; }
};

}  // namespace

void* operator new(std::size_t size) {
  if (g_counting) ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  if (g_counting) ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace bfdn {
namespace {

std::int64_t allocations_for_run(const Tree& tree, std::int32_t k) {
  BfdnAlgorithm algorithm(k);
  RunConfig config;
  config.num_robots = k;
  CountingScope scope;
  const RunResult result = run_exploration(tree, algorithm, config);
  EXPECT_TRUE(result.complete);
  return scope.count();
}

TEST(HotpathAlloc, RunAllocationsAreRoundsIndependent) {
  // comb(40, 200): n = 8040, D = 240, thousands of rounds at k = 8.
  const Tree tree = make_comb(40, 200);
  const std::int64_t allocations = allocations_for_run(tree, 8);

  BfdnAlgorithm probe(8);
  RunConfig config;
  config.num_robots = 8;
  const RunResult result = run_exploration(tree, probe, config);
  ASSERT_GT(result.rounds, 2000);  // the scenario is genuinely long

  // Construction + warm-up budget: open-depth buckets (<= D+1), result
  // histogram nodes (<= D), fixed engine/algorithm vectors, amortized
  // buffer growth. Deliberately generous — but a single allocation per
  // round would already cost > result.rounds on its own.
  const std::int64_t budget = 6 * (tree.depth() + 1) + 2 * 8 + 512;
  EXPECT_LT(allocations, budget)
      << "rounds=" << result.rounds
      << " — the engine round loop is allocating per round again";
  EXPECT_LT(allocations, result.rounds);
}

TEST(HotpathAlloc, DeeperRunSameAllocationOrder) {
  // Same spine, 3x deeper teeth: far more rounds, allocation count must
  // move by O(D), not O(rounds).
  const Tree shallow = make_comb(24, 100);
  const Tree deep = make_comb(24, 300);
  const std::int64_t a1 = allocations_for_run(shallow, 8);
  const std::int64_t a2 = allocations_for_run(deep, 8);
  EXPECT_LT(a2 - a1, 8 * (deep.depth() - shallow.depth()) + 256);
}

}  // namespace
}  // namespace bfdn
